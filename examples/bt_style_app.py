#!/usr/bin/env python
"""A BT-style workload, written the way BT actually writes (paper §IV.D).

NAS BT emits one fixed-size solution element per call — thousands of tiny
sequential writes to a shared file.  That access pattern is exactly the
regime where the paper measures LDPLFS's biggest win (BT class C: ~57x
on Sierra), and exactly what ``repro-lint`` flags statically as LDP107
(small-write-loop) before the job is ever submitted:

    PYTHONPATH=src python -m repro.lint.cli examples/bt_style_app.py

Run it for real (it is a working workload, not just lint bait):

    PYTHONPATH=src python examples/bt_style_app.py
"""

import os
import tempfile

from repro.core import interposed

# one BT solution element: 5 doubles x 41 cells = 1640 bytes
RECORD = b"\x00" * 1640
STEPS = 2000

backend = tempfile.mkdtemp(prefix="plfs-backend-")
mount = "/mnt/plfs"


def write_solution(fd: int) -> int:
    written = 0
    for _ in range(STEPS):
        written += os.write(fd, RECORD)  # LDP107: fixed 1640-byte writes
    return written


def main() -> None:
    with interposed([(mount, backend)]):
        fd = os.open(f"{mount}/bt.epsilon.out", os.O_CREAT | os.O_WRONLY)
        total = write_solution(fd)
        os.close(fd)
        size = os.stat(f"{mount}/bt.epsilon.out").st_size
    print(f"wrote {total} bytes in {STEPS} records; container sees {size}")


if __name__ == "__main__":
    main()
