#!/usr/bin/env python
"""Checkpoint/restart through the preload path — the FLASH-IO scenario.

Demonstrates the full ``LD_PRELOAD`` analogue: *worker subprocesses that
import nothing from this library's core* are launched with
``LDPLFS_PRELOAD=1``; the environment alone retargets their POSIX I/O to
a shared PLFS container, one writer per process — exactly how an MPI code
checkpoints through LDPLFS with N processes writing one logical file.

Afterwards the parent verifies the checkpoint byte-for-byte, restarts
from it, and shows the container holds one data dropping per writer
(the paper's Fig. 1 structure).

Run:  python examples/checkpoint_restart.py
"""

import os
import subprocess
import sys
import tempfile

import numpy as np

from repro import plfs
from repro.core import config

RANKS = 4
BLOCK_DOUBLES = 4096  # per-rank slab: 32 KB of float64 state

WORKER = """
import os, sys
import numpy as np
import repro.core.preload  # activates from LDPLFS_PRELOAD / LDPLFS_MOUNTS

rank = int(sys.argv[1])
n = int(sys.argv[2])
mount = sys.argv[3]

state = np.sin(np.arange(n, dtype=np.float64) + rank)  # "simulation" state
fd = os.open(f"{mount}/checkpoint.chk", os.O_CREAT | os.O_WRONLY)
os.lseek(fd, rank * state.nbytes, os.SEEK_SET)
os.write(fd, state.tobytes())
os.close(fd)
print(f"rank {rank}: wrote {state.nbytes} bytes at offset {rank * state.nbytes}")
"""


def main() -> None:
    backend = tempfile.mkdtemp(prefix="plfs-ckpt-backend-")
    mount = os.path.join(tempfile.gettempdir(), "plfs-ckpt-mnt")

    env = dict(os.environ)
    env[config.ENV_PRELOAD] = "1"
    env[config.ENV_MOUNTS] = f"{mount}:{backend}"

    # --- checkpoint: N unmodified workers write one logical file --------
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", WORKER, str(rank), str(BLOCK_DOUBLES), mount],
            env=env,
        )
        for rank in range(RANKS)
    ]
    for p in procs:
        assert p.wait() == 0

    container = os.path.join(backend, "checkpoint.chk")
    droppings = plfs.Container(container).droppings()
    print(f"\ncontainer has {len(droppings)} data droppings "
          f"(one per writing process)")
    st = plfs.plfs_getattr(container)
    expected = RANKS * BLOCK_DOUBLES * 8
    print(f"logical checkpoint size: {st.st_size} bytes (expected {expected})")
    assert st.st_size == expected

    # --- restart: read the checkpoint back through the PLFS API ---------
    fd = plfs.plfs_open(container, os.O_RDONLY)
    restored = np.frombuffer(
        plfs.plfs_read(fd, expected, 0), dtype=np.float64
    ).reshape(RANKS, BLOCK_DOUBLES)
    plfs.plfs_close(fd)

    for rank in range(RANKS):
        reference = np.sin(np.arange(BLOCK_DOUBLES, dtype=np.float64) + rank)
        assert np.array_equal(restored[rank], reference), f"rank {rank} corrupt"
    print("restart verified: every rank's slab restored bit-exact.")

    # --- maintenance: compact the log ------------------------------------
    physical = plfs.Container(container).physical_bytes()
    plfs.plfs_flatten_index(container)
    print(f"flattened container: {physical} -> "
          f"{plfs.Container(container).physical_bytes()} physical bytes")


if __name__ == "__main__":
    main()
