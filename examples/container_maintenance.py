#!/usr/bin/env python
"""Operating on PLFS containers: inspection, garbage, crash recovery.

A PLFS container is a *log*: overwrites append rather than replace, so a
long-running job that rewrites its output accumulates dead bytes, and a
crashed writer leaves openhost markers and missing metadata behind.
This example walks the operator workflow with the bundled tools:

    check   -> consistency + garbage report
    flatten -> compact the log
    recover -> rebuild metadata after a simulated crash

Run:  python examples/container_maintenance.py
"""

import os
import tempfile

from repro import plfs
from repro.plfs.tools import plfs_check, plfs_recover, plfs_usage

backend = tempfile.mkdtemp(prefix="plfs-maint-")
path = os.path.join(backend, "results.dat")

# --- a job rewrites the same region many times (log garbage) -----------
fd = plfs.plfs_open(path, os.O_CREAT | os.O_WRONLY)
for iteration in range(8):
    payload = bytes([iteration]) * 65536
    plfs.plfs_write(fd, payload, len(payload), 0)
plfs.plfs_write(fd, b"tail", 4, 65536)
plfs.plfs_close(fd)

print("after the job:")
report = plfs_check(path)
print(report.render())
assert report.ok and report.garbage_ratio > 0.8

# --- compact --------------------------------------------------------------
plfs.plfs_flatten_index(path)
usage = plfs_usage(path)
print(f"\nafter flatten: {usage['physical_bytes']} physical bytes, "
      f"garbage {usage['garbage_ratio']:.0%}")
assert usage["garbage_bytes"] == 0

# --- simulate a crash: writer died without closing -------------------------
fd = plfs.plfs_open(path, os.O_WRONLY, pid=777)
plfs.plfs_write(fd, b"partial state", 13, 100000)
fd.writer.sync()          # data reached the droppings...
fd.writer.close()
# ...but the process died before plfs_close: marker + no meta update.
print("\nafter the crash:")
crashed = plfs_check(path)
print(crashed.render())
assert any("openhost" in w for w in crashed.warnings)

# --- recover ----------------------------------------------------------------
print("\nrecovering:")
recovered = plfs_recover(path)
print(recovered.render())
assert recovered.ok and not recovered.warnings
size = plfs.plfs_getattr(path).st_size
print(f"\nlogical size after recovery: {size} bytes "
      "(the crashed writer's synced data is preserved)")
assert size == 100013
