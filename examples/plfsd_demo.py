#!/usr/bin/env python
"""PLFS as a service: many processes, one container daemon.

Starts ``repro-plfsd`` on a unix socket, then shows the three ways work
reaches it:

1. An *unmodified* script whose mount carries ``daemon=<socket>`` — the
   interposition shim routes its opens through the daemon (write-only
   opens delegate the data plane: the daemon serializes the metadata
   create, the droppings are written in-process — PLFS's own
   data/metadata split).
2. Explicit clients streaming appends through the remote data plane
   (large payloads ride a shared-memory segment; only descriptors cross
   the socket).
3. A direct-path reader in this process observing everything the
   daemon-held writers produced — cross-process coherence via the
   container's generation file, not the socket.

Finally it prints the daemon's own accounting: per-client op counts and
the queue-wait totals that the create-storm benchmark turns into the
paper's §V.C meltdown curve.

Run:  python examples/plfsd_demo.py
"""

import json
import os
import shutil
import tempfile

from repro import plfs
from repro.core.interpose import Interposer
from repro.plfsd import stress
from repro.plfsd.client import connect

CHUNK = 1 << 20  # large enough to take the shared-memory data plane


def main() -> None:
    arena = tempfile.mkdtemp(prefix="plfsd-demo-", dir="/tmp")
    sock = os.path.join(arena, "plfsd.sock")
    backend = os.path.join(arena, "backend")
    mount = os.path.join(arena, "mnt")
    os.makedirs(backend)

    daemon = stress.start_daemon(sock)
    try:
        # --- 1. unmodified code, daemon-backed mount ------------------- #
        ip = Interposer([(mount, backend + "?daemon=" + sock)])
        ip.install()
        try:
            with open(os.path.join(mount, "app.log"), "wb") as fh:
                fh.write(b"written by plain open()\n")
            with open(os.path.join(mount, "app.log"), "rb") as fh:
                first_line = fh.read()
        finally:
            ip.uninstall()
        print(f"shim route: {first_line!r}")
        print(f"shim stats: opens via daemon={ip.shim.stats['daemon_opens']} "
              f"(delegated={ip.shim.stats['daemon_delegated_opens']}), "
              f"fallbacks={ip.shim.stats['daemon_fallbacks']}")

        # --- 2. explicit clients on the remote data plane -------------- #
        shared = os.path.join(backend, "shared.dat")
        for tenant in range(2):
            with connect(sock, name=f"tenant-{tenant}") as client:
                fd = client.open(shared, os.O_CREAT | os.O_WRONLY)
                payload = bytes([0x41 + tenant]) * CHUNK
                client.write_many(
                    fd.handle, (payload for _ in range(4)),
                    tenant * 4 * CHUNK,
                )
                fd.close()

        # --- 3. direct-path reader sees the daemon's bytes ------------- #
        rfd = plfs.plfs_open(shared, os.O_RDONLY)
        head = plfs.plfs_read(rfd, 8, 0)
        tail = plfs.plfs_read(rfd, 8, 8 * CHUNK - 8)
        size = plfs.plfs_getattr(rfd).st_size
        plfs.plfs_close(rfd)
        print(f"direct reader: {size} logical bytes, "
              f"head={head!r}, tail={tail!r}")

        # --- the daemon's own accounting ------------------------------- #
        stats = stress.daemon_stats(sock)
        agg, totals = stats["aggregate"], stats["totals"]
        print(f"daemon: {agg['creates']} creates, {agg['appends']} appends "
              f"({totals['shm_appends']} via shm), "
              f"{agg['bytes_written']} bytes written, "
              f"queue wait {agg['queue_wait_seconds'] * 1e6:.0f} us total")
        print(json.dumps({c["name"]: c["appends"] for c in stats["per_client"]},
                         sort_keys=True))
    finally:
        stress.stop_daemon(daemon, sock)
        shutil.rmtree(arena, ignore_errors=True)


if __name__ == "__main__":
    main()
