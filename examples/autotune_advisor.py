#!/usr/bin/env python
"""Auto-tuning advisor: should this job use PLFS?  (paper §V.A)

Uses the analytic performance model to answer, in microseconds, the
question the paper wants answered without "extensive benchmarking": for
a given machine and I/O pattern, which access route will be fastest —
and at what scale does PLFS flip from a win to a loss?

Run:  python examples/autotune_advisor.py
"""

from repro.analysis import render_table
from repro.cluster import MINERVA, SIERRA
from repro.model import WorkloadPattern, choose_method, mds_safe_writer_limit
from repro.sim.stats import GB, MB


def checkpoint_pattern(machine, nodes: int, per_proc=205 * MB) -> WorkloadPattern:
    """A FLASH-style independent checkpoint on *nodes* full nodes."""
    ranks = nodes * machine.cores_per_node
    return WorkloadPattern(
        nodes=nodes,
        writers=ranks,
        openers=ranks,
        total_bytes=per_proc * ranks,
        write_size=per_proc / 24,
        collective=False,
    )


def advise(machine, nodes: int) -> list[str]:
    rec = choose_method(machine, checkpoint_pattern(machine, nodes))
    row = [
        machine.name,
        str(nodes * machine.cores_per_node),
        rec.method.name,
        f"{rec.predictions[rec.method.name].bandwidth_mbps:.0f}",
        f"{rec.speedup_vs_mpiio:.1f}x",
        rec.predictions["LDPLFS"].bottleneck,
    ]
    return row


def main() -> None:
    rows = []
    for machine in (MINERVA, SIERRA):
        for nodes in (4, 16, 64, 128):
            if nodes <= machine.nodes:
                rows.append(advise(machine, nodes))
    rows.append(advise(SIERRA, 256))
    print(
        render_table(
            ["machine", "cores", "pick", "MB/s", "vs MPI-IO", "LDPLFS bottleneck"],
            rows,
            title="Checkpoint I/O advisor (205 MB/process, independent writes)",
        )
    )
    print()

    pattern = checkpoint_pattern(SIERRA, 8)
    limit = mds_safe_writer_limit(SIERRA, pattern)
    print(
        f"On {SIERRA.name}, PLFS stops paying off beyond ~{limit} writers "
        "for this pattern (dedicated-MDS create storm).  Schedule bigger "
        "jobs with plain MPI-IO, or raise the metadata budget."
    )

    rec = choose_method(SIERRA, checkpoint_pattern(SIERRA, 256))
    print()
    print("At 3,072 cores the advisor says:")
    print(f"  -> {rec.method.name}: {rec.explanation}")


if __name__ == "__main__":
    main()
