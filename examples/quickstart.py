#!/usr/bin/env python
"""Quickstart: transparent PLFS through LDPLFS interposition.

The paper's headline capability in ~40 lines: mount a PLFS backend, and
completely ordinary Python file code — ``open``, ``os.stat``, ``shutil``,
the bundled UNIX tools — operates on PLFS containers without knowing it.

Run:  python examples/quickstart.py
"""

import os
import shutil
import tempfile

from repro import plfs
from repro.core import interposed
from repro.unixtools import grep, md5sum

backend = tempfile.mkdtemp(prefix="plfs-backend-")
mount_point = os.path.join(tempfile.gettempdir(), "plfs-mnt")

print(f"backend   : {backend}")
print(f"mount at  : {mount_point}")
print()

with interposed([(mount_point, backend)]):
    # --- 1. unmodified application code writes a file -------------------
    with open(f"{mount_point}/results.txt", "w") as fh:
        for step in range(5):
            fh.write(f"step {step}: residual = {1.0 / (step + 1):.6f}\n")

    # --- 2. ordinary POSIX metadata works --------------------------------
    st = os.stat(f"{mount_point}/results.txt")
    print(f"os.stat size      : {st.st_size} bytes (logical size)")
    print(f"os.listdir        : {os.listdir(mount_point)}")

    # --- 3. standard tools work (the Table II scenario) ------------------
    hits = grep("step [23]", [f"{mount_point}/results.txt"])
    print(f"grep 'step [23]'  : {len(hits)} matching lines")
    [(digest, _)] = md5sum(f"{mount_point}/results.txt")
    print(f"md5sum            : {digest}")

    # --- 4. even shutil copies in and out of PLFS ------------------------
    extracted = os.path.join(tempfile.gettempdir(), "extracted-results.txt")
    shutil.copyfile(f"{mount_point}/results.txt", extracted)
    print(f"copied out to     : {extracted}")

# --- 5. what actually hit the disk: a PLFS container --------------------
container = os.path.join(backend, "results.txt")
print()
print(f"on the backend, results.txt is a container: {plfs.is_container(container)}")
print(f"container entries : {sorted(os.listdir(container))}")
print(f"extent map        : {plfs.plfs_map(container)}")

with open(extracted) as fh:
    assert "step 4" in fh.read()
print()
print("quickstart OK: unmodified code, PLFS storage.")
