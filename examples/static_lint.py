#!/usr/bin/env python
"""Static analysis end to end: lint a script, audit ourselves, feed the
autotuner.

Three things in one sitting:

1. Lint a BT-style workload script (``examples/bt_style_app.py``) and
   print the graded findings — no execution, pure AST.
2. Run the self-audit: interposition coverage over ``repro.core`` plus
   the fd-table lock contracts (the same gate CI runs).
3. Hand the lint findings to ``choose_method`` as static evidence, so
   the recommendation cites *why* from the source code, not just the
   model.

Run:  PYTHONPATH=src python examples/static_lint.py
"""

import os

from repro.cluster import SIERRA
from repro.lint import lint_path, render_findings, render_self_audit, self_audit
from repro.model import WorkloadPattern, choose_method
from repro.sim.stats import MB

HERE = os.path.dirname(os.path.abspath(__file__))
TARGET = os.path.join(HERE, "bt_style_app.py")

# --- 1. lint the application script ---------------------------------------
findings = lint_path(TARGET)
print(render_findings(findings, target="examples/bt_style_app.py"))
print()

# --- 2. audit our own interposition layer ---------------------------------
print(render_self_audit(self_audit()))
print()

# --- 3. cite the static evidence in an autotune recommendation ------------
ranks = 8 * SIERRA.cores_per_node
pattern = WorkloadPattern(
    nodes=8, writers=ranks, openers=ranks,
    total_bytes=205 * MB * ranks, write_size=1640.0, collective=False,
)
rec = choose_method(SIERRA, pattern, static_findings=findings)
print(f"recommended access method: {rec.method.name}")
print(rec.explanation)
