#!/usr/bin/env python
"""Evaluate PLFS for a cluster before deploying it — the paper's pitch.

"LDPLFS ... allows users to quickly evaluate the benefits of PLFS on
their system before undertaking the task of library rebuilds or code
modifications" (§V).  This example does that evaluation on the simulated
platforms: it sweeps the MPI-IO Test workload over node counts on
Minerva (Fig. 3) and prints the same bandwidth series the paper plots,
then zooms in on the scale regime on Sierra where PLFS turns harmful
(Fig. 5).

Run:  python examples/evaluate_plfs.py
"""

from repro.analysis import Panel, render_ascii_chart, render_panel
from repro.cluster import MINERVA, SIERRA
from repro.insights import profile_from_run, render_report, run_rules
from repro.mpiio import ALL_METHODS, LDPLFS, MPIIO
from repro.sim.stats import MB
from repro.workloads import run_flashio, run_mpiio_test


def sweep_minerva() -> Panel:
    panel = Panel(
        title="MPI-IO Test on Minerva (1 proc/node, collective writes)",
        xlabel="Nodes",
        ylabel="Write bandwidth (MB/s)",
    )
    for nodes in (1, 2, 4, 8, 16, 32):
        for method in ALL_METHODS:
            result = run_mpiio_test(
                MINERVA, method, nodes, 1, per_proc=64 * MB, read_back=False
            )
            panel.add(method.name, nodes, result.write_bandwidth)
    return panel


def sweep_sierra() -> tuple[Panel, object]:
    panel = Panel(
        title="FLASH-IO on Sierra (weak scaled, 12 ppn)",
        xlabel="Cores",
        ylabel="Write bandwidth (MB/s)",
    )
    last_ldplfs = None
    for nodes in (2, 8, 32, 128, 256):
        for method in (MPIIO, LDPLFS):
            result = run_flashio(SIERRA, method, nodes)
            panel.add(method.name, nodes * 12, result.write_bandwidth)
            if method is LDPLFS:
                last_ldplfs = result
    return panel, last_ldplfs


def main() -> None:
    minerva = sweep_minerva()
    print(render_panel(minerva))
    print()
    ldplfs32 = minerva.series["LDPLFS"].at(32)
    mpiio32 = minerva.series["MPI-IO"].at(32)
    print(
        f"On Minerva, LDPLFS delivers {ldplfs32 / mpiio32:.1f}x the write "
        "bandwidth of plain MPI-IO at 32 nodes -> PLFS is worth deploying."
    )
    print()

    sierra, collapse_run = sweep_sierra()
    print(render_panel(sierra))
    print()
    print(render_ascii_chart(sierra, symbol_map={"MPI-IO": "m", "LDPLFS": "L"}))
    peak_x, peak_y = sierra.series["LDPLFS"].peak
    final = sierra.series["LDPLFS"].at(3072)
    print(
        f"\nOn Sierra, PLFS peaks at {peak_y:.0f} MB/s ({peak_x:.0f} cores) "
        f"but collapses to {final:.0f} MB/s at 3,072 cores — below plain "
        "MPI-IO.  The dedicated Lustre MDS is the bottleneck: check the "
        "metadata load before enabling PLFS at scale."
    )

    # The insights advisor reaches the same verdict from the run's own
    # counters — with the evidence spelled out.
    print()
    profile = profile_from_run(collapse_run, SIERRA, LDPLFS, workload="flashio")
    print(render_report(profile, run_rules(profile)))


if __name__ == "__main__":
    main()
