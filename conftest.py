"""Root pytest configuration.

Loads the plfs-san plugin so any suite in the repo can run under the
runtime race detector with ``--sanitize`` (pytest requires plugins to be
declared in the rootdir conftest).  Needs ``src`` on ``PYTHONPATH``,
exactly like the tests themselves.
"""

pytest_plugins = ("repro.sanitize.pytest_plugin",)
