"""Tests for platform utilisation reporting."""

from __future__ import annotations

import pytest

from repro.cluster import SIERRA, Platform
from repro.sim import Environment
from repro.sim.stats import MB


@pytest.fixture
def busy_platform():
    env = Environment()
    platform = Platform(env, SIERRA)

    def work():
        yield from platform.nic(0).transfer(8 * MB)
        yield from platform.servers[0].io(8 * MB, sequential=True)
        yield from platform.mds.op("dropping_create", heavy=True)

    env.run(until=env.process(work()))
    return env, platform


class TestReport:
    def test_report_fields(self, busy_platform):
        env, platform = busy_platform
        data = platform.report()
        assert data["horizon"] == env.now
        assert data["bytes_serviced"] == 8 * MB
        assert data["mds_ops"] == 1
        assert data["mds_peak_create_depth"] == 1
        assert len(data["server_utilisation"]) == SIERRA.io_servers
        assert 0 < data["server_utilisation"][0] <= 1
        assert data["server_utilisation"][1] == 0
        assert data["nic_utilisation_mean"] > 0

    def test_custom_horizon_scales_utilisation(self, busy_platform):
        env, platform = busy_platform
        at_now = platform.report()["server_utilisation_mean"]
        at_double = platform.report(horizon=env.now * 2)["server_utilisation_mean"]
        assert at_double == pytest.approx(at_now / 2)

    def test_render_mentions_key_numbers(self, busy_platform):
        _, platform = busy_platform
        text = platform.render_report()
        assert "metadata ops" in text
        assert "GB serviced" in text

    def test_empty_platform_report(self):
        env = Environment()
        platform = Platform(env, SIERRA)
        data = platform.report(horizon=1.0)
        assert data["bytes_serviced"] == 0
        assert data["nic_utilisation_mean"] == 0.0
        assert data["server_utilisation_mean"] == 0.0
