"""Tests for the platform runtime: servers, MDS, caches."""

from __future__ import annotations

import pytest

from repro.cluster import MINERVA, SIERRA, Platform
from repro.cluster.platform import MetadataService, Server, WriteBackCache
from repro.sim import Environment
from repro.sim.stats import MB


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def platform(env):
    return Platform(env, SIERRA)


class TestServer:
    def test_sequential_cheaper_than_seek(self, env):
        s = Server(env, SIERRA.perf, 0)
        seq = s.service_time(8 * MB, sequential=True)
        rand = s.service_time(8 * MB, sequential=False)
        assert rand == pytest.approx(seq + SIERRA.perf.seek_time)

    def test_interleaving_degrades_bandwidth(self, env):
        s = Server(env, SIERRA.perf, 0)
        bw0 = s.effective_bandwidth()
        for _ in range(100):
            s.stream_opened()
        assert s.effective_bandwidth() < bw0
        for _ in range(100):
            s.stream_closed()
        assert s.effective_bandwidth() == pytest.approx(bw0)

    def test_stream_close_never_negative(self, env):
        s = Server(env, SIERRA.perf, 0)
        s.stream_closed()
        assert s.open_streams == 0

    def test_io_accounting(self, env):
        s = Server(env, SIERRA.perf, 0)

        def proc():
            yield from s.io(1 * MB, sequential=True)

        env.run(until=env.process(proc()))
        assert s.bytes_serviced == 1 * MB
        assert s.ops_serviced == 1
        assert env.now == pytest.approx(s.service_time(1 * MB, sequential=True))

    def test_channel_serialises(self, env):
        s = Server(env, SIERRA.perf, 0)  # concurrency 1
        done = []

        def proc(tag):
            yield from s.io(1 * MB, sequential=True)
            done.append((tag, env.now))

        env.process(proc("a"))
        env.process(proc("b"))
        env.run()
        assert done[1][1] == pytest.approx(2 * done[0][1])


class TestMetadataService:
    def test_light_ops_cost_base(self, env):
        mds = MetadataService(env, SIERRA.perf)

        def proc():
            yield from mds.op("stat")

        env.run(until=env.process(proc()))
        assert env.now == pytest.approx(SIERRA.perf.mds_base_service)

    def test_heavy_create_costs_weight(self, env):
        mds = MetadataService(env, SIERRA.perf)

        def proc():
            yield from mds.op("dropping_create", heavy=True)

        env.run(until=env.process(proc()))
        expected = SIERRA.perf.mds_base_service * SIERRA.perf.mds_create_weight
        assert env.now == pytest.approx(expected, rel=1e-6)

    def test_create_storm_thrash_is_superlinear(self):
        def storm_time(n):
            env = Environment()
            mds = MetadataService(env, SIERRA.perf)
            for _ in range(n):
                env.process(mds.op("dropping_create", heavy=True))
            env.run()
            return env.now

        small, large = storm_time(200), storm_time(4000)
        # 20x the creates must cost far more than 20x the time.
        assert large > 20 * small * 3

    def test_marker_storm_stays_linearish(self):
        def storm_time(n):
            env = Environment()
            mds = MetadataService(env, SIERRA.perf)
            for _ in range(n):
                env.process(mds.op("openhost_mark"))
            env.run()
            return env.now

        small, large = storm_time(200), storm_time(4000)
        # Queue-linear only: 20x ops cost well under 100x.
        assert large < 80 * small

    def test_distributed_mds_scales(self):
        def storm_time(spec, n=2000):
            env = Environment()
            mds = MetadataService(env, spec.perf)
            for i in range(n):
                env.process(mds.op("dropping_create", key=i, heavy=True))
            env.run()
            return env.now

        assert storm_time(MINERVA) < storm_time(SIERRA) / 4

    def test_op_counters(self, env):
        mds = MetadataService(env, SIERRA.perf)

        def proc():
            yield from mds.op("stat")
            yield from mds.op("stat")
            yield from mds.op("unlink")

        env.run(until=env.process(proc()))
        assert mds.ops.get("stat") == 2
        assert mds.ops_issued() == 3


class TestWriteBackCache:
    def make(self, env, perf=SIERRA.perf):
        return WriteBackCache(env, perf)

    def test_small_write_absorbs_at_memcpy_speed(self, env):
        cache = self.make(env)
        drained = []

        def slow_drain(n):
            yield env.timeout(10.0)
            drained.append(n)

        def proc():
            yield from cache.write(1 * MB, slow_drain)
            return env.now

        absorb_time = env.run(until=env.process(proc()))
        assert absorb_time == pytest.approx(1 * MB / SIERRA.perf.memcpy_bandwidth)
        env.run()
        assert drained == [1 * MB]
        assert cache.dirty == 0

    def test_budget_exhaustion_blocks_at_drain_rate(self, env):
        cache = self.make(env)
        budget = SIERRA.perf.cache_dirty_per_proc

        def drain(n):
            yield env.timeout(1.0)

        def producer():
            for _ in range(8):
                yield from cache.write(budget / 2, drain)
            return env.now

        total = env.run(until=env.process(producer()))
        # First two absorb instantly; the rest wait ~1s each for drains.
        assert total >= 5.9

    def test_absorbed_accounting(self, env):
        cache = self.make(env)

        def drain(n):
            yield env.timeout(0)

        def proc():
            yield from cache.write(3 * MB, drain)

        env.run(until=env.process(proc()))
        assert cache.absorbed_bytes == 3 * MB


class TestPlatform:
    def test_lazy_nics_and_caches(self, platform):
        assert platform.nic(3) is platform.nic(3)
        assert platform.nic(3) is not platform.nic(4)
        assert platform.cache(0, 1) is platform.cache(0, 1)
        assert platform.cache(0, 1) is not platform.cache(0, 2)

    def test_server_count_matches_spec(self, platform):
        assert len(platform.servers) == SIERRA.io_servers

    def test_round_robin_assignment(self, platform):
        first = [platform.assign_server() for _ in range(SIERRA.io_servers)]
        assert len({s.sid for s in first}) == SIERRA.io_servers
        again = platform.assign_server()
        assert again is first[0]

    def test_total_bytes_serviced(self, env, platform):
        server = platform.servers[0]

        def proc():
            yield from server.io(2 * MB, sequential=True)

        env.run(until=env.process(proc()))
        assert platform.total_bytes_serviced() == 2 * MB
