"""Tests for machine specs (Table I data) and parameter overrides."""

from __future__ import annotations

import pytest

from repro.cluster import MACHINES, MINERVA, SIERRA, table1_rows


class TestTableOneFacts:
    """The inventory must match Table I of the paper verbatim."""

    def test_minerva_facts(self):
        assert MINERVA.processor == "Intel Xeon 5650"
        assert MINERVA.cpu_ghz == 2.66
        assert MINERVA.cores_per_node == 12
        assert MINERVA.nodes == 258
        assert MINERVA.filesystem == "GPFS"
        assert MINERVA.io_servers == 2
        assert MINERVA.storage.count == 96
        assert MINERVA.storage.rpm == 7200
        assert MINERVA.metadata.count == 24
        assert MINERVA.metadata.rpm == 15000

    def test_sierra_facts(self):
        assert SIERRA.processor == "Intel Xeon 5660"
        assert SIERRA.cpu_ghz == 2.8
        assert SIERRA.nodes == 1849
        assert SIERRA.filesystem == "Lustre"
        assert SIERRA.io_servers == 24
        assert SIERRA.storage.count == 3600
        assert SIERRA.storage.rpm == 10000
        assert SIERRA.metadata.count == 30

    def test_total_cores(self):
        assert MINERVA.total_cores == 258 * 12
        assert SIERRA.total_cores == 1849 * 12

    def test_machines_registry(self):
        assert MACHINES["minerva"] is MINERVA
        assert MACHINES["sierra"] is SIERRA

    def test_table1_rows_cover_both_machines(self):
        rows = table1_rows()
        fields = [f for f, _, _ in rows]
        assert "Processor" in fields
        assert "File System" in fields
        assert any(f.startswith("Storage:") for f in fields)
        assert any(f.startswith("Metadata:") for f in fields)
        by_field = {f: (m, s) for f, m, s in rows}
        assert by_field["File System"] == ("GPFS", "Lustre")
        assert by_field["Nodes"] == ("258", "1,849")


class TestPerfOverrides:
    def test_with_perf_creates_modified_copy(self):
        faster = SIERRA.with_perf(server_bandwidth=1e9)
        assert faster.perf.server_bandwidth == 1e9
        assert SIERRA.perf.server_bandwidth != 1e9
        assert faster.nodes == SIERRA.nodes

    def test_with_perf_unknown_field_raises(self):
        with pytest.raises(TypeError):
            SIERRA.with_perf(not_a_field=1)

    def test_metadata_model_differs(self):
        # The architectural difference the paper leans on: Lustre has one
        # dedicated MDS, GPFS distributes metadata.
        assert SIERRA.perf.mds_count == 1
        assert MINERVA.perf.mds_count > 1
        assert SIERRA.perf.mds_contention_exp > 1
