"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.core.interpose import Interposer
from repro.plfs.cache import shared_cache


@pytest.fixture(autouse=True)
def _fresh_index_cache():
    """Isolate tests from the process-wide shared index cache.

    Entries are keyed by absolute container path; tmp_path reuse across
    runs (or stats accumulated by an earlier test) must never leak into
    the next test's assertions."""
    cache = shared_cache()
    cache.clear()
    cache.reset_stats()
    yield
    cache.clear()
    cache.reset_stats()


def pytest_addoption(parser):
    parser.addoption(
        "--fault-seed",
        type=int,
        default=1337,
        help="seed for the fault-injection crash-consistency tests "
        "(the CI matrix runs several; any failing value reproduces exactly)",
    )


@pytest.fixture
def fault_seed(request):
    """The seed the fault-injection suite derives its randomness from."""
    return request.config.getoption("--fault-seed")


@pytest.fixture
def backend(tmp_path):
    """A fresh PLFS backend directory."""
    path = tmp_path / "backend"
    path.mkdir()
    return str(path)


@pytest.fixture
def mnt(tmp_path):
    """A logical mount-point path (never created on the real FS)."""
    return str(tmp_path / "mnt" / "plfs")


@pytest.fixture
def interposer(mnt, backend):
    """An installed interposer with one mount; uninstalled afterwards."""
    ip = Interposer([(mnt, backend)])
    ip.install()
    try:
        yield ip
    finally:
        # Close anything a failing test leaked, then restore the originals.
        ip.drain()
        ip.uninstall()


@pytest.fixture
def container_path(backend):
    """Backend path for one logical file (not created)."""
    return os.path.join(backend, "file")
