"""Tests for the analytic performance model (experiment M1 support)."""

from __future__ import annotations

import pytest

from repro.cluster import MINERVA, SIERRA
from repro.model import WorkloadPattern, predict_all, predict_write
from repro.mpiio import FUSE, LDPLFS, MPIIO, ROMIO
from repro.sim.stats import GB, MB


def flash_pattern(nodes: int, ppn: int = 12) -> WorkloadPattern:
    ranks = nodes * ppn
    return WorkloadPattern(
        nodes=nodes,
        writers=ranks,
        openers=ranks,
        total_bytes=205 * MB * ranks,
        write_size=205 * MB / 24,
        collective=False,
    )


def mpiio_test_pattern(nodes: int, ppn: int = 1) -> WorkloadPattern:
    ranks = nodes * ppn
    return WorkloadPattern(
        nodes=nodes,
        writers=nodes,  # one aggregator per node
        openers=ranks,
        total_bytes=1 * GB * ranks,
        write_size=8 * MB,
        collective=True,
    )


class TestPatterns:
    def test_backend_write_size_collective(self):
        p = mpiio_test_pattern(4, ppn=4)
        assert p.backend_write_size == 32 * MB

    def test_backend_write_size_independent(self):
        p = flash_pattern(2)
        assert p.backend_write_size == p.write_size

    def test_writes_per_writer(self):
        p = mpiio_test_pattern(4, ppn=1)
        assert p.writes_per_writer == pytest.approx(128)


class TestPredictions:
    def test_plfs_beats_mpiio_minerva(self):
        preds = predict_all(MINERVA, mpiio_test_pattern(16))
        assert preds["LDPLFS"].bandwidth_mbps > 1.5 * preds["MPI-IO"].bandwidth_mbps

    def test_ldplfs_close_to_romio(self):
        preds = predict_all(MINERVA, mpiio_test_pattern(16))
        assert preds["LDPLFS"].bandwidth_mbps == pytest.approx(
            preds["ROMIO"].bandwidth_mbps, rel=0.05
        )
        assert preds["LDPLFS"].bandwidth_mbps >= preds["ROMIO"].bandwidth_mbps

    def test_fuse_is_slowest_plfs_route(self):
        preds = predict_all(MINERVA, mpiio_test_pattern(16))
        assert preds["FUSE"].bandwidth_mbps < preds["ROMIO"].bandwidth_mbps
        assert preds["FUSE"].bandwidth_mbps < preds["LDPLFS"].bandwidth_mbps

    def test_mds_collapse_predicted_at_scale(self):
        small = predict_write(SIERRA, LDPLFS, flash_pattern(8))
        large = predict_write(SIERRA, LDPLFS, flash_pattern(256))
        assert large.bandwidth_mbps < 0.4 * small.bandwidth_mbps
        assert "metadata" in large.bottleneck
        assert "metadata" not in small.bottleneck

    def test_mpiio_immune_to_scale_collapse(self):
        small = predict_write(SIERRA, MPIIO, flash_pattern(8))
        large = predict_write(SIERRA, MPIIO, flash_pattern(256))
        assert large.bandwidth_mbps == pytest.approx(small.bandwidth_mbps, rel=0.2)

    def test_cache_credits_small_writes(self):
        cached = WorkloadPattern(
            nodes=86, writers=86, openers=1024,
            total_bytes=6.4 * GB, write_size=320 * 1024, collective=True,
        )
        direct = WorkloadPattern(
            nodes=86, writers=86, openers=1024,
            total_bytes=6.4 * GB, write_size=8 * MB, collective=True,
        )
        p_cached = predict_write(SIERRA, LDPLFS, cached)
        p_direct = predict_write(SIERRA, LDPLFS, direct)
        assert p_cached.components["cached_bytes"] > 0
        assert p_direct.components["cached_bytes"] == 0
        assert p_cached.bandwidth_mbps > p_direct.bandwidth_mbps

    def test_components_exposed(self):
        p = predict_write(SIERRA, ROMIO, flash_pattern(8))
        for key in ("data_seconds", "mds_seconds", "storage_rate", "client_rate"):
            assert key in p.components


class TestModelVsSimulator:
    """The M1 validation at two spot points (full grid in benchmarks/)."""

    @pytest.mark.parametrize("nodes", [8, 256])
    def test_flash_within_tolerance(self, nodes):
        from repro.workloads import run_flashio

        sim = run_flashio(SIERRA, LDPLFS, nodes).write_bandwidth
        model = predict_write(SIERRA, LDPLFS, flash_pattern(nodes)).bandwidth_mbps
        assert model == pytest.approx(sim, rel=0.45)

    def test_mpiio_test_within_tolerance(self):
        from repro.workloads import run_mpiio_test

        sim = run_mpiio_test(
            MINERVA, LDPLFS, 16, 1, per_proc=128 * MB, read_back=False
        ).write_bandwidth
        pattern = WorkloadPattern(
            nodes=16, writers=16, openers=16,
            total_bytes=16 * 128 * MB, write_size=8 * MB, collective=True,
        )
        model = predict_write(MINERVA, LDPLFS, pattern).bandwidth_mbps
        assert model == pytest.approx(sim, rel=0.45)
