"""Tests for method auto-selection (the paper's auto-optimisation goal)."""

from __future__ import annotations

from repro.cluster import MINERVA, SIERRA
from repro.model import WorkloadPattern, choose_method, mds_safe_writer_limit
from repro.sim.stats import GB, MB


def flash_pattern(nodes: int) -> WorkloadPattern:
    ranks = nodes * 12
    return WorkloadPattern(
        nodes=nodes, writers=ranks, openers=ranks,
        total_bytes=205 * MB * ranks, write_size=205 * MB / 24,
        collective=False,
    )


class TestChooseMethod:
    def test_recommends_plfs_route_at_moderate_scale(self):
        rec = choose_method(SIERRA, flash_pattern(8))
        assert rec.method.uses_plfs
        assert rec.plfs_helps
        assert rec.speedup_vs_mpiio > 1.5
        assert "MB/s" in rec.explanation

    def test_recommends_mpiio_in_collapse_regime(self):
        rec = choose_method(SIERRA, flash_pattern(256))
        assert rec.method.name == "MPI-IO"
        assert not rec.plfs_helps
        assert "metadata" in rec.explanation

    def test_never_recommends_fuse(self):
        # FUSE is dominated by LDPLFS/ROMIO everywhere in this model.
        for nodes in (2, 16, 64):
            rec = choose_method(MINERVA, flash_pattern(nodes))
            assert rec.method.name != "FUSE"

    def test_predictions_cover_all_methods(self):
        rec = choose_method(SIERRA, flash_pattern(8))
        assert set(rec.predictions) == {"MPI-IO", "FUSE", "ROMIO", "LDPLFS"}


class TestSafeWriterLimit:
    def test_limit_exists_on_lustre(self):
        limit = mds_safe_writer_limit(SIERRA, flash_pattern(8))
        assert limit is not None
        # The paper's crossover: PLFS stops helping in the low thousands
        # of writers on Sierra's dedicated MDS.
        assert 384 <= limit <= 6144

    def test_limit_mechanism_differs_by_filesystem(self):
        """Past its limit, Sierra's PLFS routes are metadata-bound (the
        dedicated-MDS cliff); Minerva's merely fall to storage-level
        parity (stream interleaving on a 2-server GPFS) — the distinction
        the paper draws between the two architectures."""
        beyond = flash_pattern(256)
        sierra = choose_method(SIERRA, beyond)
        assert "metadata" in sierra.predictions["LDPLFS"].bottleneck

        minerva_nodes = 128
        ranks = minerva_nodes * 12
        pat = WorkloadPattern(
            nodes=minerva_nodes, writers=ranks, openers=ranks,
            total_bytes=205 * MB * ranks, write_size=205 * MB / 24,
            collective=False,
        )
        minerva = choose_method(MINERVA, pat)
        assert "metadata" not in minerva.predictions["LDPLFS"].bottleneck
