"""Tests for dd, head, tail and cmp — on flat files and PLFS containers."""

from __future__ import annotations

import os

import pytest

from repro.unixtools import cmp, dd, head, tail

TEXT = "".join(f"line {i:04d}\n" for i in range(100)).encode()


@pytest.fixture
def flat(tmp_path):
    p = tmp_path / "flat.txt"
    p.write_bytes(TEXT)
    return str(p)


@pytest.fixture
def plfs_copy(interposer, mnt):
    path = f"{mnt}/copy.txt"
    with open(path, "wb") as fh:
        fh.write(TEXT)
    return path


class TestDd:
    def test_whole_copy(self, flat, tmp_path):
        dst = str(tmp_path / "out")
        result = dd(flat, dst, bs=256)
        assert result.bytes_copied == len(TEXT)
        assert open(dst, "rb").read() == TEXT
        assert result.full_blocks == len(TEXT) // 256
        assert str(result).endswith("bytes copied")

    def test_count_limits(self, flat, tmp_path):
        dst = str(tmp_path / "out")
        result = dd(flat, dst, bs=100, count=3)
        assert result.bytes_copied == 300
        assert open(dst, "rb").read() == TEXT[:300]

    def test_skip_and_seek(self, flat, tmp_path):
        dst = str(tmp_path / "out")
        dd(flat, dst, bs=100, skip=2, count=1, seek=1)
        data = open(dst, "rb").read()
        assert data[:100] == b"\x00" * 100  # hole from seek
        assert data[100:200] == TEXT[200:300]

    def test_bad_bs(self, flat, tmp_path):
        with pytest.raises(ValueError):
            dd(flat, str(tmp_path / "x"), bs=0)

    def test_dd_out_of_plfs(self, plfs_copy, tmp_path):
        dst = str(tmp_path / "extracted")
        result = dd(plfs_copy, dst, bs=128)
        assert result.bytes_copied == len(TEXT)
        assert open(dst, "rb").read() == TEXT

    def test_dd_into_plfs_with_seek(self, interposer, mnt, flat):
        dst = f"{mnt}/seeked.bin"
        dd(flat, dst, bs=100, count=1, seek=2)
        assert os.stat(dst).st_size == 300
        fd = os.open(dst, os.O_RDONLY)
        assert os.pread(fd, 100, 0) == b"\x00" * 100
        assert os.pread(fd, 100, 200) == TEXT[:100]
        os.close(fd)


class TestHeadTail:
    def test_head(self, flat):
        assert head(flat, 3) == ["line 0000", "line 0001", "line 0002"]

    def test_head_more_than_file(self, flat):
        assert len(head(flat, 1000)) == 100

    def test_tail(self, flat):
        assert tail(flat, 2) == ["line 0098", "line 0099"]

    def test_tail_whole_file(self, flat):
        assert len(tail(flat, 1000)) == 100

    def test_tail_empty(self, tmp_path):
        p = tmp_path / "empty"
        p.write_bytes(b"")
        assert tail(str(p)) == []

    def test_head_tail_on_plfs(self, plfs_copy):
        assert head(plfs_copy, 1) == ["line 0000"]
        assert tail(plfs_copy, 1) == ["line 0099"]

    def test_tail_crosses_block_boundary(self, tmp_path):
        p = tmp_path / "big"
        payload = "".join(f"row {i}\n" for i in range(5000))
        p.write_text(payload)
        assert tail(str(p), 3) == ["row 4997", "row 4998", "row 4999"]


class TestCmp:
    def test_equal(self, flat, tmp_path):
        other = tmp_path / "same"
        other.write_bytes(TEXT)
        result = cmp(flat, str(other))
        assert result.equal and bool(result)
        assert result.first_difference is None

    def test_difference_located(self, flat, tmp_path):
        mutated = bytearray(TEXT)
        mutated[777] ^= 0xFF
        other = tmp_path / "diff"
        other.write_bytes(bytes(mutated))
        result = cmp(flat, str(other))
        assert not result.equal
        assert result.first_difference == 777

    def test_length_difference(self, flat, tmp_path):
        other = tmp_path / "short"
        other.write_bytes(TEXT[:500])
        result = cmp(flat, str(other))
        assert not result.equal
        assert result.first_difference == 500

    def test_plfs_vs_flat_identical(self, plfs_copy, flat):
        assert cmp(plfs_copy, flat).equal


class TestCliNewTools:
    def test_dd_and_cmp_via_cli(self, tmp_path, capsys):
        from repro.unixtools import cli

        mnt = str(tmp_path / "m")
        backend = str(tmp_path / "b")
        spec = f"{mnt}:{backend}"
        src = tmp_path / "src"
        src.write_bytes(TEXT)
        assert cli.main(["--mount", spec, "dd", str(src), f"{mnt}/d", "--bs", "128"]) == 0
        assert "bytes copied" in capsys.readouterr().out
        assert cli.main(["--mount", spec, "cmp", str(src), f"{mnt}/d"]) == 0
        assert cli.main(["--mount", spec, "head", f"{mnt}/d", "-n", "1"]) == 0
        assert capsys.readouterr().out.strip() == "line 0000"
        assert cli.main(["--mount", spec, "tail", f"{mnt}/d", "-n", "1"]) == 0
        assert capsys.readouterr().out.strip() == "line 0099"

    def test_cmp_cli_differ_exit_code(self, tmp_path, capsys):
        from repro.unixtools import cli

        mnt = str(tmp_path / "m")
        backend = str(tmp_path / "b")
        a = tmp_path / "a"
        a.write_bytes(b"one")
        b = tmp_path / "bb"
        b.write_bytes(b"two")
        assert cli.main(["--mount", f"{mnt}:{backend}", "cmp", str(a), str(b)]) == 1
        assert "differ" in capsys.readouterr().out
