"""Tests for the ``ldplfs`` command-line front end."""

from __future__ import annotations

import io
import os

import pytest

from repro.unixtools import cli


@pytest.fixture
def mounted(tmp_path):
    mnt = str(tmp_path / "mnt")
    backend = str(tmp_path / "backend")
    return mnt, backend, f"{mnt}:{backend}"


def run(argv):
    return cli.main(argv)


class TestCli:
    def test_requires_mounts(self, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(["cat", str(tmp_path / "x")])

    def test_bad_mount_syntax(self, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(["--mount", "nodelimiter", "ls", "."])

    def test_cp_then_md5sum(self, mounted, tmp_path, capsys):
        mnt, backend, spec = mounted
        src = tmp_path / "src.dat"
        src.write_bytes(b"cli payload\n" * 10)
        assert run(["--mount", spec, "cp", str(src), f"{mnt}/dst.dat"]) == 0
        from repro.plfs import is_container

        assert is_container(os.path.join(backend, "dst.dat"))
        assert run(["--mount", spec, "md5sum", f"{mnt}/dst.dat"]) == 0
        out = capsys.readouterr().out
        import hashlib

        assert hashlib.md5(b"cli payload\n" * 10).hexdigest() in out

    def test_grep_exit_codes(self, mounted, capsys):
        mnt, backend, spec = mounted
        run_args = ["--mount", spec]
        # create a file through the cp tool first
        import tempfile

        with tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False) as fh:
            fh.write("needle here\nnothing there\n")
            tmp_name = fh.name
        run(run_args + ["cp", tmp_name, f"{mnt}/hay.txt"])
        assert run(run_args + ["grep", "needle", f"{mnt}/hay.txt"]) == 0
        assert "needle here" in capsys.readouterr().out
        assert run(run_args + ["grep", "absent", f"{mnt}/hay.txt"]) == 1

    def test_ls_and_wc(self, mounted, tmp_path, capsys):
        mnt, backend, spec = mounted
        src = tmp_path / "s.txt"
        src.write_text("a b\nc\n")
        run(["--mount", spec, "cp", str(src), f"{mnt}/s.txt"])
        run(["--mount", spec, "ls", mnt])
        assert "s.txt" in capsys.readouterr().out
        run(["--mount", spec, "ls", "-l", mnt])
        assert "s.txt" in capsys.readouterr().out
        run(["--mount", spec, "wc", f"{mnt}/s.txt"])
        out = capsys.readouterr().out
        assert out.split()[:3] == ["2", "3", "6"]

    def test_mounts_from_env(self, mounted, tmp_path, capsys, monkeypatch):
        mnt, backend, spec = mounted
        from repro.core import config

        monkeypatch.setenv(config.ENV_MOUNTS, spec)
        src = tmp_path / "e.txt"
        src.write_text("env works\n")
        assert cli.main(["cp", str(src), f"{mnt}/e.txt"]) == 0
        assert cli.main(["grep", "works", f"{mnt}/e.txt"]) == 0
