"""UNIX tools on plain files and, via the shim, on PLFS containers.

The Table II claim in miniature: each tool must produce byte-identical
results on a PLFS container (through interposition) and on a flat file.
"""

from __future__ import annotations

import hashlib
import io
import os

import pytest

from repro.unixtools import cat, cp, grep, ls, md5sum, wc

PAYLOAD = b"alpha beta\ngamma delta\nalpha again\n" * 50


@pytest.fixture
def flat_file(tmp_path):
    p = tmp_path / "flat.dat"
    p.write_bytes(PAYLOAD)
    return str(p)


@pytest.fixture
def plfs_file(interposer, mnt):
    path = f"{mnt}/container.dat"
    with open(path, "wb") as fh:
        fh.write(PAYLOAD)
    return path


class TestOnFlatFiles:
    def test_cat_counts_bytes(self, flat_file):
        out = io.BytesIO()
        assert cat([flat_file], out) == len(PAYLOAD)
        assert out.getvalue() == PAYLOAD

    def test_cat_discarding_sink(self, flat_file):
        assert cat([flat_file]) == len(PAYLOAD)

    def test_cat_multiple(self, flat_file):
        out = io.BytesIO()
        assert cat([flat_file, flat_file], out) == 2 * len(PAYLOAD)

    def test_cp(self, flat_file, tmp_path):
        dst = str(tmp_path / "copy.dat")
        assert cp(flat_file, dst) == len(PAYLOAD)
        assert open(dst, "rb").read() == PAYLOAD

    def test_cp_into_directory(self, flat_file, tmp_path):
        d = tmp_path / "destdir"
        d.mkdir()
        cp(flat_file, str(d))
        assert (d / "flat.dat").read_bytes() == PAYLOAD

    def test_grep(self, flat_file):
        hits = grep("alpha", [flat_file])
        assert len(hits) == 100
        path, lineno, line = hits[0]
        assert lineno == 1 and "alpha" in line

    def test_grep_fixed_string(self, flat_file):
        assert grep("alpha.", [flat_file], fixed_string=True) == []

    def test_grep_invert(self, flat_file):
        hits = grep("alpha", [flat_file], invert=True)
        assert len(hits) == 50  # only the gamma lines

    def test_md5sum(self, flat_file):
        [(digest, path)] = md5sum(flat_file)
        assert digest == hashlib.md5(PAYLOAD).hexdigest()
        assert path == flat_file

    def test_wc(self, flat_file):
        res = wc(flat_file)
        assert res.lines == 150
        assert res.bytes == len(PAYLOAD)
        assert res.words == 300

    def test_ls(self, tmp_path, flat_file):
        names = ls(str(tmp_path))
        assert "flat.dat" in names

    def test_ls_long(self, tmp_path, flat_file):
        entries = ls(str(tmp_path), long_format=True)
        entry = next(e for e in entries if e.name == "flat.dat")
        assert entry.size == len(PAYLOAD)
        assert not entry.is_dir
        assert entry.format_long().endswith("flat.dat")


class TestOnPlfsContainers:
    """Identical behaviour through the interposition layer (Table II)."""

    def test_cat_identical(self, plfs_file):
        out = io.BytesIO()
        cat([plfs_file], out)
        assert out.getvalue() == PAYLOAD

    def test_cp_out_of_plfs(self, plfs_file, tmp_path):
        dst = str(tmp_path / "extracted.dat")
        cp(plfs_file, dst)
        assert open(dst, "rb").read() == PAYLOAD

    def test_cp_into_plfs(self, interposer, mnt, flat_file, backend):
        dst = f"{mnt}/imported.dat"
        cp(flat_file, dst)
        out = io.BytesIO()
        cat([dst], out)
        assert out.getvalue() == PAYLOAD
        from repro.plfs import is_container

        assert is_container(os.path.join(backend, "imported.dat"))

    def test_grep_identical(self, plfs_file, flat_file):
        plfs_hits = grep("gamma", [plfs_file])
        flat_hits = grep("gamma", [flat_file])
        assert [(l, line) for _, l, line in plfs_hits] == [
            (l, line) for _, l, line in flat_hits
        ]

    def test_md5sum_identical(self, plfs_file, flat_file):
        [(d1, _)] = md5sum(plfs_file)
        [(d2, _)] = md5sum(flat_file)
        assert d1 == d2

    def test_wc_identical(self, plfs_file, flat_file):
        assert wc(plfs_file) == wc(flat_file)

    def test_ls_long_reports_logical_size(self, interposer, mnt, plfs_file):
        entries = ls(mnt, long_format=True)
        entry = next(e for e in entries if e.name == "container.dat")
        assert entry.size == len(PAYLOAD)
