"""Tests for the three benchmark workloads and their paper-level shapes.

These assert the *qualitative* results the paper reports — who wins, where
the crossovers fall — at reduced scale so the whole module runs in seconds.
The full-scale sweeps live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.cluster import MINERVA, SIERRA
from repro.mpiio import FUSE, LDPLFS, MPIIO, ROMIO
from repro.sim.stats import GB, MB
from repro.workloads import (
    BT_CLASSES,
    bt_core_counts,
    run_bt,
    run_flashio,
    run_mpiio_test,
)


class TestRunResult:
    def test_bandwidth_units(self):
        r = run_mpiio_test(MINERVA, MPIIO, 1, 1, per_proc=32 * MB, read_back=False)
        assert r.total_bytes == 32 * MB
        assert r.write_bandwidth == pytest.approx(32.0 / r.write_seconds)
        assert r.read_bandwidth == 0.0
        assert r.cores == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            run_mpiio_test(MINERVA, MPIIO, MINERVA.nodes + 1, 1)
        with pytest.raises(ValueError):
            run_mpiio_test(MINERVA, MPIIO, 1, 13)
        with pytest.raises(ValueError):
            run_mpiio_test(MINERVA, MPIIO, 1, 1, per_proc=1 * MB, block=8 * MB)


class TestMpiioTestShapes:
    """Fig. 3's orderings at a reduced per-proc volume."""

    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for method in (MPIIO, FUSE, ROMIO, LDPLFS):
            out[method.name] = run_mpiio_test(
                MINERVA, method, 16, 1, per_proc=64 * MB
            )
        return out

    def test_plfs_beats_mpiio_on_writes(self, results):
        assert results["LDPLFS"].write_bandwidth > 1.5 * results["MPI-IO"].write_bandwidth
        assert results["ROMIO"].write_bandwidth > 1.5 * results["MPI-IO"].write_bandwidth

    def test_ldplfs_matches_romio(self, results):
        ratio = results["LDPLFS"].write_bandwidth / results["ROMIO"].write_bandwidth
        assert ratio == pytest.approx(1.0, abs=0.05)

    def test_fuse_below_mpiio_on_writes(self, results):
        """The paper: FUSE ~20% below plain MPI-IO for parallel writes."""
        assert results["FUSE"].write_bandwidth < results["MPI-IO"].write_bandwidth

    def test_fuse_well_below_other_plfs_routes(self, results):
        assert results["FUSE"].write_bandwidth < 0.7 * results["LDPLFS"].write_bandwidth

    def test_plfs_reads_beat_mpiio(self, results):
        assert results["LDPLFS"].read_bandwidth > 1.5 * results["MPI-IO"].read_bandwidth

    def test_write_bandwidth_scales_with_nodes(self):
        small = run_mpiio_test(MINERVA, LDPLFS, 1, 1, per_proc=64 * MB, read_back=False)
        large = run_mpiio_test(MINERVA, LDPLFS, 16, 1, per_proc=64 * MB, read_back=False)
        assert large.write_bandwidth > 2 * small.write_bandwidth


class TestBTShapes:
    """Fig. 4's cache-driven behaviour, reduced to quick configurations."""

    def test_core_count_sweeps(self):
        assert bt_core_counts("C") == [4, 16, 64, 256, 1024]
        assert bt_core_counts("D") == [64, 256, 1024, 4096]

    def test_class_totals(self):
        assert BT_CLASSES["C"].total_bytes == pytest.approx(6.4 * GB)
        assert BT_CLASSES["D"].total_bytes == pytest.approx(136 * GB)

    def test_non_square_cores_rejected(self):
        with pytest.raises(ValueError):
            run_bt(SIERRA, MPIIO, 8, "C")

    def test_out_of_range_cores_rejected(self):
        with pytest.raises(ValueError):
            run_bt(SIERRA, MPIIO, 4, "D")

    def test_plfs_wins_big_at_scale_class_c(self):
        """Small cached writes: PLFS ≫ MPI-IO (paper: up to 10-20x)."""
        plfs = run_bt(SIERRA, LDPLFS, 1024, "C")
        mpiio = run_bt(SIERRA, MPIIO, 1024, "C")
        assert plfs.write_bandwidth > 3 * mpiio.write_bandwidth

    def test_mpiio_flat_class_c(self):
        low = run_bt(SIERRA, MPIIO, 64, "C")
        high = run_bt(SIERRA, MPIIO, 1024, "C")
        assert high.write_bandwidth < 2 * low.write_bandwidth

    def test_class_d_cache_recovery_at_4096(self):
        """Paper: ~7 MB writes at 1,024 cores miss the cache; <2 MB writes
        at 4,096 cores bring the caching effects back."""
        at_1024 = run_bt(SIERRA, LDPLFS, 1024, "D")
        at_4096 = run_bt(SIERRA, LDPLFS, 4096, "D")
        assert at_1024.details["per_write"] > SIERRA.perf.cache_write_through
        assert at_4096.details["per_write"] < SIERRA.perf.cache_write_through
        assert at_4096.write_bandwidth > at_1024.write_bandwidth


class TestFlashIOShapes:
    """Fig. 5: the PLFS rise and MDS-driven collapse."""

    @pytest.fixture(scope="class")
    def curve(self):
        nodes = [2, 8, 32, 256]
        return {
            n: run_flashio(SIERRA, LDPLFS, n) for n in nodes
        }, {n: run_flashio(SIERRA, MPIIO, n) for n in nodes}

    def test_plfs_rises_then_collapses(self, curve):
        plfs, _ = curve
        assert plfs[8].write_bandwidth > plfs[2].write_bandwidth
        assert plfs[256].write_bandwidth < 0.5 * plfs[8].write_bandwidth

    def test_plfs_ends_below_mpiio(self, curve):
        plfs, mpiio = curve
        assert plfs[256].write_bandwidth < mpiio[256].write_bandwidth

    def test_plfs_peak_beats_mpiio(self, curve):
        plfs, mpiio = curve
        assert plfs[8].write_bandwidth > 2 * mpiio[8].write_bandwidth

    def test_mpiio_stable_at_scale(self, curve):
        _, mpiio = curve
        assert mpiio[256].write_bandwidth == pytest.approx(
            mpiio[32].write_bandwidth, rel=0.25
        )

    def test_mds_load_grows_with_ranks(self, curve):
        plfs, mpiio = curve
        assert plfs[256].mds_ops > plfs[8].mds_ops * 20
        assert plfs[256].mds_ops > mpiio[256].mds_ops * 100
