"""Integration tests for the plfsd daemon: wire ops, shim routing,
fallback, multi-client coherence, the idle-handle reaper.

Unix socket paths are capped around 107 bytes, so sockets live in a short
``/tmp`` directory rather than under pytest's (deep) tmp_path.
"""

from __future__ import annotations

import errno
import os
import shutil
import subprocess
import sys
import tempfile
import time

import pytest

from repro import plfs
from repro.core.interpose import Interposer
from repro.plfs.errors import ContainerNotFoundError
from repro.plfsd import stress
from repro.plfsd.client import PlfsdClient, PlfsdUnavailable, connect


@pytest.fixture
def arena():
    """A short-lived, short-pathed directory holding socket + backend."""
    d = tempfile.mkdtemp(prefix="plfsd-", dir="/tmp")
    try:
        yield d
    finally:
        shutil.rmtree(d, ignore_errors=True)


@pytest.fixture
def sock(arena):
    return os.path.join(arena, "plfsd.sock")


@pytest.fixture
def dbackend(arena):
    path = os.path.join(arena, "backend")
    os.makedirs(path)
    return path


@pytest.fixture
def daemon(sock):
    """A running daemon subprocess (fast reaper for the reaper tests)."""
    proc = stress.start_daemon(
        sock, extra_args=["--idle-timeout", "0.2", "--reap-interval", "0.05"]
    )
    try:
        yield proc
    finally:
        stress.stop_daemon(proc, sock)


class TestWireOperations:
    def test_write_read_getattr_roundtrip(self, daemon, sock, dbackend):
        path = os.path.join(dbackend, "file")
        with connect(sock, name="t1") as client:
            fd = client.open(path, os.O_CREAT | os.O_RDWR, 0o600)
            assert fd.write(b"hello daemon", None, 0) == 12
            assert fd.read(6, 6) == b"daemon"
            fd.sync()
            st = fd.getattr()
            assert st.st_size == 12
            assert fd.close() == 0
        # Bytes are real: a direct in-process reader sees them.
        rfd = plfs.plfs_open(path, os.O_RDONLY)
        assert plfs.plfs_read(rfd, 12, 0) == b"hello daemon"
        plfs.plfs_close(rfd)

    def test_create_unlink(self, daemon, sock, dbackend):
        path = os.path.join(dbackend, "made")
        with connect(sock) as client:
            client.create(path, 0o644)
            assert plfs.is_container(path)
            client.unlink(path)
            assert not plfs.is_container(path)

    def test_trunc_through_daemon(self, daemon, sock, dbackend):
        path = os.path.join(dbackend, "t")
        with connect(sock) as client:
            fd = client.open(path, os.O_CREAT | os.O_RDWR)
            fd.write(b"0123456789", None, 0)
            fd.trunc(4)
            assert fd.getattr().st_size == 4
            assert fd.read(10, 0) == b"0123"
            fd.close()

    def test_error_envelope_preserves_class_and_errno(self, daemon, sock, dbackend):
        with connect(sock) as client:
            with pytest.raises(ContainerNotFoundError) as exc_info:
                client.open(os.path.join(dbackend, "missing"), os.O_RDONLY)
            assert exc_info.value.errno == errno.ENOENT
            # The connection survives the error: next request works.
            assert client.ping() > 0

    def test_foreign_handle_rejected(self, daemon, sock, dbackend):
        path = os.path.join(dbackend, "mine")
        with connect(sock, name="owner") as owner:
            fd = owner.open(path, os.O_CREAT | os.O_WRONLY)
            with connect(sock, name="thief") as thief:
                with pytest.raises(OSError) as exc_info:
                    thief.write(fd.handle, b"stolen", 0)
                assert exc_info.value.errno == errno.EBADF
            fd.close()

    def test_stats_accounting(self, daemon, sock, dbackend):
        path = os.path.join(dbackend, "acct")
        with connect(sock, name="counter") as client:
            fd = client.open(path, os.O_CREAT | os.O_RDWR)
            fd.write(b"x" * 100, None, 0)
            fd.write(b"y" * 50, None, 100)
            fd.sync()
            fd.read(150, 0)
            fd.close()
            stats = client.stats()
        agg = stats["aggregate"]
        assert agg["opens"] >= 1
        assert agg["creates"] >= 1
        assert agg["appends"] >= 2
        assert agg["bytes_written"] >= 150
        assert agg["bytes_read"] >= 150
        assert agg["closes"] >= 1
        assert "queue_wait_seconds" in agg
        named = [c for c in stats["per_client"] if c["name"] == "counter"]
        assert named and named[0]["bytes_written"] >= 150

    def test_disconnect_reclaims_handles(self, daemon, sock, dbackend):
        path = os.path.join(dbackend, "leak")
        dirty = connect(sock, name="dirty")
        fd = dirty.open(path, os.O_CREAT | os.O_WRONLY)
        fd.write(b"left behind", None, 0)
        dirty.close()  # vanishes without closing its handle
        deadline = time.monotonic() + 5
        with connect(sock, name="probe") as probe:
            while True:
                if probe.stats()["open_handles"] == 0:
                    break
                assert time.monotonic() < deadline, "handle never reclaimed"
                time.sleep(0.02)
        # The abandoned writer was closed server-side: data is durable.
        rfd = plfs.plfs_open(path, os.O_RDONLY)
        assert plfs.plfs_read(rfd, 11, 0) == b"left behind"
        plfs.plfs_close(rfd)

    def test_idle_reaper_closes_read_fds(self, daemon, sock, dbackend):
        path = os.path.join(dbackend, "idle")
        wfd = plfs.plfs_open(path, os.O_CREAT | os.O_WRONLY)
        plfs.plfs_write(wfd, b"z" * 4096, 4096, 0)
        plfs.plfs_close(wfd)
        with connect(sock, name="sleepy") as client:
            fd = client.open(path, os.O_RDONLY)
            assert fd.read(4096, 0) == b"z" * 4096
            # Daemon runs with idle-timeout 0.2s / sweep 0.05s: wait for
            # the reaper to shed this handle's cached dropping fds.
            deadline = time.monotonic() + 5
            while client.stats()["totals"]["fds_reaped"] == 0:
                assert time.monotonic() < deadline, "reaper never fired"
                time.sleep(0.05)
            # The handle still works afterwards (fds reopen on demand).
            assert fd.read(10, 0) == b"z" * 10
            fd.close()


class TestShimRouting:
    def test_unmodified_script_routes_through_daemon(self, daemon, sock, dbackend, arena):
        mnt = os.path.join(arena, "mnt")
        ip = Interposer([(mnt, dbackend + "?daemon=" + sock)])
        ip.install()
        try:
            with open(os.path.join(mnt, "app.dat"), "wb") as fh:
                fh.write(b"A" * 512)
            with open(os.path.join(mnt, "app.dat"), "rb") as fh:
                assert fh.read() == b"A" * 512
            assert os.stat(os.path.join(mnt, "app.dat")).st_size == 512
            assert ip.shim.stats["daemon_opens"] >= 2
            assert ip.shim.stats["daemon_fallbacks"] == 0
        finally:
            ip.uninstall()

    def test_write_only_open_delegates_data_plane(self, daemon, sock, dbackend, arena):
        mnt = os.path.join(arena, "mnt")
        ip = Interposer([(mnt, dbackend + "?daemon=" + sock)])
        ip.install()
        try:
            with open(os.path.join(mnt, "dl.dat"), "wb") as fh:
                fh.write(b"B" * 1024)
            with open(os.path.join(mnt, "dl.dat"), "rb") as fh:
                assert fh.read() == b"B" * 1024
            # The write-only open took the delegated plane; the read open
            # stayed fully remote (it wants the shared index cache).
            assert ip.shim.stats["daemon_delegated_opens"] == 1
            assert ip.shim.stats["daemon_opens"] == 2
        finally:
            ip.uninstall()

    def test_fallback_when_no_daemon(self, sock, dbackend, arena):
        mnt = os.path.join(arena, "mnt")
        ip = Interposer([(mnt, dbackend + "?daemon=" + sock)])  # nothing listens
        ip.install()
        try:
            with open(os.path.join(mnt, "fb.dat"), "wb") as fh:
                fh.write(b"still works")
            with open(os.path.join(mnt, "fb.dat"), "rb") as fh:
                assert fh.read() == b"still works"
            assert ip.shim.stats["daemon_opens"] == 0
            assert ip.shim.stats["daemon_fallbacks"] >= 2
        finally:
            ip.uninstall()

    def test_daemon_death_mid_session_falls_back(self, sock, dbackend, arena):
        mnt = os.path.join(arena, "mnt")
        proc = stress.start_daemon(sock)
        ip = Interposer([(mnt, dbackend + "?daemon=" + sock)])
        ip.install()
        try:
            with open(os.path.join(mnt, "one.dat"), "wb") as fh:
                fh.write(b"via daemon")
            assert ip.shim.stats["daemon_opens"] == 1
            stress.stop_daemon(proc, sock)
            with open(os.path.join(mnt, "two.dat"), "wb") as fh:
                fh.write(b"via fallback")
            assert ip.shim.stats["daemon_fallbacks"] >= 1
            with open(os.path.join(mnt, "one.dat"), "rb") as fh:
                assert fh.read() == b"via daemon"
            with open(os.path.join(mnt, "two.dat"), "rb") as fh:
                assert fh.read() == b"via fallback"
        finally:
            ip.uninstall()
            if proc.poll() is None:  # pragma: no cover - safety net
                proc.terminate()
                proc.wait(timeout=5)


DAEMON_WRITER = """
import os, sys
from repro.plfsd.client import connect

sock, path, rank, block, steps = (
    sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4]), int(sys.argv[5])
)
with connect(sock, name=f"writer-{rank}") as client:
    fd = client.open(path, os.O_CREAT | os.O_WRONLY)
    payload = bytes([65 + rank]) * block
    for step in range(steps):
        offset = (step * 4 + rank) * block
        assert fd.write(payload, None, offset) == block
    fd.close()
print("ok")
"""


class TestCoherence:
    def test_four_daemon_writers_one_direct_reader(self, daemon, sock, dbackend):
        """Satellite: ≥4 concurrent writer clients through the daemon plus
        one *direct-path* reader in this process.  The PR-5 generation-file
        protocol is the only coherence mechanism between them: every daemon
        flush bumps the container's generation file, and the reader's
        epoch-validated index revalidates with one stat."""
        path = os.path.join(dbackend, "shared")
        block, steps, ranks = 256, 4, 4

        # Open the direct-path reader BEFORE the storm: its cached index
        # must revalidate across the daemon's writes, not just load late.
        seed = plfs.plfs_open(path, os.O_CREAT | os.O_WRONLY)
        plfs.plfs_close(seed)
        reader = plfs.plfs_open(path, os.O_RDONLY)
        assert plfs.plfs_getattr(reader).st_size == 0
        assert plfs.plfs_read(reader, 16, 0) == b""  # instantiate the index now

        procs = [
            subprocess.Popen(
                [
                    sys.executable, "-c", DAEMON_WRITER,
                    sock, path, str(rank), str(block), str(steps),
                ],
                stdout=subprocess.PIPE,
                text=True,
            )
            for rank in range(ranks)
        ]
        for p in procs:
            out, _ = p.communicate(timeout=120)
            assert p.returncode == 0 and out.strip() == "ok"

        # Same process-unmodified handle, post-storm: size and bytes must
        # reflect what the daemon's writers flushed in another process.
        expected = b"".join(
            bytes([65 + rank]) * block
            for _ in range(steps)
            for rank in range(ranks)
        )
        assert plfs.plfs_getattr(reader).st_size == len(expected)
        assert plfs.plfs_read(reader, len(expected), 0) == expected
        assert reader._reader is not None
        assert reader._reader.stats["cross_process_refreshes"] >= 1
        plfs.plfs_close(reader)

        # Each daemon handle kept its own dropping stream (handle-id-as-pid
        # preserves PLFS's per-writer partitioning through the daemon).
        assert len(plfs.Container(path).droppings()) >= ranks


class TestClientRobustness:
    def test_connect_refused_raises_unavailable(self, arena):
        with pytest.raises(PlfsdUnavailable):
            connect(os.path.join(arena, "nobody.sock"))

    def test_requests_after_close_raise_unavailable(self, daemon, sock):
        client = connect(sock)
        client.close()
        with pytest.raises(PlfsdUnavailable):
            client.ping()

    def test_remote_fd_double_close_is_idempotent(self, daemon, sock, dbackend):
        with connect(sock) as client:
            fd = client.open(os.path.join(dbackend, "dc"), os.O_CREAT | os.O_WRONLY)
            fd.write(b"data", None, 0)
            assert fd.close() == 0
            assert fd.close() == 0  # no second wire close, no error
            assert client.ping() > 0

    def test_large_write_split_over_frames(self, daemon, sock, dbackend, monkeypatch):
        from repro.plfsd import client as client_mod

        monkeypatch.setattr(client_mod, "MAX_WIRE_WRITE", 1024)
        payload = bytes(i % 251 for i in range(5000))
        path = os.path.join(dbackend, "big")
        with connect(sock) as client:
            fd = client.open(path, os.O_CREAT | os.O_RDWR)
            assert fd.write(payload, None, 0) == len(payload)
            assert fd.read(len(payload), 0) == payload
            fd.close()


class TestFaultPropagation:
    def test_env_spec_arms_injector_inside_daemon(self, sock, dbackend, arena):
        """REPRO_FAULTS in the daemon's environment must torture daemon-side
        writes exactly as it would any direct-path process: the first data
        append hits an injected ENOSPC, which rides the error envelope back
        to the client — proving the injector armed inside the daemon."""
        env = dict(
            os.environ,
            REPRO_FAULTS="data_write:enospc:op=1",
            REPRO_FAULT_SEED="3",
        )
        proc = stress.start_daemon(sock, env=env)
        try:
            with connect(sock) as client:
                fd = client.open(
                    os.path.join(dbackend, "tortured"), os.O_CREAT | os.O_WRONLY
                )
                with pytest.raises(OSError) as exc_info:
                    fd.write(b"boom", None, 0)
                assert exc_info.value.errno == errno.ENOSPC
                # The spec is spent after one firing: the retry goes through.
                assert fd.write(b"fine", None, 0) == 4
                fd.close()
        finally:
            stress.stop_daemon(proc, sock)


class TestShmDataPlane:
    def test_large_write_travels_via_shm(self, daemon, sock, dbackend):
        from repro.plfsd import client as client_mod

        payload = bytes(i % 253 for i in range(client_mod.SHM_THRESHOLD * 2))
        path = os.path.join(dbackend, "shmfile")
        with connect(sock, name="shm-user") as client:
            fd = client.open(path, os.O_CREAT | os.O_WRONLY)
            assert fd.write(payload, None, 0) == len(payload)
            totals = client.stats()["totals"]
            assert totals["shm_attaches"] >= 1
            assert totals["shm_appends"] >= 1
            fd.close()
        # Bytes are real: a direct in-process reader sees them.
        rfd = plfs.plfs_open(path, os.O_RDONLY)
        assert plfs.plfs_read(rfd, len(payload), 0) == payload
        plfs.plfs_close(rfd)

    def test_no_shm_daemon_degrades_to_wire(self, sock, dbackend):
        from repro.plfsd import client as client_mod

        proc = stress.start_daemon(sock, extra_args=["--no-shm"])
        payload = bytes(i % 241 for i in range(client_mod.SHM_THRESHOLD * 2))
        path = os.path.join(dbackend, "wired")
        try:
            with connect(sock) as client:
                fd = client.open(path, os.O_CREAT | os.O_WRONLY)
                assert fd.write(payload, None, 0) == len(payload)
                # The refused attach pins this connection to the wire path.
                assert client._shm is None
                assert client._shm_failed
                totals = client.stats()["totals"]
                assert totals["shm_appends"] == 0
                fd.close()
        finally:
            stress.stop_daemon(proc, sock)
        rfd = plfs.plfs_open(path, os.O_RDONLY)
        assert plfs.plfs_read(rfd, len(payload), 0) == payload
        plfs.plfs_close(rfd)

    def test_segment_released_on_close(self, daemon, sock, dbackend):
        client = connect(sock)
        fd = client.open(os.path.join(dbackend, "seg"), os.O_CREAT | os.O_WRONLY)
        fd.write(b"\xaa" * (1 << 20), None, 0)
        assert client._shm is not None
        seg_name = client._shm.name
        fd.close()
        client.close()
        assert client._shm is None
        # The client owned the segment; closing unlinked it from /dev/shm.
        assert not os.path.exists(os.path.join("/dev/shm", seg_name))


class TestDelegation:
    def test_daemon_metadata_local_data(self, daemon, sock, dbackend):
        path = os.path.join(dbackend, "delegated")
        with connect(sock, name="delegator") as client:
            fd = client.open_delegated(path, os.O_CREAT | os.O_WRONLY)
            # The data plane is in-process: an ordinary local handle.
            assert not getattr(fd, "is_remote", False)
            assert plfs.plfs_write(fd, b"delegated bytes", 15, 0) == 15
            plfs.plfs_close(fd)
            agg = client.stats()["aggregate"]
            assert agg["creates"] >= 1  # the metadata hop went to the MDS
            assert agg["appends"] == 0  # no payload crossed the daemon
            # Coherence: a daemon-held reader sees the foreign writer's
            # bytes (generation-file revalidation, not the socket).
            rfd = client.open(path, os.O_RDONLY)
            assert rfd.read(15, 0) == b"delegated bytes"
            rfd.close()

    def test_delegation_requires_plain_wronly(self, daemon, sock, dbackend):
        path = os.path.join(dbackend, "nope")
        with connect(sock) as client:
            with pytest.raises(ValueError):
                client.open_delegated(path, os.O_CREAT | os.O_RDWR)
            with pytest.raises(ValueError):
                client.open_delegated(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
