"""Tests for the plfsd daemon subsystem."""
