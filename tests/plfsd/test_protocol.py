"""Wire-protocol unit tests: framing, round-trips, the error envelope."""

from __future__ import annotations

import errno
import struct

import pytest

from repro.plfs import errors as plfs_errors
from repro.plfsd import protocol as proto


class TestRequestRoundTrip:
    @pytest.mark.parametrize(
        "opcode,fields",
        [
            (proto.OP_HELLO, {"name": "client-7"}),
            (proto.OP_OPEN, {"path": "/b/файл", "flags": 0o102, "mode": 0o644}),
            (proto.OP_CLOSE, {"handle": 42}),
            (
                proto.OP_WRITE,
                {"handle": 1, "offset": 2**40, "data": b"\x00\xffpayload"},
            ),
            (proto.OP_READ, {"handle": 1, "offset": 0, "count": 2**33}),
            (proto.OP_SYNC, {"handle": 9}),
            (proto.OP_GETATTR, {"handle": 3}),
            (proto.OP_TRUNC, {"handle": 3, "offset": 128}),
            (proto.OP_CREATE, {"path": "/b/x", "mode": 0o600}),
            (proto.OP_UNLINK, {"path": "/b/x"}),
            (proto.OP_STATS, {}),
            (proto.OP_PING, {}),
            (proto.OP_SHUTDOWN, {}),
            (proto.OP_ATTACH_SHM, {"name": "psm_cafe01", "size": 1 << 24}),
            (
                proto.OP_WRITE_SHM,
                {"handle": 5, "offset": 2**40, "shm_off": 3 << 20, "count": 1 << 20},
            ),
        ],
    )
    def test_every_opcode_round_trips(self, opcode, fields):
        frame = proto.encode_request(opcode, 77, **fields)
        (length,) = proto.LEN_PREFIX.unpack(frame[:4])
        assert length == len(frame) - 4
        request = proto.decode_request(frame[4:])
        assert request.opcode == opcode
        assert request.request_id == 77
        assert request.fields == fields

    def test_empty_write_payload(self):
        frame = proto.encode_request(
            proto.OP_WRITE, 1, handle=1, offset=0, data=b""
        )
        assert proto.decode_request(frame[4:]).fields["data"] == b""

    def test_unknown_opcode_rejected(self):
        with pytest.raises(proto.ProtocolError):
            proto.encode_request(200, 1)
        bogus = struct.pack("!BI", 200, 1)
        with pytest.raises(proto.ProtocolError):
            proto.decode_request(bogus)


class TestReplyRoundTrip:
    def test_ok_reply(self):
        frame = proto.encode_reply(proto.OP_OPEN, 5, handle=123)
        reply = proto.decode_reply(frame[4:], proto.OP_OPEN)
        assert reply.ok
        assert reply.request_id == 5
        assert reply.fields == {"handle": 123}

    def test_read_reply_carries_raw_bytes(self):
        payload = bytes(range(256))
        frame = proto.encode_reply(proto.OP_READ, 8, data=payload)
        assert proto.decode_reply(frame[4:], proto.OP_READ).fields["data"] == payload

    def test_getattr_reply(self):
        frame = proto.encode_reply(
            proto.OP_GETATTR, 2, size=2**42, mode=0o100644, mtime_ns=123456789
        )
        fields = proto.decode_reply(frame[4:], proto.OP_GETATTR).fields
        assert fields == {"size": 2**42, "mode": 0o100644, "mtime_ns": 123456789}

    def test_write_shm_reply_decodes_with_write_spec(self):
        # The pipelined client drains mixed OP_WRITE / OP_WRITE_SHM replies
        # with one decode call; the two reply specs must stay identical.
        frame = proto.encode_reply(proto.OP_WRITE_SHM, 9, written=1 << 20)
        assert proto.decode_reply(frame[4:], proto.OP_WRITE).fields == {
            "written": 1 << 20
        }

    def test_zero_copy_request_decode_leaves_memoryview(self):
        frame = proto.encode_request(
            proto.OP_WRITE, 3, handle=1, offset=0, data=b"abc123"
        )
        fields = proto.decode_request(frame[4:], copy_bytes=False).fields
        assert isinstance(fields["data"], memoryview)
        assert bytes(fields["data"]) == b"abc123"


class TestErrorEnvelope:
    def test_known_plfs_kind_reraises_same_class(self):
        frame = proto.encode_error(
            9, errno.ENOENT, "ContainerNotFoundError", "no such file: /b/x"
        )
        reply = proto.decode_reply(frame[4:], proto.OP_OPEN)
        assert not reply.ok
        with pytest.raises(plfs_errors.ContainerNotFoundError) as exc_info:
            proto.raise_remote(reply)
        assert exc_info.value.errno == errno.ENOENT

    def test_unknown_kind_becomes_remote_error(self):
        frame = proto.encode_error(9, errno.EBADF, "SomethingWeird", "boom")
        reply = proto.decode_reply(frame[4:], proto.OP_CLOSE)
        with pytest.raises(proto.RemoteError) as exc_info:
            proto.raise_remote(reply)
        assert exc_info.value.errno == errno.EBADF
        assert exc_info.value.kind == "SomethingWeird"
        assert isinstance(exc_info.value, OSError)

    def test_non_plfs_class_name_never_instantiated(self):
        # A hostile peer naming an arbitrary attribute of the errors module
        # must not get it called; only PlfsError subclasses re-raise.
        frame = proto.encode_error(1, errno.EIO, "errno", "nope")
        reply = proto.decode_reply(frame[4:], proto.OP_PING)
        with pytest.raises(proto.RemoteError):
            proto.raise_remote(reply)


class TestMalformedFrames:
    def test_truncated_fixed_field(self):
        frame = proto.encode_request(proto.OP_CLOSE, 3, handle=7)
        with pytest.raises(proto.ProtocolError):
            proto.decode_request(frame[4:-2])

    def test_string_length_past_frame_end(self):
        body = struct.pack("!BI", proto.OP_UNLINK, 1) + struct.pack("!I", 999) + b"ab"
        with pytest.raises(proto.ProtocolError):
            proto.decode_request(body)

    def test_trailing_garbage_rejected(self):
        frame = proto.encode_request(proto.OP_PING, 1)
        with pytest.raises(proto.ProtocolError):
            proto.decode_request(frame[4:] + b"junk")

    def test_short_header(self):
        with pytest.raises(proto.ProtocolError):
            proto.decode_request(b"\x01")
        with pytest.raises(proto.ProtocolError):
            proto.decode_reply(b"\x00", proto.OP_PING)

    def test_oversized_request_refused_at_encode(self):
        with pytest.raises(proto.ProtocolError):
            proto.encode_request(
                proto.OP_WRITE,
                1,
                handle=1,
                offset=0,
                data=b"\x00" * (proto.MAX_FRAME + 1),
            )


class TestSyncFraming:
    def test_recv_exactly_over_socketpair(self):
        import socket

        a, b = socket.socketpair()
        try:
            frame = proto.encode_request(proto.OP_HELLO, 4, name="x" * 3000)
            a.sendall(frame)
            payload = proto.read_frame_sync(b)
            assert proto.decode_request(payload).fields["name"] == "x" * 3000
            a.close()
            assert proto.read_frame_sync(b) is None  # clean EOF
        finally:
            b.close()

    def test_mid_frame_eof_is_protocol_error(self):
        import socket

        a, b = socket.socketpair()
        try:
            frame = proto.encode_request(proto.OP_PING, 1)
            a.sendall(frame[:3])  # torn inside the length prefix
            a.close()
            with pytest.raises(proto.ProtocolError):
                proto.read_frame_sync(b)
        finally:
            b.close()

    def test_giant_length_prefix_rejected(self):
        import socket

        a, b = socket.socketpair()
        try:
            a.sendall(proto.LEN_PREFIX.pack(proto.MAX_FRAME + 1))
            with pytest.raises(proto.ProtocolError):
                proto.read_frame_sync(b)
        finally:
            a.close()
            b.close()
