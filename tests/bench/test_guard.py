"""The ratio-based regression guard: exact on counters, tolerant-ratio on
dimensionless derived metrics, never comparing absolute timings."""

from __future__ import annotations

import pytest

from repro.bench import guard, record


def _rec(**over):
    base = record.make_record(
        scenario="metadata_storm",
        profile="short",
        config="direct",
        seed=1337,
        params={},
        counters={"ops_total": 48, "index_cache_hits": 7},
        timings={"wall_seconds": 0.5},
        derived={
            "normalized": {"wall_over_calibration": 4.0},
            "ratios": {"create_p50_over_write_p50": 2.0},
        },
        op_stream={"digest": "abc"},
    )
    base.update(over)
    return base


def test_identical_records_pass():
    res = guard.compare_records(_rec(), _rec())
    assert res.ok
    assert res.checked_counters == 2
    assert res.checked_metrics == 2


def test_identity_mismatch_fails_fast():
    res = guard.compare_records(_rec(seed=7), _rec())
    assert not res.ok
    assert "seed" in res.violations[0]


def test_counter_drift_fails_exactly():
    cur = _rec()
    cur["counters"]["index_cache_hits"] = 8
    res = guard.compare_records(cur, _rec())
    assert [v for v in res.violations if "index_cache_hits" in v]


def test_digest_drift_fails():
    cur = _rec(op_stream={"digest": "xyz"})
    res = guard.compare_records(cur, _rec())
    assert [v for v in res.violations if "digest" in v]


def test_timing_regression_beyond_tolerance_fails():
    cur = _rec()
    cur["derived"]["normalized"]["wall_over_calibration"] = 8.0  # 2x
    res = guard.compare_records(cur, _rec())
    assert not res.ok
    # ...but a 2x *improvement* is fine
    cur["derived"]["normalized"]["wall_over_calibration"] = 2.0
    assert guard.compare_records(cur, _rec()).ok


def test_timing_within_tolerance_passes():
    cur = _rec()
    cur["derived"]["normalized"]["wall_over_calibration"] = 6.0  # 1.5x < 1.75
    assert guard.compare_records(cur, _rec()).ok


def test_baseline_embedded_tolerance_wins_over_default():
    base = _rec(guard={"max_timing_regression": 3.0})
    cur = _rec()
    cur["derived"]["normalized"]["wall_over_calibration"] = 10.0  # 2.5x
    assert guard.compare_records(cur, base).ok
    # explicit argument outranks the embedded policy
    assert not guard.compare_records(cur, base, max_timing_regression=2.0).ok


def test_missing_derived_metric_fails():
    cur = _rec()
    del cur["derived"]["ratios"]["create_p50_over_write_p50"]
    res = guard.compare_records(cur, _rec())
    assert [v for v in res.violations if "missing" in v]


def test_guard_directory_flags_missing_and_empty(tmp_path):
    base_dir = tmp_path / "base"
    cur_dir = tmp_path / "cur"
    base_dir.mkdir()
    cur_dir.mkdir()
    # empty baseline directory is itself a violation
    res = guard.guard_directory(str(cur_dir), str(base_dir))
    assert len(res) == 1 and not res[0].ok

    record.save(_rec(), str(base_dir))
    res = guard.guard_directory(str(cur_dir), str(base_dir))
    assert not res[0].ok and "missing" in res[0].violations[0]

    record.save(_rec(), str(cur_dir))
    res = guard.guard_directory(str(cur_dir), str(base_dir))
    assert all(r.ok for r in res)


def test_guard_directory_scenario_filter(tmp_path):
    base_dir = tmp_path / "base"
    base_dir.mkdir()
    record.save(_rec(), str(base_dir))
    res = guard.guard_directory(
        str(tmp_path / "cur"), str(base_dir), scenarios=["other"]
    )
    assert res == []


def test_render_results_mentions_violations():
    cur = _rec()
    cur["counters"]["ops_total"] = 1
    text = guard.render_results([guard.compare_records(cur, _rec())])
    assert "FAIL" in text and "ops_total" in text


def test_sampling_helpers():
    def fn():
        pass

    assert len(guard.sample_times(fn, repeats=3)) == 3
    assert guard.best_of(fn, repeats=2) >= 0.0
    assert guard.median_time(fn, repeats=3) >= 0.0

    guard.assert_faster(1.0, 2.0, "x")
    with pytest.raises(AssertionError, match="did not beat"):
        guard.assert_faster(2.0, 1.0, "x")
    with pytest.raises(AssertionError, match="margin"):
        guard.assert_faster(1.0, 1.5, "x", margin=2.0)
    guard.assert_inflection(1.0, 3.0, 2.0, "sweep")
    with pytest.raises(AssertionError, match="inflection"):
        guard.assert_inflection(1.0, 1.5, 2.0, "sweep")
    assert guard.best_ratio([0.2, 0.9, 0.4]) == 0.9
    with pytest.raises(ValueError):
        guard.best_ratio([])
