"""BenchRecord schema validation and the canonical trajectory store."""

from __future__ import annotations

import json

import pytest

from repro.bench import record


def _minimal(**over):
    rec = record.make_record(
        scenario="metadata_storm",
        profile="short",
        config="direct",
        seed=1337,
        params={"clients": 4},
        counters={"ops_total": 48},
        timings={"wall_seconds": 0.1},
        derived={"normalized": {"wall_over_calibration": 2.0}, "ratios": {}},
    )
    rec.update(over)
    return rec


def test_valid_record_passes():
    assert record.validate(_minimal()) == []


def test_environment_fingerprint_has_no_wallclock():
    env = record.environment_fingerprint()
    assert set(env) == {"python", "implementation", "platform"}


def test_missing_key_fails():
    rec = _minimal()
    del rec["counters"]
    assert any("counters" in p for p in record.validate(rec))


def test_wrong_kind_and_version_fail():
    assert record.validate(_minimal(kind="nope"))
    assert record.validate(_minimal(schema_version=99))


def test_non_numeric_counter_fails():
    rec = _minimal()
    rec["counters"]["bad"] = "twelve"
    assert any("bad" in p for p in record.validate(rec))
    rec["counters"]["bad"] = True  # bools are not counters
    assert any("bad" in p for p in record.validate(rec))


def test_non_numeric_derived_fails():
    rec = _minimal()
    rec["derived"]["normalized"]["bad"] = None
    assert any("normalized" in p for p in record.validate(rec))


def test_assert_valid_raises_with_all_problems():
    rec = _minimal(kind="nope", schema_version=99)
    with pytest.raises(ValueError, match="nope"):
        record.assert_valid(rec)


def test_record_filename_config_suffix():
    assert record.record_filename("metadata_storm") == "BENCH_metadata_storm.json"
    assert (
        record.record_filename("hot_cold_mix", "daemon")
        == "BENCH_hot_cold_mix__daemon.json"
    )


def test_default_out_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path / "elsewhere"))
    assert record.default_out_dir() == str(tmp_path / "elsewhere")
    monkeypatch.delenv("REPRO_BENCH_OUT")
    assert record.default_out_dir("/x") == "/x/benchmarks/out"


def test_save_load_roundtrip(tmp_path):
    path = record.save(_minimal(), str(tmp_path))
    assert path.endswith("BENCH_metadata_storm.json")
    loaded = record.load(path)
    assert loaded == _minimal()
    assert record.load_all(str(tmp_path)) == {"BENCH_metadata_storm.json": loaded}


def test_save_rejects_invalid(tmp_path):
    with pytest.raises(ValueError):
        record.save(_minimal(kind="nope"), str(tmp_path))


def test_save_is_canonical_json(tmp_path):
    path = record.save(_minimal(), str(tmp_path))
    text = open(path).read()
    # keys sorted, trailing newline: byte-stable across dict orderings
    assert text.endswith("\n")
    assert json.loads(text) == _minimal()
    shuffled = _minimal()
    shuffled["counters"] = dict(reversed(list(shuffled["counters"].items())))
    assert open(record.save(shuffled, str(tmp_path))).read() == text


def test_load_all_ignores_foreign_files(tmp_path):
    (tmp_path / "notes.txt").write_text("hi")
    record.save(_minimal(), str(tmp_path))
    assert list(record.load_all(str(tmp_path))) == ["BENCH_metadata_storm.json"]
    assert record.load_all(str(tmp_path / "missing")) == {}
