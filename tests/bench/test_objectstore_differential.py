"""Property-based differential test: the same seeded op stream replayed
through the direct path and through the objectstore(+tier) backend must
leave byte-identical logical file contents — and, after the drain, the
object store alone must be able to reproduce them (delete every
store-backed local file, restore through a fresh tier, re-read).

The second half is the "tier is a cache, the object store is authority"
contract: if any byte existed only in the local tier after a drain, the
restore would diverge.
"""

from __future__ import annotations

import itertools
import os
import shutil
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import plfs
from repro.bench.runner import execute_stream
from repro.bench.scenarios import SCENARIOS
from repro.plfs.objectstore import ObjectStore, WriteBackTier

TINY = {
    "hot_cold_mix": {"hot_files": 2, "cold_files": 3, "ops": 40},
    "metadata_storm": {"clients": 2, "files_per_client": 3, "payload_bytes": 200},
}

_example = itertools.count()


@pytest.fixture(scope="module")
def arena():
    d = tempfile.mkdtemp(prefix="bench-objdiff-", dir="/tmp")
    try:
        yield d
    finally:
        shutil.rmtree(d, ignore_errors=True)


def _logical(root: str, file: str) -> bytes:
    fd = plfs.plfs_open(os.path.join(root, file), os.O_RDONLY)
    try:
        return plfs.plfs_read(fd, 1 << 22, 0)
    finally:
        plfs.plfs_close(fd)


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    name=st.sampled_from(sorted(TINY)),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_direct_and_objectstore_agree_and_store_is_authority(arena, name, seed):
    ops = SCENARIOS[name].ops(seed, "short", TINY[name])
    n = next(_example)
    direct_root = os.path.join(arena, f"ex{n}", "direct")
    object_root = os.path.join(arena, f"ex{n}", "objectstore")
    store_dir = os.path.join(arena, f"ex{n}", "objects")
    execute_stream(ops, direct_root, "direct", seed)
    execute_stream(
        ops, object_root, "objectstore", seed, object_store_dir=store_dir
    )

    files = sorted({op.file for op in ops})
    expected = {}
    for file in files:
        via_direct = _logical(direct_root, file)
        via_object = _logical(object_root, file)
        assert via_direct == via_object, (
            f"{name}[seed={seed}] {file}: direct and objectstore backends "
            f"diverged ({len(via_direct)} vs {len(via_object)} bytes)"
        )
        expected[file] = via_direct

    # the authority half: every store-backed local file is deleted, then
    # restored from the store alone — logical reads must not change
    store = ObjectStore(store_dir)
    tier = WriteBackTier(store, object_root)
    keys = store.list()
    assert keys, "the drain must have uploaded the droppings"
    for key in keys:
        local = tier.local_path(key)
        if os.path.exists(local):
            os.unlink(local)
    restored = tier.restore_missing()
    assert sorted(restored) == keys

    from repro.plfs.cache import shared_cache

    shared_cache().clear()
    for file in files:
        assert _logical(object_root, file) == expected[file], (
            f"{name}[seed={seed}] {file}: content changed after the "
            "evict-everything/restore-from-store round trip"
        )
    shutil.rmtree(os.path.join(arena, f"ex{n}"), ignore_errors=True)
