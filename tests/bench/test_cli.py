"""The ``repro-bench`` CLI: run emits schema-valid records, guard's exit
code is the CI contract (0 against a true baseline, nonzero against a
synthetic 2x regression or a lost scenario)."""

from __future__ import annotations

import json
import shutil

import pytest

from repro.bench import cli, record


@pytest.fixture
def out_dir(tmp_path):
    return str(tmp_path / "out")


def _run_storm(out_dir):
    assert (
        cli.main(
            [
                "run",
                "--scenario",
                "metadata_storm",
                "--profile",
                "short",
                "--out",
                out_dir,
            ]
        )
        == 0
    )
    return record.load(f"{out_dir}/BENCH_metadata_storm.json")


def test_run_emits_schema_valid_record(out_dir, capsys):
    rec = _run_storm(out_dir)
    assert record.validate(rec) == []
    assert rec["scenario"] == "metadata_storm"
    assert rec["profile"] == "short"
    assert "metadata_storm/direct" in capsys.readouterr().out


def test_run_embeds_guard_policy(out_dir):
    assert (
        cli.main(
            [
                "run",
                "--scenario",
                "metadata_storm",
                "--out",
                out_dir,
                "--max-timing-regression",
                "3.0",
            ]
        )
        == 0
    )
    rec = record.load(f"{out_dir}/BENCH_metadata_storm.json")
    assert rec["guard"] == {"max_timing_regression": 3.0}


def test_run_skips_unsupported_config(out_dir, capsys):
    # metadata_storm has no sim config: selection is empty -> exit 2
    assert (
        cli.main(
            ["run", "--scenario", "metadata_storm", "--config", "sim", "--out", out_dir]
        )
        == 2
    )
    assert "unsupported" in capsys.readouterr().err


def test_guard_passes_against_true_baseline(out_dir, tmp_path, capsys):
    _run_storm(out_dir)
    baseline = str(tmp_path / "baseline")
    shutil.copytree(out_dir, baseline)
    assert cli.main(["guard", "--baseline", baseline, "--out", out_dir]) == 0
    assert "0 violation(s)" in capsys.readouterr().out


def test_guard_fails_on_synthetic_2x_regression(out_dir, tmp_path, capsys):
    _run_storm(out_dir)
    baseline = str(tmp_path / "baseline")
    shutil.copytree(out_dir, baseline)
    # halving the baseline's normalized metrics makes the (unchanged)
    # current record look like a 2x regression — past the 1.75 default
    path = f"{baseline}/BENCH_metadata_storm.json"
    rec = json.load(open(path))
    rec["derived"]["normalized"] = {
        k: v / 2 for k, v in rec["derived"]["normalized"].items()
    }
    json.dump(rec, open(path, "w"))
    assert cli.main(["guard", "--baseline", baseline, "--out", out_dir]) == 1
    assert "FAIL" in capsys.readouterr().out
    # a wide explicit tolerance waives it
    assert (
        cli.main(
            [
                "guard",
                "--baseline",
                baseline,
                "--out",
                out_dir,
                "--max-timing-regression",
                "4.0",
            ]
        )
        == 0
    )


def test_guard_fails_when_scenario_lost(out_dir, tmp_path):
    _run_storm(out_dir)
    baseline = str(tmp_path / "baseline")
    shutil.copytree(out_dir, baseline)
    shutil.rmtree(out_dir)
    assert cli.main(["guard", "--baseline", baseline, "--out", out_dir]) == 1


def test_compare_never_fails(out_dir, tmp_path, capsys):
    _run_storm(out_dir)
    baseline = str(tmp_path / "empty")
    assert cli.main(["compare", "--baseline", baseline, "--out", out_dir]) == 0
    assert "violation" in capsys.readouterr().out


def test_list_shows_registry(capsys):
    assert cli.main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("metadata_storm", "hot_cold_mix", "multi_tenant", "crash_soak"):
        assert name in out
