"""Property-based differential test: the same seeded op stream replayed
through the direct in-process path and through a live ``repro-plfsd``
daemon must leave byte-identical logical file contents and sizes.

This is the correctness contract behind the bench suite's config axis:
if the two backends ever diverge, comparing their trajectories would be
meaningless.  Unix socket paths cap around 107 bytes, so the daemon
arena lives under a short /tmp path rather than tmp_path.
"""

from __future__ import annotations

import itertools
import os
import shutil
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import plfs
from repro.bench.runner import execute_stream
from repro.bench.scenarios import SCENARIOS

TINY = {
    "metadata_storm": {"clients": 2, "files_per_client": 3, "payload_bytes": 200},
    "hot_cold_mix": {"hot_files": 2, "cold_files": 3, "ops": 40},
    "multi_tenant": {"storm_files": 4, "stream_chunks": 6, "stream_chunk_bytes": 2048},
}

_example = itertools.count()


@pytest.fixture(scope="module")
def arena():
    d = tempfile.mkdtemp(prefix="bench-diff-", dir="/tmp")
    try:
        yield d
    finally:
        shutil.rmtree(d, ignore_errors=True)


@pytest.fixture(scope="module")
def daemon_sock(arena):
    from repro.plfsd import stress

    sock = os.path.join(arena, "d.sock")
    proc = stress.start_daemon(sock)
    try:
        yield sock
    finally:
        stress.stop_daemon(proc, sock)


def _logical(root: str, file: str) -> bytes:
    fd = plfs.plfs_open(os.path.join(root, file), os.O_RDONLY)
    try:
        return plfs.plfs_read(fd, 1 << 22, 0)
    finally:
        plfs.plfs_close(fd)


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    name=st.sampled_from(sorted(TINY)),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_direct_and_daemon_agree_byte_for_byte(arena, daemon_sock, name, seed):
    ops = SCENARIOS[name].ops(seed, "short", TINY[name])
    n = next(_example)
    direct_root = os.path.join(arena, f"ex{n}", "direct")
    daemon_root = os.path.join(arena, f"ex{n}", "daemon")
    execute_stream(ops, direct_root, "direct", seed)
    execute_stream(ops, daemon_root, "daemon", seed, socket_path=daemon_sock)

    for file in sorted({op.file for op in ops}):
        via_direct = _logical(direct_root, file)
        via_daemon = _logical(daemon_root, file)
        assert len(via_direct) == len(via_daemon), (
            f"{name}[seed={seed}] {file}: logical size diverged "
            f"({len(via_direct)} direct vs {len(via_daemon)} daemon)"
        )
        assert via_direct == via_daemon, (
            f"{name}[seed={seed}] {file}: contents diverged"
        )
    shutil.rmtree(os.path.join(arena, f"ex{n}"), ignore_errors=True)
