"""Generator determinism: same seed => identical op stream, identical
digest, on every run and Python version (the Mersenne Twister is part of
the language spec, so 3.10 and 3.12 must agree — CI runs this file on
both)."""

from __future__ import annotations

import random

import pytest

from repro.bench.scenarios import (
    DEFAULT_SEED,
    KINDS,
    SCENARIOS,
    op_stream_digest,
    payload,
    stream_summary,
    zipf_rank,
)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_same_seed_same_stream(name):
    s = SCENARIOS[name]
    a = s.ops(DEFAULT_SEED, "short")
    b = s.ops(DEFAULT_SEED, "short")
    assert a == b
    assert op_stream_digest(a) == op_stream_digest(b)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_different_seed_different_stream(name):
    s = SCENARIOS[name]
    a = s.ops(DEFAULT_SEED, "short")
    b = s.ops(DEFAULT_SEED + 1, "short")
    assert op_stream_digest(a) != op_stream_digest(b)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_ops_well_formed(name):
    for op in SCENARIOS[name].ops(DEFAULT_SEED, "short"):
        assert op.kind in KINDS
        assert op.tenant
        assert op.file
        assert op.offset >= 0
        assert op.size >= 0
        if op.kind in ("create", "write", "read"):
            assert op.size > 0


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_full_profile_strictly_larger(name):
    s = SCENARIOS[name]
    assert len(s.ops(DEFAULT_SEED, "full")) > len(s.ops(DEFAULT_SEED, "short"))


def test_unknown_profile_raises():
    with pytest.raises(KeyError):
        SCENARIOS["metadata_storm"].ops(DEFAULT_SEED, "galactic")


def test_param_override_reaches_generator():
    ops = SCENARIOS["metadata_storm"].ops(
        DEFAULT_SEED, "short", {"clients": 2, "files_per_client": 3}
    )
    assert len(ops) == 6
    assert len({op.tenant for op in ops}) == 2


def test_payload_deterministic_and_distinct():
    a = payload(1, "f", 0, 512)
    assert a == payload(1, "f", 0, 512)
    assert len(a) == 512
    # phase varies by file, offset and seed — backends can't get away with
    # writing the wrong slice of the block
    assert a != payload(1, "g", 0, 512)
    assert a != payload(1, "f", 1, 512)
    assert a != payload(2, "f", 0, 512)
    assert len(payload(1, "f", 7, 3)) == 3
    assert len(payload(1, "f", 0, 70000)) == 70000


def test_stream_summary_counts():
    ops = SCENARIOS["multi_tenant"].ops(DEFAULT_SEED, "short")
    summary = stream_summary(ops)
    assert summary["ops"] == len(ops)
    assert summary["tenants"] == 2
    assert sum(summary["by_kind"].values()) == len(ops)
    assert summary["bytes_written"] == sum(
        op.size for op in ops if op.kind in ("create", "write")
    )
    assert summary["digest"] == op_stream_digest(ops)


def test_zipf_rank_bounds_and_skew():
    rng = random.Random(7)
    draws = [zipf_rank(rng, 10, 1.2) for _ in range(2000)]
    assert all(0 <= d < 10 for d in draws)
    # rank 0 must dominate rank 9 heavily under s=1.2
    assert draws.count(0) > 5 * draws.count(9)


def test_hot_cold_reads_stay_in_bounds():
    """A read must never start past the bytes written so far to its file
    (otherwise backends would legally return nothing and the differential
    test would compare empty reads)."""
    written: dict[str, int] = {}
    for op in SCENARIOS["hot_cold_mix"].ops(DEFAULT_SEED, "short"):
        if op.kind == "write":
            written[op.file] = max(written.get(op.file, 0), op.offset + op.size)
        elif op.kind == "read":
            assert op.offset < written.get(op.file, 0)


def test_crash_soak_cycles_unique_and_armed():
    ops = SCENARIOS["crash_soak"].ops(DEFAULT_SEED, "short")
    assert len({op.file for op in ops}) == len(ops)
    assert len({op.offset for op in ops}) == len(ops)  # distinct cycle seeds
    assert all(op.kind == "crash_cycle" for op in ops)
