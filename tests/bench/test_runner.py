"""The runner end to end: every scenario/config produces a schema-valid
record whose deterministic counters reproduce exactly under a fixed seed.

Scaled-down params keep this tier-1-fast; the real short/full profiles
run in the CI bench job.
"""

from __future__ import annotations

import os

import pytest

from repro import plfs
from repro.bench import record as record_mod
from repro.bench import runner
from repro.bench.scenarios import SCENARIOS, Op

TINY = {
    "metadata_storm": {"clients": 2, "files_per_client": 4},
    "hot_cold_mix": {"hot_files": 2, "cold_files": 4, "ops": 48},
    "multi_tenant": {"storm_files": 6, "stream_chunks": 8, "stream_chunk_bytes": 4096},
    "crash_soak": {"cycles": 2, "ops_per_cycle": 8},
    "collective_io": {
        "nodes": 2,
        "ppn": 2,
        "rounds": 1,
        "per_rank_bytes": 8192,
        "record_bytes": 1024,
        "read_rounds": 1,
    },
}


def _run(name, config="direct", seed=42):
    return runner.run_scenario(
        name, profile="short", config=config, seed=seed, params=TINY[name]
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_direct_run_produces_valid_record(name):
    rec = _run(name)
    assert record_mod.validate(rec) == []
    assert rec["counters"]["ops_total"] == rec["op_stream"]["ops"]
    assert rec["derived"]["normalized"]["wall_over_calibration"] > 0
    assert rec["timings"]["calibration_seconds"] > 0


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_counters_reproduce_exactly(name):
    a, b = _run(name), _run(name)
    assert a["counters"] == b["counters"]
    assert a["op_stream"] == b["op_stream"]
    assert a["params"] == b["params"]


def test_metadata_storm_counts_every_create():
    rec = _run("metadata_storm")
    assert rec["counters"]["ops_create"] == 8
    assert rec["counters"]["write_appends"] == 8


def test_hot_cold_reads_return_written_bytes():
    rec = _run("hot_cold_mix")
    assert rec["counters"]["bytes_read_back"] == rec["op_stream"]["bytes_read"]
    assert rec["counters"]["read_preads"] > 0


def test_wal_batched_config_engages_wal():
    rec = runner.run_scenario(
        "hot_cold_mix",
        profile="short",
        config="wal_batched",
        seed=42,
        params=TINY["hot_cold_mix"],
    )
    assert rec["counters"]["wal_records"] > 0
    assert rec["counters"]["wal_batches"] > 0


def test_multi_tenant_reports_both_tenants():
    rec = _run("multi_tenant")
    assert set(rec["timings"]["per_tenant"]) == {"storm", "stream"}
    assert "storm_p50_over_stream_p50" in rec["derived"]["ratios"]


def test_crash_soak_recovers_every_cycle():
    rec = _run("crash_soak")
    c = rec["counters"]
    assert c["cycles"] == 2
    assert c["crashes"] >= 1  # the tiny arms include hard crashes
    assert c["full_recoveries"] + c["cycles"] >= c["cycles"]  # sanity
    assert c["verified_bytes"] > 0


def test_crash_soak_rejects_non_direct_configs():
    with pytest.raises(ValueError, match="does not support"):
        runner.run_scenario("crash_soak", config="daemon")


def test_unknown_config_raises():
    with pytest.raises(ValueError, match="does not support"):
        runner.run_scenario("metadata_storm", config="quantum")


def test_sim_config_only_where_registered():
    with pytest.raises(ValueError, match="does not support"):
        runner.run_scenario("metadata_storm", config="sim")


def test_execute_stream_daemon_requires_socket(tmp_path):
    ops = SCENARIOS["metadata_storm"].ops(1, "short", TINY["metadata_storm"])
    with pytest.raises(ValueError, match="socket_path"):
        runner.execute_stream(ops, str(tmp_path), "daemon", 1)


def test_direct_stream_writes_real_bytes(tmp_path):
    """The storm's payload bytes must actually land in containers."""
    from repro.bench.scenarios import payload

    ops = [Op("t", "create", "a/x", 0, 300), Op("t", "write", "a/y", 0, 128)]
    runner.execute_stream(ops, str(tmp_path), "direct", 5)
    fd = plfs.plfs_open(str(tmp_path / "a" / "x"), os.O_RDONLY)
    assert plfs.plfs_read(fd, 1024, 0) == payload(5, "a/x", 0, 300)
    plfs.plfs_close(fd)


def test_summarize_and_derive():
    lat = {("t", "write"): [0.2, 0.1, 0.3], ("u", "read"): [0.4]}
    per_kind, per_tenant = runner.summarize_latencies(lat)
    assert per_kind["write"]["count"] == 3
    assert per_kind["write"]["p50"] == 0.2
    assert per_tenant["u"]["mean"] == 0.4
    derived = runner.derive_metrics(per_kind, per_tenant, 1.0, 0.5)
    assert derived["normalized"]["wall_over_calibration"] == 2.0
    assert derived["ratios"]["read_p50_over_write_p50"] == 2.0
    assert derived["ratios"]["t_p50_over_u_p50"] == 0.5
