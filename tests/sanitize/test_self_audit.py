"""The whole-system self-audit: coverage + lock analysis + contracts.

``repro-lint --self-audit`` is the CI gate; these tests pin that it walks
all three packages, stays clean on HEAD, reports the static summary in
both renderings, and fails loudly when fed a seeded violation.
"""

from __future__ import annotations

from repro.lint import self_audit
from repro.lint.reporter import (
    render_self_audit,
    self_audit_to_dict,
    self_audit_to_json,
)
from repro.sanitize.contracts import DEFAULT_CONTRACTS, OrderingContract


class TestCleanHead:
    def test_audit_passes(self):
        audit = self_audit()
        assert audit.findings == []
        assert audit.passed

    def test_audit_walks_all_three_packages(self):
        audit = self_audit()
        assert audit.static is not None
        prefixes = {m.split(".")[1] for m in audit.static.modules}
        assert {"core", "plfs", "plfsd"} <= prefixes
        assert "repro.plfsd.server" in audit.static.modules

    def test_render_mentions_lock_analysis(self):
        audit = self_audit()
        text = render_self_audit(audit)
        assert "PASS" in text
        assert "lock analysis:" in text
        assert "lock-order edges" in text

    def test_dict_and_json_carry_static_section(self):
        audit = self_audit()
        data = self_audit_to_dict(audit)
        assert data["passed"] is True
        static = data["static"]
        assert static["summary"]["findings"] == 0
        assert static["summary"]["modules"] == len(static["modules"])
        assert isinstance(static["lock_order_edges"], list)
        first = self_audit_to_json(audit)
        second = self_audit_to_json(self_audit())
        assert first.encode() == second.encode()


class TestSeededViolations:
    def test_violated_contract_fails_the_audit(self):
        bad = DEFAULT_CONTRACTS + [
            OrderingContract(
                "repro.plfs.writer",
                "_Dropping",
                "append",
                ("write_data",),  # inverted on purpose
                ("_promise",),
                "deliberately inverted for the regression test",
            )
        ]
        audit = self_audit(contracts=bad)
        assert not audit.passed
        assert "LDP301" in {f.rule for f in audit.findings}

    def test_stale_contract_fails_the_audit(self):
        bad = DEFAULT_CONTRACTS + [
            OrderingContract(
                "repro.plfs.writer",
                "_Dropping",
                "no_such_method",
                ("a",),
                ("b",),
                "stale on purpose",
            )
        ]
        audit = self_audit(contracts=bad)
        assert not audit.passed
        assert "LDP302" in {f.rule for f in audit.findings}

    def test_narrowed_targets_still_audit_core(self):
        audit = self_audit(targets=("repro.core",))
        assert audit.static is not None
        assert all(m.startswith("repro.core") for m in audit.static.modules)
        assert audit.passed
