"""Shared plumbing for the plfs-san test suite.

The ``san`` fixture hands tests an *armed* detector regardless of how the
session was started: under ``pytest --sanitize`` the session-wide
instance is reused (and its variable states reset around the test so
suites stay order-independent); in a plain run the fixture enables the
detector itself and tears it back down afterwards.
"""

from __future__ import annotations

from typing import Iterator

import pytest

from repro.sanitize import runtime


@pytest.fixture
def san() -> Iterator[object]:
    if runtime.enabled():
        runtime.reset()
        yield runtime
        runtime.reset()
        return
    runtime.enable()
    try:
        yield runtime
    finally:
        runtime.disable()
        runtime.reset()
