"""The plfs-san runtime lockset detector (Eraser over registered state).

The canary pair is the heart of the suite: a deliberately racy miniature
fd table must produce exactly one lockset violation under a seeded
deterministic schedule, and the real :class:`repro.core.fdtable.FdTable`
must produce none under the same kind of two-thread hammering — the
detector is only trustworthy if it fires on the bad twin and stays quiet
on the good one.
"""

from __future__ import annotations

import asyncio
import os
import threading

import pytest

from repro.core.fdtable import FdTable
from repro.core.mounts import MountTable
from repro.sanitize import runtime
from repro.sanitize.runtime import TrackedAsyncLock, TrackedLock


def _racy_table_cls():
    """A fresh miniature FdTable clone with a known lockset bug.

    Defined per-test so instrumentation never leaks between runs: the
    insert_racy path touches ``_entries`` without ``_lock``, which is the
    exact bug class the real table fixed in PR 1.
    """

    class RacyTable:
        _SANITIZE_SHARED = {"_entries": "_lock"}

        def __init__(self) -> None:
            self._lock = threading.Lock()
            self._entries: dict[int, str] = {}

        def insert_locked(self, fd: int, path: str) -> None:
            with self._lock:
                self._entries[fd] = path

        def insert_racy(self, fd: int, path: str) -> None:
            self._entries[fd] = path

    return RacyTable


def _run_seeded_schedule(table, racy: bool) -> None:
    """Two threads touching *table* in a deterministic A-then-B order."""
    a_done = threading.Event()

    def locked_writer() -> None:
        table.insert_locked(1, "/a")
        a_done.set()

    def second_writer() -> None:
        a_done.wait(timeout=5)
        if racy:
            table.insert_racy(2, "/b")
        else:
            table.insert_locked(2, "/b")

    threads = [
        threading.Thread(target=locked_writer),
        threading.Thread(target=second_writer),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestLocksetPrimitives:
    def test_tracked_lock_mirrors_held_state(self, san):
        lock = TrackedLock(threading.Lock(), "test.lock")
        assert runtime.current_lockset() == frozenset()
        with lock:
            assert "test.lock" in runtime.current_lockset()
            assert lock.locked()
        assert runtime.current_lockset() == frozenset()

    def test_tracked_lock_reentrant(self, san):
        lock = TrackedLock(threading.RLock(), "test.rlock")
        with lock:
            with lock:
                assert "test.rlock" in runtime.current_lockset()
            assert "test.rlock" in runtime.current_lockset()
        assert runtime.current_lockset() == frozenset()

    def test_lockset_is_per_thread(self, san):
        lock = TrackedLock(threading.Lock(), "test.lock")
        seen: list[frozenset] = []
        with lock:
            t = threading.Thread(
                target=lambda: seen.append(runtime.current_lockset())
            )
            t.start()
            t.join()
        assert seen == [frozenset()]


class TestKnownBadFixture:
    @pytest.mark.sanitize_expect_races
    def test_racy_table_reports_exactly_one_violation(self, san):
        cls = _racy_table_cls()
        runtime.instrument([cls])
        table = cls()
        _run_seeded_schedule(table, racy=True)
        violations = runtime.violations()
        assert len(violations) == 1
        v = violations[0]
        assert "RacyTable._entries" in v.var
        assert v.kind == "write"
        assert v.lockset == []
        assert v.stack, "violation must carry the offending stack"
        assert v.history, "violation must carry first-access evidence"
        text = v.render()
        assert "lockset violation" in text
        assert "no common lock" in text

    def test_same_table_clean_when_both_sides_lock(self, san):
        cls = _racy_table_cls()
        runtime.instrument([cls])
        table = cls()
        _run_seeded_schedule(table, racy=False)
        assert runtime.violations() == []

    @pytest.mark.sanitize_expect_races
    def test_violation_serialises_and_maps_to_ldp204(self, san):
        cls = _racy_table_cls()
        runtime.instrument([cls])
        table = cls()
        _run_seeded_schedule(table, racy=True)
        (v,) = runtime.violations()
        data = v.as_dict()
        assert set(data) == {
            "var", "kind", "thread", "lockset", "stack", "history"
        }
        finding = v.to_finding()
        assert finding.rule == "LDP204"
        assert finding.severity.name == "HIGH"
        assert finding.file == v.var


class TestRealSharedState:
    def test_fdtable_clean_under_two_thread_hammering(self, san, tmp_path):
        table = FdTable(os)
        barrier = threading.Barrier(2)

        def worker() -> None:
            barrier.wait(timeout=5)
            for i in range(25):
                entry = table.insert(
                    None, os.O_RDONLY, f"/x/{threading.get_ident()}.{i}"
                )
                assert table.lookup(entry.fd) is entry
                removed = table.remove(entry.fd)
                table.close_shadow(removed)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(table) == 0
        assert runtime.violations() == []

    def test_mount_table_clean_under_concurrent_resolution(
        self, san, tmp_path
    ):
        table = MountTable()
        table.add(str(tmp_path / "mnt"), str(tmp_path / "backend"))
        barrier = threading.Barrier(2)

        def worker(idx: int) -> None:
            barrier.wait(timeout=5)
            for i in range(20):
                point = str(tmp_path / f"mnt{idx}.{i}")
                table.add(point, str(tmp_path / f"backend{idx}.{i}"))
                assert table.find(point) is not None
                table.remove(point)

        threads = [
            threading.Thread(target=worker, args=(idx,)) for idx in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert runtime.violations() == []


class TestAsyncioIntegration:
    def test_async_lock_and_executor_inheritance(self, san):
        observed: dict[str, frozenset] = {}

        async def main() -> None:
            lock = TrackedAsyncLock(asyncio.Lock(), "test.alock")
            async with lock:
                loop = asyncio.get_running_loop()

                def probe() -> None:
                    observed["executor"] = runtime.current_lockset()

                await loop.run_in_executor(None, probe)
                observed["task"] = runtime.current_lockset()
            observed["after"] = runtime.current_lockset()

        asyncio.run(main())
        assert "test.alock" in observed["executor"]
        assert "test.alock" in observed["task"]
        assert observed["after"] == frozenset()

    def test_async_lock_isolated_per_task(self, san):
        observed: dict[str, frozenset] = {}

        async def main() -> None:
            lock = TrackedAsyncLock(asyncio.Lock(), "test.alock")

            async def holder() -> None:
                async with lock:
                    observed["holder"] = runtime.current_lockset()
                    await asyncio.sleep(0.01)

            async def bystander() -> None:
                await asyncio.sleep(0.005)
                observed["bystander"] = runtime.current_lockset()

            await asyncio.gather(holder(), bystander())

        asyncio.run(main())
        assert "test.alock" in observed["holder"]
        assert observed["bystander"] == frozenset()


class TestLifecycle:
    def test_disable_restores_plain_containers(self):
        if runtime.enabled():
            pytest.skip("session-wide --sanitize instrumentation is active")
        runtime.enable()
        try:
            table = FdTable(os)
            entry = table.insert(None, os.O_RDONLY, "/x")
            assert type(table.__dict__["_entries"]).__name__ == "_TrackedDict"
            table.close_shadow(table.remove(entry.fd))
        finally:
            runtime.disable()
            runtime.reset()
        table = FdTable(os)
        entry = table.insert(None, os.O_RDONLY, "/y")
        assert type(table.__dict__["_entries"]) is dict
        assert table.lookup(entry.fd) is entry
        table.close_shadow(table.remove(entry.fd))
        assert runtime.violations() == []

    def test_instrument_requires_enabled(self):
        if runtime.enabled():
            pytest.skip("session-wide --sanitize instrumentation is active")
        with pytest.raises(RuntimeError):
            runtime.instrument([_racy_table_cls()])

    def test_report_roundtrip(self, san, tmp_path):
        report_dir = tmp_path / "reports"
        report_dir.mkdir()
        runtime.write_report(str(report_dir / "sanitize-123.json"))
        reports = runtime.load_reports(str(report_dir))
        assert len(reports) == 1
        assert reports[0]["pid"] == os.getpid()
        assert reports[0]["violations"] == []
        assert runtime.load_reports(str(report_dir / "missing")) == []
