"""The interprocedural static lock analysis (LDP2xx pass).

Synthetic modules prove each rule in isolation — including the
interprocedural cases a lexical checker cannot see — and the live tree
is pinned clean plus byte-stable, so any future locking change that
introduces a guard bypass or an ordering inversion fails here first.
"""

from __future__ import annotations

import importlib.util
import json

from repro.analysis.export import canonical_json
from repro.lint.concurrency import GuardSpec
from repro.sanitize.registry import LockSpec
from repro.sanitize.static import analyze

GUARDED_TABLE = '''
import threading


class Table:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}

    def put(self, key, value):
        with self._lock:
            self._unsafe_put(key, value)

    def _unsafe_put(self, key, value):
        self._items[key] = value

    def evil(self, key):
        self._items.pop(key, None)
'''

LOCK_ORDER_CYCLE = '''
import threading

lock_a = threading.Lock()
lock_b = threading.Lock()


def forward():
    with lock_a:
        with lock_b:
            pass


def backward():
    with lock_b:
        with lock_a:
            pass
'''

INTERPROCEDURAL_NESTING = '''
import threading

lock_a = threading.Lock()
lock_b = threading.Lock()


def outer():
    with lock_a:
        inner()


def inner():
    with lock_b:
        pass
'''

AWAIT_HOLDING_LOCK = '''
import asyncio
import threading


class Server:
    def __init__(self):
        self._lock = threading.Lock()

    async def bad(self):
        with self._lock:
            await asyncio.sleep(0)
'''


def _module_source(module: str) -> str:
    spec = importlib.util.find_spec(module)
    assert spec is not None and spec.origin is not None
    with open(spec.origin, "r", encoding="utf-8") as fh:
        return fh.read()


class TestGuardBypass:
    GUARDS = [GuardSpec("synth.tables", "Table", "_items", "self._lock")]
    LOCKS = [LockSpec("synth.tables", "Table", "_lock")]

    def _analyze(self, source: str):
        return analyze(
            (),
            guards=self.GUARDS,
            locks=self.LOCKS,
            sources={"synth.tables": source},
        )

    def test_unguarded_mutation_is_ldp201(self):
        findings = self._analyze(GUARDED_TABLE).findings
        assert [f.rule for f in findings] == ["LDP201"]
        (f,) = findings
        assert f.file == "synth.tables"
        assert f.evidence["function"] == "Table.evil"
        assert f.evidence["guard"] == "Table._lock"

    def test_callee_guarded_through_callers_is_clean(self):
        # _unsafe_put never takes the lock itself; every resolved caller
        # does, so the interprocedural MUSTHELD pass must excuse it.
        clean = GUARDED_TABLE.replace(
            "    def evil(self, key):\n"
            "        self._items.pop(key, None)\n",
            "",
        )
        assert "evil" not in clean
        assert self._analyze(clean).findings == []

    def test_lexically_guarded_baseline_is_clean(self):
        direct = GUARDED_TABLE.replace(
            "self._unsafe_put(key, value)", "self._items[key] = value"
        ).replace(
            "    def _unsafe_put(self, key, value):\n"
            "        self._items[key] = value\n",
            "",
        ).replace(
            "    def evil(self, key):\n"
            "        self._items.pop(key, None)\n",
            "",
        )
        assert self._analyze(direct).findings == []


class TestLockOrder:
    LOCKS = [
        LockSpec("synth.order", "", "lock_a"),
        LockSpec("synth.order", "", "lock_b"),
    ]

    def _analyze(self, source: str):
        return analyze(
            (), guards=[], locks=self.LOCKS,
            sources={"synth.order": source},
        )

    def test_opposite_nesting_is_an_ldp202_cycle(self):
        findings = self._analyze(LOCK_ORDER_CYCLE).findings
        assert [f.rule for f in findings] == ["LDP202"]
        (f,) = findings
        assert "order.lock_a" in f.detail
        assert "order.lock_b" in f.detail

    def test_consistent_nesting_is_clean_but_edges_recorded(self):
        consistent = LOCK_ORDER_CYCLE.replace(
            "def backward():\n"
            "    with lock_b:\n"
            "        with lock_a:",
            "def backward_too():\n"
            "    with lock_a:\n"
            "        with lock_b:",
        )
        analysis = self._analyze(consistent)
        assert analysis.findings == []
        assert ("order.lock_a", "order.lock_b") in analysis.lock_edges

    def test_nesting_through_a_call_is_seen(self):
        # outer() holds lock_a while calling inner(), which takes lock_b:
        # the edge only exists interprocedurally (MAYHELD propagation).
        analysis = self._analyze(INTERPROCEDURAL_NESTING)
        assert ("order.lock_a", "order.lock_b") in analysis.lock_edges

    def test_interprocedural_cycle_detected(self):
        source = INTERPROCEDURAL_NESTING + (
            "\n\ndef backward():\n"
            "    with lock_b:\n"
            "        with lock_a:\n"
            "            pass\n"
        )
        findings = self._analyze(source).findings
        assert [f.rule for f in findings] == ["LDP202"]


class TestAwaitHoldingLock:
    def test_await_under_threading_lock_is_ldp203(self):
        analysis = analyze(
            (),
            guards=[],
            locks=[LockSpec("synth.aw", "Server", "_lock")],
            sources={"synth.aw": AWAIT_HOLDING_LOCK},
        )
        assert [f.rule for f in analysis.findings] == ["LDP203"]
        (f,) = analysis.findings
        assert "Server._lock" in f.detail

    def test_asyncio_lock_is_exempt(self):
        analysis = analyze(
            (),
            guards=[],
            locks=[LockSpec("synth.aw", "Server", "_lock", kind="asyncio")],
            sources={"synth.aw": AWAIT_HOLDING_LOCK},
        )
        assert analysis.findings == []


class TestLiveTree:
    def test_head_is_clean(self):
        analysis = analyze()
        assert analysis.findings == []

    def test_covers_all_three_packages(self):
        analysis = analyze()
        assert "repro.core.fdtable" in analysis.modules
        assert "repro.plfs.writer" in analysis.modules
        assert "repro.plfsd.server" in analysis.modules
        # subpackages recurse: the objectstore backend is in the audit
        assert "repro.plfs.objectstore.tier" in analysis.modules
        assert "repro.plfs.objectstore.store" in analysis.modules
        assert analysis.functions > 0
        assert analysis.call_edges > 0

    def test_seeded_guard_bypass_in_fdtable_is_caught(self):
        source = _module_source("repro.core.fdtable")
        seeded = source.replace(
            "    def insert(",
            "    def _evil(self, fd):\n"
            "        self._entries.pop(fd, None)\n"
            "\n"
            "    def insert(",
            1,
        )
        assert seeded != source
        analysis = analyze(sources={"repro.core.fdtable": seeded})
        assert [f.rule for f in analysis.findings] == ["LDP201"]
        (f,) = analysis.findings
        assert f.file == "repro.core.fdtable"
        assert f.evidence["function"] == "FdTable._evil"


class TestDeterminism:
    def test_lock_edges_byte_stable_across_runs(self):
        first = canonical_json(
            {"lock_order_edges": [list(e) for e in analyze().lock_edges]}
        )
        second = canonical_json(
            {"lock_order_edges": [list(e) for e in analyze().lock_edges]}
        )
        assert first.encode() == second.encode()

    def test_lock_edges_match_golden(self, request):
        golden = request.path.parent / "golden" / "lock_order.json"
        got = canonical_json(
            {"lock_order_edges": [list(e) for e in analyze().lock_edges]}
        )
        assert got == golden.read_text(encoding="utf-8")
        # and the golden itself is canonical (regenerate with
        # canonical_json if the locking structure legitimately changes)
        assert json.loads(got) == json.loads(golden.read_text())

    def test_findings_sorted_by_file_line_locks(self):
        source = LOCK_ORDER_CYCLE + AWAIT_HOLDING_LOCK.replace(
            "import asyncio\nimport threading\n", ""
        )
        analysis = analyze(
            (),
            guards=[],
            locks=[
                LockSpec("synth.mixed", "", "lock_a"),
                LockSpec("synth.mixed", "", "lock_b"),
                LockSpec("synth.mixed", "Server", "_lock"),
            ],
            sources={"synth.mixed": source},
        )
        keys = [(f.file, f.line, f.col) for f in analysis.findings]
        assert keys == sorted(keys)
        assert {f.rule for f in analysis.findings} == {"LDP202", "LDP203"}
