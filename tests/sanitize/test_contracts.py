"""The ordering-contract checker (LDP3xx pass).

The contracts are authority, the checker is evidence: HEAD must satisfy
every declared write-path ordering, a seeded swap of the WAL promise and
the data append must fail, and a deleted operation must surface as a
stale contract rather than silently passing.
"""

from __future__ import annotations

import importlib.util

from repro.sanitize.contracts import (
    DEFAULT_CONTRACTS,
    OrderingContract,
    check_contracts,
)

SYNTH = '''
class Journal:
    def commit(self):
        self.write_wal()
        self.write_data()
'''

SYNTH_SWAPPED = '''
class Journal:
    def commit(self):
        self.write_data()
        self.write_wal()
'''

SYNTH_CONTRACT = OrderingContract(
    "synth.journal",
    "Journal",
    "commit",
    ("write_wal",),
    ("write_data",),
    "journal record lands before the data it describes",
)


def _module_source(module: str) -> str:
    spec = importlib.util.find_spec(module)
    assert spec is not None and spec.origin is not None
    with open(spec.origin, "r", encoding="utf-8") as fh:
        return fh.read()


class TestSyntheticContracts:
    def test_correct_order_passes(self):
        assert (
            check_contracts(
                [SYNTH_CONTRACT], sources={"synth.journal": SYNTH}
            )
            == []
        )

    def test_swapped_order_is_ldp301(self):
        findings = check_contracts(
            [SYNTH_CONTRACT], sources={"synth.journal": SYNTH_SWAPPED}
        )
        assert [f.rule for f in findings] == ["LDP301"]
        (f,) = findings
        assert f.evidence["observed"] == "write_data"
        assert f.evidence["required_after"] == "write_wal"

    def test_deleted_operation_is_ldp302(self):
        gutted = SYNTH.replace("        self.write_wal()\n", "")
        findings = check_contracts(
            [SYNTH_CONTRACT], sources={"synth.journal": gutted}
        )
        assert [f.rule for f in findings] == ["LDP302"]
        assert findings[0].evidence["missing"] == "write_wal"

    def test_deleted_function_is_ldp302(self):
        findings = check_contracts(
            [SYNTH_CONTRACT], sources={"synth.journal": "class Journal:\n    pass\n"}
        )
        assert [f.rule for f in findings] == ["LDP302"]
        assert findings[0].evidence["missing"] == "Journal.commit"


class TestLiveTree:
    def test_head_satisfies_every_contract(self):
        assert check_contracts() == []

    def test_contracts_cover_the_wal_invariant(self):
        pairs = {
            (c.qualname, c.first, c.then) for c in DEFAULT_CONTRACTS
        }
        assert ("_Dropping.append", ("_promise",), ("write_data",)) in pairs
        assert (
            "invalidate_cross_process",
            ("invalidate",),
            ("bump_generation",),
        ) in pairs

    def test_swapped_wal_and_data_append_is_caught(self):
        source = _module_source("repro.plfs.writer")
        original = (
            "            self._promise(logical_offset, len(buf), pid)\n"
            "        written = store.write_data("
            "self.data_fd, buf, self.data_path)"
        )
        swapped = (
            "            pass\n"
            "        written = store.write_data("
            "self.data_fd, buf, self.data_path)\n"
            "        self._promise(logical_offset, len(buf), pid)"
        )
        assert original in source
        seeded = source.replace(original, swapped, 1)
        findings = check_contracts(sources={"repro.plfs.writer": seeded})
        assert [f.rule for f in findings] == ["LDP301"]
        (f,) = findings
        assert f.file == "repro.plfs.writer"
        assert f.evidence["observed"] == "write_data"

    def test_deleted_wal_promise_is_caught(self):
        source = _module_source("repro.plfs.writer")
        seeded = source.replace(
            "            self._promise(logical_offset, len(buf), pid)\n",
            "            pass\n",
            1,
        )
        assert seeded != source
        findings = check_contracts(sources={"repro.plfs.writer": seeded})
        assert [f.rule for f in findings] == ["LDP302"]
        assert findings[0].evidence["missing"] == "_promise"

    def test_findings_are_deterministically_sorted(self):
        first = check_contracts(
            [SYNTH_CONTRACT, SYNTH_CONTRACT],
            sources={"synth.journal": SYNTH_SWAPPED},
        )
        second = check_contracts(
            [SYNTH_CONTRACT, SYNTH_CONTRACT],
            sources={"synth.journal": SYNTH_SWAPPED},
        )
        assert [f.as_dict() for f in first] == [f.as_dict() for f in second]
