"""Tests for Resource, BandwidthPipe and Tank."""

from __future__ import annotations

import pytest

from repro.sim import BandwidthPipe, Environment, Resource, Tank


class TestResource:
    def test_capacity_one_serialises(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def worker(tag):
            yield from res.use(10)
            log.append((tag, env.now))

        for tag in "ab":
            env.process(worker(tag))
        env.run()
        assert log == [("a", 10), ("b", 20)]

    def test_capacity_two_overlaps(self):
        env = Environment()
        res = Resource(env, capacity=2)
        log = []

        def worker(tag):
            yield from res.use(10)
            log.append((tag, env.now))

        for tag in "abc":
            env.process(worker(tag))
        env.run()
        assert log == [("a", 10), ("b", 10), ("c", 20)]

    def test_fcfs_order(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def worker(tag, arrive):
            yield env.timeout(arrive)
            yield from res.use(5)
            order.append(tag)

        env.process(worker("late", 2))
        env.process(worker("early", 1))
        env.process(worker("first", 0))
        env.run()
        assert order == ["first", "early", "late"]

    def test_release_without_request(self):
        env = Environment()
        with pytest.raises(RuntimeError):
            Resource(env).release()

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Resource(Environment(), capacity=0)

    def test_queue_length(self):
        env = Environment()
        res = Resource(env, capacity=1)
        res.request()
        res.request()
        res.request()
        assert res.queue_length == 2

    def test_utilisation(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def worker():
            yield from res.use(5)

        env.process(worker())
        env.run(until=10)
        assert res.utilisation(10) == pytest.approx(0.5)


class TestBandwidthPipe:
    def test_transfer_time(self):
        env = Environment()
        pipe = BandwidthPipe(env, bandwidth=100.0, latency=1.0)
        assert pipe.transfer_time(200.0) == pytest.approx(3.0)

    def test_transfers_serialise_on_one_channel(self):
        env = Environment()
        pipe = BandwidthPipe(env, bandwidth=10.0)
        done = []

        def sender(tag):
            yield from pipe.transfer(100.0)
            done.append((tag, env.now))

        env.process(sender("a"))
        env.process(sender("b"))
        env.run()
        assert done == [("a", 10), ("b", 20)]

    def test_parallel_channels(self):
        env = Environment()
        pipe = BandwidthPipe(env, bandwidth=10.0, capacity=2)
        done = []

        def sender():
            yield from pipe.transfer(100.0)
            done.append(env.now)

        env.process(sender())
        env.process(sender())
        env.run()
        assert done == [10, 10]

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            BandwidthPipe(Environment(), bandwidth=0)


class TestTank:
    def test_put_get_immediate(self):
        env = Environment()
        tank = Tank(env, capacity=100)

        def proc():
            yield tank.put(60)
            assert tank.level == 60
            yield tank.get(25)
            assert tank.level == 35

        env.process(proc())
        env.run()
        assert tank.level == 35

    def test_put_blocks_until_space(self):
        env = Environment()
        tank = Tank(env, capacity=100, level=80)
        log = []

        def producer():
            yield tank.put(50)  # needs 50 free; only 20 available
            log.append(("put", env.now))

        def drainer():
            yield env.timeout(7)
            yield tank.get(40)
            log.append(("got", env.now))

        env.process(producer())
        env.process(drainer())
        env.run()
        assert log == [("got", 7), ("put", 7)]
        assert tank.level == 90

    def test_get_blocks_until_content(self):
        env = Environment()
        tank = Tank(env, capacity=10)
        log = []

        def consumer():
            yield tank.get(5)
            log.append(env.now)

        def producer():
            yield env.timeout(3)
            yield tank.put(5)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert log == [3]

    def test_oversized_put_rejected(self):
        env = Environment()
        tank = Tank(env, capacity=10)
        with pytest.raises(ValueError):
            tank.put(11)

    def test_get_up_to(self):
        env = Environment()
        tank = Tank(env, capacity=10, level=4)
        assert tank.get_up_to(10) == 4
        assert tank.level == 0
        assert tank.get_up_to(1) == 0

    def test_get_up_to_unblocks_putter(self):
        env = Environment()
        tank = Tank(env, capacity=10, level=10)
        log = []

        def producer():
            yield tank.put(5)
            log.append(env.now)

        def drainer():
            yield env.timeout(2)
            tank.get_up_to(6)

        env.process(producer())
        env.process(drainer())
        env.run()
        assert log == [2]

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            Tank(Environment(), capacity=0)
        with pytest.raises(ValueError):
            Tank(Environment(), capacity=5, level=9)
