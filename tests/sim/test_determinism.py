"""Determinism guarantees: identical runs produce identical results.

Every benchmark number in EXPERIMENTS.md depends on this: the simulator
must be a pure function of its inputs, with no wall-clock or hash-seed
dependence.
"""

from __future__ import annotations

import pytest

from repro.cluster import MINERVA, SIERRA
from repro.mpiio import LDPLFS, MPIIO, ROMIO
from repro.sim import Environment
from repro.sim.stats import MB
from repro.workloads import run_bt, run_flashio, run_mpiio_test


class TestWorkloadDeterminism:
    def test_mpiio_test_repeatable(self):
        runs = [
            run_mpiio_test(MINERVA, LDPLFS, 4, 2, per_proc=32 * MB)
            for _ in range(3)
        ]
        assert len({r.write_seconds for r in runs}) == 1
        assert len({r.read_seconds for r in runs}) == 1

    def test_flashio_repeatable(self):
        a = run_flashio(SIERRA, ROMIO, 4)
        b = run_flashio(SIERRA, ROMIO, 4)
        assert a.write_seconds == b.write_seconds
        assert a.mds_ops == b.mds_ops

    def test_bt_repeatable(self):
        a = run_bt(SIERRA, MPIIO, 16, "C")
        b = run_bt(SIERRA, MPIIO, 16, "C")
        assert a.write_seconds == b.write_seconds

    def test_methods_are_order_independent(self):
        """Running methods in a different order must not change results
        (each run builds a fresh Environment/Platform)."""
        first = run_flashio(SIERRA, MPIIO, 2).write_seconds
        run_flashio(SIERRA, LDPLFS, 2)
        second = run_flashio(SIERRA, MPIIO, 2).write_seconds
        assert first == second


class TestEngineDeterminism:
    def test_event_ordering_reproducible(self):
        def trace():
            env = Environment()
            log = []

            def worker(tag, delay):
                yield env.timeout(delay)
                log.append(tag)
                yield env.timeout(delay)
                log.append(tag.upper())

            for i, delay in enumerate([3, 1, 2, 1, 3]):
                env.process(worker(f"w{i}", delay))
            env.run()
            return tuple(log)

        assert trace() == trace()

    def test_no_wall_clock_dependence(self):
        # The simulated clock is under test control only.
        env = Environment()
        env.run(until=5)
        assert env.now == 5
        env2 = Environment()
        env2.run(until=5)
        assert env2.now == env.now
