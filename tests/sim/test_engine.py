"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim import Environment, SimError


class TestTimeAndTimeouts:
    def test_clock_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_single_timeout(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(5)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [5]

    def test_timeouts_in_order(self):
        env = Environment()
        log = []

        def proc(delay):
            yield env.timeout(delay)
            log.append((env.now, delay))

        for d in (3, 1, 2):
            env.process(proc(d))
        env.run()
        assert log == [(1, 1), (2, 2), (3, 3)]

    def test_same_time_fifo(self):
        env = Environment()
        log = []

        def proc(tag):
            yield env.timeout(1)
            log.append(tag)

        for tag in "abc":
            env.process(proc(tag))
        env.run()
        assert log == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimError):
            env.timeout(-1)

    def test_run_until_time(self):
        env = Environment()
        log = []

        def proc():
            for _ in range(10):
                yield env.timeout(1)
                log.append(env.now)

        env.process(proc())
        env.run(until=4.5)
        assert log == [1, 2, 3, 4]
        assert env.now == 4.5
        env.run()
        assert log[-1] == 10

    def test_chained_timeouts_accumulate(self):
        env = Environment()

        def proc():
            yield env.timeout(1)
            yield env.timeout(2)
            return env.now

        p = env.process(proc())
        assert env.run(until=p) == 3


class TestProcesses:
    def test_process_return_value(self):
        env = Environment()

        def proc():
            yield env.timeout(1)
            return "done"

        p = env.process(proc())
        assert env.run(until=p) == "done"

    def test_process_waits_on_process(self):
        env = Environment()

        def child():
            yield env.timeout(2)
            return 42

        def parent():
            value = yield env.process(child())
            return value + 1

        assert env.run(until=env.process(parent())) == 43

    def test_yield_completed_event_continues_immediately(self):
        env = Environment()

        def proc():
            t = env.timeout(1)
            yield env.timeout(5)  # t has long fired by now
            yield t
            return env.now

        assert env.run(until=env.process(proc())) == 5

    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_yield_non_event_rejected(self):
        env = Environment()

        def proc():
            yield 7

        with pytest.raises(SimError):
            env.process(proc())
            env.run()

    def test_strict_mode_raises_process_exception(self):
        env = Environment(strict=True)

        def proc():
            yield env.timeout(1)
            raise ValueError("boom")

        env.process(proc())
        with pytest.raises(ValueError, match="boom"):
            env.run()

    def test_nonstrict_mode_fails_event(self):
        env = Environment(strict=False)

        def proc():
            yield env.timeout(1)
            raise ValueError("boom")

        p = env.process(proc())
        with pytest.raises(ValueError):
            env.run(until=p)

    def test_failed_event_thrown_into_waiter(self):
        env = Environment(strict=False)

        def child():
            yield env.timeout(1)
            raise RuntimeError("child failed")

        def parent():
            try:
                yield env.process(child())
            except RuntimeError:
                return "caught"
            return "not caught"

        assert env.run(until=env.process(parent())) == "caught"


class TestEvents:
    def test_manual_succeed(self):
        env = Environment()
        ev = env.event()
        results = []

        def waiter():
            value = yield ev
            results.append(value)

        def trigger():
            yield env.timeout(3)
            ev.succeed("payload")

        env.process(waiter())
        env.process(trigger())
        env.run()
        assert results == ["payload"]

    def test_double_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimError):
            ev.succeed()

    def test_value_before_trigger_raises(self):
        env = Environment()
        with pytest.raises(SimError):
            env.event().value

    def test_all_of_barrier(self):
        env = Environment()

        def worker(d):
            yield env.timeout(d)

        def coordinator():
            yield env.all_of([env.process(worker(d)) for d in (5, 1, 3)])
            return env.now

        assert env.run(until=env.process(coordinator())) == 5

    def test_all_of_empty(self):
        env = Environment()

        def proc():
            yield env.all_of([])
            return env.now

        assert env.run(until=env.process(proc())) == 0

    def test_run_until_event_deadlock_detected(self):
        env = Environment()
        ev = env.event()  # never triggered
        with pytest.raises(SimError, match="deadlock"):
            env.run(until=ev)

    def test_peek(self):
        env = Environment()
        assert env.peek() == float("inf")
        env.timeout(7)
        assert env.peek() == 7
