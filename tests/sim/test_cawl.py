"""The CAWL cache-aware write-back model: deterministic, and shaped the
way a write-back cache must be (absorbing hot overwrites, missing cold
reads, draining on fsync, stalling on backpressure)."""

from __future__ import annotations

import pytest

from repro.bench.scenarios import SCENARIOS, Op
from repro.sim.cawl import DEFAULTS, execute_sim_stream


def _write(file, offset, size, tenant="t"):
    return Op(tenant, "write", file, offset, size)


def _read(file, offset, size, tenant="t"):
    return Op(tenant, "read", file, offset, size)


def test_sim_is_exactly_deterministic():
    ops = SCENARIOS["hot_cold_mix"].ops(1337, "short")
    a = execute_sim_stream(ops, 1337)
    b = execute_sim_stream(ops, 1337)
    assert a.counters == b.counters
    assert a.wall_seconds == b.wall_seconds
    assert a.latencies == b.latencies


def test_hot_overwrites_absorbed():
    ops = [_write("h", 0, 4096) for _ in range(10)]
    res = execute_sim_stream(ops, 0)
    # first write dirties the block; the other nine are absorbed
    assert res.counters["sim_absorbed_overwrites"] == 9


def test_reads_hit_after_write_miss_cold():
    ops = [_write("h", 0, 4096), _read("h", 0, 4096), _read("cold", 0, 4096)]
    res = execute_sim_stream(ops[:2], 0)
    assert res.counters["sim_cache_hits"] == 1
    assert res.counters["sim_cache_misses"] == 0
    res = execute_sim_stream(ops, 0)
    assert res.counters["sim_cache_misses"] == 1


def test_fsync_drains_all_dirty_bytes():
    ops = [_write("f", i * 4096, 4096) for i in range(4)]
    res = execute_sim_stream(ops, 0)
    leftover = res.counters["sim_residual_dirty_bytes"]
    assert leftover > 0
    ops.append(Op("t", "fsync", "f", 0, 0))
    res = execute_sim_stream(ops, 0)
    assert res.counters["sim_residual_dirty_bytes"] == 0
    assert res.counters["sim_sync_flushes"] == 1
    assert res.counters["sim_writeback_bytes"] >= leftover


def test_backpressure_engages_background_flusher():
    # dirty far more than the cache can hold: the writer must stall and
    # the flusher must drain in the background
    blocks = 2 * DEFAULTS["sim_cache_bytes"] // DEFAULTS["sim_block_bytes"]
    ops = [_write("big", i * 4096, 4096) for i in range(blocks)]
    res = execute_sim_stream(ops, 0)
    assert res.counters["sim_backpressure_stalls"] > 0
    assert res.counters["sim_writeback_flushes"] > 0
    assert res.counters["sim_writeback_bytes"] > 0


def test_eviction_pins_dirty_blocks():
    # touch more distinct blocks than the residency cap; only clean
    # (read-promoted) blocks may be evicted
    cap_blocks = DEFAULTS["sim_cache_bytes"] // DEFAULTS["sim_block_bytes"]
    ops = [_write("w", 0, 4096), Op("t", "fsync", "w", 0, 0)]
    ops += [_read("w", 0, 4096) for _ in range(2)]
    ops += [_read(f"r{i}", 0, 4096) for i in range(cap_blocks + 8)]
    res = execute_sim_stream(ops, 0)
    assert res.counters["sim_evictions"] > 0


def test_creates_serialize_on_the_mds():
    ops = [Op("t", "create", f"c{i}", 0, 256) for i in range(5)]
    res = execute_sim_stream(ops, 0)
    assert res.counters["sim_meta_ops"] == 5
    # each create pays at least the metadata op cost
    for xs in res.latencies.values():
        assert all(x >= DEFAULTS["sim_meta_op_seconds"] for x in xs)


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="crash_cycle"):
        execute_sim_stream([Op("t", "crash_cycle", "x", 0, 0)], 0)


def test_simulated_latencies_cover_every_op():
    ops = SCENARIOS["hot_cold_mix"].ops(7, "short")
    res = execute_sim_stream(ops, 7)
    assert sum(len(v) for v in res.latencies.values()) == len(ops)
    assert res.wall_seconds > 0
