"""Regression: ``plfs_writev`` zero-length handling on both branches.

The local branch normalized and dropped empty iovec entries; the remote
(plfsd-backed) branch forwarded the raw buffer list untouched, so a
daemon client paid one wire message per empty view and an all-empty
iovec produced a zero-byte append request instead of the local branch's
``return 0``.  Both branches must agree: empty views are dropped before
transport, and an all-empty iovec is a no-op returning 0.
"""

from __future__ import annotations

import os

import pytest

from repro.plfs import api as plfs_api


class _RecordingRemote:
    """A stand-in for a plfsd RemoteFd: records what reaches the wire."""

    is_remote = True

    def __init__(self):
        self.calls: list[tuple[list[bytes], int]] = []

    def writev(self, views, offset):
        self.calls.append(([bytes(v) for v in views], offset))
        return sum(len(v) for v in views)


def test_remote_branch_filters_empty_views():
    fd = _RecordingRemote()
    n = plfs_api.plfs_writev(fd, [b"", b"abc", b"", memoryview(b"de"), b""], 7)
    assert n == 5
    assert fd.calls == [([b"abc", b"de"], 7)]


def test_remote_all_empty_iovec_never_touches_the_wire():
    fd = _RecordingRemote()
    assert plfs_api.plfs_writev(fd, [b"", b"", b""], 0) == 0
    assert plfs_api.plfs_writev(fd, [], 0) == 0
    assert fd.calls == []


def test_remote_views_are_normalized_to_bytes_like(tmp_path):
    import array

    fd = _RecordingRemote()
    data = array.array("i", [1, 2, 3])
    n = plfs_api.plfs_writev(fd, [data, b""], 0)
    assert n == len(data.tobytes())
    assert fd.calls == [([data.tobytes()], 0)]


def test_local_all_empty_iovec_returns_zero(tmp_path):
    path = str(tmp_path / "c")
    fd = plfs_api.plfs_open(path, os.O_CREAT | os.O_RDWR)
    try:
        assert plfs_api.plfs_writev(fd, [b"", b""], 0) == 0
        assert plfs_api.plfs_writev(fd, [], 0) == 0
        assert plfs_api.plfs_writev(fd, [b"", b"xy", b""], 0) == 2
        assert plfs_api.plfs_read(fd, 4, 0) == b"xy"
    finally:
        plfs_api.plfs_close(fd)


def test_local_read_only_handle_still_rejected_before_empty_check(tmp_path):
    path = str(tmp_path / "c")
    fd = plfs_api.plfs_open(path, os.O_CREAT | os.O_RDWR)
    plfs_api.plfs_write(fd, b"seed", 4, 0)
    plfs_api.plfs_close(fd)
    ro = plfs_api.plfs_open(path, os.O_RDONLY)
    try:
        with pytest.raises(plfs_api.BadFlagsError):
            plfs_api.plfs_writev(ro, [b""], 0)
    finally:
        plfs_api.plfs_close(ro)
