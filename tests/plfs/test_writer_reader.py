"""Tests for the log-structured write path and the indexed read path."""

from __future__ import annotations

import os

import pytest

from repro.plfs import writer as writer_module
from repro.plfs.container import Container
from repro.plfs.errors import BadFlagsError, CorruptIndexError
from repro.plfs.reader import ReadFile, logical_size
from repro.plfs.writer import WriteFile


@pytest.fixture
def container(container_path):
    c = Container(container_path)
    c.create()
    return c


class TestWriteFile:
    def test_data_written_sequentially_regardless_of_offset(self, container):
        """The log-structured property: random logical offsets append."""
        w = WriteFile(container)
        w.write(b"CCC", 200, pid=1)
        w.write(b"AAA", 0, pid=1)
        w.write(b"BBB", 100, pid=1)
        w.close()
        [(index_path, data_path)] = container.droppings()
        # Physical layout is append order, not logical order.
        assert open(data_path, "rb").read() == b"CCCAAABBB"

    def test_one_dropping_pair_per_pid(self, container):
        w = WriteFile(container)
        for pid in (1, 2, 3):
            w.write(b"x", 0, pid=pid)
        assert w.dropping_count == 3
        w.close()
        assert len(container.droppings()) == 3

    def test_counters(self, container):
        w = WriteFile(container)
        w.write(b"abcd", 10, pid=1)
        w.write(b"ef", 100, pid=1)
        assert w.total_written == 6
        assert w.max_logical_end == 102
        w.close()

    def test_write_after_close_raises(self, container):
        w = WriteFile(container)
        w.close()
        with pytest.raises(BadFlagsError):
            w.write(b"x", 0, pid=1)

    def test_close_idempotent(self, container):
        w = WriteFile(container)
        w.write(b"x", 0, pid=1)
        w.close()
        w.close()

    def test_index_records_buffered_until_flush(self, container):
        w = WriteFile(container)
        w.write(b"abc", 0, pid=1)
        [(index_path, _)] = container.droppings()
        assert os.path.getsize(index_path) == 0  # not yet flushed
        w.flush_indexes()
        assert os.path.getsize(index_path) > 0
        w.close()

    def test_auto_flush_threshold(self, container, monkeypatch):
        monkeypatch.setattr(writer_module, "INDEX_FLUSH_THRESHOLD", 4)
        w = WriteFile(container)
        for i in range(4):
            w.write(b"x", i * 10, pid=1)  # sparse: no record merging
        [(index_path, _)] = container.droppings()
        assert os.path.getsize(index_path) > 0
        w.close()

    def test_sequential_writes_merge_into_one_record(self, container):
        """Index compression: a sequential stream keeps a one-record index."""
        w = WriteFile(container)
        for i in range(100):
            w.write(b"abcd", i * 4, pid=1)
        w.close()
        [(index_path, _)] = container.droppings()
        from repro.plfs.index import read_index_dropping

        records = read_index_dropping(index_path)
        assert records.shape == (1,)
        assert records[0]["length"] == 400
        r = ReadFile(container)
        assert r.read(400, 0) == b"abcd" * 100
        r.close()

    def test_merge_disabled(self, container):
        w = WriteFile(container, merge_records=False)
        for i in range(10):
            w.write(b"abcd", i * 4, pid=1)
        w.close()
        from repro.plfs.index import read_index_dropping

        [(index_path, _)] = container.droppings()
        assert read_index_dropping(index_path).shape == (10,)

    def test_no_merge_across_pids(self, container):
        w = WriteFile(container)
        w.write(b"aa", 0, pid=1)
        w.write(b"bb", 2, pid=2)
        w.write(b"cc", 4, pid=1)
        w.close()
        # Three records total: pid 1's writes were separated by pid 2's.
        from repro.plfs.index import read_index_dropping

        total = sum(
            read_index_dropping(ip).shape[0] for ip, _ in container.droppings()
        )
        assert total == 3
        r = ReadFile(container)
        assert r.read(6, 0) == b"aabbcc"
        r.close()

    def test_interleaved_overwrite_not_shadowed_by_merge(self, container):
        """The timestamp-safety property: another stream's overwrite that
        lands *between* two mergeable writes must survive."""
        w = WriteFile(container)
        w.write(b"AAAA", 0, pid=1)
        w.write(b"bb", 1, pid=2)  # overwrites [1,3)
        w.write(b"CCCC", 4, pid=1)  # would merge with the first without guard
        r = ReadFile(container, writer=w)
        assert r.read(8, 0) == b"AbbACCCC"
        r.close()
        w.close()

    def test_non_contiguous_never_merges(self, container):
        w = WriteFile(container)
        w.write(b"aa", 0, pid=1)
        w.write(b"bb", 10, pid=1)
        assert len(w.pending_records()[0][0]) == 2
        w.close()

    def test_memoryview_payload(self, container):
        w = WriteFile(container)
        w.write(memoryview(b"hello"), 0, pid=1)
        w.sync()
        r = ReadFile(container)
        assert r.read(5, 0) == b"hello"
        r.close()
        w.close()

    def test_pending_records_visible(self, container):
        w = WriteFile(container)
        w.write(b"abc", 0, pid=1)
        pending = w.pending_records()
        assert len(pending) == 1
        records, data_path = pending[0]
        assert records.shape == (1,)
        assert records[0]["length"] == 3
        assert os.path.exists(data_path)
        w.close()


class TestReadFile:
    def test_read_roundtrip(self, container):
        w = WriteFile(container)
        w.write(b"hello world", 0, pid=1)
        w.sync()
        w.close()
        r = ReadFile(container)
        assert r.read(11, 0) == b"hello world"
        assert r.read(5, 6) == b"world"
        assert r.read(100, 0) == b"hello world"
        assert r.read(5, 11) == b""
        r.close()

    def test_holes_read_as_zeros(self, container):
        w = WriteFile(container)
        w.write(b"A", 0, pid=1)
        w.write(b"B", 10, pid=1)
        w.close()
        r = ReadFile(container)
        assert r.read(11, 0) == b"A" + b"\x00" * 9 + b"B"
        r.close()

    def test_overwrite_resolution_across_pids(self, container):
        w = WriteFile(container)
        w.write(b"aaaa", 0, pid=1)
        w.write(b"bb", 1, pid=2)  # later write from another stream wins
        w.close()
        r = ReadFile(container)
        assert r.read(4, 0) == b"abba"
        r.close()

    def test_reader_sees_unflushed_writer_records(self, container):
        w = WriteFile(container)
        w.write(b"live", 0, pid=1)
        r = ReadFile(container, writer=w)
        assert r.read(4, 0) == b"live"
        r.close()
        w.close()

    def test_cross_handle_sync_is_visible_without_refresh(self, container):
        # Regression: a reader built before another handle's sync used to
        # serve the stale index forever; the sync's cache invalidation now
        # makes the next read revalidate and see the new droppings.
        w1 = WriteFile(container)
        w1.write(b"one", 0, pid=1)
        w1.sync()
        r = ReadFile(container)
        assert r.read(3, 0) == b"one"
        w2 = WriteFile(container)
        w2.write(b"two", 3, pid=2)
        w2.sync()
        assert r.read(6, 0) == b"onetwo"
        r.refresh()  # explicit refresh still works and agrees
        assert r.read(6, 0) == b"onetwo"
        r.close()
        w1.close()
        w2.close()

    def test_read_into(self, container):
        w = WriteFile(container)
        w.write(b"0123456789", 0, pid=1)
        w.close()
        r = ReadFile(container)
        buf = bytearray(4)
        assert r.read_into(buf, 3) == 4
        assert bytes(buf) == b"3456"
        r.close()

    def test_read_closed_raises(self, container):
        r = ReadFile(container)
        r.close()
        with pytest.raises(ValueError):
            r.read(1, 0)

    def test_corrupt_data_dropping_detected(self, container):
        w = WriteFile(container)
        w.write(b"full payload", 0, pid=1)
        w.close()
        [(_, data_path)] = container.droppings()
        with open(data_path, "r+b") as fh:
            fh.truncate(4)  # data no longer matches the index promise
        r = ReadFile(container)
        with pytest.raises(CorruptIndexError):
            r.read(12, 0)
        r.close()

    def test_logical_size_helper(self, container):
        assert logical_size(container) == 0
        w = WriteFile(container)
        w.write(b"xyz", 7, pid=1)
        w.sync()
        w.close()
        assert logical_size(container) == 10

    def test_multi_dropping_read(self, container):
        w = WriteFile(container)
        # Interleaved ranks writing disjoint stripes, as MPI-IO would.
        stripe = 4
        ranks = 4
        for step in range(3):
            for rank in range(ranks):
                offset = (step * ranks + rank) * stripe
                payload = bytes([65 + rank]) * stripe
                w.write(payload, offset, pid=rank)
        w.close()
        r = ReadFile(container)
        expected = (b"AAAABBBBCCCCDDDD") * 3
        assert r.read(len(expected), 0) == expected
        r.close()
        assert len(container.droppings()) == ranks
