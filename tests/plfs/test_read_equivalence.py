"""Property-based equivalence of the three read routes.

The fast lane adds two shortcuts the read path may take — the persistent
compacted ``global.index`` and the process-wide shared index cache — on
top of the slow per-dropping merge.  Whatever route a read takes, the
bytes must be identical: over seeded random write schedules (overwrites,
holes, many pids), after a ``repro-fsck`` repair, and with the
write-ahead index enabled.
"""

from __future__ import annotations

import os
import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import plfs
from repro.faults.fsck import fsck
from repro.plfs.cache import compact, load_index, shared_cache
from repro.plfs.container import Container
from repro.plfs.reader import ReadFile
from repro.plfs.writer import WriteFile

MAX_FILE = 4096

schedules = st.lists(
    st.tuples(
        st.integers(0, MAX_FILE),  # offset
        st.binary(min_size=1, max_size=256),  # payload
        st.integers(0, 4),  # pid → dropping
    ),
    min_size=1,
    max_size=30,
)


def apply_model(writes):
    model = bytearray()
    for offset, payload, _pid in writes:
        end = offset + len(payload)
        if len(model) < end:
            model.extend(b"\x00" * (end - len(model)))
        model[offset:end] = payload
    return bytes(model)


def read_all_routes(path, expected):
    """Read the container through every route and assert byte equality."""
    container = Container(path)
    n = len(expected) + 64

    # Route 1: slow path — per-dropping merge, no shared state.
    with ReadFile(container, use_shared_cache=False) as r:
        assert r.read(n, 0) == expected, "merge route diverged"

    # Route 2: compacted file.
    compact(container)
    loaded = load_index(container)
    assert loaded.source == "compacted"
    shared_cache().clear()
    with ReadFile(container) as r:
        assert r.read(n, 0) == expected, "compacted route diverged"

    # Route 3: warm shared cache (second open hits).
    with ReadFile(container) as r:
        assert r.read(n, 0) == expected, "cached route diverged"
    assert shared_cache().stats["hits"] >= 1

    # Coalescing off must agree too (plan-execution equivalence).
    with ReadFile(container, coalesce=False, use_shared_cache=False) as r:
        assert r.read(n, 0) == expected, "uncoalesced route diverged"


@settings(max_examples=40, deadline=None)
@given(writes=schedules)
def test_three_routes_byte_identical(writes):
    tmp = tempfile.mkdtemp()
    try:
        path = os.path.join(tmp, "f")
        fd = plfs.plfs_open(
            path,
            os.O_CREAT | os.O_WRONLY,
            open_opt=plfs.OpenOptions(compact_on_close=False),
        )
        for offset, payload, pid in writes:
            plfs.plfs_write(fd, payload, len(payload), offset, pid=pid)
        plfs.plfs_close(fd)
        assert not os.path.exists(Container(path).global_index_path())
        read_all_routes(path, apply_model(writes))
    finally:
        shared_cache().clear()
        shutil.rmtree(tmp, ignore_errors=True)


@settings(max_examples=25, deadline=None)
@given(writes=schedules)
def test_routes_agree_with_write_ahead_index(writes):
    tmp = tempfile.mkdtemp()
    try:
        path = os.path.join(tmp, "f")
        fd = plfs.plfs_open(
            path,
            os.O_CREAT | os.O_WRONLY,
            open_opt=plfs.OpenOptions(write_ahead_index=True),
        )
        for offset, payload, pid in writes:
            plfs.plfs_write(fd, payload, len(payload), offset, pid=pid)
        plfs.plfs_close(fd)
        # Clean close compacted; all routes must agree with the model.
        assert load_index(Container(path)).source == "compacted"
        read_all_routes(path, apply_model(writes))
    finally:
        shared_cache().clear()
        shutil.rmtree(tmp, ignore_errors=True)


@settings(max_examples=20, deadline=None)
@given(writes=schedules)
def test_routes_agree_after_fsck_repair(writes):
    """A crashed WAL writer leaves no index droppings; fsck rebuilds them.
    Every read route over the repaired container must match the model —
    and the pre-crash compacted index must never leak stale bytes in."""
    tmp = tempfile.mkdtemp()
    try:
        path = os.path.join(tmp, "f")
        container = Container(path)
        container.create()

        # An earlier clean generation, compacted on close.
        fd = plfs.plfs_open(path, os.O_WRONLY)
        plfs.plfs_write(fd, b"\xee" * 32, 32, 0)
        plfs.plfs_close(fd)
        assert os.path.exists(container.global_index_path())

        # A writer that "crashes": data + WAL persisted, index never
        # flushed, openhost marker left behind.
        w = WriteFile(container, wal=True)
        for offset, payload, pid in writes:
            w.write(payload, offset, pid=pid)
        container.register_open(os.getpid())
        del w  # no close(): the index flush never happens

        report = fsck(path)
        assert report.check is not None and report.check.ok
        # fsck must have discarded the stale compacted index.
        assert not os.path.exists(container.global_index_path())

        model = bytearray(b"\xee" * 32)
        for offset, payload, _pid in writes:
            end = offset + len(payload)
            if len(model) < end:
                model.extend(b"\x00" * (end - len(model)))
            model[offset:end] = payload
        read_all_routes(path, bytes(model))
    finally:
        shared_cache().clear()
        shutil.rmtree(tmp, ignore_errors=True)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_flatten_then_routes_agree(container_path, seed):
    """plfs_flatten_index rewrites the physical layout and refreshes the
    compacted index; every route must still serve the same bytes."""
    import random

    rng = random.Random(seed)
    container = Container(container_path)
    container.create()
    writes = [
        (rng.randrange(0, 2048), os.urandom(rng.randrange(1, 128)), rng.randrange(3))
        for _ in range(20)
    ]
    fd = plfs.plfs_open(container_path, os.O_WRONLY)
    for offset, payload, pid in writes:
        plfs.plfs_write(fd, payload, len(payload), offset, pid=pid)
    plfs.plfs_close(fd)
    plfs.plfs_flatten_index(container_path)
    assert load_index(container).source == "compacted"
    read_all_routes(container_path, apply_model(writes))
