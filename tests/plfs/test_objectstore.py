"""Unit coverage for the object store, the write-back tier, and the
tiered ``BackingStore`` — including the error-path hygiene regressions
(a failed PUT must leave the entry dirty; a crashed flush must never
mark clean first) and the injector-routing audit (every object op must
pass through an armed ``FaultyBackingStore``)."""

from __future__ import annotations

import os

import pytest

from repro.faults.injector import FaultInjector, FaultSpec, InjectedCrash
from repro.plfs import backing
from repro.plfs.objectstore import (
    ObjectStore,
    ObjectStoreBackingStore,
    ObjectStoreError,
    TierConfig,
    WriteBackTier,
    make_backend,
)


@pytest.fixture
def store(tmp_path):
    return ObjectStore(str(tmp_path / "objects"))


@pytest.fixture
def tiered(tmp_path, store):
    root = tmp_path / "tiered"
    root.mkdir()
    return store, WriteBackTier(store, str(root), TierConfig(capacity_bytes=1024))


def _seed_local(tier, key: str, data: bytes) -> str:
    path = tier.local_path(key)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "wb") as fh:
        fh.write(data)
    return path


# ---------------------------------------------------------------------- #
# the store itself
# ---------------------------------------------------------------------- #


class TestObjectStore:
    def test_put_get_roundtrip(self, store):
        info = store.put("c/hostdir.0/dropping.data.1", b"payload bytes")
        assert info.size == 13 and info.parts == 1
        assert store.get("c/hostdir.0/dropping.data.1") == b"payload bytes"
        assert store.head("c/hostdir.0/dropping.data.1") == info

    def test_head_on_missing_key_is_none(self, store):
        assert store.head("nope/never") is None

    def test_list_is_prefix_scoped_and_sorted(self, store):
        store.put("a/x", b"1")
        store.put("a/y", b"2")
        store.put("b/z", b"3")
        assert store.list("a/") == ["a/x", "a/y"]
        assert store.list() == ["a/x", "a/y", "b/z"]

    def test_delete_is_idempotent(self, store):
        store.put("k", b"v")
        assert store.delete("k") is True
        assert store.delete("k") is False
        assert store.head("k") is None

    def test_identical_payloads_share_one_blob(self, store):
        store.put("one", b"same bytes")
        store.put("two", b"same bytes")
        assert store.stats["object_dedup_hits"] == 1
        blobs = [
            name
            for _, _, names in os.walk(os.path.join(store.root, "blobs"))
            for name in names
        ]
        assert len(blobs) == 1

    @pytest.mark.parametrize("bad", ["/abs", "a/../b", "", "a//b", "./a"])
    def test_malformed_keys_are_rejected(self, store, bad):
        with pytest.raises(ValueError):
            store.put(bad, b"x")

    def test_get_detects_corrupt_blob(self, store):
        info = store.put("k", b"original")
        blob = store._blob_path(info.etag)
        with open(blob, "wb") as fh:
            fh.write(b"corrupted")
        with pytest.raises(ObjectStoreError, match="corrupt"):
            store.get("k")

    def test_get_detects_lost_blob(self, store):
        info = store.put("k", b"original")
        os.unlink(store._blob_path(info.etag))
        with pytest.raises(ObjectStoreError, match="lost blob"):
            store.get("k")

    def test_multipart_assembles_byte_identical(self, store):
        payload = bytes(range(256)) * 40
        info = store.put("big", payload, part_size=1000)
        assert info.parts > 1
        assert store.get("big") == payload
        assert store.pending_uploads() == []

    def test_multipart_abort_leaves_no_object(self, store):
        upload = store.create_multipart("k")
        upload.write_part(b"part one")
        upload.abort()
        assert store.head("k") is None
        assert store.pending_uploads() == []

    def test_uncommitted_upload_is_invisible_but_pending(self, store):
        upload = store.create_multipart("c/k")
        upload.write_part(b"part one")
        assert store.head("c/k") is None
        assert store.list() == []
        [(staging, key)] = store.pending_uploads()
        assert key == "c/k" and os.path.isdir(staging)

    def test_sweep_blobs_keeps_referenced(self, store):
        store.put("keep", b"kept")
        info = store.put("drop", b"dropped")
        store.delete("drop")
        assert store.sweep_blobs() == 1
        assert store.get("keep") == b"kept"
        assert not os.path.exists(store._blob_path(info.etag))


# ---------------------------------------------------------------------- #
# the write-back tier
# ---------------------------------------------------------------------- #


class TestWriteBackTier:
    def test_write_through_then_drain_uploads(self, tiered):
        store, tier = tiered
        path = _seed_local(tier, "c/f", b"hello")
        tier.note_write(path, 5)
        assert tier.dirty_keys() == ["c/f"]
        tier.drain()
        assert tier.dirty_keys() == [] and tier.clean_keys() == ["c/f"]
        assert store.get("c/f") == b"hello"

    def test_hiwater_triggers_flush_to_lowater(self, tiered):
        store, tier = tiered  # capacity 1024: hiwater 768, lowater 256
        for i in range(4):
            path = _seed_local(tier, f"c/f{i}", b"x" * 250)
            tier.note_write(path, 250)
        assert tier.stats["tier_hiwater_wakeups"] == 1
        assert tier.dirty_bytes() <= tier.config.lowater_bytes
        # oldest-first: f0 flushed before f3
        assert "c/f0" in tier.clean_keys()

    def test_repeat_writes_to_dirty_entry_are_absorbed(self, tiered):
        _, tier = tiered
        path = _seed_local(tier, "c/f", b"ab")
        tier.note_write(path, 1)
        tier.note_write(path, 1)
        assert tier.stats["tier_absorbed_writes"] == 1
        assert tier.dirty_keys() == ["c/f"]

    def test_paths_outside_root_are_ignored(self, tiered, tmp_path):
        _, tier = tiered
        outside = tmp_path / "elsewhere"
        outside.write_bytes(b"x")
        tier.note_write(str(outside), 1)
        assert tier.dirty_keys() == []
        assert tier.stats["tier_untracked_writes"] == 1

    def test_evict_reclaims_clean_only_and_restore_refills(self, tiered):
        store, tier = tiered
        clean_path = _seed_local(tier, "c/clean", b"clean bytes")
        tier.note_write(clean_path, 11)
        tier.drain()
        dirty_path = _seed_local(tier, "c/dirty", b"dirty bytes")
        tier.note_write(dirty_path, 11)

        assert tier.evict() == 11
        assert not os.path.exists(clean_path)
        assert os.path.exists(dirty_path), "eviction must never touch dirty entries"

        assert tier.restore_missing("c/") == ["c/clean"]
        with open(clean_path, "rb") as fh:
            assert fh.read() == b"clean bytes"

    def test_vanished_local_file_deletes_stale_object(self, tiered):
        store, tier = tiered
        path = _seed_local(tier, "c/wal", b"write-ahead")
        tier.note_write(path, 11)
        tier.drain()
        assert store.head("c/wal") is not None
        # clean close deletes the WAL locally, then more bytes are noted
        tier.note_write(path, 4)
        os.unlink(path)
        tier.drain()
        assert store.head("c/wal") is None, (
            "a restore must not resurrect a file the workload deleted"
        )
        assert tier.stats["tier_vanished"] == 1
        assert tier.dirty_keys() == []


# ---------------------------------------------------------------------- #
# error-path hygiene (the satellite bug sweep)
# ---------------------------------------------------------------------- #


class TestTierHygiene:
    """A failed PUT must leave the entry dirty; a crashed flush must not
    mark clean before the object lands (modelled on TestWriterHygiene)."""

    def _dirty_tier(self, tiered, data=b"must survive"):
        store, tier = tiered
        path = _seed_local(tier, "c/f", data)
        tier.note_write(path, len(data))
        return store, tier, path

    def test_failed_put_keeps_entry_dirty_and_drain_raises(self, tiered):
        store, tier, path = self._dirty_tier(tiered)
        injector = FaultInjector([FaultSpec("object_put", "enospc", op=1)])
        with injector.armed():
            with pytest.raises(OSError):
                tier.drain()
        assert tier.dirty_keys() == ["c/f"], "failed PUT must leave the entry dirty"
        assert tier.clean_keys() == []
        assert store.head("c/f") is None
        # the retry path: a later drain uploads it
        tier.drain()
        assert store.get("c/f") == b"must survive"

    def test_background_flush_swallows_error_but_stays_dirty(self, tiered):
        # enough dirty bytes that flush_to_lowater actually attempts a PUT
        store, tier, path = self._dirty_tier(tiered, data=b"x" * 300)
        injector = FaultInjector([FaultSpec("object_put", "enospc", op=1)])
        with injector.armed():
            tier.flush_to_lowater()  # background flusher: record, move on
        assert tier.stats["tier_put_errors"] == 1
        assert tier.dirty_keys() == ["c/f"]

    def test_crashed_flush_never_marks_clean_first(self, tiered):
        store, tier, path = self._dirty_tier(tiered)
        injector = FaultInjector([FaultSpec("object_commit", "crash", op=1)])
        with injector.armed():
            with pytest.raises(InjectedCrash):
                tier.drain()
        assert tier.dirty_keys() == ["c/f"], (
            "crash mid-flush must leave the entry dirty — marking clean "
            "first would let eviction reap the only copy"
        )
        # eviction right after the crash must refuse the entry
        tier.evict()
        assert os.path.exists(path)

    def test_lost_commit_falsely_marks_clean_without_the_object(self, tiered):
        """The failure mode the stale-tier-eviction matrix arm builds on:
        a *lost* (acknowledged, unpersisted) commit defeats the hygiene
        invariant by construction — the tier cannot tell."""
        store, tier, path = self._dirty_tier(tiered)
        injector = FaultInjector([FaultSpec("object_commit", "lost", op=1)])
        with injector.armed():
            tier.drain()
        assert tier.clean_keys() == ["c/f"]
        assert store.head("c/f") is None


# ---------------------------------------------------------------------- #
# the BackingStore implementation + injector routing (satellite audit)
# ---------------------------------------------------------------------- #


class TestObjectStoreBackingStore:
    def test_writes_pass_through_and_note_the_tier(self, tmp_path):
        root = tmp_path / "root"
        root.mkdir()
        be = make_backend(str(root))
        path = str(root / "c" / "dropping.data.1")
        os.makedirs(os.path.dirname(path))
        fd = os.open(path, os.O_WRONLY | os.O_CREAT, 0o644)
        try:
            assert be.write_data(fd, b"abc", path) == 3
            assert be.write_datav(fd, [b"de", b"f"], path) == 3
        finally:
            os.close(fd)
        assert be.tier.dirty_keys() == ["c/dropping.data.1"]
        with open(path, "rb") as fh:
            assert fh.read() == b"abcdef"

    def test_fsync_is_a_tier_sync_barrier(self, tmp_path):
        root = tmp_path / "root"
        root.mkdir()
        be = make_backend(str(root))
        path = str(root / "f")
        with open(path, "wb") as fh:
            fh.write(b"durable")
        be.tier.note_write(path, 7)
        fd = os.open(path, os.O_RDONLY)
        try:
            be.fsync(fd)
        finally:
            os.close(fd)
        assert be.tier.dirty_keys() == []
        assert be.store.get("f") == b"durable"
        assert be.counters()["tier_sync_drains"] == 1

    def test_armed_injector_wraps_the_installed_backend(self, tmp_path):
        """The routing bugfix: arming over an installed objectstore
        backend must inject *into* it, not route around it (the PR-5
        ``write_datav`` routing gap, one layer up)."""
        root = tmp_path / "root"
        root.mkdir()
        be = make_backend(str(root))
        injector = FaultInjector([FaultSpec("data_write", "enospc", op=1)])
        previous = backing.install(be)
        try:
            with injector.armed():
                wrapper = backing.current()
                assert wrapper.inner is be, (
                    "armed() must wrap the installed store, not a fresh default"
                )
                path = str(root / "f")
                fd = os.open(path, os.O_WRONLY | os.O_CREAT, 0o644)
                try:
                    with pytest.raises(OSError):
                        wrapper.write_data(fd, b"x", path)
                finally:
                    os.close(fd)
            # un-armed: writes reach the backend (and its tier) again
            assert backing.current() is be
        finally:
            backing.install(previous)

    @pytest.mark.parametrize(
        "point", ["object_put", "object_part", "object_commit", "object_get"]
    )
    def test_every_object_op_routes_through_the_injector(self, tmp_path, point):
        """No objectstore operation may bypass an armed injector."""
        store = ObjectStore(str(tmp_path / "objects"))
        store.put("pre", b"pre-faulted")  # for the GET arm
        injector = FaultInjector([FaultSpec(point, "enospc", op=1)])
        with injector.armed():
            with pytest.raises(OSError):
                if point == "object_part":
                    store.put("k", b"z" * 64, part_size=16)
                elif point == "object_get":
                    store.get("pre")
                else:
                    store.put("k", b"payload")
        assert [e.point for e in injector.fired()] == [point]

    def test_lost_get_surfaces_as_missing_object(self, tmp_path):
        store = ObjectStore(str(tmp_path / "objects"))
        store.put("k", b"v")
        injector = FaultInjector([FaultSpec("object_get", "lost", op=1)])
        with injector.armed():
            with pytest.raises(ObjectStoreError, match="lost blob"):
                store.get("k")
