"""Tests for container maintenance tools (check / recover / usage)."""

from __future__ import annotations

import os

import pytest

from repro import plfs
from repro.plfs import constants
from repro.plfs.tools import ContainerReport, main, plfs_check, plfs_recover, plfs_usage


@pytest.fixture
def filled(container_path):
    """A closed container with some overwrites (log garbage)."""
    fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_WRONLY)
    plfs.plfs_write(fd, b"A" * 100, 100, 0)
    plfs.plfs_write(fd, b"B" * 100, 100, 0)  # shadows the first write
    plfs.plfs_write(fd, b"C" * 50, 50, 200)
    plfs.plfs_close(fd)
    return container_path


class TestCheck:
    def test_clean_container_ok(self, filled):
        report = plfs_check(filled)
        assert report.ok
        assert report.logical_size == 250
        assert report.physical_bytes == 250
        assert report.records == 3
        assert report.droppings == 1
        assert report.garbage_bytes == 100
        assert report.garbage_ratio == pytest.approx(0.4)
        assert "OK" in report.render()

    def test_empty_container_ok(self, container_path):
        plfs.plfs_create(container_path)
        report = plfs_check(container_path)
        assert report.ok
        assert report.logical_size == 0
        assert report.droppings == 0

    def test_not_a_container_raises(self, backend):
        with pytest.raises(plfs.ContainerNotFoundError):
            plfs_check(os.path.join(backend, "nope"))

    def test_truncated_index_detected(self, filled):
        [(index_path, _)] = plfs.Container(filled).droppings()
        with open(index_path, "r+b") as fh:
            fh.truncate(os.path.getsize(index_path) - 3)
        report = plfs_check(filled)
        assert not report.ok
        assert any("torn index" in p for p in report.problems)
        assert any("repro-fsck" in p for p in report.problems)

    def test_truncated_data_detected(self, filled):
        [(_, data_path)] = plfs.Container(filled).droppings()
        with open(data_path, "r+b") as fh:
            fh.truncate(10)
        report = plfs_check(filled)
        assert not report.ok
        assert any("past the end" in p for p in report.problems)

    def test_missing_index_detected(self, filled):
        [(index_path, _)] = plfs.Container(filled).droppings()
        os.unlink(index_path)
        report = plfs_check(filled)
        assert not report.ok

    def test_orphan_index_warned(self, filled):
        [(index_path, data_path)] = plfs.Container(filled).droppings()
        orphan = index_path.replace("dropping.index.", "dropping.index.9")
        with open(orphan, "wb"):
            pass
        report = plfs_check(filled)
        assert any("orphan" in w for w in report.warnings)

    def test_stale_openhost_warned(self, filled):
        plfs.Container(filled).register_open(pid=999)
        report = plfs_check(filled)
        assert report.ok  # a marker alone is not corruption
        assert any("openhost" in w for w in report.warnings)

    def test_bad_cached_metadata_detected(self, filled):
        c = plfs.Container(filled)
        c.clear_meta()
        c.drop_meta(9999, 9999)
        report = plfs_check(filled)
        assert not report.ok
        assert any("cached metadata" in p for p in report.problems)


class TestRecover:
    def test_recover_rebuilds_meta(self, filled):
        c = plfs.Container(filled)
        c.clear_meta()
        c.drop_meta(9999, 9999)  # wrong
        report = plfs_recover(filled)
        assert report.ok
        assert c.cached_size() == 250
        assert plfs.plfs_getattr(filled).st_size == 250

    def test_recover_clears_stale_markers(self, filled):
        c = plfs.Container(filled)
        c.register_open(pid=4242)
        report = plfs_recover(filled)
        assert report.ok
        assert c.open_writers() == []

    def test_recover_empty_container(self, container_path):
        plfs.plfs_create(container_path)
        report = plfs_recover(container_path)
        assert report.ok


class TestUsage:
    def test_usage_dict(self, filled):
        usage = plfs_usage(filled)
        assert usage["logical_bytes"] == 250
        assert usage["physical_bytes"] == 250
        assert usage["garbage_bytes"] == 100
        assert usage["droppings"] == 1

    def test_flatten_clears_garbage(self, filled):
        plfs.plfs_flatten_index(filled)
        usage = plfs_usage(filled)
        assert usage["garbage_bytes"] == 0
        assert usage["logical_bytes"] == 250


class TestCli:
    def test_check_exit_codes(self, filled, capsys):
        assert main(["check", filled]) == 0
        assert "OK" in capsys.readouterr().out
        [(index_path, _)] = plfs.Container(filled).droppings()
        os.unlink(index_path)
        assert main(["check", filled]) == 1

    def test_usage_output(self, filled, capsys):
        assert main(["usage", filled]) == 0
        assert "garbage_bytes" in capsys.readouterr().out

    def test_recover_cli(self, filled, capsys):
        plfs.Container(filled).register_open(pid=1)
        assert main(["recover", filled]) == 0

    def test_bad_args(self, capsys):
        assert main([]) == 2
        assert main(["frobnicate", "/x"]) == 2
