"""Tests for container creation, layout and metadata bookkeeping."""

from __future__ import annotations

import os
import stat as stat_module

import pytest

from repro.plfs import constants, util
from repro.plfs.container import (
    Container,
    is_container,
    readdir_logical,
    rmdir_logical,
)
from repro.plfs.errors import (
    ContainerExistsError,
    ContainerNotFoundError,
    IsAContainerError,
    NotAContainerError,
)
from repro.plfs.writer import WriteFile


class TestCreate:
    def test_create_layout(self, container_path):
        c = Container(container_path)
        assert not c.exists()
        c.create(0o640)
        assert c.exists()
        assert is_container(container_path)
        entries = set(os.listdir(container_path))
        assert constants.ACCESS_FILE in entries
        assert constants.CREATOR_FILE in entries
        assert constants.OPENHOSTS_DIR in entries
        assert constants.META_DIR in entries
        assert c.mode() == 0o640

    def test_create_idempotent(self, container_path):
        c = Container(container_path)
        c.create()
        c.create()  # no error
        assert c.exists()

    def test_create_exclusive_raises_on_existing(self, container_path):
        c = Container(container_path)
        c.create()
        with pytest.raises(ContainerExistsError):
            c.create(exclusive=True)

    def test_create_over_plain_file_raises(self, container_path):
        with open(container_path, "w") as fh:
            fh.write("plain")
        with pytest.raises(NotAContainerError):
            Container(container_path).create()

    def test_plain_dir_is_not_container(self, tmp_path):
        d = tmp_path / "plain"
        d.mkdir()
        assert not is_container(str(d))

    def test_creator_file_contents(self, container_path):
        Container(container_path).create(pid=123)
        text = open(os.path.join(container_path, constants.CREATOR_FILE)).read()
        assert f"version={constants.FORMAT_VERSION}" in text
        assert "pid=123" in text


class TestHostdirs:
    def test_hostdir_bucket_stable(self):
        assert util.hostdir_bucket("nodeA") == util.hostdir_bucket("nodeA")
        assert 0 <= util.hostdir_bucket("nodeA") < constants.NUM_HOSTDIRS

    def test_different_hosts_spread(self):
        buckets = {util.hostdir_bucket(f"node{i}") for i in range(100)}
        assert len(buckets) > 10  # FNV should spread hosts well

    def test_ensure_hostdir_creates(self, container_path):
        c = Container(container_path)
        c.create()
        path = c.ensure_hostdir("somehost")
        assert os.path.isdir(path)
        assert os.path.basename(path).startswith(constants.HOSTDIR_PREFIX)

    def test_droppings_empty_initially(self, container_path):
        c = Container(container_path)
        c.create()
        assert c.droppings() == []

    def test_droppings_listed_after_write(self, container_path):
        c = Container(container_path)
        c.create()
        w = WriteFile(c)
        w.write(b"x" * 10, 0, pid=1)
        w.write(b"y" * 10, 10, pid=2)  # second pid: second dropping pair
        w.close()
        pairs = c.droppings()
        assert len(pairs) == 2
        for index_path, data_path in pairs:
            assert os.path.exists(index_path)
            assert os.path.exists(data_path)

    def test_physical_bytes(self, container_path):
        c = Container(container_path)
        c.create()
        w = WriteFile(c)
        w.write(b"a" * 100, 0, pid=1)
        w.write(b"b" * 100, 0, pid=1)  # overwrite: log keeps both
        w.close()
        assert c.physical_bytes() == 200


class TestOpenhostsAndMeta:
    def test_register_unregister(self, container_path):
        c = Container(container_path)
        c.create()
        c.register_open(pid=11)
        assert len(c.open_writers()) == 1
        c.register_open(pid=12)
        assert len(c.open_writers()) == 2
        c.unregister_open(pid=11)
        c.unregister_open(pid=12)
        assert c.open_writers() == []

    def test_unregister_missing_is_noop(self, container_path):
        c = Container(container_path)
        c.create()
        c.unregister_open(pid=99)

    def test_cached_size_none_without_meta(self, container_path):
        c = Container(container_path)
        c.create()
        assert c.cached_size() is None

    def test_cached_size_from_meta(self, container_path):
        c = Container(container_path)
        c.create()
        c.drop_meta(4096, 4096, host="h1")
        c.drop_meta(8192, 8192, host="h2")
        assert c.cached_size() == 8192

    def test_cached_size_untrusted_with_open_writers(self, container_path):
        c = Container(container_path)
        c.create()
        c.drop_meta(4096, 4096)
        c.register_open(pid=1)
        assert c.cached_size() is None

    def test_clear_meta(self, container_path):
        c = Container(container_path)
        c.create()
        c.drop_meta(10, 10)
        c.clear_meta()
        assert c.meta_droppings() == []

    def test_malformed_meta_names_ignored(self, container_path):
        c = Container(container_path)
        c.create()
        meta_dir = os.path.join(container_path, constants.META_DIR)
        open(os.path.join(meta_dir, "garbage"), "w").close()
        open(os.path.join(meta_dir, "x.y.z"), "w").close()
        assert c.meta_droppings() == []


class TestAttrAndRemoval:
    def test_getattr_regular_file_mode(self, container_path):
        c = Container(container_path)
        c.create(0o600)
        st = c.getattr(size=42)
        assert stat_module.S_ISREG(st.st_mode)
        assert stat_module.S_IMODE(st.st_mode) == 0o600
        assert st.st_size == 42

    def test_getattr_computes_size_from_index(self, container_path):
        c = Container(container_path)
        c.create()
        w = WriteFile(c)
        w.write(b"z" * 77, 100, pid=1)
        w.sync()
        w.close()
        assert c.getattr().st_size == 177

    def test_getattr_missing_raises(self, container_path):
        with pytest.raises(ContainerNotFoundError):
            Container(container_path).getattr()

    def test_unlink(self, container_path):
        c = Container(container_path)
        c.create()
        c.unlink()
        assert not os.path.exists(container_path)

    def test_unlink_missing_raises(self, container_path):
        with pytest.raises(ContainerNotFoundError):
            Container(container_path).unlink()

    def test_wipe_data_keeps_container(self, container_path):
        c = Container(container_path)
        c.create()
        w = WriteFile(c)
        w.write(b"data", 0, pid=1)
        w.close()
        c.drop_meta(4, 4)
        c.wipe_data()
        assert c.exists()
        assert c.droppings() == []
        assert c.meta_droppings() == []

    def test_rename(self, container_path, backend):
        c = Container(container_path)
        c.create()
        new_path = os.path.join(backend, "renamed")
        c2 = c.rename(new_path)
        assert c2.exists()
        assert not os.path.exists(container_path)

    def test_rename_over_existing_container(self, container_path, backend):
        c = Container(container_path)
        c.create()
        other = Container(os.path.join(backend, "other"))
        other.create()
        w = WriteFile(other)
        w.write(b"old", 0, 1)
        w.close()
        c.rename(other.path)
        assert Container(other.path).droppings() == []


class TestLogicalDirOps:
    def test_readdir_logical(self, backend):
        Container(os.path.join(backend, "f1")).create()
        os.mkdir(os.path.join(backend, "subdir"))
        open(os.path.join(backend, "plain"), "w").close()
        assert readdir_logical(backend) == ["f1", "plain", "subdir"]

    def test_readdir_on_container_raises(self, container_path):
        Container(container_path).create()
        with pytest.raises(NotAContainerError):
            readdir_logical(container_path)

    def test_rmdir_refuses_container(self, container_path):
        Container(container_path).create()
        with pytest.raises(IsAContainerError):
            rmdir_logical(container_path)

    def test_rmdir_plain_dir(self, backend):
        d = os.path.join(backend, "d")
        os.mkdir(d)
        rmdir_logical(d)
        assert not os.path.exists(d)
