"""Property-based tests: PLFS must be indistinguishable from a flat file.

The model is a plain bytearray; the system under test is a PLFS container
driven through the public API with randomised write/read/trunc sequences,
including multiple pids (file partitioning) and overwrites (log garbage).
"""

from __future__ import annotations

import os
import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro import plfs

MAX_FILE = 2048

payloads = st.binary(min_size=1, max_size=128)
offsets = st.integers(min_value=0, max_value=MAX_FILE)


@settings(max_examples=60, deadline=None)
@given(
    writes=st.lists(st.tuples(offsets, payloads, st.integers(0, 3)), min_size=1, max_size=25)
)
def test_random_writes_match_bytearray_model(writes):
    tmp = tempfile.mkdtemp()
    try:
        path = os.path.join(tmp, "f")
        model = bytearray()
        fd = plfs.plfs_open(path, os.O_CREAT | os.O_RDWR)
        for offset, payload, pid in writes:
            plfs.plfs_write(fd, payload, len(payload), offset, pid=pid)
            if len(model) < offset + len(payload):
                model.extend(b"\x00" * (offset + len(payload) - len(model)))
            model[offset : offset + len(payload)] = payload
        # Read through the same handle.
        assert plfs.plfs_read(fd, len(model) + 64, 0) == bytes(model)
        assert plfs.plfs_getattr(fd).st_size == len(model)
        plfs.plfs_close(fd)
        # And through a fresh read-only handle (on-disk index path).
        fd = plfs.plfs_open(path, os.O_RDONLY)
        assert plfs.plfs_read(fd, len(model) + 64, 0) == bytes(model)
        plfs.plfs_close(fd)
        # Flatten must not change content.
        plfs.plfs_flatten_index(path)
        fd = plfs.plfs_open(path, os.O_RDONLY)
        assert plfs.plfs_read(fd, len(model) + 64, 0) == bytes(model)
        plfs.plfs_close(fd)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


class PlfsFileMachine(RuleBasedStateMachine):
    """Stateful comparison of a PLFS handle against a bytearray model."""

    def __init__(self):
        super().__init__()
        self.tmp = tempfile.mkdtemp()
        self.path = os.path.join(self.tmp, "f")
        self.model = bytearray()
        self.fd = plfs.plfs_open(self.path, os.O_CREAT | os.O_RDWR)

    @initialize()
    def start(self):
        pass

    @rule(offset=offsets, payload=payloads, pid=st.integers(0, 2))
    def write(self, offset, payload, pid):
        n = plfs.plfs_write(self.fd, payload, len(payload), offset, pid=pid)
        assert n == len(payload)
        if len(self.model) < offset + n:
            self.model.extend(b"\x00" * (offset + n - len(self.model)))
        self.model[offset : offset + n] = payload

    @rule(offset=offsets, count=st.integers(0, 256))
    def read(self, offset, count):
        expected = bytes(self.model[offset : offset + count])
        assert plfs.plfs_read(self.fd, count, offset) == expected

    @rule()
    def sync(self):
        plfs.plfs_sync(self.fd)

    @rule(size=st.integers(0, MAX_FILE))
    def truncate(self, size):
        plfs.plfs_trunc(self.fd, size)
        if size <= len(self.model):
            del self.model[size:]
        else:
            self.model.extend(b"\x00" * (size - len(self.model)))

    @rule()
    def reopen(self):
        plfs.plfs_close(self.fd)
        self.fd = plfs.plfs_open(self.path, os.O_RDWR)

    @invariant()
    def size_matches(self):
        assert plfs.plfs_getattr(self.fd).st_size == len(self.model)

    def teardown(self):
        try:
            plfs.plfs_close(self.fd)
        finally:
            shutil.rmtree(self.tmp, ignore_errors=True)


PlfsFileMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestPlfsFileStateful = PlfsFileMachine.TestCase
