"""Tests for the C-style PLFS API (paper Listing 1 plus supporting calls)."""

from __future__ import annotations

import os
import stat as stat_module

import pytest

from repro import plfs
from repro.plfs.errors import (
    BadFlagsError,
    ContainerExistsError,
    ContainerNotFoundError,
    NotAContainerError,
)


class TestOpenFlags:
    def test_open_missing_without_creat_raises(self, container_path):
        with pytest.raises(ContainerNotFoundError):
            plfs.plfs_open(container_path, os.O_RDONLY)

    def test_open_creat_creates_container(self, container_path):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_WRONLY)
        plfs.plfs_close(fd)
        assert plfs.is_container(container_path)

    def test_open_excl_on_existing_raises(self, container_path):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_WRONLY)
        plfs.plfs_close(fd)
        with pytest.raises(ContainerExistsError):
            plfs.plfs_open(container_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)

    def test_open_trunc_wipes(self, container_path):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_WRONLY)
        plfs.plfs_write(fd, b"data", 4, 0)
        plfs.plfs_close(fd)
        fd = plfs.plfs_open(container_path, os.O_WRONLY | os.O_TRUNC)
        plfs.plfs_close(fd)
        assert plfs.plfs_getattr(container_path).st_size == 0

    def test_open_rdonly_trunc_does_not_wipe(self, container_path):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_WRONLY)
        plfs.plfs_write(fd, b"data", 4, 0)
        plfs.plfs_close(fd)
        fd = plfs.plfs_open(container_path, os.O_RDONLY | os.O_TRUNC)
        plfs.plfs_close(fd)
        assert plfs.plfs_getattr(container_path).st_size == 4

    def test_open_on_plain_dir_raises(self, backend):
        d = os.path.join(backend, "plaindir")
        os.mkdir(d)
        with pytest.raises(NotAContainerError):
            plfs.plfs_open(d, os.O_RDONLY)

    def test_open_on_plain_file_raises(self, container_path):
        open(container_path, "w").close()
        with pytest.raises(NotAContainerError):
            plfs.plfs_open(container_path, os.O_RDONLY)

    def test_write_on_rdonly_handle_raises(self, container_path):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_WRONLY)
        plfs.plfs_close(fd)
        fd = plfs.plfs_open(container_path, os.O_RDONLY)
        with pytest.raises(BadFlagsError):
            plfs.plfs_write(fd, b"x", 1, 0)
        plfs.plfs_close(fd)

    def test_read_on_wronly_handle_raises(self, container_path):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_WRONLY)
        with pytest.raises(BadFlagsError):
            plfs.plfs_read(fd, 1, 0)
        plfs.plfs_close(fd)


class TestReadWrite:
    def test_rdwr_sees_own_writes(self, container_path):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_RDWR)
        plfs.plfs_write(fd, b"abcdef", 6, 0)
        assert plfs.plfs_read(fd, 6, 0) == b"abcdef"
        plfs.plfs_write(fd, b"XY", 2, 2)
        assert plfs.plfs_read(fd, 6, 0) == b"abXYef"
        plfs.plfs_close(fd)

    def test_count_clips_buffer(self, container_path):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_RDWR)
        assert plfs.plfs_write(fd, b"abcdef", 3, 0) == 3
        assert plfs.plfs_read(fd, 10, 0) == b"abc"
        plfs.plfs_close(fd)

    def test_read_into(self, container_path):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_RDWR)
        plfs.plfs_write(fd, b"0123456789", 10, 0)
        buf = bytearray(5)
        assert plfs.plfs_read_into(fd, buf, 2) == 5
        assert bytes(buf) == b"23456"
        plfs.plfs_close(fd)

    def test_persistence_across_close(self, container_path):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_WRONLY)
        plfs.plfs_write(fd, b"persistent", 10, 0)
        plfs.plfs_close(fd)
        fd = plfs.plfs_open(container_path, os.O_RDONLY)
        assert plfs.plfs_read(fd, 10, 0) == b"persistent"
        plfs.plfs_close(fd)

    def test_sync_without_writer_is_noop(self, container_path):
        plfs.plfs_create(container_path)
        fd = plfs.plfs_open(container_path, os.O_RDONLY)
        plfs.plfs_sync(fd)
        plfs.plfs_close(fd)

    def test_two_handles_concurrent_write(self, container_path):
        fd1 = plfs.plfs_open(container_path, os.O_CREAT | os.O_WRONLY, pid=101)
        fd2 = plfs.plfs_open(container_path, os.O_WRONLY, pid=102)
        plfs.plfs_write(fd1, b"AAAA", 4, 0)
        plfs.plfs_write(fd2, b"BBBB", 4, 4)
        plfs.plfs_close(fd1)
        plfs.plfs_close(fd2)
        fd = plfs.plfs_open(container_path, os.O_RDONLY)
        assert plfs.plfs_read(fd, 8, 0) == b"AAAABBBB"
        plfs.plfs_close(fd)


class TestRefCounting:
    def test_ref_close(self, container_path):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_RDWR)
        plfs.plfs_ref(fd)
        assert plfs.plfs_close(fd) == 1  # still referenced
        plfs.plfs_write(fd, b"ok", 2, 0)  # handle still usable
        assert plfs.plfs_close(fd) == 0

    def test_close_releases_openhost(self, container_path):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_WRONLY, pid=55)
        assert fd.container.open_writers()
        plfs.plfs_close(fd)
        assert fd.container.open_writers() == []

    def test_double_close_is_idempotent(self, container_path):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_WRONLY)
        plfs.plfs_write(fd, b"data", 4, 0)
        assert plfs.plfs_close(fd) == 0
        # Sloppy (or daemon-retried) callers close again: no-op, no error,
        # no refs going negative, no re-teardown of a finished writer.
        assert plfs.plfs_close(fd) == 0
        assert plfs.plfs_close(fd) == 0
        assert fd.refs == 0
        assert plfs.plfs_getattr(container_path).st_size == 4

    def test_close_after_writer_error_still_reclaims_handle(
        self, container_path, monkeypatch
    ):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_WRONLY, pid=77)
        plfs.plfs_write(fd, b"payload", 7, 0)
        assert fd.container.open_writers()

        def broken_close():
            raise OSError(5, "disk on fire")

        monkeypatch.setattr(fd.writer, "close", broken_close)
        with pytest.raises(OSError, match="disk on fire"):
            plfs.plfs_close(fd)
        # The handle must be fully torn down despite the error: writer
        # detached, open-marker released — the slot is reclaimable.
        assert fd.writer is None
        assert fd.refs == 0
        assert fd.container.open_writers() == []
        # And a later (double) close of the broken handle stays a no-op.
        assert plfs.plfs_close(fd) == 0


class TestMetadata:
    def test_getattr_size_and_mode(self, container_path):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_WRONLY, mode=0o600)
        plfs.plfs_write(fd, b"x" * 1000, 1000, 0)
        plfs.plfs_close(fd)
        st = plfs.plfs_getattr(container_path)
        assert st.st_size == 1000
        assert stat_module.S_ISREG(st.st_mode)
        assert stat_module.S_IMODE(st.st_mode) == 0o600

    def test_getattr_on_open_writer_sees_high_water_mark(self, container_path):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_WRONLY)
        plfs.plfs_write(fd, b"z", 1, 4095)
        assert plfs.plfs_getattr(fd).st_size == 4096
        plfs.plfs_close(fd)

    def test_access(self, container_path):
        plfs.plfs_create(container_path)
        assert plfs.plfs_access(container_path, os.R_OK)
        with pytest.raises(ContainerNotFoundError):
            plfs.plfs_access(container_path + "x", os.R_OK)

    def test_exists(self, container_path):
        assert not plfs.plfs_exists(container_path)
        plfs.plfs_create(container_path)
        assert plfs.plfs_exists(container_path)

    def test_unlink(self, container_path):
        plfs.plfs_create(container_path)
        plfs.plfs_unlink(container_path)
        assert not plfs.plfs_exists(container_path)

    def test_rename(self, container_path, backend):
        plfs.plfs_create(container_path)
        dst = os.path.join(backend, "dst")
        plfs.plfs_rename(container_path, dst)
        assert plfs.plfs_exists(dst)
        assert not plfs.plfs_exists(container_path)


class TestTruncate:
    def _mkfile(self, path, payload=b"0123456789"):
        fd = plfs.plfs_open(path, os.O_CREAT | os.O_WRONLY)
        plfs.plfs_write(fd, payload, len(payload), 0)
        plfs.plfs_close(fd)

    def test_trunc_to_zero(self, container_path):
        self._mkfile(container_path)
        plfs.plfs_trunc(container_path, 0)
        assert plfs.plfs_getattr(container_path).st_size == 0

    def test_trunc_shrink(self, container_path):
        self._mkfile(container_path)
        plfs.plfs_trunc(container_path, 4)
        fd = plfs.plfs_open(container_path, os.O_RDONLY)
        assert plfs.plfs_read(fd, 10, 0) == b"0123"
        plfs.plfs_close(fd)

    def test_trunc_grow(self, container_path):
        self._mkfile(container_path, b"ab")
        plfs.plfs_trunc(container_path, 5)
        st = plfs.plfs_getattr(container_path)
        assert st.st_size == 5
        fd = plfs.plfs_open(container_path, os.O_RDONLY)
        assert plfs.plfs_read(fd, 5, 0) == b"ab\x00\x00\x00"
        plfs.plfs_close(fd)

    def test_trunc_same_size_noop(self, container_path):
        self._mkfile(container_path)
        plfs.plfs_trunc(container_path, 10)
        assert plfs.plfs_getattr(container_path).st_size == 10

    def test_trunc_missing_raises(self, container_path):
        with pytest.raises(ContainerNotFoundError):
            plfs.plfs_trunc(container_path, 0)

    def test_trunc_on_open_handle(self, container_path):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_RDWR)
        plfs.plfs_write(fd, b"0123456789", 10, 0)
        plfs.plfs_trunc(fd, 0)
        assert plfs.plfs_read(fd, 10, 0) == b""
        plfs.plfs_write(fd, b"new", 3, 0)
        assert plfs.plfs_read(fd, 10, 0) == b"new"
        plfs.plfs_close(fd)


class TestMaintenance:
    def test_flatten_reclaims_garbage(self, container_path):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_WRONLY)
        for _ in range(5):
            plfs.plfs_write(fd, b"A" * 100, 100, 0)  # overwrite same extent
        plfs.plfs_close(fd)
        c = plfs.Container(container_path)
        assert c.physical_bytes() == 500
        plfs.plfs_flatten_index(container_path)
        assert c.physical_bytes() == 100
        fd = plfs.plfs_open(container_path, os.O_RDONLY)
        assert plfs.plfs_read(fd, 100, 0) == b"A" * 100
        plfs.plfs_close(fd)

    def test_flatten_preserves_holes_as_zeros_or_holes(self, container_path):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_WRONLY)
        plfs.plfs_write(fd, b"S", 1, 0)
        plfs.plfs_write(fd, b"E", 1, 99)
        plfs.plfs_close(fd)
        plfs.plfs_flatten_index(container_path)
        fd = plfs.plfs_open(container_path, os.O_RDONLY)
        data = plfs.plfs_read(fd, 100, 0)
        plfs.plfs_close(fd)
        assert data == b"S" + b"\x00" * 98 + b"E"

    def test_map(self, container_path):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_WRONLY)
        plfs.plfs_write(fd, b"ab", 2, 0)
        plfs.plfs_write(fd, b"cd", 2, 10)
        plfs.plfs_close(fd)
        extents = plfs.plfs_map(container_path)
        assert [(s, e) for s, e, _, _ in extents] == [(0, 2), (10, 12)]

    def test_dump_index_roundtrip(self, container_path):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_WRONLY)
        plfs.plfs_write(fd, b"ab", 2, 0)
        plfs.plfs_close(fd)
        from repro.plfs.index import parse_records

        records = parse_records(plfs.plfs_dump_index(container_path))
        assert records.shape == (1,)
        assert records[0]["length"] == 2

    def test_readdir_mkdir_rmdir(self, backend):
        d = os.path.join(backend, "dir")
        plfs.plfs_mkdir(d)
        plfs.plfs_create(os.path.join(d, "f"))
        assert plfs.plfs_readdir(d) == ["f"]
        plfs.plfs_unlink(os.path.join(d, "f"))
        plfs.plfs_rmdir(d)
        assert not os.path.exists(d)
