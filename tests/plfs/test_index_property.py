"""Property test: GlobalIndex.query against a brute-force byte model.

The extent-map tests verify ownership; this verifies the *read planner*
end to end: for random record sets and random queries, materialising the
plan must reproduce exactly the bytes a naive byte-at-a-time model holds.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plfs import constants
from repro.plfs.index import GlobalIndex, make_record

LIMIT = 600

records_strategy = st.lists(
    st.tuples(
        st.integers(0, LIMIT - 1),  # logical offset
        st.integers(1, 80),  # length
        st.integers(0, 3),  # dropping id
    ),
    min_size=0,
    max_size=25,
)

queries_strategy = st.lists(
    st.tuples(st.integers(0, LIMIT + 50), st.integers(0, 120)),
    min_size=1,
    max_size=10,
)


def materialise(plan, droppings: dict[int, bytes]) -> bytes:
    out = bytearray()
    for piece in plan:
        if piece.is_hole:
            out.extend(b"\x00" * piece.length)
        else:
            data = droppings[piece.dropping]
            out.extend(data[piece.physical_offset : piece.physical_offset + piece.length])
    return bytes(out)


@settings(max_examples=150, deadline=None)
@given(records=records_strategy, queries=queries_strategy)
def test_query_plans_reproduce_model_bytes(records, queries):
    # Build per-dropping "data files" and the model byte array.  Each
    # dropping's payload is distinct so misplaced physical offsets show.
    phys_cursor = {d: 0 for d in range(4)}
    payloads = {d: bytearray() for d in range(4)}
    model = bytearray()
    all_records = []
    for ts, (offset, length, dropping) in enumerate(records):
        chunk = bytes(
            (17 * (ts + 1) + i * (dropping + 3)) % 251 + 1 for i in range(length)
        )
        rec = make_record(
            logical_offset=offset,
            physical_offset=phys_cursor[dropping],
            length=length,
            pid=dropping,
            timestamp=float(ts),
            dropping=dropping,
        )
        all_records.append(rec)
        payloads[dropping].extend(chunk)
        phys_cursor[dropping] += length
        if len(model) < offset + length:
            model.extend(b"\x00" * (offset + length - len(model)))
        model[offset : offset + length] = chunk

    index = (
        GlobalIndex([np.concatenate(all_records)]) if all_records else GlobalIndex()
    )
    droppings = {d: bytes(p) for d, p in payloads.items()}

    assert index.logical_size == len(model)

    for offset, count in queries:
        plan = index.query(offset, count)
        expected = bytes(model[offset : offset + count])
        assert materialise(plan, droppings) == expected
        # Plan pieces must be contiguous and within the request.
        pos = offset
        for piece in plan:
            assert piece.logical_offset == pos
            assert piece.length > 0
            pos += piece.length
        assert pos <= min(offset + count, len(model)) or not plan
