"""The read-path fast lane: persistent compacted index, shared index
cache, coalesced read plans — plus the read-path bug-sweep regressions
(fd-cache bound, cross-handle staleness, error-path fd hygiene,
cached logical_size)."""

from __future__ import annotations

import errno
import os

import pytest

from repro.plfs import cache as index_cache
from repro.plfs import constants
from repro.plfs.api import (
    OpenOptions,
    plfs_close,
    plfs_getattr,
    plfs_open,
    plfs_read,
    plfs_write,
)
from repro.plfs.cache import IndexCache, compact, load_index, shared_cache
from repro.plfs.container import Container
from repro.plfs.errors import CorruptIndexError
from repro.plfs.index import parse_compacted
from repro.plfs.reader import ReadFile, coalesce_plan, logical_size
from repro.plfs.writer import WriteFile


@pytest.fixture
def container(container_path):
    c = Container(container_path)
    c.create()
    return c


def write_stripes(container, *, droppings, stripe=8, rounds=1):
    """Interleave *droppings* writers round-robin: dropping i owns every
    logical stripe where (stripe_no % droppings) == i."""
    writers = [WriteFile(container) for _ in range(droppings)]
    payload = {}
    for r in range(rounds):
        for s in range(droppings):
            off = (r * droppings + s) * stripe
            data = bytes([(r * droppings + s + 1) % 256]) * stripe
            writers[s].write(data, off, pid=s + 1)
            payload[off] = data
    for w in writers:
        w.close()
    size = max(o + len(d) for o, d in payload.items())
    whole = bytearray(size)
    for off, data in payload.items():
        whole[off : off + len(data)] = data
    return bytes(whole)


# ---------------------------------------------------------------------- #
# persistent compacted global index
# ---------------------------------------------------------------------- #


class TestCompactedIndex:
    def test_clean_close_writes_global_index(self, container_path):
        fd = plfs_open(container_path, os.O_CREAT | os.O_WRONLY)
        plfs_write(fd, b"hello world", offset=0)
        plfs_close(fd)
        gpath = Container(container_path).global_index_path()
        assert os.path.exists(gpath)
        with open(gpath, "rb") as fh:
            records, paths, epoch, size = parse_compacted(
                fh.read(), source=gpath
            )
        assert size == 11
        assert records.shape[0] == 1
        assert epoch == Container(container_path).index_epoch()
        # data paths are container-relative: the container can be renamed
        assert all(not os.path.isabs(p) for p in paths)

    def test_compacted_load_is_byte_identical(self, container):
        expect = write_stripes(container, droppings=6, rounds=3)
        compact(container)
        loaded = load_index(container)
        assert loaded.source == "compacted"
        with ReadFile(container, use_shared_cache=False) as r:
            # route the probe through the compacted file explicitly
            r._index, r._data_paths = loaded.index, loaded.data_paths
            assert r.read(len(expect), 0) == expect

    def test_stale_epoch_falls_back_to_merge(self, container):
        write_stripes(container, droppings=2)
        compact(container)
        w = WriteFile(container)
        w.write(b"fresh", 0, pid=99)
        w.close()
        loaded = load_index(container)
        assert loaded.source == "merged"
        assert loaded.index.logical_size >= 5

    def test_corrupt_compacted_falls_back_to_merge(self, container):
        expect = write_stripes(container, droppings=2)
        compact(container)
        gpath = container.global_index_path()
        with open(gpath, "r+b") as fh:
            fh.write(b"\xff\xff\xff")
        loaded = load_index(container)
        assert loaded.source == "merged"
        with ReadFile(container) as r:
            assert r.read(len(expect), 0) == expect

    @pytest.mark.parametrize(
        "mangle",
        [
            b"",  # empty file
            b"not json at all\n",  # unparseable header
            b'{"magic": "wrong"}\n',  # wrong magic
        ],
    )
    def test_parse_compacted_rejects_garbage(self, mangle):
        with pytest.raises(CorruptIndexError):
            parse_compacted(mangle, source="<test>")

    def test_truncate_drops_compacted_index(self, container_path):
        fd = plfs_open(container_path, os.O_CREAT | os.O_RDWR)
        plfs_write(fd, b"data", offset=0)
        plfs_close(fd)
        assert os.path.exists(Container(container_path).global_index_path())
        fd = plfs_open(container_path, os.O_WRONLY | os.O_TRUNC)
        plfs_close(fd)
        assert load_index(Container(container_path)).index.logical_size == 0

    def test_compact_on_close_can_be_disabled(self, container_path):
        fd = plfs_open(
            container_path,
            os.O_CREAT | os.O_WRONLY,
            open_opt=OpenOptions(compact_on_close=False),
        )
        plfs_write(fd, b"data", offset=0)
        plfs_close(fd)
        assert not os.path.exists(
            Container(container_path).global_index_path()
        )

    def test_no_compaction_while_other_writers_open(self, container_path):
        fd1 = plfs_open(container_path, os.O_CREAT | os.O_WRONLY, pid=1)
        fd2 = plfs_open(container_path, os.O_WRONLY, pid=2)
        plfs_write(fd1, b"one", offset=0, pid=1)
        plfs_write(fd2, b"two", offset=3, pid=2)
        plfs_close(fd1, pid=1)
        # fd2 still open: closing fd1 must not freeze a half view
        assert not os.path.exists(
            Container(container_path).global_index_path()
        )
        plfs_close(fd2, pid=2)
        assert os.path.exists(Container(container_path).global_index_path())


# ---------------------------------------------------------------------- #
# shared index cache
# ---------------------------------------------------------------------- #


class TestSharedIndexCache:
    def test_repeated_opens_hit_the_cache(self, container):
        write_stripes(container, droppings=4)
        cache = shared_cache()
        for _ in range(5):
            with ReadFile(container) as r:
                r.logical_size()
        assert cache.stats["misses"] == 1
        assert cache.stats["hits"] == 4

    def test_repeated_stat_builds_index_once(self, container):
        """Bug-sweep satellite: logical_size via the shared cache."""
        write_stripes(container, droppings=4)
        cache = shared_cache()
        sizes = {logical_size(container) for _ in range(10)}
        assert len(sizes) == 1
        assert cache.stats["misses"] == 1
        assert cache.stats["hits"] == 9

    def test_epoch_revalidation_sees_external_change(self, container):
        # A private cache instance stands in for "another process": the
        # writer's close invalidates only the shared cache, so this one
        # must catch the change purely by epoch revalidation.
        cache = IndexCache()
        write_stripes(container, droppings=2, stripe=4)
        loaded, _ = cache.get(container)
        first = loaded.index.logical_size
        w = WriteFile(container)
        w.write(b"x" * 64, first, pid=7)
        w.close()
        loaded, _ = cache.get(container)
        assert loaded.index.logical_size == first + 64
        assert cache.stats["stale_epoch_evictions"] == 1

    def test_invalidate_bumps_generation(self):
        cache = IndexCache()
        g0 = cache.generation("/some/container")
        cache.invalidate("/some/container")
        assert cache.generation(os.path.abspath("/some/container")) == g0 + 1

    def test_cache_capacity_is_bounded(self, backend):
        cache = IndexCache(capacity=2)
        paths = []
        for i in range(4):
            p = os.path.join(backend, f"file{i}")
            c = Container(p)
            c.create()
            w = WriteFile(c)
            w.write(b"x", 0, pid=1)
            w.close()
            cache.get(c)
            paths.append(p)
        assert len(cache._entries) == 2

    def test_writer_flush_invalidates_readers(self, container):
        r = ReadFile(container)
        assert r.read(3, 0) == b""
        w = WriteFile(container)
        w.write(b"abc", 0, pid=1)
        w.sync()
        assert r.read(3, 0) == b"abc"
        r.close()
        w.close()


# ---------------------------------------------------------------------- #
# coalesced read plans
# ---------------------------------------------------------------------- #


class TestCoalescing:
    def test_sequential_writes_collapse_to_one_pread(self, container):
        # One writer, strictly sequential: the extent map merges the
        # contiguous records, so any span is a single slice and pread.
        w = WriteFile(container)
        for i in range(16):
            w.write(bytes([i]) * 8, i * 8, pid=1)
        w.close()
        with ReadFile(container) as r:
            data = r.read(128, 0)
            assert data == b"".join(bytes([i]) * 8 for i in range(16))
            assert r.stats["preads"] == 1

    def test_out_of_order_writes_coalesce_with_sieving(self, container):
        # A@0(64) then C@96(64) then B@64(32): one dropping laid out
        # physically A,C,B.  The plan for [0,160) is A(phys 0), B(phys
        # 128), C(phys 64): A→B spans a 64-byte physical gap (sieve
        # through C's bytes), B→C goes physically backwards (must split).
        w = WriteFile(container)
        w.write(b"A" * 64, 0, pid=1)
        w.write(b"C" * 64, 96, pid=1)
        w.write(b"B" * 32, 64, pid=1)
        w.close()
        with ReadFile(container) as r:
            data = r.read(160, 0)
            assert data == b"A" * 64 + b"B" * 32 + b"C" * 64
            assert r.stats["preads"] == 2
            assert r.stats["coalesced_slices"] == 1
            assert r.stats["sieved_gap_bytes"] == 64

    def test_interleaved_droppings_do_not_merge(self, container):
        expect = write_stripes(container, droppings=4, stripe=8, rounds=2)
        with ReadFile(container) as r:
            assert r.read(len(expect), 0) == expect
            # 8 stripes from 4 droppings, alternating: no two adjacent
            # plan slices share a dropping, so nothing may coalesce.
            assert r.stats["coalesced_slices"] == 0
            assert r.stats["preads"] == 8

    def test_gap_larger_than_threshold_splits(self):
        from repro.plfs.index import ReadSlice

        a = ReadSlice(0, 10, 0, 0)
        b = ReadSlice(10, 10, 0, 10 + constants.READ_COALESCE_GAP + 1)
        assert len(coalesce_plan([a, b])) == 2
        c = ReadSlice(10, 10, 0, 10 + constants.READ_COALESCE_GAP)
        assert len(coalesce_plan([a, c])) == 1

    def test_holes_never_merge(self):
        from repro.plfs.index import ReadSlice

        hole = ReadSlice(0, 10, constants.HOLE, 0)
        data = ReadSlice(10, 10, 0, 0)
        assert len(coalesce_plan([hole, data])) == 2

    def test_backwards_physical_order_never_merges(self):
        # Overwrites can order plan slices physically backwards within one
        # dropping; a "gap" that is negative must split, not pread a
        # negative span.
        from repro.plfs.index import ReadSlice

        a = ReadSlice(0, 10, 0, 100)
        b = ReadSlice(10, 10, 0, 0)
        assert len(coalesce_plan([a, b])) == 2

    def test_coalesce_disabled_matches(self, container):
        expect = write_stripes(container, droppings=3, stripe=16, rounds=2)
        with ReadFile(container, coalesce=False) as r:
            assert r.read(len(expect), 0) == expect


# ---------------------------------------------------------------------- #
# bug sweep: fd-cache bound
# ---------------------------------------------------------------------- #


class TestFdCacheBound:
    def test_more_droppings_than_cap_stays_bounded(self, container):
        """Regression: the unbounded dict exhausted RLIMIT_NOFILE on wide
        containers; the LRU must keep at most fd_cache_limit descriptors
        open while still reading correctly."""
        expect = write_stripes(container, droppings=24, stripe=4)
        with ReadFile(container, fd_cache_limit=5) as r:
            assert r.read(len(expect), 0) == expect
            assert len(r._fd_cache) <= 5
            # every cached descriptor is still alive
            for fd in r._fd_cache.values():
                os.fstat(fd)

    def test_default_cap_is_constant(self, container):
        with ReadFile(container) as r:
            assert r._fd_limit == constants.FD_CACHE_LIMIT

    def test_lru_keeps_hot_dropping(self, container):
        write_stripes(container, droppings=6, stripe=4)
        with ReadFile(container, fd_cache_limit=2) as r:
            r.read(4, 0)  # dropping 0
            r.read(4, 4)  # dropping 1
            r.read(4, 0)  # dropping 0 again: now most-recent
            r.read(4, 8)  # dropping 2: evicts dropping 1
            assert set(r._fd_cache) == {0, 2}


class TestIdleFdReaper:
    def test_reaps_only_idle_descriptors(self, container):
        write_stripes(container, droppings=3, stripe=4)
        with ReadFile(container) as r:
            r.read(4, 0)  # dropping 0
            r.read(4, 4)  # dropping 1
            # Simulate dropping 0 going idle while dropping 1 stays hot.
            r._fd_last_use[0] -= 100.0
            assert r.reap_idle_fds(30.0) == 1
            assert set(r._fd_cache) == {1}
            assert r.stats["fds_reaped"] == 1

    def test_zero_idle_empties_cache(self, container):
        write_stripes(container, droppings=4, stripe=4)
        with ReadFile(container) as r:
            expect = r.read(16, 0)
            cached = len(r._fd_cache)
            assert r.reap_idle_fds(0.0) == cached
            assert not r._fd_cache
            assert not r._fd_last_use
            # The handle stays fully usable: fds reopen transparently.
            assert r.read(16, 0) == expect

    def test_fresh_descriptors_survive(self, container):
        write_stripes(container, droppings=2, stripe=4)
        with ReadFile(container) as r:
            r.read(8, 0)
            assert r.reap_idle_fds(3600.0) == 0
            assert len(r._fd_cache) == 2

    def test_reaped_fds_are_actually_closed(self, container):
        write_stripes(container, droppings=2, stripe=4)
        with ReadFile(container) as r:
            r.read(8, 0)
            fds = list(r._fd_cache.values())
            assert r.reap_idle_fds(0.0) == 2
            for fd in fds:
                with pytest.raises(OSError):
                    os.fstat(fd)


# ---------------------------------------------------------------------- #
# bug sweep: error-path fd hygiene
# ---------------------------------------------------------------------- #


class TestFdHygiene:
    def test_close_is_idempotent(self, container):
        write_stripes(container, droppings=2)
        r = ReadFile(container)
        r.read(4, 0)
        r.close()
        r.close()
        assert r.closed

    def test_read_after_close_raises(self, container):
        write_stripes(container, droppings=2)
        r = ReadFile(container)
        r.close()
        with pytest.raises(ValueError):
            r.read(4, 0)

    def test_context_manager_closes_on_error(self, container):
        write_stripes(container, droppings=2)
        with pytest.raises(RuntimeError):
            with ReadFile(container) as r:
                r.read(4, 0)
                raise RuntimeError("boom")
        assert r.closed
        assert not r._fd_cache

    def test_corrupt_read_then_close_releases_fds(self, container):
        """Regression: a CorruptIndexError mid-plan used to strand every
        descriptor the partial read had opened."""
        expect = write_stripes(container, droppings=3, stripe=16)
        r = ReadFile(container)
        r.read(len(expect), 0)  # open fds, build index
        # Truncate one data dropping behind the index's back.
        victim = r._data_paths[1]
        with open(victim, "ab") as fh:
            fh.truncate(4)
        index_cache.invalidate(container.path)  # epoch changed anyway
        r2 = ReadFile(container, use_shared_cache=False)
        r2._index, r2._data_paths = r.index, list(r._data_paths)
        with pytest.raises(CorruptIndexError):
            r2.read(len(expect), 0)
        open_before_close = list(r2._fd_cache.values())
        r2.close()
        for fd in open_before_close:
            with pytest.raises(OSError) as ei:
                os.fstat(fd)
            assert ei.value.errno == errno.EBADF
        r.close()

    def test_del_closes_quietly(self, container):
        write_stripes(container, droppings=2)
        r = ReadFile(container)
        r.read(4, 0)
        fds = list(r._fd_cache.values())
        r.__del__()
        for fd in fds:
            with pytest.raises(OSError):
                os.fstat(fd)


# ---------------------------------------------------------------------- #
# bug sweep: cross-handle staleness through the API
# ---------------------------------------------------------------------- #


class TestCrossHandleStaleness:
    def test_getattr_sees_other_handles_flush(self, container_path):
        fd1 = plfs_open(container_path, os.O_CREAT | os.O_RDWR, pid=1)
        fd2 = plfs_open(container_path, os.O_RDWR, pid=2)
        plfs_write(fd1, b"x" * 100, offset=0, pid=1)
        from repro.plfs.api import plfs_sync

        plfs_sync(fd1)
        # fd2 never wrote; its stat must still see fd1's flushed bytes.
        assert plfs_getattr(fd2).st_size == 100
        plfs_write(fd1, b"y" * 50, offset=100, pid=1)
        plfs_sync(fd1)
        assert plfs_getattr(fd2).st_size == 150
        plfs_close(fd1, pid=1)
        plfs_close(fd2, pid=2)

    def test_read_sees_other_handles_flush(self, container_path):
        fd1 = plfs_open(container_path, os.O_CREAT | os.O_RDWR, pid=1)
        fd2 = plfs_open(container_path, os.O_RDWR, pid=2)
        plfs_write(fd1, b"first", offset=0, pid=1)
        from repro.plfs.api import plfs_sync

        plfs_sync(fd1)
        assert plfs_read(fd2, 5, 0) == b"first"
        plfs_write(fd1, b"SECOND", offset=0, pid=1)
        plfs_sync(fd1)
        assert plfs_read(fd2, 6, 0) == b"SECOND"
        plfs_close(fd1, pid=1)
        plfs_close(fd2, pid=2)


# ---------------------------------------------------------------------- #
# tools: the compact verb, check awareness
# ---------------------------------------------------------------------- #


class TestTooling:
    def test_compact_verb(self, container, capsys):
        from repro.plfs.tools import main

        write_stripes(container, droppings=3)
        assert main(["compact", container.path]) == 0
        out = capsys.readouterr().out
        assert "segments" in out
        assert os.path.exists(container.global_index_path())
        assert load_index(container).source == "compacted"

    def test_check_warns_on_stale_compacted(self, container):
        from repro.plfs.tools import plfs_check

        write_stripes(container, droppings=2)
        compact(container)
        w = WriteFile(container)
        w.write(b"new", 1000, pid=42)
        w.close()
        report = plfs_check(container.path)
        assert report.ok  # staleness is a warning, never a problem
        assert any("stale" in w for w in report.warnings)

    def test_check_warns_on_corrupt_compacted(self, container):
        from repro.plfs.tools import plfs_check

        write_stripes(container, droppings=2)
        compact(container)
        with open(container.global_index_path(), "wb") as fh:
            fh.write(b"garbage")
        report = plfs_check(container.path)
        assert report.ok
        assert any("unreadable" in w for w in report.warnings)

    def test_check_silent_on_fresh_compacted(self, container):
        from repro.plfs.tools import plfs_check

        write_stripes(container, droppings=2)
        compact(container)
        report = plfs_check(container.path)
        assert report.ok and not report.warnings
