"""Unit and property tests for the extent map (overlap resolution core)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plfs.index import ExtentMap


def seg(m):
    return m.segments()


class TestAssignBasics:
    def test_empty(self):
        m = ExtentMap()
        assert len(m) == 0
        assert m.extent_end() == 0
        assert seg(m) == []

    def test_single(self):
        m = ExtentMap()
        m.assign(10, 20, 1, 100)
        assert seg(m) == [(10, 20, 1, 100)]
        assert m.extent_end() == 20

    def test_zero_length_ignored(self):
        m = ExtentMap()
        m.assign(5, 5, 1, 0)
        m.assign(7, 3, 1, 0)
        assert len(m) == 0

    def test_disjoint_inserts_stay_sorted(self):
        m = ExtentMap()
        m.assign(30, 40, 3, 0)
        m.assign(0, 10, 1, 0)
        m.assign(15, 20, 2, 0)
        assert seg(m) == [(0, 10, 1, 0), (15, 20, 2, 0), (30, 40, 3, 0)]

    def test_adjacent_not_merged(self):
        m = ExtentMap()
        m.assign(0, 10, 1, 0)
        m.assign(10, 20, 2, 0)
        assert seg(m) == [(0, 10, 1, 0), (10, 20, 2, 0)]


class TestOverlapResolution:
    def test_exact_overwrite(self):
        m = ExtentMap()
        m.assign(0, 10, 1, 0)
        m.assign(0, 10, 2, 50)
        assert seg(m) == [(0, 10, 2, 50)]

    def test_overwrite_middle_splits(self):
        m = ExtentMap()
        m.assign(0, 30, 1, 0)
        m.assign(10, 20, 2, 77)
        assert seg(m) == [
            (0, 10, 1, 0),
            (10, 20, 2, 77),
            (20, 30, 1, 20),  # right fragment keeps phys advanced by 20
        ]

    def test_overwrite_left_edge(self):
        m = ExtentMap()
        m.assign(0, 30, 1, 0)
        m.assign(0, 10, 2, 0)
        assert seg(m) == [(0, 10, 2, 0), (10, 30, 1, 10)]

    def test_overwrite_right_edge(self):
        m = ExtentMap()
        m.assign(0, 30, 1, 0)
        m.assign(20, 30, 2, 0)
        assert seg(m) == [(0, 20, 1, 0), (20, 30, 2, 0)]

    def test_overwrite_spanning_multiple(self):
        m = ExtentMap()
        m.assign(0, 10, 1, 0)
        m.assign(10, 20, 2, 0)
        m.assign(20, 30, 3, 0)
        m.assign(5, 25, 9, 500)
        assert seg(m) == [(0, 5, 1, 0), (5, 25, 9, 500), (25, 30, 3, 5)]

    def test_overwrite_swallowing_everything(self):
        m = ExtentMap()
        for i in range(5):
            m.assign(i * 10, i * 10 + 10, i, 0)
        m.assign(0, 100, 42, 0)
        assert seg(m) == [(0, 100, 42, 0)]

    def test_new_extent_inside_hole(self):
        m = ExtentMap()
        m.assign(0, 10, 1, 0)
        m.assign(50, 60, 2, 0)
        m.assign(20, 30, 3, 0)
        assert seg(m) == [(0, 10, 1, 0), (20, 30, 3, 0), (50, 60, 2, 0)]


class TestAsArrays:
    def test_arrays_match_segments(self):
        m = ExtentMap()
        m.assign(0, 10, 1, 5)
        m.assign(20, 25, 2, 7)
        starts, ends, drops, phys = m.as_arrays()
        assert starts.tolist() == [0, 20]
        assert ends.tolist() == [10, 25]
        assert drops.tolist() == [1, 2]
        assert phys.tolist() == [5, 7]
        assert starts.dtype == np.int64


# --------------------------------------------------------------------- #
# Property: ExtentMap behaves like writes into a byte-addressed array.
# --------------------------------------------------------------------- #

FILE_LIMIT = 512

writes_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=FILE_LIMIT - 1),  # start
        st.integers(min_value=1, max_value=64),  # length
    ),
    min_size=0,
    max_size=40,
)


@settings(max_examples=200, deadline=None)
@given(writes_strategy)
def test_extent_map_matches_array_model(writes):
    """Replaying the same writes into a plain array must agree byte-for-byte
    with the extent map (which write owns each byte)."""
    m = ExtentMap()
    model = np.full(FILE_LIMIT + 64, -1, dtype=np.int64)
    for write_id, (start, length) in enumerate(writes):
        end = start + length
        m.assign(start, end, write_id, start * 1000)
        model[start:end] = write_id

    # Segment view and model must agree on ownership of every byte.
    owner = np.full(FILE_LIMIT + 64, -1, dtype=np.int64)
    for s, e, d, p in m.segments():
        assert s < e
        owner[s:e] = d
        # physical offset must be consistent with the original write: the
        # original write of id d started at some start0 with phys
        # start0*1000, so p - s*? ... the fragment's physical offset equals
        # original_phys + (s - original_start); original_phys was
        # original_start*1000 so p == original_start*1000 + s - original_start.
        orig_start, orig_len = writes[d]
        assert p == orig_start * 1000 + (s - orig_start)
        assert orig_start <= s and e <= orig_start + orig_len

    assert np.array_equal(owner, model)

    # Segments must be sorted and non-overlapping.
    segs = m.segments()
    for (s1, e1, *_), (s2, e2, *_) in zip(segs, segs[1:]):
        assert e1 <= s2


@settings(max_examples=100, deadline=None)
@given(writes_strategy)
def test_extent_end_matches_max_write_end(writes):
    m = ExtentMap()
    for write_id, (start, length) in enumerate(writes):
        m.assign(start, start + length, write_id, 0)
    expected = max((s + l for s, l in writes), default=0)
    assert m.extent_end() == expected


@pytest.mark.parametrize("n", [1, 10, 100])
def test_sequential_appends_stay_linear(n):
    m = ExtentMap()
    for i in range(n):
        m.assign(i * 8, (i + 1) * 8, 0, i * 8)
    assert len(m) == n
    assert m.extent_end() == n * 8
