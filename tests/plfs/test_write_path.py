"""The write-path fast lane: group-commit WAL, zero-copy and vectored
appends, adaptive index flushing, and cross-process index invalidation.

Companion to ``test_read_path``-style coverage on the read side.  A
recording backing store pins the *mechanics* (which persistence operation
fired, in what order, with which buffer object); the PLFS API and shim
tests pin the end-to-end behaviour; the subprocess tests prove the
generation-file protocol actually crosses a process boundary.
"""

from __future__ import annotations

import gc
import os
import shutil
import subprocess
import sys
import tempfile
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import plfs
from repro.faults import FaultInjector, FaultSpec
from repro.plfs import backing, constants
from repro.plfs import writer as writer_module
from repro.plfs.cache import shared_cache
from repro.plfs.container import Container
from repro.plfs.reader import ReadFile
from repro.plfs.writer import WriteFile


class RecordingStore(backing.BackingStore):
    """Delegating store that logs every persistence operation and keeps
    the exact buffer object the write path handed to ``write_data`` —
    identity, not equality, is what proves zero-copy."""

    def __init__(self):
        self.ops: list[str] = []
        self.data_bufs: list = []

    def write_data(self, fd, buf, path):
        self.ops.append("data_write")
        self.data_bufs.append(buf)
        return super().write_data(fd, buf, path)

    def write_datav(self, fd, buffers, path):
        self.ops.append("data_writev")
        self.data_bufs.append(list(buffers))
        return super().write_datav(fd, buffers, path)

    def write_wal(self, fd, payload, path):
        self.ops.append("wal_write")
        return super().write_wal(fd, payload, path)

    def append_index(self, path, payload):
        self.ops.append("index_flush")
        return super().append_index(path, payload)


@pytest.fixture
def recording():
    store = RecordingStore()
    previous = backing.install(store)
    try:
        yield store
    finally:
        backing.install(previous)


@pytest.fixture
def container(container_path):
    c = Container(container_path)
    c.create()
    return c


def wal_files(container_root: str) -> list[str]:
    return [
        name
        for _, _, names in os.walk(container_root)
        for name in names
        if name.startswith(constants.WAL_PREFIX)
    ]


# ---------------------------------------------------------------------- #
# zero-copy appends
# ---------------------------------------------------------------------- #


class TestZeroCopy:
    def test_memoryview_reaches_backing_store_by_identity(self, container, recording):
        payload = memoryview(b"zero copy payload")
        with WriteFile(container) as w:
            w.write(payload, 0, pid=1)
            assert w.stats["zero_copy_appends"] == 1
        assert any(b is payload for b in recording.data_bufs)

    def test_plfs_write_count_slice_avoids_bytes_copy(
        self, container_path, recording
    ):
        buf = bytearray(b"0123456789")
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_RDWR)
        assert plfs.plfs_write(fd, buf, 4, 0) == 4
        assert plfs.plfs_read(fd, 4, 0) == b"0123"
        plfs.plfs_close(fd)
        sent = recording.data_bufs[0]
        assert isinstance(sent, memoryview)
        assert sent.obj is buf  # a view over the caller's buffer, no copy

    def test_shim_write_no_longer_copies(self, interposer, mnt, recording):
        fd = os.open(f"{mnt}/f", os.O_CREAT | os.O_WRONLY)
        os.write(fd, b"through the shim")
        os.close(fd)
        data_ops = [b for b in recording.data_bufs if not isinstance(b, list)]
        assert data_ops and all(isinstance(b, memoryview) for b in data_ops)

    def test_noncontiguous_and_multibyte_views_still_correct(self, container_path):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_RDWR)
        strided = memoryview(b"0123456789")[::2]  # non-contiguous
        assert plfs.plfs_write(fd, strided, None, 0) == 5
        assert plfs.plfs_read(fd, 5, 0) == b"02468"
        plfs.plfs_close(fd)


# ---------------------------------------------------------------------- #
# vectored appends
# ---------------------------------------------------------------------- #


class TestVectoredAppend:
    def test_append_many_is_one_append_one_record(self, container, recording):
        with WriteFile(container) as w:
            assert w.append_many([b"abc", b"defg", b"hi"], 0, pid=1) == 9
            ((recs, _path),) = w.pending_records()
            assert len(recs) == 1 and recs["length"][0] == 9
            assert w.stats["vectored_appends"] == 1
            assert w.stats["vectored_buffers"] == 3
        assert recording.ops.count("data_writev") == 1
        assert "data_write" not in recording.ops
        with ReadFile(container, use_shared_cache=False) as r:
            assert r.read(16, 0) == b"abcdefghi"

    def test_append_many_merges_with_preceding_write(self, container):
        with WriteFile(container) as w:
            w.write(b"abc", 0, pid=1)
            w.append_many([b"def", b"ghi"], 3, pid=1)
            ((recs, _path),) = w.pending_records()
            assert len(recs) == 1 and recs["length"][0] == 9

    def test_empty_iovec_is_a_noop(self, container):
        with WriteFile(container) as w:
            assert w.append_many([], 0, pid=1) == 0
            assert w.stats["vectored_appends"] == 0

    def test_plfs_writev_drops_empty_buffers(self, container_path):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_RDWR)
        assert plfs.plfs_writev(fd, [b"", b"he", b"", b"llo"], 0) == 5
        assert plfs.plfs_writev(fd, [b"", b""], 64) == 0
        assert plfs.plfs_read(fd, 5, 0) == b"hello"
        assert fd.writer.stats["vectored_buffers"] == 2
        plfs.plfs_close(fd)

    def test_shim_writev_lands_as_one_vectored_append(
        self, interposer, mnt, recording
    ):
        fd = os.open(f"{mnt}/vec", os.O_CREAT | os.O_RDWR)
        assert os.writev(fd, [b"aaaa", b"bb", b"c"]) == 7
        assert os.pread(fd, 7, 0) == b"aaaabbc"
        os.close(fd)
        assert recording.ops.count("data_writev") == 1

    def test_pwritev_short_write_resumed_transparently(self, interposer, mnt):
        inj = FaultInjector([FaultSpec("data_write", "short", op=1, short_bytes=3)])
        with inj.armed():
            fd = os.open(f"{mnt}/vec-short", os.O_CREAT | os.O_RDWR)
            assert os.pwritev(fd, [b"0123", b"4567", b"89"], 0) == 10
            assert os.pread(fd, 10, 0) == b"0123456789"
            os.close(fd)
        assert interposer.shim.stats["short_write_resumes"] >= 1


# ---------------------------------------------------------------------- #
# group-commit WAL
# ---------------------------------------------------------------------- #


class TestGroupCommitWal:
    def test_batch_flushes_once_per_window(self, container, recording):
        with WriteFile(container, wal=True, wal_batch=4) as w:
            for i in range(8):
                w.write(b"x" * 8, i * 8, pid=1)
            assert w.stats["wal_batches"] == 2
            assert w.stats["wal_records"] == 8
        assert recording.ops.count("wal_write") == 2

    def test_batch_of_one_keeps_strict_per_append_order(self, container, recording):
        with WriteFile(container, wal=True, wal_batch=1) as w:
            for i in range(3):
                w.write(bytes([65 + i]) * 4, i * 100, pid=1)
        ops = [op for op in recording.ops if op in ("wal_write", "data_write")]
        assert ops == ["wal_write", "data_write"] * 3

    def test_batch_flush_precedes_its_closing_data_append(
        self, container, recording
    ):
        with WriteFile(container, wal=True, wal_batch=3) as w:
            for i in range(3):
                w.write(b"y" * 4, i * 50, pid=1)
        ops = [op for op in recording.ops if op in ("wal_write", "data_write")]
        # The window's promises hit the WAL *before* the append that would
        # close the window touches the data dropping.
        assert ops == ["data_write", "data_write", "wal_write", "data_write"]

    def test_sync_is_a_hard_barrier(self, container, recording):
        with WriteFile(container, wal=True, wal_batch=8) as w:
            w.write(b"a" * 4, 0, pid=1)
            w.write(b"b" * 4, 100, pid=1)
            assert w.stats["wal_records"] == 0  # window still open
            w.sync()
            assert w.stats["wal_records"] == 2
            assert w.stats["wal_batches"] == 1
        # flush_index drained the WAL before touching the index dropping.
        assert recording.ops.index("wal_write") < recording.ops.index("index_flush")

    def test_failed_batch_flush_keeps_rows_for_retry(self, container):
        inj = FaultInjector([FaultSpec("wal_write", "enospc", op=1)])
        w = WriteFile(container, wal=True, wal_batch=2)
        w.write(b"A" * 8, 0, pid=1)
        with inj.armed():
            with pytest.raises(OSError):
                w.write(b"B" * 8, 8, pid=1)
        d = next(iter(w._droppings.values()))
        # Both promises retained (the WAL must stay a superset of the
        # index); the failed append never touched the data dropping.
        assert len(d.wal_rows) == 2
        assert d.physical_offset == 8
        assert w.write(b"B" * 8, 8, pid=1) == 8  # retry drains all rows
        assert w.stats["wal_records"] == 3
        w.close()
        with ReadFile(container, use_shared_cache=False) as r:
            assert r.read(16, 0) == b"A" * 8 + b"B" * 8

    def test_clean_close_removes_the_wal(self, container):
        with WriteFile(container, wal=True, wal_batch=4) as w:
            w.write(b"data", 0, pid=1)
        assert wal_files(container.path) == []

    def test_open_options_thread_the_batch_size(self, container_path):
        opts = plfs.OpenOptions(write_ahead_index=True, wal_batch_records=16)
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_WRONLY, open_opt=opts)
        assert fd.writer.wal and fd.writer.wal_batch == 16
        plfs.plfs_write(fd, b"z", 1, 0)
        plfs.plfs_close(fd)


# ---------------------------------------------------------------------- #
# writer hygiene (the bug sweep)
# ---------------------------------------------------------------------- #


class TestWriterHygiene:
    def test_failed_index_touch_leaves_no_droppings(self, container):
        """Regression: an ENOSPC on the index-dropping touch at open used
        to leak the already-created data and WAL droppings (and their
        descriptors)."""
        inj = FaultInjector([FaultSpec("meta_create", "enospc", op=1)])
        w = WriteFile(container, wal=True)
        with inj.armed():
            with pytest.raises(OSError):
                w.write(b"doomed", 0, pid=1)
        assert os.listdir(w.hostdir) == []
        # The handle recovers: the next write rebuilds the dropping pair.
        assert w.write(b"fine", 0, pid=1) == 4
        w.close()
        with ReadFile(container, use_shared_cache=False) as r:
            assert r.read(4, 0) == b"fine"

    def test_close_survives_descriptor_close_failure(self, container, monkeypatch):
        """A failing ``close(2)`` must not leak the sibling descriptor,
        skip the WAL cleanup (the flush *did* succeed), or break
        idempotence."""
        w = WriteFile(container, wal=True)
        w.write(b"payload", 0, pid=1)
        d = next(iter(w._droppings.values()))
        data_fd, wal_path = d.data_fd, d.wal_path
        real_close = os.close
        fired = []

        def failing_close(fd):
            real_close(fd)
            if fd == data_fd and not fired:
                fired.append(fd)
                raise OSError(5, "injected close failure")

        monkeypatch.setattr(os, "close", failing_close)
        with pytest.raises(OSError):
            w.close()
        monkeypatch.undo()
        assert fired
        assert d.data_fd == -1 and d.wal_fd == -1
        assert not os.path.exists(wal_path)
        w.close()  # idempotent: no double-close, no second raise
        with ReadFile(container, use_shared_cache=False) as r:
            assert r.read(7, 0) == b"payload"

    def test_failed_close_flush_keeps_wal_for_recovery(self, container):
        inj = FaultInjector([FaultSpec("index_flush", "enospc", op=1)])
        w = WriteFile(container, wal=True)
        w.write(b"keep me", 0, pid=1)
        d = next(iter(w._droppings.values()))
        with inj.armed():
            with pytest.raises(OSError):
                w.close()
        # The flush failed, so the WAL stays behind as the recovery
        # source — but the descriptors are still released.
        assert os.path.exists(d.wal_path)
        assert d.data_fd == -1 and d.wal_fd == -1

    def test_merged_record_length_is_capped(self, container, monkeypatch):
        monkeypatch.setattr(writer_module, "MERGE_LENGTH_CAP", 8)
        with WriteFile(container) as w:
            for i in range(4):
                w.write(b"abcd", i * 4, pid=1)
            ((recs, _path),) = w.pending_records()
            assert list(recs["length"]) == [8, 8]
        with ReadFile(container, use_shared_cache=False) as r:
            assert r.read(16, 0) == b"abcd" * 4

    def test_gc_abandons_without_flushing(self, container):
        w = WriteFile(container)
        w.write(b"unflushed", 0, pid=1)
        index_path = next(iter(w._droppings.values())).index_path
        del w
        gc.collect()
        # close() is the explicit persistence point; GC must never flush.
        assert os.path.getsize(index_path) == 0


# ---------------------------------------------------------------------- #
# adaptive index flushing
# ---------------------------------------------------------------------- #


class TestAdaptiveFlush:
    def test_sequential_stream_scales_the_threshold_up(self, container):
        with WriteFile(container) as w:
            for i in range(writer_module.ADAPTIVE_FLUSH_MIN_SAMPLE + 8):
                w.write(b"s" * 4, i * 4, pid=1)
            d = next(iter(w._droppings.values()))
            assert (
                d.effective_flush_threshold() > writer_module.INDEX_FLUSH_THRESHOLD
            )
            assert (
                w.stats["adaptive_threshold"] > writer_module.INDEX_FLUSH_THRESHOLD
            )
            assert len(d.pending) == 1  # the whole stream merged

    def test_random_stream_keeps_the_base_threshold(self, container, monkeypatch):
        monkeypatch.setattr(writer_module, "INDEX_FLUSH_THRESHOLD", 8)
        with WriteFile(container) as w:
            for i in range(writer_module.ADAPTIVE_FLUSH_MIN_SAMPLE + 6):
                w.write(b"r", (i * 37) % 4096, pid=1)  # never contiguous
            d = next(iter(w._droppings.values()))
            assert d.effective_flush_threshold() == 8
            assert w.stats["threshold_flushes"] >= 1
            assert w.stats["generation_bumps"] >= 1  # flushes invalidate


# ---------------------------------------------------------------------- #
# cross-process invalidation
# ---------------------------------------------------------------------- #

APPENDER = """
import os, sys
from repro import plfs

path = sys.argv[1]
fd = plfs.plfs_open(path, os.O_WRONLY)
plfs.plfs_write(fd, b"BBBB", 4, 4)
plfs.plfs_close(fd)
"""

BATCH_WRITER = """
import os, sys
from repro import plfs

path, rank, block = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
opts = plfs.OpenOptions(write_ahead_index=True, wal_batch_records=4)
fd = plfs.plfs_open(path, os.O_CREAT | os.O_WRONLY, open_opt=opts)
payload = bytes([65 + rank]) * block
for step in range(6):
    offset = (step * 3 + rank) * block
    plfs.plfs_write(fd, payload, block, offset)
plfs.plfs_close(fd)
"""


class TestCrossProcessInvalidation:
    def test_generation_token_tracks_bumps(self, container):
        assert container.generation_token() is None  # never bumped yet
        container.bump_generation()
        token = container.generation_token()
        assert token is not None
        time.sleep(0.02)
        container.bump_generation()
        assert container.generation_token() != token
        assert not [
            n for n in os.listdir(container.path) if n.startswith("generation.tmp.")
        ]

    def test_open_reader_sees_another_process_close(self, container_path):
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_WRONLY)
        plfs.plfs_write(fd, b"AAAA", 4, 0)
        plfs.plfs_close(fd)

        reader = ReadFile(Container(container_path))
        assert reader.read(4, 0) == b"AAAA"

        subprocess.run(
            [sys.executable, "-c", APPENDER, container_path], check=True
        )
        # No refresh() call, no in-process cache traffic: the generation
        # file alone must carry the invalidation across the boundary.
        assert reader.read(8, 0) == b"AAAABBBB"
        assert reader.stats["cross_process_refreshes"] >= 1
        reader.close()

    def test_concurrent_batched_wal_writers_read_back_exactly(self, container_path):
        ranks, block = 3, 128
        procs = [
            subprocess.Popen(
                [
                    sys.executable, "-c", BATCH_WRITER,
                    container_path, str(rank), str(block),
                ]
            )
            for rank in range(ranks)
        ]
        for p in procs:
            assert p.wait() == 0
        assert wal_files(container_path) == []  # every close was clean
        fd = plfs.plfs_open(container_path, os.O_RDONLY)
        data = plfs.plfs_read(fd, ranks * 6 * block, 0)
        plfs.plfs_close(fd)
        expected = b"".join(
            bytes([65 + rank]) * block for _ in range(6) for rank in range(ranks)
        )
        assert data == expected
        report = plfs.plfs_check(container_path)
        assert report.ok, report.render()


# ---------------------------------------------------------------------- #
# merge × flush × batch interleavings (property)
# ---------------------------------------------------------------------- #


@settings(max_examples=30, deadline=None)
@given(
    writes=st.lists(
        st.tuples(
            st.integers(0, 256),  # offset
            st.binary(min_size=1, max_size=16),  # payload
            st.booleans(),  # sync after?
        ),
        min_size=1,
        max_size=40,
    ),
    threshold=st.integers(1, 6),
    wal_batch=st.integers(1, 5),
)
def test_interleaved_merge_flush_batches_read_back_exactly(
    writes, threshold, wal_batch
):
    """Over random schedules with a tiny flush threshold and every batch
    size: whatever interleaving of merges, threshold flushes, syncs and
    WAL windows occurs, the read-back equals the flat-file model and a
    clean close leaves no WAL behind."""
    old = writer_module.INDEX_FLUSH_THRESHOLD
    writer_module.INDEX_FLUSH_THRESHOLD = threshold
    tmp = tempfile.mkdtemp()
    try:
        path = os.path.join(tmp, "f")
        container = Container(path)
        container.create()
        model = bytearray()
        with WriteFile(container, wal=True, wal_batch=wal_batch) as w:
            for offset, payload, do_sync in writes:
                w.write(payload, offset, pid=1)
                end = offset + len(payload)
                if len(model) < end:
                    model.extend(b"\x00" * (end - len(model)))
                model[offset:end] = payload
                if do_sync:
                    w.sync()
        with ReadFile(container, use_shared_cache=False) as r:
            assert r.read(len(model) + 8, 0) == bytes(model)
        assert wal_files(path) == []
    finally:
        writer_module.INDEX_FLUSH_THRESHOLD = old
        shared_cache().clear()
        shutil.rmtree(tmp, ignore_errors=True)
