"""Multi-process container tests: the N-writers-one-file scenario.

PLFS's whole point is N processes writing one logical file without
coordination.  These tests run real concurrent *subprocesses* (not
threads) against one container — each becomes its own pid and therefore
its own dropping stream — and verify the merged result.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro import plfs

WRITER = """
import os, sys
from repro import plfs

path, rank, block = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
fd = plfs.plfs_open(path, os.O_CREAT | os.O_WRONLY)
payload = bytes([65 + rank]) * block
# Interleaved stripes: rank r owns blocks r, r+N, r+2N...
for step in range(4):
    offset = (step * 4 + rank) * block
    plfs.plfs_write(fd, payload, block, offset)
plfs.plfs_close(fd)
"""


@pytest.mark.parametrize("block", [64, 4096])
def test_concurrent_subprocess_writers(container_path, block):
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", WRITER, container_path, str(rank), str(block)]
        )
        for rank in range(4)
    ]
    for p in procs:
        assert p.wait() == 0

    # Four writers, each with its own dropping pair.
    container = plfs.Container(container_path)
    assert len(container.droppings()) == 4

    fd = plfs.plfs_open(container_path, os.O_RDONLY)
    data = plfs.plfs_read(fd, 16 * block, 0)
    plfs.plfs_close(fd)
    expected = b"".join(
        bytes([65 + rank]) * block for _ in range(4) for rank in range(4)
    )
    assert data == expected
    assert plfs.plfs_getattr(container_path).st_size == 16 * block


def test_concurrent_writers_meta_consistent(container_path):
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", WRITER, container_path, str(rank), "256"]
        )
        for rank in range(3)
    ]
    for p in procs:
        assert p.wait() == 0
    # All markers released, cached size trustworthy and correct.
    container = plfs.Container(container_path)
    assert container.open_writers() == []
    # Ranks 0..2 of a 4-way interleave: the last written block is rank 2's
    # step-3 stripe, ending at block 15 (stripe 3 of each step is a hole).
    assert container.cached_size() == 15 * 256
    report = plfs.plfs_check(container_path)
    assert report.ok
