"""Multi-process container tests: the N-writers-one-file scenario.

PLFS's whole point is N processes writing one logical file without
coordination.  These tests run real concurrent *subprocesses* (not
threads) against one container — each becomes its own pid and therefore
its own dropping stream — and verify the merged result.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro import plfs

WRITER = """
import os, sys
from repro import plfs

path, rank, block = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
fd = plfs.plfs_open(path, os.O_CREAT | os.O_WRONLY)
payload = bytes([65 + rank]) * block
# Interleaved stripes: rank r owns blocks r, r+N, r+2N...
for step in range(4):
    offset = (step * 4 + rank) * block
    plfs.plfs_write(fd, payload, block, offset)
plfs.plfs_close(fd)
"""


@pytest.mark.parametrize("block", [64, 4096])
def test_concurrent_subprocess_writers(container_path, block):
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", WRITER, container_path, str(rank), str(block)]
        )
        for rank in range(4)
    ]
    for p in procs:
        assert p.wait() == 0

    # Four writers, each with its own dropping pair.
    container = plfs.Container(container_path)
    assert len(container.droppings()) == 4

    fd = plfs.plfs_open(container_path, os.O_RDONLY)
    data = plfs.plfs_read(fd, 16 * block, 0)
    plfs.plfs_close(fd)
    expected = b"".join(
        bytes([65 + rank]) * block for _ in range(4) for rank in range(4)
    )
    assert data == expected
    assert plfs.plfs_getattr(container_path).st_size == 16 * block


SHIM_WRITER = """
import contextlib, os, sys
from repro.core.interpose import Interposer
from repro.faults import injector_from_env

mnt, backend, rank, ranks, block, steps = (
    sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4]),
    int(sys.argv[5]), int(sys.argv[6]),
)
ip = Interposer([(mnt, backend)])
ip.install()
inj = injector_from_env()
ctx = inj.armed() if inj else contextlib.nullcontext()
with ctx:
    fd = os.open(mnt + "/file", os.O_CREAT | os.O_WRONLY)
    payload = bytes([65 + rank]) * block
    for step in range(steps):
        offset = (step * ranks + rank) * block
        assert os.pwrite(fd, payload, offset) == block
    os.close(fd)
# The kill-window bookkeeping: nothing may linger in the fd table.
assert len(ip.shim.table) == 0, "fd table not empty at exit"
ip.uninstall()
print(len(inj.fired()) if inj else 0)
"""


def test_shim_stress_with_transient_faults(tmp_path, container_path, backend):
    """N writer processes through the installed shim while the injector
    peppers the backing store with EINTR and short writes: the retry
    policy must absorb every one — full data, empty fd tables, no orphan
    droppings, no stale markers."""
    mnt = str(tmp_path / "mnt" / "plfs")
    ranks, block, steps = 3, 64, 8
    env = dict(
        os.environ,
        REPRO_FAULTS=(
            "data_write:eintr:every=5:count=inf;"
            "data_write:short:every=7:count=inf:bytes=3"
        ),
        REPRO_FAULT_SEED="7",
    )
    procs = [
        subprocess.Popen(
            [
                sys.executable, "-c", SHIM_WRITER,
                mnt, backend, str(rank), str(ranks), str(block), str(steps),
            ],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        for rank in range(ranks)
    ]
    fired = 0
    for p in procs:
        out, _ = p.communicate()
        assert p.returncode == 0
        fired += int(out.strip())
    assert fired > 0  # the run was genuinely faulted, not a clean pass

    container = plfs.Container(container_path)
    assert container.open_writers() == []  # every close reached unregister
    # No dropping orphaned: every data dropping has its index, no WALs.
    for index_path, data_path in container.droppings():
        assert os.path.exists(index_path) and os.path.exists(data_path)
    assert len(container.droppings()) == ranks
    report = plfs.plfs_check(container_path)
    assert report.ok, report.render()

    fd = plfs.plfs_open(container_path, os.O_RDONLY)
    data = plfs.plfs_read(fd, ranks * block * steps, 0)
    plfs.plfs_close(fd)
    expected = b"".join(
        bytes([65 + rank]) * block for _ in range(steps) for rank in range(ranks)
    )
    assert data == expected


def test_concurrent_writers_meta_consistent(container_path):
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", WRITER, container_path, str(rank), "256"]
        )
        for rank in range(3)
    ]
    for p in procs:
        assert p.wait() == 0
    # All markers released, cached size trustworthy and correct.
    container = plfs.Container(container_path)
    assert container.open_writers() == []
    # Ranks 0..2 of a 4-way interleave: the last written block is rank 2's
    # step-3 stripe, ending at block 15 (stripe 3 of each step is a hole).
    assert container.cached_size() == 15 * 256
    report = plfs.plfs_check(container_path)
    assert report.ok
