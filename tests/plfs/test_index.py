"""Tests for index records, droppings and the global index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.plfs import constants
from repro.plfs.errors import CorruptIndexError
from repro.plfs.index import (
    INDEX_DTYPE,
    RECORD_SIZE,
    GlobalIndex,
    ReadSlice,
    make_record,
    pack_records,
    parse_records,
    read_index_dropping,
)


def rec(lo, po, ln, ts, dropping=0, pid=0):
    return make_record(lo, po, ln, pid, ts, dropping)


def cat(*records):
    return np.concatenate(records)


class TestRecordSerialisation:
    def test_roundtrip_single(self):
        r = rec(10, 20, 30, 1.5, dropping=2, pid=7)
        parsed = parse_records(pack_records(r))
        assert parsed.shape == (1,)
        assert parsed[0]["logical_offset"] == 10
        assert parsed[0]["physical_offset"] == 20
        assert parsed[0]["length"] == 30
        assert parsed[0]["dropping"] == 2
        assert parsed[0]["pid"] == 7
        assert parsed[0]["timestamp"] == 1.5

    def test_roundtrip_many(self):
        records = cat(*(rec(i, i * 2, 4, float(i)) for i in range(100)))
        parsed = parse_records(pack_records(records))
        assert np.array_equal(parsed, records)

    def test_record_size_is_dtype_itemsize(self):
        assert RECORD_SIZE == INDEX_DTYPE.itemsize
        assert len(pack_records(rec(0, 0, 1, 0.0))) == RECORD_SIZE

    def test_parse_empty(self):
        assert parse_records(b"").shape == (0,)

    def test_parse_truncated_raises(self):
        data = pack_records(rec(0, 0, 1, 0.0))[:-3]
        with pytest.raises(CorruptIndexError):
            parse_records(data)

    def test_parse_owns_memory(self):
        buf = bytearray(pack_records(rec(5, 0, 1, 0.0)))
        parsed = parse_records(bytes(buf))
        buf[:] = b"\x00" * len(buf)
        assert parsed[0]["logical_offset"] == 5

    def test_read_index_dropping(self, tmp_path):
        path = tmp_path / "dropping.index.x"
        records = cat(rec(0, 0, 8, 1.0), rec(8, 8, 8, 2.0))
        path.write_bytes(pack_records(records))
        assert np.array_equal(read_index_dropping(str(path)), records)

    def test_read_corrupt_dropping_names_file(self, tmp_path):
        path = tmp_path / "dropping.index.bad"
        path.write_bytes(b"\x01" * (RECORD_SIZE + 1))
        with pytest.raises(CorruptIndexError, match="dropping.index.bad"):
            read_index_dropping(str(path))


class TestGlobalIndexBasics:
    def test_empty_index(self):
        gi = GlobalIndex()
        assert gi.logical_size == 0
        assert gi.query(0, 100) == []

    def test_single_record_query(self):
        gi = GlobalIndex([rec(0, 0, 10, 1.0, dropping=3)])
        assert gi.logical_size == 10
        plan = gi.query(0, 10)
        assert plan == [ReadSlice(0, 10, 3, 0)]

    def test_query_subrange(self):
        gi = GlobalIndex([rec(0, 100, 50, 1.0, dropping=1)])
        plan = gi.query(10, 20)
        assert plan == [ReadSlice(10, 20, 1, 110)]

    def test_query_past_eof_empty(self):
        gi = GlobalIndex([rec(0, 0, 10, 1.0)])
        assert gi.query(10, 5) == []
        assert gi.query(100, 5) == []

    def test_query_clipped_at_eof(self):
        gi = GlobalIndex([rec(0, 0, 10, 1.0)])
        plan = gi.query(5, 100)
        assert plan == [ReadSlice(5, 5, 0, 5)]

    def test_query_nonpositive_length(self):
        gi = GlobalIndex([rec(0, 0, 10, 1.0)])
        assert gi.query(0, 0) == []
        assert gi.query(0, -5) == []

    def test_hole_between_extents(self):
        gi = GlobalIndex([cat(rec(0, 0, 10, 1.0), rec(20, 10, 10, 2.0))])
        plan = gi.query(0, 30)
        assert plan == [
            ReadSlice(0, 10, 0, 0),
            ReadSlice(10, 10, constants.HOLE, 0),
            ReadSlice(20, 10, 0, 10),
        ]
        assert plan[1].is_hole

    def test_leading_hole(self):
        gi = GlobalIndex([rec(50, 0, 10, 1.0)])
        plan = gi.query(0, 60)
        assert plan[0] == ReadSlice(0, 50, constants.HOLE, 0)
        assert plan[1] == ReadSlice(50, 10, 0, 0)

    def test_query_starting_inside_hole(self):
        gi = GlobalIndex([cat(rec(0, 0, 10, 1.0), rec(20, 10, 10, 2.0))])
        plan = gi.query(12, 10)
        assert plan == [
            ReadSlice(12, 8, constants.HOLE, 0),
            ReadSlice(20, 2, 0, 10),
        ]


class TestGlobalIndexOverwrites:
    def test_later_timestamp_wins(self):
        gi = GlobalIndex([cat(rec(0, 0, 10, 1.0, dropping=0), rec(0, 0, 10, 2.0, dropping=1))])
        assert gi.query(0, 10) == [ReadSlice(0, 10, 1, 0)]

    def test_order_independent_of_record_order(self):
        # Same two records presented in the opposite order: recency must
        # still win because resolution sorts by timestamp.
        gi = GlobalIndex([cat(rec(0, 0, 10, 2.0, dropping=1), rec(0, 0, 10, 1.0, dropping=0))])
        assert gi.query(0, 10) == [ReadSlice(0, 10, 1, 0)]

    def test_partial_overwrite(self):
        gi = GlobalIndex([cat(rec(0, 0, 30, 1.0, dropping=0), rec(10, 0, 10, 2.0, dropping=1))])
        assert gi.query(0, 30) == [
            ReadSlice(0, 10, 0, 0),
            ReadSlice(10, 10, 1, 0),
            ReadSlice(20, 10, 0, 20),
        ]

    def test_equal_timestamps_keep_append_order(self):
        # Records with identical timestamps resolve by position (stable
        # sort): the later record in the array wins.
        gi = GlobalIndex([cat(rec(0, 0, 10, 5.0, dropping=0), rec(0, 0, 10, 5.0, dropping=1))])
        assert gi.query(0, 10) == [ReadSlice(0, 10, 1, 0)]

    def test_add_records_incremental(self):
        gi = GlobalIndex([rec(0, 0, 10, 1.0, dropping=0)])
        assert gi.logical_size == 10
        gi.add_records(rec(10, 0, 10, 2.0, dropping=1))
        assert gi.logical_size == 20
        assert gi.query(0, 20) == [
            ReadSlice(0, 10, 0, 0),
            ReadSlice(10, 10, 1, 0),
        ]

    def test_add_empty_records_noop(self):
        gi = GlobalIndex([rec(0, 0, 10, 1.0)])
        gi.add_records(np.empty(0, dtype=INDEX_DTYPE))
        assert gi.logical_size == 10

    def test_segments_exposed(self):
        gi = GlobalIndex([cat(rec(0, 0, 10, 1.0, dropping=0), rec(5, 0, 10, 2.0, dropping=1))])
        assert gi.segments() == [(0, 5, 0, 0), (5, 15, 1, 0)]
