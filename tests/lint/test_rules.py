"""Golden-file tests for the AST anti-pattern rules.

One fixture script per rule (plus one clean script): each must trigger
exactly its own rule with the registered severity, and the canonical JSON
report must be byte-identical across runs — the determinism contract the
archived artefacts rely on.
"""

from __future__ import annotations

import os

import pytest

from repro.lint import findings_to_json, lint_source
from repro.lint.findings import RULES

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
GOLDEN = os.path.join(os.path.dirname(__file__), "golden")

#: fixture -> exact [(rule, severity)] outcome, sorted by rule id
EXPECTED: dict[str, list[tuple[str, str]]] = {
    "clean.py": [],
    "mmap_on_mount.py": [("LDP101", "HIGH")],
    "zero_copy.py": [("LDP102", "WARN")],
    "subprocess_on_mount.py": [("LDP103", "HIGH")],
    "fd_arithmetic.py": [("LDP104", "WARN")],
    "import_binding.py": [("LDP105", "HIGH")],
    "fdopen_alias.py": [("LDP106", "WARN")],
    "small_write_loop.py": [("LDP107", "RECOMMEND")],
    "seek_churn.py": [("LDP108", "WARN")],
    "fd_leak.py": [("LDP109", "WARN")],
    "unbalanced_install.py": [("LDP110", "HIGH")],
    "async_blocking.py": [("LDP112", "HIGH")],
    "await_under_lock.py": [("LDP113", "HIGH")],
}


def _fixture_source(name: str) -> str:
    with open(os.path.join(FIXTURES, name), "r", encoding="utf-8") as fh:
        return fh.read()


def _lint_fixture(name: str):
    # a stable filename keeps reports independent of the checkout path
    return lint_source(_fixture_source(name), filename=name)


class TestFixtureOutcomes:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_rule_ids_and_severities(self, name):
        findings = _lint_fixture(name)
        got = sorted((f.rule, f.severity.name) for f in findings)
        assert got == sorted(EXPECTED[name])

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_recommendation_matches_registry(self, name):
        for f in _lint_fixture(name):
            assert f.recommendation  # never empty
            assert f.name == RULES[f.rule].name

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_json_byte_identical_across_runs(self, name):
        first = findings_to_json(_lint_fixture(name), target=name)
        second = findings_to_json(_lint_fixture(name), target=name)
        assert first == second
        assert first.encode() == second.encode()


class TestGoldenFiles:
    @pytest.mark.parametrize(
        "name", ["clean.py", "small_write_loop.py", "subprocess_on_mount.py"]
    )
    def test_report_matches_golden(self, name):
        got = findings_to_json(_lint_fixture(name), target=name)
        golden = os.path.join(GOLDEN, name.replace(".py", ".json"))
        with open(golden, "r", encoding="utf-8") as fh:
            assert got == fh.read()


class TestRuleMechanics:
    def test_syntax_error_is_a_finding(self):
        findings = lint_source("def broken(:\n", filename="broken.py")
        assert [f.rule for f in findings] == ["LDP111"]
        assert findings[0].severity.name == "HIGH"

    def test_mount_override_changes_verdict(self):
        src = 'import subprocess\nsubprocess.run(["rm", "/scratch/plfs/x"])\n'
        assert not [
            f for f in lint_source(src, "s.py") if f.rule == "LDP103"
        ]
        flagged = lint_source(src, "s.py", mounts=("/scratch/plfs",))
        assert [f.rule for f in flagged] == ["LDP103"]
        assert flagged[0].evidence["path"] == "/scratch/plfs/x"

    def test_declared_mounts_discovered_from_script(self):
        src = (
            "from repro.core.interpose import interposed\n"
            "import subprocess\n"
            'with interposed([("/gpfs/logical", "/gpfs/backend")]):\n'
            '    subprocess.run(["cat", "/gpfs/logical/out"])\n'
        )
        findings = lint_source(src, "declared.py")
        assert any(f.rule == "LDP103" for f in findings)

    def test_small_write_via_name_binding(self):
        src = (
            "import os\n"
            "chunk = b'a' * 4096\n"
            "fd = os.open('/tmp/x', os.O_WRONLY)\n"
            "while True:\n"
            "    os.write(fd, chunk)\n"
        )
        findings = lint_source(src, "w.py")
        small = [f for f in findings if f.rule == "LDP107"]
        assert len(small) == 1
        assert small[0].evidence["write_size"] == 4096

    def test_large_write_loop_not_flagged(self):
        src = (
            "import os\n"
            "chunk = b'a' * (8 * 1024 * 1024)\n"
            "fd = os.open('/tmp/x', os.O_WRONLY)\n"
            "for _ in range(4):\n"
            "    os.write(fd, chunk)\n"
            "os.close(fd)\n"
        )
        assert not [
            f for f in lint_source(src, "w.py") if f.rule == "LDP107"
        ]

    def test_writev_sizes_summed(self):
        src = (
            "import os\n"
            "fd = os.open('/tmp/x', os.O_WRONLY)\n"
            "for _ in range(10):\n"
            "    os.writev(fd, [b'ab', b'cd'])\n"
            "os.close(fd)\n"
        )
        small = [
            f for f in lint_source(src, "v.py") if f.rule == "LDP107"
        ]
        assert small and small[0].evidence["write_size"] == 4

    def test_with_open_never_leaks(self):
        src = "with open('/tmp/x') as fh:\n    fh.read()\n"
        assert not [
            f for f in lint_source(src, "ok.py") if f.rule == "LDP109"
        ]

    def test_inline_open_chain_leaks(self):
        src = "data = open('/tmp/x').read()\n"
        findings = [
            f for f in lint_source(src, "leak.py") if f.rule == "LDP109"
        ]
        assert len(findings) == 1

    def test_install_uninstall_pair_balanced(self):
        src = (
            "from repro.core.interpose import install, uninstall\n"
            "ip = install([('/mnt/plfs', '/tmp/b')])\n"
            "try:\n"
            "    pass\n"
            "finally:\n"
            "    uninstall()\n"
        )
        assert not [
            f for f in lint_source(src, "ok.py") if f.rule == "LDP110"
        ]

    def test_bt_example_flagged_statically(self):
        # acceptance criterion: the BT small-write anti-pattern in
        # examples/ is detected without executing anything
        from repro.lint import lint_path

        example = os.path.join(
            os.path.dirname(__file__), "..", "..", "examples",
            "bt_style_app.py",
        )
        findings = lint_path(os.path.normpath(example))
        small = [f for f in findings if f.rule == "LDP107"]
        assert small and small[0].evidence["write_size"] == 1640

    def test_findings_sorted_most_severe_first(self):
        name = "small_write_loop.py"
        src = _fixture_source(name) + (
            "\nimport mmap\n"
            "def extra():\n"
            "    with open('/mnt/plfs/m', 'r+b') as fh:\n"
            "        mmap.mmap(fh.fileno(), 0)\n"
        )
        findings = lint_source(src, name)
        severities = [int(f.severity) for f in findings]
        assert severities == sorted(severities, reverse=True)
