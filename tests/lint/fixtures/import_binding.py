"""Anti-pattern: capturing POSIX entry points at import time."""

from os import open as os_open, write as os_write  # noqa: F401


def main():
    pass


if __name__ == "__main__":
    main()
