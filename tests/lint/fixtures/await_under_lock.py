"""Anti-pattern: awaiting while holding a synchronous threading lock."""

import asyncio
import threading

_lock = threading.Lock()
_state = {}


async def update(key, value):
    with _lock:
        await asyncio.sleep(0)  # suspends with the thread lock held
        _state[key] = value


async def update_safely(key, value):
    async with asyncio.Lock():  # asyncio locks are await-friendly
        await asyncio.sleep(0)
        _state[key] = value


if __name__ == "__main__":
    asyncio.run(update("k", 1))
