"""Anti-pattern: install() without uninstall()."""

from repro.core.interpose import install


def main():
    install([("/mnt/plfs", "/tmp/backend")])
    with open("/mnt/plfs/out.dat", "wb") as fh:
        fh.write(b"\x00" * (32 * 1024 * 1024))


if __name__ == "__main__":
    main()
