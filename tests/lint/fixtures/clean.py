"""A well-behaved LDPLFS workload: nothing for the linter to flag."""

import os

from repro.core.interpose import interposed


def main():
    payload = os.urandom(8 * 1024 * 1024)  # size not statically known
    with interposed([("/mnt/plfs", "/tmp/backend")]):
        with open("/mnt/plfs/checkpoint.dat", "wb") as fh:
            fh.write(payload)
        with open("/mnt/plfs/checkpoint.dat", "rb") as fh:
            data = fh.read()
    return len(data)


if __name__ == "__main__":
    main()
