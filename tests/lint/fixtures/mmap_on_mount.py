"""Anti-pattern: mmap on a file under the PLFS mount."""

import mmap


def main():
    with open("/mnt/plfs/state.bin", "r+b") as fh:
        m = mmap.mmap(fh.fileno(), 0)
        m[0:4] = b"HEAD"
        m.close()


if __name__ == "__main__":
    main()
