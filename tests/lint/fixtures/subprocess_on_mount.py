"""Anti-pattern: handing a logical mount path to a child process."""

import subprocess


def main():
    subprocess.run(["gzip", "-9", "/mnt/plfs/results.dat"], check=True)


if __name__ == "__main__":
    main()
