"""Anti-pattern: the BT regime — fixed small writes in a loop."""

import os

RECORD = b"\x00" * 1640  # one BT solution element record


def main():
    fd = os.open("/mnt/plfs/bt.out", os.O_CREAT | os.O_WRONLY)
    for _ in range(10000):
        os.write(fd, RECORD)
    os.close(fd)


if __name__ == "__main__":
    main()
