"""Anti-pattern: computing one descriptor from another."""

import os


def main():
    fd = os.open("/tmp/scratch.dat", os.O_CREAT | os.O_WRONLY)
    sibling = fd + 1  # assumes descriptor adjacency
    os.close(fd)
    return sibling


if __name__ == "__main__":
    main()
