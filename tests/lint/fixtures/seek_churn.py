"""Anti-pattern: seeking before every access instead of positional I/O."""

import os


def main():
    fd = os.open("/tmp/records.dat", os.O_RDONLY)
    total = 0
    for i in range(512):
        os.lseek(fd, i * 65536, os.SEEK_SET)
        total += len(os.read(fd, 4096))
    os.close(fd)
    return total


if __name__ == "__main__":
    main()
