"""Anti-pattern: a second buffered owner for one descriptor."""

import os


def main():
    fd = os.open("/tmp/log.txt", os.O_CREAT | os.O_WRONLY)
    fh = os.fdopen(fd, "wb")
    fh.close()


if __name__ == "__main__":
    main()
