"""Anti-pattern: opening a file and never closing it."""


def main():
    fh = open("/tmp/audit.log", "w")
    fh.write("run started")


if __name__ == "__main__":
    main()
