"""Anti-pattern: kernel zero-copy below the interposition layer."""

import os


def main():
    src = os.open("/tmp/src.dat", os.O_RDONLY)
    dst = os.open("/tmp/dst.dat", os.O_CREAT | os.O_WRONLY)
    os.sendfile(dst, src, 0, 1 << 20)
    os.close(src)
    os.close(dst)


if __name__ == "__main__":
    main()
