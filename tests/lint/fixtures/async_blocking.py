"""Anti-pattern: blocking I/O directly on the asyncio event loop."""

import asyncio
import time


async def handle_request(reader, writer):
    time.sleep(0.1)  # stalls every connected client
    data = await reader.read(1024)
    writer.write(data)


def sync_helper():
    # fine: plain functions run wherever they are called (an executor)
    time.sleep(0.1)


if __name__ == "__main__":
    asyncio.run(handle_request(None, None))
