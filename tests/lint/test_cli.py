"""Tests for the ``repro-lint`` command-line front end."""

from __future__ import annotations

import json
import os

import pytest

from repro.lint.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


class TestSelfAuditMode:
    def test_exit_zero_and_pass_text(self, capsys):
        assert main(["--self-audit"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "0 uncovered" in out
        assert "builtins.open, io.open" in out

    def test_json_report_parses(self, capsys):
        assert main(["--self-audit", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["passed"] is True
        assert data["coverage"]["clean"] is True
        assert data["coverage"]["uncovered"] == []

    def test_deterministic_output(self, capsys):
        main(["--self-audit", "--json"])
        first = capsys.readouterr().out
        main(["--self-audit", "--json"])
        second = capsys.readouterr().out
        assert first == second


class TestScriptMode:
    def test_clean_script_exits_zero(self, capsys):
        assert main([fixture("clean.py")]) == 0
        assert "no issues found" in capsys.readouterr().out

    def test_high_finding_fails_default_threshold(self, capsys):
        assert main([fixture("mmap_on_mount.py")]) == 1
        out = capsys.readouterr().out
        assert "LDP101" in out

    def test_recommend_finding_passes_default_threshold(self, capsys):
        # default --fail-on warn: a RECOMMEND finding is reported, exit 0
        assert main([fixture("small_write_loop.py")]) == 0
        assert "LDP107" in capsys.readouterr().out

    def test_fail_on_recommend_tightens(self, capsys):
        assert (
            main(["--fail-on", "recommend", fixture("small_write_loop.py")])
            == 1
        )

    def test_fail_on_never_always_passes(self, capsys):
        assert main(["--fail-on", "never", fixture("mmap_on_mount.py")]) == 0

    def test_json_mode_emits_findings(self, capsys):
        assert main(["--json", fixture("seek_churn.py")]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["finding_count"] == 1
        assert data["findings"][0]["rule"] == "LDP108"
        assert data["severity_counts"] == {"WARN": 1}

    def test_multiple_scripts_merge(self, capsys):
        code = main(
            ["--json", fixture("fd_leak.py"), fixture("zero_copy.py")]
        )
        assert code == 1
        data = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in data["findings"]} == {"LDP109", "LDP102"}

    def test_mount_flag_forwarded(self, tmp_path, capsys):
        script = tmp_path / "app.py"
        script.write_text(
            'import subprocess\nsubprocess.run(["cp", "/x/plfs/a", "/tmp"])\n'
        )
        assert main([str(script)]) == 0
        capsys.readouterr()
        assert main(["--mount", "/x/plfs", str(script)]) == 1
        assert "LDP103" in capsys.readouterr().out


class TestUsageErrors:
    def test_no_arguments_is_usage_error(self, capsys):
        assert main([]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file_is_usage_error(self, capsys):
        assert main([fixture("does_not_exist.py")]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_fail_on_rejected(self):
        with pytest.raises(SystemExit):
            main(["--fail-on", "bogus", fixture("clean.py")])


class TestListRules:
    def test_catalogue_printed(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("LDP001", "LDP003", "LDP101", "LDP111"):
            assert rule_id in out
