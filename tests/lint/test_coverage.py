"""Tests for the interposition-coverage audit.

The headline regression test mandated by the issue: against the live
tree the audit reports **zero uncovered symbols**, and a seeded gap (a
symbol deliberately removed from ``_OS_PATCHES``) is detected — so the
vectored-I/O class of bug can never silently reappear.
"""

from __future__ import annotations

import os

from repro.core import interpose
from repro.lint import audit_findings, audit_interposition, realos_gaps
from repro.lint.coverage import ACKNOWLEDGED_PASSTHROUGH, FILE_TOUCHING_OS

VECTORED = ["readv", "writev", "preadv", "pwritev"]


class TestLiveTree:
    def test_zero_uncovered_after_vectored_fix(self):
        report = audit_interposition()
        assert report.uncovered == []
        assert report.clean

    def test_no_patch_is_missing_its_shim(self):
        report = audit_interposition()
        assert report.missing_shim == []
        assert report.stale == []

    def test_builtin_surfaces_rebound(self):
        report = audit_interposition()
        assert report.builtin_covered == ["builtins.open", "io.open"]
        assert report.builtin_uncovered == []

    def test_vectored_symbols_are_patched(self):
        report = audit_interposition()
        for name in VECTORED:
            if hasattr(os, name):
                assert name in report.patched

    def test_live_tree_produces_no_findings(self):
        assert audit_findings(audit_interposition()) == []

    def test_realos_snapshots_complete(self):
        assert realos_gaps() == []


class TestSeededGap:
    def test_single_removed_symbol_detected(self):
        patches = [p for p in interpose._OS_PATCHES if p != "pwritev"]
        report = audit_interposition(patches=patches)
        assert report.uncovered == ["pwritev"]
        assert not report.clean

    def test_all_vectored_symbols_removed(self):
        patches = [p for p in interpose._OS_PATCHES if p not in VECTORED]
        report = audit_interposition(patches=patches)
        assert report.uncovered == sorted(
            v for v in VECTORED if hasattr(os, v)
        )
        findings = audit_findings(report)
        assert {f.rule for f in findings} == {"LDP001"}
        assert {f.evidence["symbol"] for f in findings} == {
            f"os.{v}" for v in VECTORED if hasattr(os, v)
        }

    def test_patch_without_shim_method_detected(self):
        report = audit_interposition(
            patches=list(interpose._OS_PATCHES) + ["walk"]
        )
        assert report.missing_shim == ["walk"]
        findings = audit_findings(report)
        assert any(
            f.rule == "LDP002" and f.evidence["symbol"] == "os.walk"
            for f in findings
        )

    def test_stale_patch_detected(self):
        report = audit_interposition(
            patches=list(interpose._OS_PATCHES) + ["frobnicate"]
        )
        assert report.stale == ["frobnicate"]
        findings = audit_findings(report)
        assert any(f.rule == "LDP005" for f in findings)

    def test_findings_sorted_and_deterministic(self):
        patches = [p for p in interpose._OS_PATCHES if p not in VECTORED]
        first = audit_findings(audit_interposition(patches=patches))
        second = audit_findings(audit_interposition(patches=patches))
        assert [f.as_dict() for f in first] == [f.as_dict() for f in second]


class TestCatalogueHygiene:
    def test_every_acknowledgement_has_a_written_reason(self):
        for name, reason in ACKNOWLEDGED_PASSTHROUGH.items():
            assert isinstance(reason, str) and len(reason) > 5, name

    def test_acknowledged_symbols_are_in_catalogue(self):
        assert set(ACKNOWLEDGED_PASSTHROUGH) <= FILE_TOUCHING_OS

    def test_no_symbol_both_patched_and_acknowledged(self):
        overlap = set(interpose._OS_PATCHES) & set(ACKNOWLEDGED_PASSTHROUGH)
        assert overlap == set()

    def test_report_dict_shape(self):
        data = audit_interposition().as_dict()
        assert data["clean"] is True
        assert set(data) == {
            "patched", "uncovered", "acknowledged", "missing_shim",
            "stale", "builtin_covered", "builtin_uncovered", "clean",
        }
