"""Static findings flowing into insights reports and the autotuner."""

from __future__ import annotations

import json

from repro.cluster import SIERRA
from repro.insights import profile_from_run, report_to_dict, report_to_json, run_rules
from repro.lint import as_static_evidence, lint_source
from repro.model import WorkloadPattern, choose_method
from repro.model.autotune import advise_from_profile
from repro.mpiio import LDPLFS
from repro.sim.stats import MB
from repro.workloads import run_flashio

SMALL_WRITE_SRC = (
    "import os\n"
    "fd = os.open('/mnt/plfs/bt.out', os.O_WRONLY)\n"
    "for _ in range(1000):\n"
    "    os.write(fd, b'x' * 1640)\n"
    "os.close(fd)\n"
)


def flash_pattern(nodes: int) -> WorkloadPattern:
    ranks = nodes * 12
    return WorkloadPattern(
        nodes=nodes, writers=ranks, openers=ranks,
        total_bytes=205 * MB * ranks, write_size=205 * MB / 24,
        collective=False,
    )


def _profile_and_findings():
    result = run_flashio(SIERRA, LDPLFS, 2)
    profile = profile_from_run(result, SIERRA, LDPLFS, workload="flashio")
    return profile, run_rules(profile)


class TestInsightsMerge:
    def test_report_dict_gains_static_section(self):
        profile, findings = _profile_and_findings()
        static = as_static_evidence(lint_source(SMALL_WRITE_SRC, "bt.py"))
        report = report_to_dict(profile, findings, static=static)
        assert report["static"] == static
        assert report["static"][0]["rule"] == "LDP107"

    def test_report_without_static_is_unchanged(self):
        profile, findings = _profile_and_findings()
        report = report_to_dict(profile, findings)
        assert "static" not in report

    def test_json_round_trip(self):
        profile, findings = _profile_and_findings()
        static = as_static_evidence(lint_source(SMALL_WRITE_SRC, "bt.py"))
        data = json.loads(report_to_json(profile, findings, static=static))
        assert data["static"][0]["rule"] == "LDP107"
        assert data["static"][0]["severity"] == "RECOMMEND"


class TestAutotuneCitation:
    def test_choose_method_cites_static_evidence(self):
        static = lint_source(SMALL_WRITE_SRC, "bt.py")
        rec = choose_method(SIERRA, flash_pattern(8), static_findings=static)
        assert rec.static_findings == static
        assert "Static evidence" in rec.explanation
        assert "LDP107" in rec.explanation
        assert "bt.py" in rec.explanation

    def test_most_severe_finding_cited(self):
        src = SMALL_WRITE_SRC + (
            "import mmap\n"
            "with open('/mnt/plfs/m', 'r+b') as fh:\n"
            "    mm = mmap.mmap(fh.fileno(), 0)\n"
            "mm.close()\n"
        )
        static = lint_source(src, "bt.py")
        rec = choose_method(SIERRA, flash_pattern(8), static_findings=static)
        assert "LDP101" in rec.explanation
        assert "[HIGH]" in rec.explanation

    def test_without_static_explanation_unchanged(self):
        rec = choose_method(SIERRA, flash_pattern(8))
        assert rec.static_findings == []
        assert "Static evidence" not in rec.explanation

    def test_advise_from_profile_passthrough(self):
        profile, _ = _profile_and_findings()
        static = lint_source(SMALL_WRITE_SRC, "bt.py")
        rec = advise_from_profile(SIERRA, profile, static_findings=static)
        assert "Static evidence" in rec.explanation
