"""Tests for the shim concurrency checker (guarded-field contracts)."""

from __future__ import annotations

import textwrap

from repro.lint import self_audit, self_audit_concurrency
from repro.lint.concurrency import DEFAULT_GUARDS, GuardSpec, check_source

TABLE_GUARD = GuardSpec("fake.table", "FdTable", "_entries", "self._lock")
GLOBAL_GUARD = GuardSpec("fake.mod", "", "_installed", "_install_lock")


def _check(source: str, guards=None) -> list:
    return check_source(
        textwrap.dedent(source), "seeded.py", guards or [TABLE_GUARD]
    )


class TestGuardedFields:
    def test_unguarded_mutation_is_flagged(self):
        findings = _check(
            """
            class FdTable:
                def register(self, fd, entry):
                    self._entries[fd] = entry
            """
        )
        assert [f.rule for f in findings] == ["LDP003"]
        assert findings[0].evidence["function"] == "FdTable.register"
        assert findings[0].evidence["guard"] == "self._lock"

    def test_guarded_mutation_is_clean(self):
        assert (
            _check(
                """
                class FdTable:
                    def register(self, fd, entry):
                        with self._lock:
                            self._entries[fd] = entry
                """
            )
            == []
        )

    def test_mutating_method_call_needs_lock(self):
        findings = _check(
            """
            class FdTable:
                def drop(self, fd):
                    self._entries.pop(fd, None)
            """
        )
        assert [f.rule for f in findings] == ["LDP003"]

    def test_init_is_exempt(self):
        assert (
            _check(
                """
                class FdTable:
                    def __init__(self):
                        self._entries = {}
                """
            )
            == []
        )

    def test_read_access_is_not_a_mutation(self):
        assert (
            _check(
                """
                class FdTable:
                    def get(self, fd):
                        return self._entries.get(fd)
                """
            )
            == []
        )

    def test_other_classes_are_out_of_scope(self):
        assert (
            _check(
                """
                class Unrelated:
                    def register(self, fd, entry):
                        self._entries[fd] = entry
                """
            )
            == []
        )

    def test_module_global_contract(self):
        findings = _check(
            """
            _installed = None

            def install(ip):
                global _installed
                _installed = ip
            """,
            guards=[GLOBAL_GUARD],
        )
        assert [f.rule for f in findings] == ["LDP003"]

        clean = _check(
            """
            def install(ip):
                global _installed
                with _install_lock:
                    _installed = ip
            """,
            guards=[GLOBAL_GUARD],
        )
        assert clean == []


class TestLockOrder:
    def test_inversion_is_flagged(self):
        findings = _check(
            """
            class FdTable:
                def a(self):
                    with self._lock:
                        with other_lock:
                            self._entries.clear()

                def b(self):
                    with other_lock:
                        with self._lock:
                            self._entries.clear()
            """,
            guards=[
                TABLE_GUARD,
                GuardSpec("fake.table", "FdTable", "_x", "other_lock"),
            ],
        )
        assert "LDP004" in {f.rule for f in findings}

    def test_consistent_nesting_is_clean(self):
        findings = _check(
            """
            class FdTable:
                def a(self):
                    with self._lock:
                        with other_lock:
                            self._entries.clear()

                def b(self):
                    with self._lock:
                        with other_lock:
                            self._entries.clear()
            """,
            guards=[
                TABLE_GUARD,
                GuardSpec("fake.table", "FdTable", "_x", "other_lock"),
            ],
        )
        assert not [f for f in findings if f.rule == "LDP004"]


class TestSelfAudit:
    def test_real_tree_holds_all_contracts(self):
        assert self_audit_concurrency() == []

    def test_default_guards_cover_the_core_structures(self):
        covered = {(g.module, g.field) for g in DEFAULT_GUARDS}
        assert ("repro.core.fdtable", "_entries") in covered
        assert ("repro.core.mounts", "_mounts") in covered
        assert ("repro.core.interpose", "_installed") in covered

    def test_combined_self_audit_passes(self):
        audit = self_audit()
        assert audit.passed
        assert audit.findings == []
        assert audit.coverage.clean
