"""Tests for the access-method cost models."""

from __future__ import annotations

import pytest

from repro.cluster import SIERRA
from repro.mpiio import ALL_METHODS, BY_NAME, FUSE, LDPLFS, MPIIO, PLFS_METHODS, ROMIO

PERF = SIERRA.perf


class TestMethodProperties:
    def test_registry(self):
        assert BY_NAME["MPI-IO"] is MPIIO
        assert BY_NAME["LDPLFS"] is LDPLFS
        assert set(ALL_METHODS) == {MPIIO, FUSE, ROMIO, LDPLFS}
        assert MPIIO not in PLFS_METHODS

    def test_plfs_flags(self):
        assert not MPIIO.uses_plfs
        assert FUSE.uses_plfs and ROMIO.uses_plfs and LDPLFS.uses_plfs

    def test_ldplfs_cheaper_than_romio(self):
        """The paper's observation: interposition costs less per call than
        the ROMIO driver path (LDPLFS occasionally wins)."""
        assert LDPLFS.per_call_overhead < ROMIO.per_call_overhead

    def test_only_fuse_chunks(self):
        assert FUSE.fuse_transport
        assert not any(m.fuse_transport for m in (MPIIO, ROMIO, LDPLFS))


class TestChunking:
    def test_non_fuse_single_chunk(self):
        assert ROMIO.chunks(10e6, PERF) == [10e6]
        assert MPIIO.chunks(1.0, PERF) == [1.0]

    def test_fuse_splits_at_max_write(self):
        nbytes = 4 * PERF.fuse_max_write
        chunks = FUSE.chunks(nbytes, PERF)
        assert len(chunks) == 4
        assert all(c == PERF.fuse_max_write for c in chunks)
        assert sum(chunks) == nbytes

    def test_fuse_remainder_chunk(self):
        nbytes = 2.5 * PERF.fuse_max_write
        chunks = FUSE.chunks(nbytes, PERF)
        assert len(chunks) == 3
        assert chunks[-1] == pytest.approx(0.5 * PERF.fuse_max_write)

    def test_fuse_small_request_unsplit(self):
        assert FUSE.chunks(PERF.fuse_max_write / 2, PERF) == [PERF.fuse_max_write / 2]

    def test_chunk_overhead(self):
        assert FUSE.chunk_overhead(PERF) == PERF.fuse_request_overhead
        assert ROMIO.chunk_overhead(PERF) == 0.0
