"""Tests for communicators and rank placement."""

from __future__ import annotations

import pytest

from repro.mpiio import Communicator


class TestCommunicator:
    def test_block_placement(self):
        comm = Communicator(nodes=2, ppn=3)
        assert comm.size == 6
        assert [(r.node, r.proc) for r in comm.ranks] == [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2),
        ]
        assert [r.rank for r in comm.ranks] == list(range(6))

    def test_aggregators_one_per_node(self):
        comm = Communicator(nodes=4, ppn=3)
        aggs = comm.aggregators()
        assert len(aggs) == 4
        assert all(a.proc == 0 for a in aggs)
        assert [a.node for a in aggs] == [0, 1, 2, 3]

    def test_ranks_on_node(self):
        comm = Communicator(nodes=2, ppn=4)
        assert len(comm.ranks_on_node(1)) == 4
        assert all(r.node == 1 for r in comm.ranks_on_node(1))

    def test_barrier_cost_grows_with_size(self):
        small = Communicator(2, 1).barrier_cost()
        large = Communicator(64, 8).barrier_cost()
        assert 0 < small < large

    def test_single_rank_barrier_free(self):
        assert Communicator(1, 1).barrier_cost() == 0.0

    def test_bcast_cost(self):
        comm = Communicator(16, 1)
        assert comm.bcast_cost(1e6, 1e9) > 0

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Communicator(0, 1)
        with pytest.raises(ValueError):
            Communicator(1, 0)
