"""Tests for MPI-IO hints: collective buffering knobs and data sieving."""

from __future__ import annotations

import pytest

from repro.cluster import MINERVA, SIERRA, Platform
from repro.mpiio import LDPLFS, MPIIO, Communicator, MPIHints, MPIIOSimFile
from repro.sim import Environment
from repro.sim.stats import MB


def setup(method, nodes=4, ppn=2, machine=SIERRA, hints=None):
    env = Environment()
    platform = Platform(env, machine)
    comm = Communicator(nodes, ppn)
    f = MPIIOSimFile(
        platform, method, comm, hints=hints or MPIHints()
    )
    return env, platform, f


def run(env, gen):
    return env.run(until=env.process(gen))


class TestHintValidation:
    def test_defaults(self):
        h = MPIHints()
        assert h.cb_nodes is None
        assert h.romio_cb_write
        assert not h.romio_ds_write
        assert h.aggregator_count(7) == 7

    def test_cb_nodes_clamped_to_nodes(self):
        assert MPIHints(cb_nodes=3).aggregator_count(8) == 3
        assert MPIHints(cb_nodes=100).aggregator_count(8) == 8

    def test_invalid(self):
        with pytest.raises(ValueError):
            MPIHints(cb_nodes=0)
        with pytest.raises(ValueError):
            MPIHints(cb_buffer_size=0)


class TestAggregatorSelection:
    def test_default_one_per_node(self):
        _, _, f = setup(LDPLFS, nodes=4)
        aggs = f._cb_aggregators()
        assert len(aggs) == 4
        assert all(covered == 1 for _, covered in aggs)

    def test_reduced_aggregators_cover_groups(self):
        _, _, f = setup(LDPLFS, nodes=8, hints=MPIHints(cb_nodes=2))
        aggs = f._cb_aggregators()
        assert len(aggs) == 2
        assert sum(covered for _, covered in aggs) == 8
        assert {agg.node for agg, _ in aggs} == {0, 4}

    def test_uneven_split(self):
        _, _, f = setup(LDPLFS, nodes=5, hints=MPIHints(cb_nodes=2))
        aggs = f._cb_aggregators()
        assert sum(covered for _, covered in aggs) == 5


class TestCollectiveBufferingBehaviour:
    def test_fewer_aggregators_fewer_droppings(self):
        env, platform, f = setup(LDPLFS, nodes=8, hints=MPIHints(cb_nodes=2))
        run(env, f.open_all())
        run(env, f.write_at_all(8 * MB))
        assert f.container.dropping_count == 2

    def test_remote_gather_crosses_nic(self):
        env, platform, f = setup(LDPLFS, nodes=4, hints=MPIHints(cb_nodes=1))
        run(env, f.open_all())
        run(env, f.write_at_all(8 * MB))
        # The single aggregator's NIC carried the three remote nodes'
        # data in as well as all data out.
        nic = platform.nic(0)
        assert nic.resource._busy_time > 0

    def test_cb_buffer_size_chunks_backend_writes(self):
        env, platform, f = setup(
            LDPLFS, nodes=1, ppn=1, hints=MPIHints(cb_buffer_size=4 * MB)
        )
        run(env, f.open_all())
        run(env, f.write_at_all(16 * MB))
        state = f.container.writers()[0]
        assert state.records == 4  # 16 MB went out as 4-MB buffers

    def test_cb_disabled_every_rank_writes(self):
        env, platform, f = setup(
            LDPLFS, nodes=2, ppn=3, hints=MPIHints(romio_cb_write=False)
        )
        run(env, f.open_all())
        run(env, f.write_at_all(1 * MB))
        assert f.container.dropping_count == 6  # no aggregation

    def test_cb_disabled_offsets_advance(self):
        env, platform, f = setup(
            MPIIO, nodes=2, ppn=2, hints=MPIHints(romio_cb_write=False)
        )
        run(env, f.open_all())
        run(env, f.write_at_all(2 * MB))
        run(env, f.write_at_all(2 * MB))
        assert f.shared.size == 16 * MB


class TestDataSieving:
    # A dense interleaved file view (2 writers' worth of 64 KB records):
    # the regime where §II says sieving is "extremely beneficial".  With
    # sparse views the amplification (reading the whole extent) dominates
    # and sieving loses — hence ROMIO exposes it as a hint.
    STRIDE = 128 * 1024
    RECORD = 64 * 1024
    COUNT = 256

    def _strided_time(self, ds: bool, method=MPIIO) -> float:
        env, platform, f = setup(
            method, nodes=1, ppn=1, machine=MINERVA,
            hints=MPIHints(romio_ds_write=ds),
        )
        run(env, f.open_all())
        t0 = env.now
        run(
            env,
            f.write_strided_independent(
                f.comm.ranks[0], 0, self.RECORD, self.STRIDE, self.COUNT
            ),
        )
        return env.now - t0

    def test_sieving_beats_naive_strided_writes(self):
        """The §II claim: fewer seek+write operations at the cost of
        moving (and locking) the covering extent."""
        assert self._strided_time(ds=True) < 0.5 * self._strided_time(ds=False)

    def test_sieving_moves_more_bytes(self):
        env, platform, f = setup(
            MPIIO, nodes=1, ppn=1, machine=MINERVA,
            hints=MPIHints(romio_ds_write=True),
        )
        run(env, f.open_all())
        run(
            env,
            f.write_strided_independent(
                f.comm.ranks[0], 0, self.RECORD, self.STRIDE, self.COUNT
            ),
        )
        extent = self.STRIDE * (self.COUNT - 1) + self.RECORD
        assert platform.total_bytes_serviced() == pytest.approx(2 * extent)

    def test_plfs_ignores_sieving(self):
        # Appends are cheap whatever the logical stride: PLFS takes the
        # per-record path even with the hint set.
        with_ds = self._strided_time(ds=True, method=LDPLFS)
        without = self._strided_time(ds=False, method=LDPLFS)
        assert with_ds == pytest.approx(without, rel=0.01)

    def test_contiguous_records_not_sieved(self):
        env, platform, f = setup(
            MPIIO, nodes=1, ppn=1, machine=MINERVA,
            hints=MPIHints(romio_ds_write=True),
        )
        run(env, f.open_all())
        run(
            env,
            f.write_strided_independent(
                f.comm.ranks[0], 0, self.STRIDE, self.STRIDE, 4
            ),
        )
        # record_size == stride: dense writes, no read-modify-write.
        assert platform.total_bytes_serviced() == pytest.approx(4 * self.STRIDE)
