"""Regression + hint matrix for the collective read path.

``read_at_all`` ignored the hints that ``write_at_all`` honored: every
node's aggregator always read its own node's block, regardless of
``cb_nodes`` (aggregator thinning) or ``romio_cb_read`` (collective
buffering off).  The matrix below pins the structural behavior — how
many aggregator reads happen and who issues the backend reads — by
counting calls, plus the timing consequences the simulator models.
"""

from __future__ import annotations

import pytest

from repro.cluster import SIERRA, Platform
from repro.mpiio import LDPLFS, Communicator, MPIIOSimFile
from repro.mpiio.hints import MPIHints
from repro.sim import Environment
from repro.sim.stats import MB


def setup(nodes=2, ppn=2, hints=None):
    env = Environment()
    platform = Platform(env, SIERRA)
    comm = Communicator(nodes, ppn)
    kwargs = {} if hints is None else {"hints": hints}
    f = MPIIOSimFile(platform, LDPLFS, comm, **kwargs)
    env.run(until=env.process(f.open_all()))
    env.run(until=env.process(f.write_at_all(1 * MB)))
    return env, f


def run(env, gen):
    return env.run(until=env.process(gen))


def _count_reads(monkeypatch, f):
    """Wrap the two read paths with call counters."""
    counts = {"aggregator": 0, "independent": 0}
    orig_agg = f._aggregator_read
    orig_backend = f._backend_read

    def agg(*args, **kwargs):
        counts["aggregator"] += 1
        return orig_agg(*args, **kwargs)

    def backend(*args, **kwargs):
        counts["independent"] += 1
        return orig_backend(*args, **kwargs)

    monkeypatch.setattr(f, "_aggregator_read", agg)
    monkeypatch.setattr(f, "_backend_read", backend)
    return counts


def test_default_one_aggregator_read_per_node(monkeypatch):
    env, f = setup(nodes=4, ppn=2)
    counts = _count_reads(monkeypatch, f)
    run(env, f.read_at_all(1 * MB))
    assert counts["aggregator"] == 4


def test_cb_nodes_hint_thins_read_aggregators(monkeypatch):
    env, f = setup(nodes=4, ppn=2, hints=MPIHints(cb_nodes=2))
    counts = _count_reads(monkeypatch, f)
    run(env, f.read_at_all(1 * MB))
    assert counts["aggregator"] == 2


def test_cb_nodes_one_serializes_the_whole_read(monkeypatch):
    env, f = setup(nodes=4, ppn=2, hints=MPIHints(cb_nodes=1))
    counts = _count_reads(monkeypatch, f)
    run(env, f.read_at_all(1 * MB))
    assert counts["aggregator"] == 1


def test_romio_cb_read_off_reads_per_rank(monkeypatch):
    env, f = setup(nodes=2, ppn=4, hints=MPIHints(romio_cb_read=False))
    counts = _count_reads(monkeypatch, f)
    run(env, f.read_at_all(1 * MB))
    assert counts["aggregator"] == 0
    assert counts["independent"] == 8  # one backend read per rank


def test_thinned_read_takes_longer_than_default():
    """The cost consequence the hint matrix models: one aggregator
    pulling everybody's bytes serializes the read phase."""

    def read_time(hints):
        env, f = setup(nodes=4, ppn=2, hints=hints)
        t0 = env.now
        run(env, f.read_at_all(4 * MB))
        return env.now - t0

    assert read_time(MPIHints(cb_nodes=1)) > read_time(MPIHints())


def test_default_hints_unchanged_by_the_matrix():
    """Under default hints the read path must behave exactly as before
    the hint plumbing: one aggregator per node covering its own node
    (the committed sim baselines depend on this)."""
    env, f = setup(nodes=3, ppn=2)
    assert [(agg.node, covered) for agg, covered in f._cb_aggregators()] == [
        (0, 1),
        (1, 1),
        (2, 1),
    ]
