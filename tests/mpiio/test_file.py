"""Tests for the simulated MPI-IO file (collective + independent paths)."""

from __future__ import annotations

import pytest

from repro.cluster import SIERRA, Platform
from repro.mpiio import FUSE, LDPLFS, MPIIO, ROMIO, Communicator, MPIIOSimFile
from repro.sim import Environment
from repro.sim.stats import MB


def setup(method, nodes=2, ppn=2, machine=SIERRA):
    env = Environment()
    platform = Platform(env, machine)
    comm = Communicator(nodes, ppn)
    return env, platform, MPIIOSimFile(platform, method, comm)


def run(env, gen):
    return env.run(until=env.process(gen))


class TestOpen:
    def test_plfs_open_registers_every_rank(self):
        env, platform, f = setup(ROMIO, nodes=3, ppn=4)
        run(env, f.open_all())
        assert platform.mds.ops.counts["openhost_create"] == 12
        assert platform.mds.ops.counts["hostdir_mkdir"] == 3

    def test_shared_open_single_metadata_op(self):
        env, platform, f = setup(MPIIO, nodes=3, ppn=4)
        run(env, f.open_all())
        assert platform.mds.ops.counts == {"shared_open": 1}

    def test_backend_choice(self):
        _, _, f = setup(MPIIO)
        assert f.shared is not None and f.container is None
        _, _, g = setup(LDPLFS)
        assert g.container is not None and g.shared is None


class TestCollectiveWrite:
    def test_write_at_all_moves_all_bytes(self):
        env, platform, f = setup(LDPLFS, nodes=2, ppn=2)
        run(env, f.open_all())
        run(env, f.write_at_all(8 * MB))
        # 2 nodes x 2 ranks x 8 MB all land on servers (uncached: 16 MB
        # aggregated per node with an 8 MB per-rank gate > threshold).
        assert platform.total_bytes_serviced() == 32 * MB

    def test_only_aggregators_create_droppings(self):
        env, platform, f = setup(ROMIO, nodes=2, ppn=4)
        run(env, f.open_all())
        run(env, f.write_at_all(8 * MB))
        assert f.container.dropping_count == 2  # one per node, not 8

    def test_small_rank_writes_use_cache(self):
        env, platform, f = setup(ROMIO, nodes=1, ppn=4)
        run(env, f.open_all())
        run(env, f.write_at_all(0.5 * MB))  # per-rank gate below threshold
        agg_cache = platform.cache(0, 0)
        assert agg_cache.absorbed_bytes == 2 * MB

    def test_shared_write_never_cached(self):
        env, platform, f = setup(MPIIO, nodes=1, ppn=4)
        run(env, f.open_all())
        run(env, f.write_at_all(0.5 * MB))
        assert platform.cache(0, 0).absorbed_bytes == 0
        assert platform.total_bytes_serviced() == 2 * MB

    def test_offsets_advance_between_steps(self):
        env, platform, f = setup(MPIIO, nodes=2, ppn=1)
        run(env, f.open_all())
        run(env, f.write_at_all(8 * MB))
        run(env, f.write_at_all(8 * MB))
        assert f.shared.size == 32 * MB

    def test_ppn_increases_gather_overhead(self):
        def step_time(ppn):
            env, platform, f = setup(ROMIO, nodes=1, ppn=ppn)
            run(env, f.open_all())
            t0 = env.now
            # Same node total; per-rank sizes stay above the cache gate so
            # both configurations take the direct path.
            run(env, f.write_at_all(32 * MB / ppn))
            return env.now - t0

        assert step_time(4) > step_time(1)


class TestFuseTransport:
    def test_fuse_never_caches(self):
        env, platform, f = setup(FUSE, nodes=1, ppn=1)
        run(env, f.open_all())
        run(env, f.write_at_all(1 * MB))  # small writes, but synchronous
        assert platform.cache(0, 0).absorbed_bytes == 0

    def test_fuse_slower_than_ldplfs(self):
        def write_time(method):
            env, platform, f = setup(method, nodes=1, ppn=1)
            run(env, f.open_all())
            t0 = env.now
            run(env, f.write_at_all(8 * MB))
            return env.now - t0

        assert write_time(FUSE) > write_time(LDPLFS) * 1.2

    def test_ldplfs_not_slower_than_romio(self):
        def write_time(method):
            env, platform, f = setup(method, nodes=1, ppn=1)
            run(env, f.open_all())
            t0 = env.now
            run(env, f.write_at_all(8 * MB))
            return env.now - t0

        assert write_time(LDPLFS) <= write_time(ROMIO)


class TestIndependentPath:
    def test_independent_write_creates_per_rank_droppings(self):
        env, platform, f = setup(LDPLFS, nodes=2, ppn=3)
        run(env, f.open_all())

        def all_ranks():
            procs = [
                env.process(f.write_independent(r, r.rank * 8 * MB, 8 * MB))
                for r in f.comm.ranks
            ]
            yield env.all_of(procs)

        run(env, all_ranks())
        assert f.container.dropping_count == 6

    def test_independent_shared_write(self):
        env, platform, f = setup(MPIIO, nodes=1, ppn=2)
        run(env, f.open_all())
        run(env, f.write_independent(f.comm.ranks[0], 0, 8 * MB))
        assert platform.total_bytes_serviced() == 8 * MB

    def test_read_back_collective(self):
        env, platform, f = setup(LDPLFS, nodes=2, ppn=1)
        run(env, f.open_all())
        run(env, f.write_at_all(8 * MB))
        run(env, f.close_all())
        served = platform.total_bytes_serviced()
        run(env, f.open_all(for_read=True))
        run(env, f.read_at_all(8 * MB))
        assert platform.total_bytes_serviced() > served + 15 * MB

    def test_close_all_flushes_plfs(self):
        env, platform, f = setup(LDPLFS, nodes=2, ppn=1)
        run(env, f.open_all())
        run(env, f.write_at_all(8 * MB))
        run(env, f.close_all())
        assert platform.mds.ops.counts["close_meta"] >= 2
