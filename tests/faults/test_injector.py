"""Tests for the fault injector itself: specs, determinism, arming."""

from __future__ import annotations

import errno
import os

import pytest

from repro import plfs
from repro.faults import (
    FaultInjector,
    FaultSpec,
    FaultyBackingStore,
    InjectedCrash,
    injector_from_env,
)
from repro.faults.injector import ENV_SEED, ENV_SPECS, parse_specs
from repro.plfs import backing
from repro.plfs.index import RECORD_SIZE


class TestFaultSpec:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("frobnicate", "crash")

    def test_unknown_behavior_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("data_write", "explode")

    def test_spent_after_count(self):
        spec = FaultSpec("data_write", "eintr", every=1, count=2)
        inj = FaultInjector([spec])
        hits = [inj.decide("data_write")[0] for _ in range(5)]
        assert [s is not None for s in hits] == [True, True, False, False, False]
        assert spec.spent()


class TestParseSpecs:
    def test_round_trip(self):
        [a, b] = parse_specs(
            "data_write:eintr:every=5;data_write:short:every=7:bytes=3"
        )
        assert (a.point, a.behavior, a.every) == ("data_write", "eintr", 5)
        assert (b.behavior, b.every, b.short_bytes) == ("short", 7, 3)

    def test_all_keys(self):
        [s] = parse_specs("index_flush:torn:op=2:count=inf:prob=0.5")
        assert s.op == 2 and s.count is None and s.prob == 0.5

    def test_empty_parts_skipped(self):
        assert parse_specs(";data_write:crash;") != []

    def test_missing_behavior_rejected(self):
        with pytest.raises(ValueError):
            parse_specs("data_write")

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            parse_specs("data_write:crash:when=later")


class TestDeterminism:
    def run_decisions(self, seed: int) -> list[bool]:
        inj = FaultInjector(
            [FaultSpec("data_write", "eintr", prob=0.3, count=None)], seed=seed
        )
        return [inj.decide("data_write")[0] is not None for _ in range(50)]

    def test_same_seed_same_decisions(self):
        assert self.run_decisions(7) == self.run_decisions(7)

    def test_different_seed_different_decisions(self):
        assert self.run_decisions(7) != self.run_decisions(8)

    def test_op_predicate_is_exact(self):
        inj = FaultInjector([FaultSpec("data_write", "crash", op=3)])
        fired = [inj.decide("data_write")[0] is not None for _ in range(5)]
        assert fired == [False, False, True, False, False]

    def test_points_count_independently(self):
        inj = FaultInjector([FaultSpec("index_flush", "crash", op=1)])
        assert inj.decide("data_write")[0] is None
        spec, n = inj.decide("index_flush")
        assert spec is not None and n == 1


class TestArmed:
    def test_armed_installs_and_restores(self):
        before = backing.current()
        inj = FaultInjector([])
        with inj.armed():
            assert isinstance(backing.current(), FaultyBackingStore)
        assert backing.current() is before

    def test_armed_restores_after_crash(self):
        before = backing.current()
        inj = FaultInjector([FaultSpec("data_write", "crash", op=1)])
        with pytest.raises(InjectedCrash):
            with inj.armed():
                backing.current().write_data(-1, b"x", "/nope")
        assert backing.current() is before

    def test_injected_crash_is_not_an_exception(self):
        # Library except-Exception cleanup must not swallow the "kill".
        assert not issubclass(InjectedCrash, Exception)


class TestBehaviorsThroughPlfs:
    """Each behaviour observed through a real plfs_write."""

    def write_under(self, path, spec, payload=b"A" * 64):
        inj = FaultInjector([spec])
        fd = plfs.plfs_open(path, os.O_CREAT | os.O_WRONLY)
        try:
            with inj.armed():
                return inj, plfs.plfs_write(fd, payload, len(payload), 0)
        finally:
            try:
                plfs.plfs_close(fd)
            except OSError:
                pass

    def test_short_write_persists_prefix(self, container_path):
        inj, n = self.write_under(
            container_path, FaultSpec("data_write", "short", op=1, short_bytes=3)
        )
        assert n == 3
        [event] = inj.fired("data_write")
        assert (event.requested, event.actual) == (64, 3)

    @pytest.mark.parametrize(
        "behavior,expected_errno",
        [("eintr", errno.EINTR), ("eagain", errno.EAGAIN), ("enospc", errno.ENOSPC)],
    )
    def test_errno_behaviors(self, container_path, behavior, expected_errno):
        with pytest.raises(OSError) as exc:
            self.write_under(
                container_path, FaultSpec("data_write", behavior, op=1)
            )
        assert exc.value.errno == expected_errno

    def test_torn_index_tears_mid_record(self, container_path):
        inj = FaultInjector([FaultSpec("index_flush", "torn", op=1)])
        fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_WRONLY)
        plfs.plfs_write(fd, b"B" * 32, 32, 0)
        with pytest.raises(InjectedCrash):
            with inj.armed():
                plfs.plfs_sync(fd)
        [event] = inj.fired("index_flush")
        assert 0 < event.actual < event.requested
        assert event.actual % RECORD_SIZE != 0  # a genuinely partial record
        [(index_path, _)] = plfs.Container(container_path).droppings()
        assert os.path.getsize(index_path) == event.actual


class TestEnvActivation:
    def test_unset_gives_none(self):
        assert injector_from_env({}) is None

    def test_specs_and_seed(self):
        inj = injector_from_env(
            {ENV_SPECS: "data_write:eintr:every=5", ENV_SEED: "42"}
        )
        assert inj is not None and inj.seed == 42
        assert inj.specs[0].every == 5
