"""Metadata-service outage windows in the simulator.

The failure-injection counterpart on the modelling side: an MDS failover
(or a recovery pause while ``repro-fsck`` repairs state) seizes every
metadata server for a window, and the accounting surfaces in the platform
report the insights detector reads.
"""

from __future__ import annotations

import pytest

from repro.cluster import SIERRA, Platform
from repro.cluster.platform import MetadataService
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


class TestOutage:
    def test_ops_during_outage_wait_for_it_to_lift(self, env):
        mds = MetadataService(env, SIERRA.perf)
        mds.schedule_outage(start=0.0, duration=5.0)
        done = []

        def proc():
            yield env.timeout(1.0)  # arrives mid-outage
            yield from mds.op("stat")
            done.append(env.now)

        env.run(until=env.process(proc()))
        # The op waited out the remaining 4s of outage before service.
        assert done[0] >= 5.0
        assert mds.ops_delayed_by_outage == 1

    def test_op_before_outage_unaffected(self, env):
        mds = MetadataService(env, SIERRA.perf)
        mds.schedule_outage(start=100.0, duration=5.0)

        def proc():
            yield from mds.op("stat")

        env.run(until=env.process(proc()))
        assert env.now == pytest.approx(SIERRA.perf.mds_base_service)
        assert mds.ops_delayed_by_outage == 0

    def test_in_flight_op_drains_before_outage_seizes(self, env):
        mds = MetadataService(env, SIERRA.perf)
        # Outage scheduled mid-service of an already-granted op: the op
        # finishes (FCFS), the outage seizes afterwards.
        mds.schedule_outage(start=SIERRA.perf.mds_base_service / 2, duration=1.0)
        finished = []

        def proc():
            yield from mds.op("stat")
            finished.append(env.now)

        env.run(until=env.process(proc()))
        assert finished[0] == pytest.approx(SIERRA.perf.mds_base_service)

    def test_accounting_counters(self, env):
        mds = MetadataService(env, SIERRA.perf)
        mds.schedule_outage(start=0.0, duration=2.0)
        mds.schedule_outage(start=10.0, duration=3.0)
        env.run()
        assert mds.outages == 2
        assert mds.outage_seconds == pytest.approx(5.0)
        assert not mds.outage_active

    def test_validation(self, env):
        mds = MetadataService(env, SIERRA.perf)
        with pytest.raises(ValueError):
            mds.schedule_outage(start=-1.0, duration=1.0)
        with pytest.raises(ValueError):
            mds.schedule_outage(start=0.0, duration=0.0)

    def test_platform_report_carries_outage_keys(self, env):
        platform = Platform(env, SIERRA)
        platform.mds.schedule_outage(start=0.0, duration=1.5)

        def proc():
            yield env.timeout(0.5)
            yield from platform.mds.op("stat")

        env.run(until=env.process(proc()))
        report = platform.report()
        assert report["mds_outages"] == 1
        assert report["mds_outage_seconds"] == pytest.approx(1.5)
        assert report["mds_ops_delayed_by_outage"] == 1

    def test_outage_free_report_is_zero(self, env):
        report = Platform(env, SIERRA).report()
        assert report["mds_outages"] == 0
        assert report["mds_outage_seconds"] == 0.0
        assert report["mds_ops_delayed_by_outage"] == 0
