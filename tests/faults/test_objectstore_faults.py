"""The objectstore arms of the fault matrix: lost PUT, torn multipart
upload, stale tier eviction.

Each case runs a clean schedule over the tiered object backend, fires
its fault during the tier's upload drain, then runs ``repro-fsck`` with
the store handed to the reconcile passes and checks the case's verdict —
including the specific repair actions each failure mode must produce
(resync re-upload, staging sweep, or an explicit unrecoverable verdict
for the orphaned extent — never a silent truncation)."""

from __future__ import annotations

import os

import pytest

from repro.faults import FAULT_MATRIX, fsck, matrix_by_name
from repro.faults.harness import random_schedule, read_back, run_objectstore_case

OBJECT_ARMS = [
    pytest.param(case.name, wal, id=f"{case.name}-{'wal' if wal else 'nowal'}")
    for case in FAULT_MATRIX
    if case.objectstore
    for wal in (False, True)
]

#: small enough that harness-sized data droppings multipart, large enough
#: that index/meta droppings stay single-shot (so ``object_part`` op
#: numbering targets the data upload)
PART_BYTES = 2048


def _run(container_path, case_name, wal, fault_seed, schedule_index=0):
    case = matrix_by_name(case_name)
    schedule = random_schedule(fault_seed * 107 + schedule_index, ops=18)
    out, store, backend = run_objectstore_case(
        container_path,
        case,
        schedule,
        wal=wal,
        seed=fault_seed,
        part_bytes=PART_BYTES if case.point == "object_part" else None,
    )
    return case, out, store, backend


@pytest.mark.parametrize("schedule_index", range(2))
@pytest.mark.parametrize("case_name,wal", OBJECT_ARMS)
def test_objectstore_fault_then_fsck_meets_verdict(
    container_path, fault_seed, case_name, wal, schedule_index
):
    case, out, store, backend = _run(
        container_path, case_name, wal, fault_seed, schedule_index
    )
    assert out.crashed == case.crashes
    assert any(e.point == case.point for e in out.events), (
        f"{case.name}: the armed fault never fired"
    )

    root = os.path.dirname(container_path)
    report = fsck(container_path, objectstore=store, objectstore_root=root)
    content = read_back(container_path)
    recoverable = (
        case.recoverable_with_wal if wal else case.recoverable_without_wal
    )
    kinds = {a.kind for a in report.actions}

    if recoverable:
        assert content == out.expected_full(), (
            f"{case.name}: recovered content diverges from the shadow model"
        )
        assert report.ok, (
            f"{case.name}: fsck says not-ok on a recoverable arm:\n"
            + report.render()
        )
        # the data dropping the fault swallowed must be back in the store
        assert "reupload-object" in kinds
    else:
        assert content in out.acceptable_states(), (
            f"{case.name}: recovered content is not a write-order-consistent "
            "prefix of the acknowledged writes"
        )
        assert report.unrecoverable, (
            f"{case.name}: lossy recovery, but fsck reported no loss"
        )
        assert report.check is not None and report.check.ok, (
            f"{case.name}: container still inconsistent after fsck:\n"
            + report.render()
        )

    # post-fsck the store mirrors the repaired container: a second fsck
    # (reconcile included) finds nothing to do
    again = fsck(container_path, objectstore=store, objectstore_root=root)
    assert not again.repaired, (
        f"{case.name}: fsck+reconcile is not idempotent:\n" + again.render()
    )


def test_lost_put_is_healed_by_resync(container_path, fault_seed):
    """The lost PUT's signature: the data dropping's manifest is missing
    from the store while the local copy is intact; resync re-uploads it
    and a full evict/restore round trip then survives."""
    case, out, store, backend = _run(container_path, "lost-object-put", False, fault_seed)
    lost = out.events[-1]
    assert lost.behavior == "lost" and "dropping.data" in lost.path

    root = os.path.dirname(container_path)
    before = read_back(container_path)
    report = fsck(container_path, objectstore=store, objectstore_root=root)
    reuploaded = [a for a in report.actions if a.kind == "reupload-object"]
    assert any("dropping.data" in a.path for a in reuploaded)

    # the store now holds everything: lose the whole local tier and restore
    from repro.plfs.objectstore import WriteBackTier

    tier = WriteBackTier(store, root)
    prefix = os.path.basename(container_path) + "/"
    for key in store.list(prefix):
        local = tier.local_path(key)
        if os.path.exists(local):
            os.unlink(local)
    assert tier.restore_missing(prefix)
    assert read_back(container_path) == before


def test_torn_multipart_leaves_no_visible_object_and_is_swept(
    container_path, fault_seed
):
    case, out, store, backend = _run(
        container_path, "torn-multipart-upload", False, fault_seed
    )
    assert out.crashed
    # the torn staging is pending, and no key was ever committed for it
    pending = store.pending_uploads()
    assert pending, "the torn upload must leave its staging directory behind"
    for _, key in pending:
        assert key is not None and store.head(key) is None

    root = os.path.dirname(container_path)
    report = fsck(container_path, objectstore=store, objectstore_root=root)
    kinds = {a.kind for a in report.actions}
    assert "sweep-torn-upload" in kinds and "reupload-object" in kinds
    assert store.pending_uploads() == []
    assert report.ok


def test_stale_tier_eviction_reports_the_extent_not_silence(
    container_path, fault_seed
):
    """The satellite verdict bugfix end to end: both copies of the data
    dropping are gone, and fsck must *say so* for the promised extent —
    silently truncating past the index coverage is the bug."""
    case, out, store, backend = _run(
        container_path, "stale-tier-eviction", False, fault_seed
    )
    root = os.path.dirname(container_path)
    report = fsck(container_path, objectstore=store, objectstore_root=root)

    assert report.unrecoverable, "the lost extent must be reported"
    assert any("no data dropping behind them" in u for u in report.unrecoverable)
    kinds = {a.kind for a in report.actions}
    # the index that promised the lost bytes is dropped, with its coverage
    # named; what the store did hold (index, meta) came back through the
    # tier's own restore — only the data dropping is beyond recall
    assert "drop-orphan-index" in kinds
    assert backend.tier.stats["tier_restores"] > 0
    assert all("dropping.data" not in k for k in backend.tier.clean_keys())
    assert report.check is not None and report.check.ok


@pytest.mark.parametrize("case_name,wal", OBJECT_ARMS)
def test_dry_run_touches_neither_container_nor_store(
    container_path, fault_seed, case_name, wal
):
    case, out, store, backend = _run(container_path, case_name, wal, fault_seed)
    root = os.path.dirname(container_path)

    def snapshot(base):
        state = {}
        for dirpath, _, names in os.walk(base):
            for name in names:
                p = os.path.join(dirpath, name)
                state[p] = os.path.getsize(p)
        return state

    local_before = snapshot(container_path)
    store_before = snapshot(store.root)
    preview = fsck(
        container_path, dry_run=True, objectstore=store, objectstore_root=root
    )
    assert snapshot(container_path) == local_before
    assert snapshot(store.root) == store_before
    # the dry run predicts the same verdicts the real run delivers
    real = fsck(container_path, objectstore=store, objectstore_root=root)
    assert bool(preview.unrecoverable) == bool(real.unrecoverable)
