"""Property-based crash-consistency: every fault-matrix arm, random writes.

For each matrix case × WAL arm × seeded schedule: run the schedule with the
fault armed (or the damage applied), run ``repro-fsck``, and check the
case's recovery verdict:

- recoverable arms must read back **byte-identical** to the shadow model
  (every acknowledged write, plus a torn write's physically-landed prefix),
  with a clean final check and no unrecoverable verdicts;
- unrecoverable arms must read back as a write-order-consistent prefix no
  older than the last sync, with fsck *reporting* the loss — a silent or
  inventive recovery fails the property.

The schedule seed derives from ``--fault-seed`` (CI runs several); any
failing combination reproduces exactly from the test id.
"""

from __future__ import annotations

import os

import pytest

from repro import plfs
from repro.faults import FAULT_MATRIX, fsck, matrix_by_name
from repro.faults.harness import random_schedule, read_back, run_case

# objectstore arms run under their own harness (the fault fires during
# the tier drain, not the schedule) — see test_objectstore_faults.py
ARMS = [
    pytest.param(case.name, wal, id=f"{case.name}-{'wal' if wal else 'nowal'}")
    for case in FAULT_MATRIX
    if not case.objectstore
    for wal in (False, True)
    if wal or not case.wal_only
]


@pytest.mark.parametrize("schedule_index", range(3))
@pytest.mark.parametrize("case_name,wal", ARMS)
def test_fault_then_fsck_meets_verdict(
    container_path, fault_seed, case_name, wal, schedule_index
):
    case = matrix_by_name(case_name)
    schedule = random_schedule(fault_seed * 101 + schedule_index, ops=18)
    out = run_case(container_path, case, schedule, wal=wal, seed=fault_seed)

    assert out.crashed == (case.mode == "inject" and case.crashes)

    report = fsck(container_path)
    content = read_back(container_path)
    recoverable = (
        case.recoverable_with_wal if wal else case.recoverable_without_wal
    )

    if recoverable:
        assert content == out.expected_full(), (
            f"{case.name}: recovered content diverges from the shadow model"
        )
        assert report.ok, (
            f"{case.name}: fsck says not-ok on a recoverable arm:\n"
            + report.render()
        )
    else:
        assert content in out.acceptable_states(), (
            f"{case.name}: recovered content is not a write-order-consistent "
            "prefix of the acknowledged writes"
        )
        assert report.unrecoverable, (
            f"{case.name}: lossy recovery, but fsck reported no loss"
        )
        assert report.check is not None and report.check.ok, (
            f"{case.name}: container still inconsistent after fsck:\n"
            + report.render()
        )

    # In every arm: post-fsck the container is stable and self-consistent.
    again = fsck(container_path)
    assert not again.repaired, (
        f"{case.name}: fsck is not idempotent:\n" + again.render()
    )
    assert plfs.plfs_getattr(container_path).st_size == len(content)


@pytest.mark.parametrize("case_name,wal", ARMS)
def test_dry_run_changes_nothing(container_path, fault_seed, case_name, wal):
    case = matrix_by_name(case_name)
    schedule = random_schedule(fault_seed * 103, ops=12)
    run_case(container_path, case, schedule, wal=wal, seed=fault_seed)

    def snapshot():
        state = {}
        for dirpath, _, names in os.walk(container_path):
            for name in names:
                p = os.path.join(dirpath, name)
                state[p] = os.path.getsize(p)
        return state

    before = snapshot()
    preview = fsck(container_path, dry_run=True)
    assert snapshot() == before
    # The dry run predicts the same verdicts the real run delivers.
    real = fsck(container_path)
    assert bool(preview.unrecoverable) == bool(real.unrecoverable)


def test_every_matrix_case_exercised():
    names = {case.name for case in FAULT_MATRIX}
    legacy = {case.name for case in FAULT_MATRIX if not case.objectstore}
    covered = {p.values[0] for p in ARMS}
    assert covered == legacy and len(legacy) == 15 and len(names) == 18
