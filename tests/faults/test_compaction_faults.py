"""Compaction is a persistence boundary: faults at the ``global_index``
point must never cost data or fail a close — the compacted index is a
cache, and the worst a torn compaction leaves behind is a temporary file
``repro-fsck`` sweeps."""

from __future__ import annotations

import os

import pytest

from repro import plfs
from repro.faults.fsck import fsck
from repro.faults.injector import FaultInjector, FaultSpec, InjectedCrash
from repro.plfs.cache import load_index, shared_cache
from repro.plfs.container import Container

PAYLOAD = b"0123456789abcdef" * 8


def write_and_close(path, *, injector=None):
    fd = plfs.plfs_open(path, os.O_CREAT | os.O_WRONLY)
    for i in range(4):
        plfs.plfs_write(fd, PAYLOAD, len(PAYLOAD), i * len(PAYLOAD), pid=i)
    if injector is None:
        plfs.plfs_close(fd)
    else:
        with injector.armed():
            plfs.plfs_close(fd)


def read_back(path):
    fd = plfs.plfs_open(path, os.O_RDONLY)
    try:
        return plfs.plfs_read(fd, len(PAYLOAD) * 4 + 64, 0)
    finally:
        plfs.plfs_close(fd)


class TestCompactionFaults:
    def test_enospc_during_compaction_does_not_fail_close(
        self, container_path
    ):
        inj = FaultInjector([FaultSpec("global_index", "enospc")])
        write_and_close(container_path, injector=inj)  # must not raise
        assert len(inj.fired("global_index")) == 1
        container = Container(container_path)
        assert not os.path.exists(container.global_index_path())
        # Readers take the slow path; no bytes lost.
        assert load_index(container).source == "merged"
        assert read_back(container_path) == PAYLOAD * 4

    @pytest.mark.parametrize("behavior", ["crash", "torn"])
    def test_crash_during_compaction_loses_nothing(
        self, container_path, behavior
    ):
        inj = FaultInjector([FaultSpec("global_index", behavior)])
        with pytest.raises(InjectedCrash):
            # The "process dies" during the post-close compaction: the
            # data and index droppings were already durable.
            write_and_close(container_path, injector=inj)
        container = Container(container_path)
        assert not os.path.exists(container.global_index_path())
        shared_cache().clear()
        assert read_back(container_path) == PAYLOAD * 4

        report = fsck(container_path)
        assert report.ok, report.render()
        if behavior == "torn":
            # The torn payload landed in the temporary; fsck sweeps it.
            assert any(
                a.kind == "sweep-compaction-tmp" for a in report.actions
            ), report.render()
        leftovers = [
            n
            for n in os.listdir(container_path)
            if n.startswith("global.index.tmp.")
        ]
        assert not leftovers
        assert read_back(container_path) == PAYLOAD * 4

    def test_compact_tool_surfaces_enospc(self, container_path):
        from repro.plfs.tools import plfs_compact

        write_and_close(container_path)
        Container(container_path).drop_global_index()
        inj = FaultInjector([FaultSpec("global_index", "enospc")])
        with inj.armed(), pytest.raises(OSError):
            plfs_compact(container_path)
        # Explicit tooling reports the failure; nothing half-written.
        assert not os.path.exists(
            Container(container_path).global_index_path()
        )

    def test_fsck_drops_compacted_index_stale_after_repair(
        self, container_path
    ):
        write_and_close(container_path)
        container = Container(container_path)
        assert os.path.exists(container.global_index_path())
        # Damage an index dropping: fsck truncates it, changing the epoch.
        index_path = container.droppings()[0][0]
        with open(index_path, "ab") as fh:
            fh.write(b"\x01\x02\x03")  # torn trailing partial record
        report = fsck(container_path)
        assert any(
            a.kind == "drop-stale-compacted" for a in report.actions
        ), report.render()
        assert not os.path.exists(container.global_index_path())

    def test_fsck_keeps_fresh_compacted_index(self, container_path):
        write_and_close(container_path)
        container = Container(container_path)
        report = fsck(container_path)
        assert report.ok
        assert not any(
            a.kind == "drop-stale-compacted" for a in report.actions
        )
        assert os.path.exists(container.global_index_path())
        assert load_index(container).source == "compacted"
