"""Tests for the ``repro-fsck`` command-line entry point."""

from __future__ import annotations

import json
import os

import pytest

from repro import plfs
from repro.faults.cli import main, scan_containers
from repro.faults.matrix import (
    damage_lose_index_droppings,
    damage_stale_openhost_marker,
)


@pytest.fixture
def clean(container_path):
    fd = plfs.plfs_open(container_path, os.O_CREAT | os.O_WRONLY)
    plfs.plfs_write(fd, b"payload!", 8, 0)
    plfs.plfs_close(fd)
    return container_path


class TestExitCodes:
    def test_clean_container_exits_zero(self, clean, capsys):
        assert main([clean]) == 0
        out = capsys.readouterr().out
        assert "nothing to repair" in out

    def test_repairable_damage_exits_zero(self, clean, capsys):
        damage_stale_openhost_marker(clean)
        assert main([clean]) == 0
        assert "clear-openhost" in capsys.readouterr().out
        assert plfs.Container(clean).open_writers() == []

    def test_unrecoverable_loss_exits_one(self, clean, capsys):
        damage_lose_index_droppings(clean)
        assert main([clean]) == 1
        assert "UNRECOVERABLE" in capsys.readouterr().out

    def test_not_a_container_exits_two(self, backend, capsys):
        os.mkdir(os.path.join(backend, "plaindir"))
        assert main([os.path.join(backend, "plaindir")]) == 2

    def test_no_args_exits_two(self, capsys):
        assert main([]) == 2

    def test_paths_and_scan_together_exits_two(self, clean, backend):
        assert main([clean, "--scan", backend]) == 2

    def test_scan_missing_dir_exits_two(self, tmp_path):
        assert main(["--scan", str(tmp_path / "nope")]) == 2


class TestDryRun:
    def test_dry_run_reports_without_touching(self, clean, capsys):
        damage_stale_openhost_marker(clean)
        rc = main(["--dry-run", clean])
        assert "clear-openhost" in capsys.readouterr().out
        # The marker is still there: nothing was repaired (a marker alone
        # is a warning, not corruption, so the exit status stays 0).
        assert plfs.Container(clean).open_writers() == ["deadhost.99999"]
        assert rc == 0

    def test_dry_run_then_real_run_converges(self, clean):
        damage_lose_index_droppings(clean)
        main(["--dry-run", clean])
        [hostdir] = plfs.Container(clean).hostdirs()
        # Data droppings still present (not yet quarantined):
        assert any(
            n.startswith("dropping.data.") for n in os.listdir(hostdir)
        )
        assert main([clean]) == 1
        assert not any(
            n.startswith("dropping.data.") for n in os.listdir(hostdir)
        )


class TestJsonAndScan:
    def test_json_output_parses(self, clean, capsys):
        damage_stale_openhost_marker(clean)
        assert main(["--json", clean]) == 0
        [report] = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert any(a["kind"] == "clear-openhost" for a in report["actions"])

    def test_scan_finds_nested_containers(self, backend, capsys):
        for name in ("a", "sub/b"):
            path = os.path.join(backend, name)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd = plfs.plfs_open(path, os.O_CREAT | os.O_WRONLY)
            plfs.plfs_write(fd, b"x", 1, 0)
            plfs.plfs_close(fd)
        found = scan_containers(backend)
        assert [os.path.relpath(p, backend) for p in found] == ["a", "sub/b"]
        assert main(["--scan", backend]) == 0

    def test_scan_does_not_descend_into_containers(self, clean, backend):
        # A container's hostdirs must not be mistaken for containers.
        assert scan_containers(backend) == [clean]

    def test_scan_empty_dir_exits_zero(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["--scan", str(empty)]) == 0
