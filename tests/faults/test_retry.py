"""Shim retry policy: transient faults invisible to the application.

LDPLFS's premise is running applications unmodified — applications that
never loop on EINTR or resume short writes.  These tests arm the injector
under an installed interposer and assert the application-visible behaviour
is a plain, complete ``os.write``/``os.read``.
"""

from __future__ import annotations

import errno
import os

import pytest

from repro.core import RetryPolicy
from repro.core.interpose import Interposer
from repro.faults import FaultInjector, FaultSpec


@pytest.fixture
def f(mnt):
    return f"{mnt}/file"


class TestPolicySchedule:
    def test_delays_backoff_and_cap(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_base=0.01, backoff_factor=4.0, backoff_max=0.1
        )
        assert policy.delays() == [0.01, 0.04, 0.1, 0.1]

    def test_one_attempt_never_sleeps(self):
        assert RetryPolicy(max_attempts=1).delays() == []


@pytest.fixture
def slept():
    return []


@pytest.fixture
def shim_under(mnt, backend, slept):
    """An installed interposer whose retry policy records sleeps instead
    of sleeping."""
    policy = RetryPolicy(backoff_base=0.001, backoff_factor=2.0)
    policy.sleep = slept.append
    ip = Interposer([(mnt, backend)])
    ip.shim.retry = policy
    ip.install()
    try:
        yield ip.shim
    finally:
        ip.drain()
        ip.uninstall()


class TestTransientAbsorption:
    def test_single_eintr_absorbed(self, shim_under, slept, f):
        inj = FaultInjector([FaultSpec("data_write", "eintr", op=1)])
        with inj.armed():
            fd = os.open(f, os.O_CREAT | os.O_WRONLY)
            assert os.write(fd, b"A" * 64) == 64
            os.close(fd)
        assert shim_under.stats["transient_retries"] == 1
        assert slept == shim_under.retry.delays()[:1]

    def test_repeated_eintr_backs_off_exponentially(self, shim_under, slept, f):
        inj = FaultInjector([FaultSpec("data_write", "eintr", every=1, count=3)])
        with inj.armed():
            fd = os.open(f, os.O_CREAT | os.O_WRONLY)
            assert os.write(fd, b"B" * 16) == 16
            os.close(fd)
        assert shim_under.stats["transient_retries"] == 3
        assert slept == shim_under.retry.delays()[:3]
        assert slept == [0.001, 0.002, 0.004]

    def test_eagain_also_transient(self, shim_under, f):
        inj = FaultInjector([FaultSpec("data_write", "eagain", op=1)])
        with inj.armed():
            fd = os.open(f, os.O_CREAT | os.O_WRONLY)
            assert os.write(fd, b"C" * 8) == 8
            os.close(fd)
        assert shim_under.stats["transient_retries"] == 1

    def test_short_write_resumed_to_completion(self, shim_under, f):
        inj = FaultInjector(
            [FaultSpec("data_write", "short", op=1, short_bytes=10)]
        )
        with inj.armed():
            fd = os.open(f, os.O_CREAT | os.O_RDWR)
            assert os.write(fd, b"D" * 64) == 64  # one call, fully written
            assert os.pread(fd, 100, 0) == b"D" * 64
            os.close(fd)
        assert shim_under.stats["short_write_resumes"] == 1

    def test_exhaustion_surfaces_the_errno(self, shim_under, slept, f):
        shim_under.retry.max_attempts = 3
        inj = FaultInjector(
            [FaultSpec("data_write", "eintr", every=1, count=None)]
        )
        with inj.armed():
            fd = os.open(f, os.O_CREAT | os.O_WRONLY)
            with pytest.raises(InterruptedError):
                os.write(fd, b"x")
            os.close(fd)
        assert len(slept) == 2  # max_attempts - 1 sleeps, then it raises
        assert shim_under.stats["transient_retries"] == 2

    def test_nontransient_not_retried(self, shim_under, slept, f):
        inj = FaultInjector([FaultSpec("data_write", "enospc", op=1)])
        with inj.armed():
            fd = os.open(f, os.O_CREAT | os.O_WRONLY)
            with pytest.raises(OSError) as exc:
                os.write(fd, b"x")
            assert exc.value.errno == errno.ENOSPC
            os.close(fd)
        assert slept == []
        assert shim_under.stats["transient_retries"] == 0

    def test_faulted_write_is_fully_consistent_after(self, shim_under, f):
        """After absorption, container state equals an unfaulted run."""
        inj = FaultInjector(
            "data_write:eintr:every=3:count=inf;"
            "data_write:short:every=4:count=inf:bytes=5",
            seed=1,
        )
        payload = bytes(range(256)) * 4
        with inj.armed():
            fd = os.open(f, os.O_CREAT | os.O_RDWR)
            for i in range(8):
                assert os.write(fd, payload) == len(payload)
            assert os.pread(fd, 8 * len(payload), 0) == payload * 8
            os.close(fd)
        assert shim_under.stats["transient_retries"] > 0
        assert shim_under.stats["short_write_resumes"] > 0
