"""Tests for the simulated PLFS container cost model."""

from __future__ import annotations

import pytest

from repro.cluster import SIERRA, Platform
from repro.fs import CONTAINER_CREATE_OPS, DROPPING_CREATE_OPS, PlfsContainerSim, PosixClient
from repro.sim import Environment
from repro.sim.stats import MB


def setup():
    env = Environment()
    platform = Platform(env, SIERRA)
    return env, platform, PlfsContainerSim(platform, "file")


def run(env, gen):
    return env.run(until=env.process(gen))


class TestOpenWrite:
    def test_first_open_creates_container(self):
        env, platform, c = setup()
        client = PosixClient(platform, 0, 0)
        run(env, c.register_open(client))
        counts = platform.mds.ops.counts
        assert counts["container_create"] == CONTAINER_CREATE_OPS
        assert counts["hostdir_mkdir"] == 1
        assert counts["openhost_create"] == 1

    def test_second_open_same_node_skips_skeleton(self):
        env, platform, c = setup()
        run(env, c.register_open(PosixClient(platform, 0, 0)))
        run(env, c.register_open(PosixClient(platform, 0, 1)))
        counts = platform.mds.ops.counts
        assert counts["container_create"] == CONTAINER_CREATE_OPS
        assert counts["hostdir_mkdir"] == 1
        assert counts["openhost_create"] == 2

    def test_new_node_adds_hostdir(self):
        env, platform, c = setup()
        run(env, c.register_open(PosixClient(platform, 0, 0)))
        run(env, c.register_open(PosixClient(platform, 1, 0)))
        assert platform.mds.ops.counts["hostdir_mkdir"] == 2


class TestWritePath:
    def test_first_write_creates_dropping_pair(self):
        env, platform, c = setup()
        client = PosixClient(platform, 0, 0)
        run(env, c.register_open(client))
        run(env, c.write(client, 8 * MB))
        assert platform.mds.ops.counts["dropping_create"] == DROPPING_CREATE_OPS
        assert c.dropping_count == 1
        run(env, c.write(client, 8 * MB))
        assert platform.mds.ops.counts["dropping_create"] == DROPPING_CREATE_OPS

    def test_one_dropping_per_writer(self):
        env, platform, c = setup()
        for proc in range(4):
            client = PosixClient(platform, 0, proc)
            run(env, c.register_open(client))
            run(env, c.write(client, 1 * MB, cache_gate=float("inf")))
        assert c.dropping_count == 4
        assert c.logical_bytes() == 4 * MB

    def test_writes_are_sequential_appends(self):
        env, platform, c = setup()
        client = PosixClient(platform, 0, 0)
        run(env, c.register_open(client))
        run(env, c.write(client, 8 * MB))
        t1 = env.now
        run(env, c.write(client, 8 * MB))
        # Second write costs the same as the first: no seek accrues.
        assert env.now - t1 == pytest.approx(t1, rel=0.05)


class TestClose:
    def test_close_flushes_index_and_drops_meta(self):
        env, platform, c = setup()
        client = PosixClient(platform, 0, 0)
        run(env, c.register_open(client))
        run(env, c.write(client, 8 * MB))
        before = c.writers()[0].data.size
        run(env, c.close_write(client))
        assert c.writers()[0].data.size > before  # index records appended
        assert platform.mds.ops.counts["close_meta"] == 2

    def test_close_without_write_is_cheap(self):
        env, platform, c = setup()
        client = PosixClient(platform, 0, 0)
        run(env, c.register_open(client))
        run(env, c.close_write(client))
        assert platform.mds.ops.counts["close_meta"] == 1

    def test_double_close_single_flush(self):
        env, platform, c = setup()
        client = PosixClient(platform, 0, 0)
        run(env, c.register_open(client))
        run(env, c.write(client, 8 * MB))
        run(env, c.close_write(client))
        size = c.writers()[0].data.size
        run(env, c.close_write(client))
        assert c.writers()[0].data.size == size


class TestReadPath:
    def test_first_reader_builds_index(self):
        env, platform, c = setup()
        for proc in range(3):
            client = PosixClient(platform, 0, proc)
            run(env, c.register_open(client))
            run(env, c.write(client, 8 * MB))
            run(env, c.close_write(client))
        reader = PosixClient(platform, 0, 0)
        run(env, c.open_read(reader))
        counts = platform.mds.ops.counts
        assert counts["container_readdir"] == 1
        assert counts["hostdir_readdir"] == 1

    def test_second_reader_stats_only(self):
        env, platform, c = setup()
        client = PosixClient(platform, 0, 0)
        run(env, c.register_open(client))
        run(env, c.write(client, 8 * MB))
        run(env, c.close_write(client))
        run(env, c.open_read(PosixClient(platform, 0, 0)))
        run(env, c.open_read(PosixClient(platform, 0, 1)))
        counts = platform.mds.ops.counts
        assert counts["container_readdir"] == 1
        assert counts["container_stat"] == 1

    def test_read_own_scans_dropping(self):
        env, platform, c = setup()
        client = PosixClient(platform, 0, 0)
        run(env, c.register_open(client))
        run(env, c.write(client, 8 * MB))
        served = c.writers()[0].data.server.bytes_serviced
        run(env, c.read_own(client, 8 * MB))
        assert c.writers()[0].data.server.bytes_serviced == served + 8 * MB
