"""Tests for shared-file lanes vs private streams (the PLFS advantage)."""

from __future__ import annotations

import pytest

from repro.cluster import SIERRA, MINERVA, Platform
from repro.fs import STRIPE_UNIT, PosixClient, SharedFile, StreamFile
from repro.sim import Environment
from repro.sim.stats import MB


def setup(machine=SIERRA):
    env = Environment()
    return env, Platform(env, machine)


class TestSharedFile:
    def test_lane_count_matches_concurrency(self):
        env, platform = setup()
        f = SharedFile(platform, "x")
        assert len(f.lanes) == SIERRA.perf.shared_file_concurrency

    def test_segments_split_at_stripe_boundaries(self):
        env, platform = setup()
        f = SharedFile(platform, "x")
        segs = f.segments(0, 2.5 * STRIPE_UNIT)
        assert segs == [
            (0, STRIPE_UNIT),
            (STRIPE_UNIT, STRIPE_UNIT),
            (2 * STRIPE_UNIT, 0.5 * STRIPE_UNIT),
        ]

    def test_segments_unaligned_offset(self):
        env, platform = setup()
        f = SharedFile(platform, "x")
        segs = f.segments(STRIPE_UNIT / 2, STRIPE_UNIT)
        assert segs == [
            (STRIPE_UNIT / 2, STRIPE_UNIT / 2),
            (STRIPE_UNIT, STRIPE_UNIT / 2),
        ]

    def test_lane_for_round_robins_by_stripe(self):
        env, platform = setup()
        f = SharedFile(platform, "x")
        lanes = {f.lane_for(i * STRIPE_UNIT)[0] for i in range(len(f.lanes))}
        assert len(lanes) == len(f.lanes)

    def test_close_releases_streams(self):
        env, platform = setup()
        before = [s.open_streams for s in platform.servers]
        f = SharedFile(platform, "x")
        f.close()
        f.close()  # idempotent
        assert [s.open_streams for s in platform.servers] == before

    def test_same_lane_writes_serialise(self):
        env, platform = setup(MINERVA)  # one lane
        f = SharedFile(platform, "x")
        client = PosixClient(platform, 0, 0)
        other = PosixClient(platform, 1, 0)
        done = []

        def writer(c, tag):
            yield from c.write_shared(f, 0, 1 * MB)
            done.append((tag, env.now))

        env.process(writer(client, "a"))
        env.process(writer(other, "b"))
        env.run()
        # Second writer finishes roughly one extra server-service later.
        assert done[1][1] > done[0][1] * 1.5

    def test_shared_write_tracks_size(self):
        env, platform = setup()
        f = SharedFile(platform, "x")
        client = PosixClient(platform, 0, 0)

        def proc():
            yield from client.write_shared(f, 10 * MB, 2 * MB)

        env.run(until=env.process(proc()))
        assert f.size == 12 * MB


class TestStreamFile:
    def test_appends_grow_size(self):
        env, platform = setup()
        f = StreamFile(platform, "d")
        client = PosixClient(platform, 0, 0)

        def proc():
            yield from client.append_stream(f, 8 * MB, cache_gate=float("inf"))
            yield from client.append_stream(f, 8 * MB, cache_gate=float("inf"))

        env.run(until=env.process(proc()))
        assert f.size == 16 * MB

    def test_concurrent_streams_beat_one_shared_file(self):
        """The partitioning advantage: many writers to private streams
        beat the same writers contending for one shared file's lanes."""
        writers = 8

        def timed(shared: bool) -> float:
            env, platform = setup(MINERVA)
            clients = [PosixClient(platform, n, 0) for n in range(writers)]
            if shared:
                f = SharedFile(platform, "s")

                def writer(c, i):
                    for step in range(4):
                        offset = (step * writers + i) * 8 * MB
                        yield from c.write_shared(f, offset, 8 * MB)

            else:
                streams = [StreamFile(platform, f"d{i}") for i in range(writers)]

                def writer(c, i):
                    for _ in range(4):
                        yield from c.append_stream(
                            streams[i], 8 * MB, cache_gate=float("inf")
                        )

            procs = [env.process(writer(c, i)) for i, c in enumerate(clients)]

            def waiter():
                yield env.all_of(procs)

            env.run(until=env.process(waiter()))
            return env.now

        assert timed(shared=False) < 0.7 * timed(shared=True)

    def test_small_append_goes_through_cache(self):
        env, platform = setup()
        f = StreamFile(platform, "d")
        client = PosixClient(platform, 0, 0)

        def proc():
            yield from client.append_stream(f, 1 * MB)  # gate defaults small
            return env.now

        t = env.run(until=env.process(proc()))
        # Returned at memcpy speed, far faster than the disk service time.
        assert t < 2 * (1 * MB / SIERRA.perf.memcpy_bandwidth) + 1e-6
        assert platform.cache(0, 0).absorbed_bytes == 1 * MB

    def test_cache_gate_overrides_size(self):
        env, platform = setup()
        f = StreamFile(platform, "d")
        client = PosixClient(platform, 0, 0)

        def proc():
            # Large aggregated write, small per-rank gate: still cached.
            yield from client.append_stream(f, 16 * MB, cache_gate=1 * MB)

        env.run(until=env.process(proc()))
        assert platform.cache(0, 0).absorbed_bytes == 16 * MB

    def test_write_through_above_threshold(self):
        env, platform = setup()
        f = StreamFile(platform, "d")
        client = PosixClient(platform, 0, 0)

        def proc():
            yield from client.append_stream(f, 8 * MB)  # above 4 MB gate

        env.run(until=env.process(proc()))
        assert platform.cache(0, 0).absorbed_bytes == 0
        assert f.server.bytes_serviced == 8 * MB

    def test_read_stream_sequential_vs_random(self):
        def timed(sequential):
            env, platform = setup()
            f = StreamFile(platform, "d")
            client = PosixClient(platform, 0, 0)

            def proc():
                yield from client.read_stream(f, 1 * MB, sequential=sequential)

            env.run(until=env.process(proc()))
            return env.now

        assert timed(True) < timed(False)
