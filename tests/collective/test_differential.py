"""Differential property: whatever path the bytes take — two-phase
collective buffering through aggregator handles, or independent list I/O
through per-rank handles — the resulting container is byte-identical,
and both match a pure-Python oracle of the interleaved layout.

This is the contract that makes aggregation a *transport* optimisation:
the container index stays the single authority for file contents.
"""

from __future__ import annotations

import os
import shutil
import tempfile

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.collective import CollectiveFile
from repro.mpiio.hints import MPIHints
from repro.plfs import api as plfs_api


@st.composite
def workloads(draw):
    nodes = draw(st.integers(1, 2))
    ppn = draw(st.integers(1, 2))
    record = draw(st.integers(1, 48))
    ranks = nodes * ppn
    rounds = draw(
        st.lists(
            st.lists(
                st.integers(0, 3 * record + 7), min_size=ranks, max_size=ranks
            ),
            min_size=1,
            max_size=3,
        )
    )
    # an all-empty workload never opens a handle, so no container exists
    assume(any(any(sizes) for sizes in rounds))
    return nodes, ppn, record, rounds


def _payload(rank: int, rnd: int, nbytes: int) -> bytes:
    return bytes((rank * 13 + rnd * 7 + i) % 251 for i in range(nbytes))


def _oracle(ranks: int, record: int, rounds) -> bytearray:
    """Independent model of the interleaved view: view byte v of rank r
    lives at file offset ((v // record) * ranks + r) * record + v % record."""
    image = bytearray()
    positions = [0] * ranks
    for rnd, sizes in enumerate(rounds):
        for rank, nbytes in enumerate(sizes):
            data = _payload(rank, rnd, nbytes)
            for i, byte in enumerate(data):
                v = positions[rank] + i
                off = (v // record) * ranks + rank
                off = off * record + v % record
                if off >= len(image):
                    image.extend(bytes(off + 1 - len(image)))
                image[off] = byte
            positions[rank] += nbytes
    return image


def _run(path: str, nodes: int, ppn: int, record: int, rounds, hints) -> dict:
    with CollectiveFile(
        path,
        nodes=nodes,
        ppn=ppn,
        hints=hints,
        exchange="inline",
        workers="inline",
    ) as f:
        f.set_interleaved(record)
        for rnd, sizes in enumerate(rounds):
            f.write_at_all(
                {r: _payload(r, rnd, n) for r, n in enumerate(sizes)}
            )
        totals = {
            r: sum(sizes[r] for sizes in rounds) for r in range(f.ranks)
        }
        readback = f.read_at_all(totals, position=0)
        return dict(f.counters), readback


def _container_bytes(path: str) -> bytes:
    fd = plfs_api.plfs_open(path, os.O_RDONLY)
    try:
        return plfs_api.plfs_read(fd, plfs_api.plfs_getattr(fd).st_size, 0)
    finally:
        plfs_api.plfs_close(fd)


@settings(deadline=None, max_examples=25)
@given(workloads())
def test_cb_independent_and_oracle_agree(workload):
    nodes, ppn, record, rounds = workload
    ranks = nodes * ppn
    root = tempfile.mkdtemp(prefix="cbdiff-")
    try:
        cb_path = os.path.join(root, "cb")
        indep_path = os.path.join(root, "indep")
        cb_counters, cb_read = _run(
            cb_path, nodes, ppn, record, rounds, MPIHints()
        )
        _, indep_read = _run(
            indep_path,
            nodes,
            ppn,
            record,
            rounds,
            MPIHints(romio_cb_write=False, romio_cb_read=False),
        )

        expected = bytes(_oracle(ranks, record, rounds))
        assert _container_bytes(cb_path) == expected
        assert _container_bytes(indep_path) == expected
        assert cb_read == indep_read
        if expected:
            assert cb_counters["cb_backend_writes"] >= 1
    finally:
        shutil.rmtree(root, ignore_errors=True)


@settings(deadline=None, max_examples=15)
@given(workloads(), st.booleans())
def test_sieving_never_changes_the_container(workload, ds):
    nodes, ppn, record, rounds = workload
    ranks = nodes * ppn
    root = tempfile.mkdtemp(prefix="cbds-")
    try:
        path = os.path.join(root, "f")
        _, readback = _run(
            path,
            nodes,
            ppn,
            record,
            rounds,
            MPIHints(
                romio_cb_write=False,
                romio_cb_read=False,
                romio_ds_write=ds,
                romio_ds_read=ds,
            ),
        )
        assert _container_bytes(path) == bytes(_oracle(ranks, record, rounds))
    finally:
        shutil.rmtree(root, ignore_errors=True)
