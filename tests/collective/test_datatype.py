"""Datatype flattening and extent algebra (pure bookkeeping, no I/O)."""

from __future__ import annotations

import pytest

from repro.collective import (
    ContiguousView,
    Extent,
    IrregularView,
    StridedView,
    coalesce,
    covering_runs,
    file_runs,
    interleaved_view,
    partition_domains,
    split_extent,
)


class TestViews:
    def test_contiguous(self):
        v = ContiguousView(displacement=100)
        assert v.extents(10) == [Extent(100, 0, 10)]
        assert v.extents(10, position=5) == [Extent(105, 0, 10)]
        assert v.extents(0) == []

    def test_strided_tiles(self):
        # rank 1 of 4, 10-byte records: disp 10, stride 40
        v = StridedView(displacement=10, block=10, stride=40)
        assert v.extents(25) == [
            Extent(10, 0, 10),
            Extent(50, 10, 10),
            Extent(90, 20, 5),
        ]

    def test_strided_position_resumes_mid_tile(self):
        v = StridedView(displacement=0, block=10, stride=30)
        assert v.extents(10, position=5) == [
            Extent(5, 0, 5),
            Extent(30, 5, 5),
        ]

    def test_strided_rejects_overlapping_tiles(self):
        with pytest.raises(ValueError):
            StridedView(displacement=0, block=16, stride=8)

    def test_irregular_cycles(self):
        v = IrregularView(tiles=((0, 4), (10, 4)), extent=20)
        assert v.extents(12) == [
            Extent(0, 0, 4),
            Extent(10, 4, 4),
            Extent(20, 8, 4),
        ]

    def test_interleaved_view_layout(self):
        views = [interleaved_view(r, 4, 100) for r in range(4)]
        firsts = [v.extents(100)[0].file_offset for v in views]
        assert firsts == [0, 100, 200, 300]
        assert all(v.stride == 400 for v in views)
        with pytest.raises(ValueError):
            interleaved_view(4, 4, 100)


class TestAlgebra:
    def test_coalesce_merges_doubly_contiguous(self):
        parts = [Extent(0, 0, 4), Extent(4, 4, 4), Extent(20, 8, 4)]
        assert coalesce(parts) == [Extent(0, 0, 8), Extent(20, 8, 4)]

    def test_coalesce_keeps_buffer_gaps_apart(self):
        # file-contiguous but buffer-discontiguous must NOT merge
        parts = [Extent(0, 0, 4), Extent(4, 10, 4)]
        assert coalesce(parts) == parts

    def test_file_runs_groups_interleaved_ranks(self):
        # 2 ranks' tiles interleave into one contiguous file run
        tiles = [Extent(0, 0, 4), Extent(8, 4, 4), Extent(4, 100, 4)]
        runs = file_runs(tiles)
        assert len(runs) == 1
        off, members = runs[0]
        assert off == 0
        assert [m.file_offset for m in members] == [0, 4, 8]

    def test_covering_runs_swallow_bounded_gaps(self):
        tiles = [Extent(0, 0, 4), Extent(10, 4, 4), Extent(100, 8, 4)]
        runs = covering_runs(tiles, max_gap=8)
        assert [(lo, hi) for lo, hi, _ in runs] == [(0, 14), (100, 104)]
        assert covering_runs(tiles, max_gap=0) == [
            (0, 4, [tiles[0]]),
            (10, 14, [tiles[1]]),
            (100, 104, [tiles[2]]),
        ]


class TestDomains:
    def test_partition_even_split(self):
        assert partition_domains(0, 100, 4) == [
            (0, 25),
            (25, 50),
            (50, 75),
            (75, 100),
        ]

    def test_partition_empty_span(self):
        assert partition_domains(10, 10, 2) == [(10, 10), (10, 10)]

    def test_split_extent_single_domain_fast_path(self):
        domains = partition_domains(0, 100, 4)
        e = Extent(30, 0, 10)
        assert split_extent(e, domains) == [(1, e)]

    def test_split_extent_across_boundaries(self):
        domains = partition_domains(0, 100, 4)
        pieces = split_extent(Extent(20, 0, 40), domains)
        assert pieces == [
            (0, Extent(20, 0, 5)),
            (1, Extent(25, 5, 25)),
            (2, Extent(50, 30, 10)),
        ]
        # no bytes lost, buffer offsets consecutive
        assert sum(p.length for _, p in pieces) == 40

    def test_split_extent_overhang_lands_in_last_domain(self):
        domains = partition_domains(0, 100, 2)
        assert split_extent(Extent(90, 0, 30), domains) == [
            (1, Extent(90, 0, 30))
        ]
