"""List I/O and data sieving against real PLFS containers."""

from __future__ import annotations

import os

import pytest

from repro.collective import StridedView, list_read, list_write
from repro.plfs import api as plfs_api


@pytest.fixture
def fd(tmp_path):
    handle = plfs_api.plfs_open(
        str(tmp_path / "file"), os.O_CREAT | os.O_RDWR
    )
    yield handle
    plfs_api.plfs_close(handle)


def test_strided_roundtrip_one_backend_call_per_run(fd):
    view = StridedView(displacement=0, block=4, stride=16)
    stats: dict = {}
    n = list_write(fd, view, b"AAAABBBBCCCC", stats=stats)
    assert n == 12
    assert stats["member_extents"] == 3
    assert stats["listio_runs"] == 3
    assert stats["listio_backend_calls"] == 3
    assert "sieve_hits" not in stats

    got = list_read(fd, view, 12, stats=stats)
    assert got == b"AAAABBBBCCCC"
    # the physical layout really is strided
    assert plfs_api.plfs_read(fd, 4, 16) == b"BBBB"


def test_ds_write_sieves_and_preserves_hole_bytes(fd):
    # pre-existing bytes in the holes must survive the read-modify-write
    plfs_api.plfs_write(fd, b"x" * 12, 12, 0)
    view = StridedView(displacement=0, block=4, stride=8)
    stats: dict = {}
    n = list_write(fd, view, b"AAAABBBB", ds_write=True, stats=stats)
    assert n == 8
    # span 12, data 8, holes 4 -> within the 50% gap budget: one sieve
    assert stats["sieve_hits"] == 1
    assert stats["sieve_read_bytes"] == 12
    assert stats["listio_backend_calls"] == 2
    assert plfs_api.plfs_read(fd, 12, 0) == b"AAAAxxxxBBBB"


def test_ds_write_respects_the_gap_budget(fd):
    # holes are 75% of the span: sieving would move mostly hole bytes,
    # so the request must fall back to list I/O
    view = StridedView(displacement=0, block=4, stride=16)
    stats: dict = {}
    list_write(fd, view, b"AAAABBBB", ds_write=True, stats=stats)
    assert "sieve_hits" not in stats
    assert stats["listio_runs"] == 2


def test_ds_read_one_covering_read(fd):
    plfs_api.plfs_write(fd, bytes(range(32)), 32, 0)
    view = StridedView(displacement=0, block=8, stride=16)
    stats: dict = {}
    got = list_read(fd, view, 24, ds_read=True, stats=stats)
    # third tile (32..40) is past EOF: zero-filled, even via the sieve
    assert got == bytes(range(8)) + bytes(range(16, 24)) + bytes(8)
    assert stats["sieve_hits"] == 1
    assert stats["listio_backend_calls"] == 1


def test_list_read_zero_fills_past_eof(fd):
    plfs_api.plfs_write(fd, b"ab", 2, 0)
    view = StridedView(displacement=0, block=4, stride=8)
    stats: dict = {}
    got = list_read(fd, view, 8, stats=stats)
    assert got == b"ab" + bytes(6)


def test_position_resumes_the_view(fd):
    view = StridedView(displacement=0, block=4, stride=8)
    list_write(fd, view, b"AAAA")
    list_write(fd, view, b"BBBB", position=4)
    assert list_read(fd, view, 8) == b"AAAABBBB"
    assert plfs_api.plfs_read(fd, 4, 8) == b"BBBB"
