"""``CollectiveFile``: hints, phases, counters, and path equivalence."""

from __future__ import annotations

import os

import pytest

from repro.collective import CollectiveFile
from repro.mpiio.hints import MPIHints
from repro.plfs import api as plfs_api
from repro.plfsd.shm import try_create_pool

RECORD = 64


def _readback(path: str) -> bytes:
    fd = plfs_api.plfs_open(path, os.O_RDONLY)
    try:
        size = plfs_api.plfs_getattr(fd).st_size
        return plfs_api.plfs_read(fd, size, 0)
    finally:
        plfs_api.plfs_close(fd)


def _rank_payload(rank: int, nbytes: int) -> bytes:
    return bytes([(rank * 31 + i) % 251 for i in range(nbytes)])


def _write_rounds(path: str, rounds: int = 2, **kwargs) -> CollectiveFile:
    f = CollectiveFile(path, **kwargs)
    f.set_interleaved(RECORD)
    for _ in range(rounds):
        f.write_at_all(
            [_rank_payload(r, 3 * RECORD) for r in range(f.ranks)]
        )
    return f


def test_cb_and_independent_paths_produce_identical_containers(tmp_path):
    """Aggregation is a transport optimisation: the container must not be
    able to tell which path the bytes took."""
    cb = str(tmp_path / "cb")
    indep = str(tmp_path / "indep")
    with _write_rounds(cb, nodes=2, ppn=2, exchange="inline"):
        pass
    with _write_rounds(
        indep,
        nodes=2,
        ppn=2,
        exchange="inline",
        hints=MPIHints(romio_cb_write=False),
    ):
        pass
    blob = _readback(cb)
    assert blob == _readback(indep)
    assert len(blob) == 2 * 4 * 3 * RECORD
    # spot-check the interleaving: record 1 belongs to rank 1
    assert blob[RECORD : 2 * RECORD] == _rank_payload(1, 3 * RECORD)[:RECORD]


def test_cb_nodes_hint_thins_aggregators_and_backend_writes(tmp_path):
    with _write_rounds(
        str(tmp_path / "f"),
        nodes=4,
        ppn=1,
        exchange="inline",
        hints=MPIHints(cb_nodes=2),
    ) as f:
        assert f.aggregator_count == 2
        assert len(f._agg_fds) == 2
        # one flush per aggregator per round, all within cb_buffer_size
        assert f.counters["cb_backend_writes"] == 2 * 2
        assert f.counters["cb_member_extents"] == 2 * 4 * 3


def test_small_cb_buffer_splits_backend_writes(tmp_path):
    with _write_rounds(
        str(tmp_path / "f"),
        nodes=1,
        ppn=2,
        rounds=1,
        exchange="inline",
        hints=MPIHints(cb_buffer_size=2 * RECORD),
    ) as f:
        # 6 records for one aggregator, 2 records per chunk -> 3 writes
        assert f.counters["cb_backend_writes"] == 3


def test_cb_write_off_routes_through_list_io(tmp_path):
    with _write_rounds(
        str(tmp_path / "f"),
        nodes=2,
        ppn=1,
        exchange="inline",
        hints=MPIHints(romio_cb_write=False),
    ) as f:
        assert "cb_backend_writes" not in f.counters
        assert f.counters["listio_backend_calls"] > 0
        assert not f._agg_fds  # aggregators never opened


def test_positions_advance_unless_explicit(tmp_path):
    path = str(tmp_path / "f")
    with CollectiveFile(path, nodes=1, ppn=2, exchange="inline") as f:
        f.set_interleaved(4)
        f.write_at_all([b"AAAA", b"aaaa"])
        f.write_at_all([b"BBBB", b"bbbb"])  # appends through the view
        f.write_at_all([b"XXXX"], position=0)  # _at call: overwrites
    assert _readback(path) == b"XXXXaaaaBBBBbbbb"


def test_collective_read_round_trips_per_rank(tmp_path):
    with _write_rounds(
        str(tmp_path / "f"), nodes=2, ppn=2, rounds=1, exchange="inline"
    ) as f:
        got = f.read_at_all(3 * RECORD, position=0)
        assert set(got) == set(range(4))
        for rank, blob in got.items():
            assert blob == _rank_payload(rank, 3 * RECORD)
        assert f.counters["cb_backend_reads"] >= 1


def test_read_with_cb_off_round_trips_too(tmp_path):
    with _write_rounds(
        str(tmp_path / "f"),
        nodes=2,
        ppn=1,
        rounds=1,
        exchange="inline",
        hints=MPIHints(romio_cb_read=False),
    ) as f:
        # the CB write landed through the aggregator handles; the read
        # barrier must publish it to the independent per-rank handles
        got = f.read_at_all(3 * RECORD, position=0)
        for rank, blob in got.items():
            assert blob == _rank_payload(rank, 3 * RECORD)


def test_inline_workers_match_thread_workers(tmp_path):
    a = str(tmp_path / "thread")
    b = str(tmp_path / "inline")
    with _write_rounds(a, nodes=2, ppn=2, exchange="inline") as fa:
        counters_a = dict(fa.counters)
    with _write_rounds(
        b, nodes=2, ppn=2, exchange="inline", workers="inline"
    ) as fb:
        counters_b = dict(fb.counters)
    assert _readback(a) == _readback(b)
    assert counters_a == counters_b


def test_shm_exchange_stages_large_pieces(tmp_path):
    pool = try_create_pool()
    if pool is None:
        pytest.skip("shared memory unavailable on this host")
    pool.destroy()
    big = 256 * 1024  # the plfsd staging threshold
    path = str(tmp_path / "f")
    with CollectiveFile(path, nodes=1, ppn=1, exchange="shm") as f:
        f.set_interleaved(big)
        f.write_at_all([_rank_payload(0, big)])
        assert f.counters["exchange_shm_bytes"] == big
    assert _readback(path) == _rank_payload(0, big)


def test_writer_stats_harvested_across_worker_handles(tmp_path):
    f = _write_rounds(str(tmp_path / "f"), nodes=2, ppn=2, exchange="inline")
    live = f.writer_stats
    assert live.get("bytes_appended", 0) == 2 * 4 * 3 * RECORD
    f.close()
    assert f.writer_stats == live  # totals survive close

    f.close()  # idempotent


def test_empty_round_and_bad_rank_guard(tmp_path):
    with CollectiveFile(str(tmp_path / "f"), exchange="inline") as f:
        f.set_interleaved(8)
        assert f.write_at_all([b""]) == 0
        with pytest.raises(ValueError):
            f.set_view(5, None)
    with pytest.raises(ValueError):
        CollectiveFile(str(tmp_path / "g"), nodes=0)
