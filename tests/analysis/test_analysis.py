"""Tests for result containers, rendering and shape checks."""

from __future__ import annotations

import pytest

from repro.analysis import (
    Panel,
    Series,
    check_collapse,
    check_monotone_rise,
    check_peak_location,
    check_ratio_at,
    render_ascii_chart,
    render_panel,
    render_table,
    summarise,
)


@pytest.fixture
def panel():
    p = Panel(title="Fig X", xlabel="nodes", ylabel="MB/s")
    for x, mpiio, plfs in [(1, 50, 60), (4, 100, 180), (16, 110, 240), (64, 110, 60)]:
        p.add("MPI-IO", x, mpiio)
        p.add("LDPLFS", x, plfs)
    return p


class TestSeriesAndPanel:
    def test_series_points(self):
        s = Series("a")
        s.add(1, 10)
        s.add(2, 30)
        assert s.xs() == [1, 2]
        assert s.ys() == [10, 30]
        assert s.at(2) == 30
        assert s.peak == (2, 30)
        with pytest.raises(KeyError):
            s.at(99)

    def test_panel_xs_union(self, panel):
        panel.add("extra", 128, 5)
        assert panel.xs() == [1, 4, 16, 64, 128]

    def test_ratio(self, panel):
        assert panel.ratio("LDPLFS", "MPI-IO", 16) == pytest.approx(240 / 110)

    def test_series_for_creates(self):
        p = Panel("t", "x", "y")
        s = p.series_for("new")
        assert p.series_for("new") is s


class TestRendering:
    def test_render_table(self):
        out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_panel_contains_all_values(self, panel):
        out = render_panel(panel)
        assert "Fig X" in out
        assert "240.0" in out
        assert "nodes" in out

    def test_render_panel_missing_points_dash(self, panel):
        panel.add("partial", 1, 42)
        out = render_panel(panel)
        assert "-" in out

    def test_render_ascii_chart(self, panel):
        out = render_ascii_chart(panel)
        assert "nodes = 64" in out
        assert "|" in out

    def test_render_ascii_chart_empty(self):
        out = render_ascii_chart(Panel("E", "x", "y"))
        assert "no data" in out


class TestShapeChecks:
    def test_ratio_check(self, panel):
        c = check_ratio_at(
            panel, "LDPLFS", "MPI-IO", 16, at_least=2.0, claim="PLFS ~2x"
        )
        assert c.holds
        c = check_ratio_at(
            panel, "LDPLFS", "MPI-IO", 64, at_least=1.0, claim="PLFS wins at 64"
        )
        assert not c.holds

    def test_peak_location(self, panel):
        c = check_peak_location(
            panel, "LDPLFS", between=(4, 32), claim="peaks mid-scale"
        )
        assert c.holds

    def test_collapse(self, panel):
        c = check_collapse(
            panel, "LDPLFS", from_peak_factor=3.0, claim="collapses at scale"
        )
        assert c.holds
        c2 = check_collapse(
            panel, "MPI-IO", from_peak_factor=3.0, claim="mpiio collapses"
        )
        assert not c2.holds

    def test_monotone_rise(self, panel):
        assert check_monotone_rise(panel, "LDPLFS", through=16, claim="rises").holds
        assert not check_monotone_rise(panel, "LDPLFS", through=64, claim="x").holds

    def test_summarise(self, panel):
        checks = [
            check_peak_location(panel, "LDPLFS", between=(4, 32), claim="a"),
            check_collapse(panel, "MPI-IO", from_peak_factor=3.0, claim="b"),
        ]
        out = summarise(checks)
        assert "1/2 shape checks hold" in out
        assert "[PASS]" in out and "[MISS]" in out
