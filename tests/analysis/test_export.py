"""Tests for panel export (CSV / JSON round-trip)."""

from __future__ import annotations

import csv
import io

import pytest

from repro.analysis import (
    Panel,
    panel_from_dict,
    panel_from_json,
    panel_to_csv,
    panel_to_dict,
    panel_to_json,
)


@pytest.fixture
def panel():
    p = Panel(title="Fig", xlabel="nodes", ylabel="MB/s")
    p.add("MPI-IO", 1, 50.0)
    p.add("MPI-IO", 4, 100.0)
    p.add("LDPLFS", 1, 60.0)
    p.add("LDPLFS", 4, 180.0)
    p.add("partial", 4, 42.0)
    return p


class TestCsv:
    def test_header_and_rows(self, panel):
        rows = list(csv.reader(io.StringIO(panel_to_csv(panel))))
        assert rows[0] == ["nodes", "MPI-IO", "LDPLFS", "partial"]
        assert rows[1] == ["1", "50.0", "60.0", ""]
        assert rows[2] == ["4", "100.0", "180.0", "42.0"]

    def test_empty_panel(self):
        out = panel_to_csv(Panel("t", "x", "y"))
        assert out.strip() == "x"


class TestJsonRoundTrip:
    def test_dict_shape(self, panel):
        d = panel_to_dict(panel)
        assert d["title"] == "Fig"
        assert d["series"]["LDPLFS"]["y"] == [60.0, 180.0]

    def test_round_trip(self, panel):
        restored = panel_from_json(panel_to_json(panel))
        assert restored.title == panel.title
        assert restored.xs() == panel.xs()
        for label in panel.series:
            assert restored.series[label].points == panel.series[label].points

    def test_from_dict(self, panel):
        restored = panel_from_dict(panel_to_dict(panel))
        assert restored.ratio("LDPLFS", "MPI-IO", 4) == pytest.approx(1.8)
