"""Tests for the severity-graded issue detectors."""

from __future__ import annotations

import pytest

from repro.cluster import SIERRA
from repro.insights import ALL_RULES, Severity, run_rules, validate_thresholds
from repro.insights.metrics import IORunProfile
from repro.insights.rules import (
    detect_buffered_opacity,
    detect_fault_degraded_run,
    detect_fuse_request_chunking,
    detect_mds_create_storm,
    detect_metadata_heavy,
    detect_random_access,
    detect_rank_imbalance,
    detect_shared_file_lock_serialisation,
    detect_small_writes_shared_file,
    detect_stream_overprovision,
    detect_uncollective_strided_writes,
    detect_unflattened_index_reopen,
)
from repro.mpiio import LDPLFS, MPIIO
from repro.workloads import run_bt


def make_profile(**kwargs) -> IORunProfile:
    return IORunProfile(source=kwargs.pop("source", "simulation"), **kwargs)


def test_thresholds_valid():
    validate_thresholds()


class TestSmallWritesSharedFile:
    def test_high_when_dominant_and_write_through(self):
        p = make_profile(
            shared_file=True,
            write_calls=100,
            small_write_fraction=0.95,
            write_through_shared=True,
        )
        f = detect_small_writes_shared_file(p)
        assert f is not None and f.severity is Severity.HIGH
        assert "use PLFS via LDPLFS" in f.recommendation
        assert f.evidence["small_write_fraction"] == 0.95

    def test_recommend_at_moderate_fraction(self):
        p = make_profile(
            shared_file=True, write_calls=100, small_write_fraction=0.6
        )
        f = detect_small_writes_shared_file(p)
        assert f is not None and f.severity is Severity.RECOMMEND

    def test_silent_below_threshold(self):
        p = make_profile(
            shared_file=True, write_calls=100, small_write_fraction=0.3
        )
        assert detect_small_writes_shared_file(p) is None

    def test_silent_when_already_plfs(self):
        p = make_profile(
            uses_plfs=True,
            shared_file=True,
            write_calls=100,
            small_write_fraction=1.0,
        )
        assert detect_small_writes_shared_file(p) is None


class TestMdsCreateStorm:
    def test_high_when_mds_saturated(self):
        p = make_profile(
            uses_plfs=True,
            mds_dedicated=True,
            dropping_creates=6144,
            writers=3072,
            mds_utilisation=0.97,
        )
        f = detect_mds_create_storm(p)
        assert f is not None and f.severity is Severity.HIGH
        assert f.title == "PLFS harmful: dedicated-MDS create storm"
        assert f.evidence["dropping_creates"] == 6144

    def test_warn_at_moderate_utilisation(self):
        p = make_profile(
            uses_plfs=True,
            mds_dedicated=True,
            dropping_creates=100,
            mds_utilisation=0.3,
        )
        f = detect_mds_create_storm(p)
        assert f is not None and f.severity is Severity.WARN

    def test_silent_at_low_utilisation(self):
        p = make_profile(
            uses_plfs=True,
            mds_dedicated=True,
            dropping_creates=100,
            mds_utilisation=0.05,
        )
        assert detect_mds_create_storm(p) is None

    def test_silent_with_distributed_metadata(self):
        # "On a file system like GPFS ... these performance decreases may
        # not materialise" (paper §IV).
        p = make_profile(
            uses_plfs=True,
            mds_dedicated=False,
            dropping_creates=6144,
            mds_utilisation=0.97,
        )
        assert detect_mds_create_storm(p) is None


class TestUncollectiveStridedWrites:
    def test_fires_with_cb_hint_evidence(self):
        p = make_profile(
            collective=False,
            strided_independent=True,
            ranks=16,
            nodes=2,
            ppn=8,
            write_calls=320,
            typical_write_size=1e6,
        )
        f = detect_uncollective_strided_writes(p)
        assert f is not None and f.severity is Severity.RECOMMEND
        assert f.evidence["suggested_cb_nodes"] == 2
        assert "romio_cb_write=enable" in f.recommendation

    def test_silent_when_collective(self):
        p = make_profile(collective=True, strided_independent=True, ranks=16)
        assert detect_uncollective_strided_writes(p) is None


class TestFuseChunking:
    def test_fires_when_writes_exceed_max_write(self):
        p = make_profile(
            fuse_transport=True,
            fuse_max_write=128 * 1024,
            typical_write_size=1024 * 1024,
        )
        f = detect_fuse_request_chunking(p)
        assert f is not None and f.severity is Severity.WARN
        assert f.evidence["chunks_per_call"] == 8

    def test_silent_for_small_writes(self):
        p = make_profile(
            fuse_transport=True,
            fuse_max_write=128 * 1024,
            typical_write_size=64 * 1024,
        )
        assert detect_fuse_request_chunking(p) is None

    def test_silent_without_fuse(self):
        p = make_profile(fuse_transport=False, typical_write_size=1e7)
        assert detect_fuse_request_chunking(p) is None


class TestUnflattenedIndex:
    def test_fires_on_read_heavy_reopen(self):
        p = make_profile(
            uses_plfs=True, read_calls=100, index_rebuild_ops=8, writers=128
        )
        f = detect_unflattened_index_reopen(p)
        assert f is not None
        assert "plfs_flatten_index" in f.recommendation

    def test_silent_with_few_droppings(self):
        p = make_profile(
            uses_plfs=True, read_calls=100, index_rebuild_ops=8, writers=16
        )
        assert detect_unflattened_index_reopen(p) is None


class TestLockSerialisation:
    @pytest.mark.parametrize(
        "share,severity",
        [(0.6, Severity.HIGH), (0.3, Severity.WARN), (0.1, None)],
    )
    def test_grading(self, share, severity):
        p = make_profile(shared_file=True, writers=32, lock_wait_share=share)
        f = detect_shared_file_lock_serialisation(p)
        if severity is None:
            assert f is None
        else:
            assert f is not None and f.severity is severity


class TestMetadataHeavy:
    def test_fires_on_high_rate(self):
        p = make_profile(metadata_ops=1000, metadata_op_rate=800.0)
        f = detect_metadata_heavy(p)
        assert f is not None and f.severity is Severity.WARN

    def test_silent_on_low_rate_or_few_ops(self):
        assert (
            detect_metadata_heavy(
                make_profile(metadata_ops=1000, metadata_op_rate=100.0)
            )
            is None
        )
        assert (
            detect_metadata_heavy(
                make_profile(metadata_ops=50, metadata_op_rate=9000.0)
            )
            is None
        )


class TestRankImbalance:
    def test_fires_on_skew(self):
        p = make_profile(file_count=4, per_file_skew=3.5)
        f = detect_rank_imbalance(p)
        assert f is not None and f.severity is Severity.INFO

    def test_silent_when_balanced_or_single_file(self):
        assert detect_rank_imbalance(make_profile(file_count=4, per_file_skew=2.0)) is None
        assert detect_rank_imbalance(make_profile(file_count=1, per_file_skew=9.0)) is None


class TestRandomAccess:
    def test_fires_on_scattered_offsets(self):
        p = make_profile(write_calls=50, sequentiality=0.2, seeks=40)
        f = detect_random_access(p)
        assert f is not None
        assert "PLFS" in f.recommendation

    def test_silent_when_sequential_or_tiny(self):
        assert detect_random_access(make_profile(write_calls=50, sequentiality=0.9)) is None
        assert detect_random_access(make_profile(write_calls=3, sequentiality=0.0)) is None


class TestBufferedOpacity:
    def test_fires_only_for_traces(self):
        p = make_profile(source="trace", buffered_opaque_files=2)
        f = detect_buffered_opacity(p)
        assert f is not None and f.severity is Severity.INFO
        assert detect_buffered_opacity(make_profile(buffered_opaque_files=2)) is None


class TestStreamOverprovision:
    def test_fires_when_droppings_swamp_channels(self):
        p = make_profile(
            uses_plfs=True, io_servers=24, server_concurrency=8, writers=3072
        )
        f = detect_stream_overprovision(p)
        assert f is not None
        assert f.evidence["server_channels"] == 192

    def test_silent_within_provisioning(self):
        p = make_profile(
            uses_plfs=True, io_servers=24, server_concurrency=8, writers=500
        )
        assert detect_stream_overprovision(p) is None


class TestRunRules:
    def test_sorted_most_severe_first(self):
        p = make_profile(
            source="trace",
            shared_file=True,
            write_calls=100,
            small_write_fraction=1.0,
            write_through_shared=True,
            lock_wait_share=0.3,
            buffered_opaque_files=1,
            file_count=4,
            per_file_skew=5.0,
        )
        findings = run_rules(p)
        severities = [int(f.severity) for f in findings]
        assert severities == sorted(severities, reverse=True)
        assert findings[0].rule == "small-writes-shared-file"

    def test_healthy_profile_has_no_findings(self):
        p = make_profile(
            collective=True,
            write_calls=100,
            typical_write_size=64 * 1024 * 1024,
            sequentiality=0.9,
        )
        assert run_rules(p) == []

    def test_rule_subset(self):
        p = make_profile(
            shared_file=True, write_calls=100, small_write_fraction=1.0
        )
        findings = run_rules(p, rules=[detect_mds_create_storm])
        assert findings == []

    def test_every_rule_registered_once(self):
        assert len(ALL_RULES) == len(set(ALL_RULES)) == 12


class TestFaultDegradedRun:
    def test_silent_on_healthy_run(self):
        assert detect_fault_degraded_run(make_profile()) is None

    def test_warns_on_injected_faults(self):
        p = make_profile(
            injected_faults=3, fault_points={"data_write": 2, "index_flush": 1}
        )
        f = detect_fault_degraded_run(p)
        assert f is not None and f.severity is Severity.WARN
        assert "3 fault(s)" in f.detail
        assert "repro-fsck" in f.recommendation
        assert f.evidence["fault_points"] == {"data_write": 2, "index_flush": 1}

    def test_warns_on_mds_outage(self):
        p = make_profile(
            mds_outages=1, mds_outage_seconds=5.0, mds_ops_delayed_by_outage=40
        )
        f = detect_fault_degraded_run(p)
        assert f is not None and f.severity is Severity.WARN
        assert "5.0s" in f.detail
        assert f.evidence["mds_ops_delayed_by_outage"] == 40

    def test_info_on_absorbed_transients_only(self):
        p = make_profile(transient_retries=4, short_write_resumes=1)
        f = detect_fault_degraded_run(p)
        assert f is not None and f.severity is Severity.INFO
        assert "retried 4" in f.detail

    def test_attach_fault_evidence_feeds_the_detector(self):
        from repro.faults.injector import FaultEvent
        from repro.insights import attach_fault_evidence

        p = make_profile()
        attach_fault_evidence(
            p,
            events=[
                FaultEvent("data_write", "eintr", 1, "/d", 10, 0),
                FaultEvent("data_write", "short", 2, "/d", 10, 3),
            ],
            shim_stats={"transient_retries": 1, "short_write_resumes": 1},
        )
        assert p.injected_faults == 2
        assert p.fault_points == {"data_write": 2}
        f = detect_fault_degraded_run(p)
        assert f is not None and f.severity is Severity.WARN


class TestPaperVerdictsFromSimulation:
    """The acceptance split: detectors reach the paper's verdicts from
    run data alone."""

    def test_bt_small_writes_recommend_plfs(self):
        # Fig. 4 regime: BT class C strong-scaled to 256 cores pushes the
        # per-call write size under the write-through threshold.
        result = run_bt(SIERRA, MPIIO, 256, "C")
        from repro.insights import profile_from_run

        p = profile_from_run(result, SIERRA, MPIIO)
        findings = run_rules(p)
        small = next(
            f for f in findings if f.rule == "small-writes-shared-file"
        )
        assert small.severity is Severity.HIGH
        assert "use PLFS via LDPLFS" in small.recommendation
        assert small.evidence["small_write_fraction"] >= 0.9

    def test_bt_under_plfs_raises_no_small_write_issue(self):
        from repro.insights import profile_from_run

        result = run_bt(SIERRA, LDPLFS, 256, "C")
        p = profile_from_run(result, SIERRA, LDPLFS)
        assert not any(
            f.rule == "small-writes-shared-file" for f in run_rules(p)
        )
