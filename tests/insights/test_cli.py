"""Tests for the ``repro-insights`` console entry point."""

from __future__ import annotations

import json

from repro.insights import cli


class TestCli:
    def test_default_flashio_text_report(self, capsys):
        assert cli.main(["--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "I/O insights — flashio Sierra LDPLFS" in out

    def test_json_output(self, capsys):
        assert cli.main(["--workload", "mpiio-test", "--machine", "minerva",
                         "--method", "MPI-IO", "--nodes", "2", "--ppn", "1",
                         "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["profile"]["workload"] == "mpiio-test"
        assert isinstance(parsed["findings"], list)

    def test_bt_with_cores(self, capsys):
        assert cli.main(["--workload", "bt", "--machine", "sierra",
                         "--method", "MPI-IO", "--cores", "16"]) == 0
        out = capsys.readouterr().out
        assert "bt.C" in out

    def test_advise_appends_model_recommendation(self, capsys):
        assert cli.main(["--workload", "bt", "--machine", "sierra",
                         "--method", "MPI-IO", "--cores", "256",
                         "--advise"]) == 0
        out = capsys.readouterr().out
        assert "model advice: use" in out
        assert "Observed evidence" in out

    def test_bad_workload_rejected(self, capsys):
        import pytest

        with pytest.raises(SystemExit):
            cli.main(["--workload", "nope"])

    def test_invalid_scale_is_a_clean_error(self, capsys):
        # No traceback: workload validation surfaces as a CLI error.
        assert cli.main(["--workload", "bt", "--cores", "10"]) == 2
        assert "square process count" in capsys.readouterr().err
        assert cli.main(["--workload", "flashio", "--nodes", "0"]) == 2
        assert "at least one node" in capsys.readouterr().err

    def test_entry_point_registered(self):
        import os

        root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        with open(os.path.join(root, "pyproject.toml")) as fh:
            text = fh.read()
        assert 'repro-insights = "repro.insights.cli:main"' in text
