"""Tests for report rendering and determinism."""

from __future__ import annotations

import json

from repro.cluster import MINERVA, SIERRA
from repro.insights import (
    Severity,
    profile_from_run,
    render_findings,
    render_profile,
    render_report,
    report_to_dict,
    report_to_json,
    run_rules,
)
from repro.insights.rules import Finding
from repro.mpiio import LDPLFS, MPIIO
from repro.workloads import run_flashio, run_mpiio_test


def sample_finding() -> Finding:
    return Finding(
        rule="demo-rule",
        severity=Severity.WARN,
        title="demo title",
        detail="demo detail.",
        recommendation="do the thing",
        evidence={"ratio": 0.5, "count": 3, "flag": True},
    )


class TestRendering:
    def test_profile_header(self):
        result = run_flashio(SIERRA, LDPLFS, 2)
        p = profile_from_run(result, SIERRA, LDPLFS, workload="flashio")
        text = render_profile(p)
        assert "flashio Sierra LDPLFS [simulation]" in text
        assert "24 ranks on 2 node(s) x 12 ppn" in text
        assert "dropping creates" in text
        assert "write sizes:" in text

    def test_finding_render_includes_evidence(self):
        text = sample_finding().render()
        assert text.startswith("[WARN] demo-rule: demo title")
        assert "-> do the thing" in text
        assert "count=3" in text and "ratio=0.5" in text and "flag=true" in text

    def test_findings_summary_counts(self):
        f = sample_finding()
        text = render_findings([f, f])
        assert text.startswith("2 finding(s): 2 WARN")

    def test_no_findings_message(self):
        assert "looks healthy" in render_findings([])

    def test_report_combines_both(self):
        result = run_mpiio_test(MINERVA, MPIIO, 2, 1)
        p = profile_from_run(result, MINERVA, MPIIO, workload="mpiio-test")
        text = render_report(p, run_rules(p))
        assert "I/O insights" in text
        assert "-" * 72 in text


class TestJsonReport:
    def test_structure(self):
        result = run_mpiio_test(MINERVA, MPIIO, 2, 1)
        p = profile_from_run(result, MINERVA, MPIIO, workload="mpiio-test")
        findings = run_rules(p)
        d = report_to_dict(p, findings)
        assert set(d) == {"profile", "findings"}
        assert d["profile"]["workload"] == "mpiio-test"
        for f in d["findings"]:
            assert set(f) == {
                "rule",
                "severity",
                "title",
                "detail",
                "recommendation",
                "evidence",
            }

    def test_json_parses_and_keys_sorted(self):
        result = run_flashio(SIERRA, LDPLFS, 2)
        p = profile_from_run(result, SIERRA, LDPLFS, workload="flashio")
        text = report_to_json(p, run_rules(p))
        parsed = json.loads(text)
        keys = list(parsed["profile"])
        assert keys == sorted(keys)

    def test_byte_identical_across_runs(self):
        # The determinism guarantee the archived artefacts rely on: two
        # runs of the same seeded simulation render identical reports.
        def one() -> str:
            result = run_flashio(SIERRA, LDPLFS, 4)
            p = profile_from_run(result, SIERRA, LDPLFS, workload="flashio")
            return report_to_json(p, run_rules(p))

        assert one() == one()
