"""Tests for the unified IORunProfile builders."""

from __future__ import annotations

import json
import os

import pytest

from repro.cluster import MINERVA, SIERRA
from repro.core.trace import traced
from repro.insights import IORunProfile, profile_from_run, profile_from_trace
from repro.mpiio import LDPLFS, MPIIO
from repro.workloads import run_bt, run_flashio, run_mpiio_test
from repro.workloads.flashio import HEADER_WRITES, NUM_VARIABLES


class TestProfileFromRun:
    @pytest.fixture(scope="class")
    def flashio_profile(self):
        result = run_flashio(SIERRA, LDPLFS, 2)
        return profile_from_run(result, SIERRA, LDPLFS, workload="flashio")

    def test_identity_and_scale(self, flashio_profile):
        p = flashio_profile
        assert p.source == "simulation"
        assert p.workload == "flashio"
        assert p.machine == "Sierra"
        assert p.method == "LDPLFS"
        assert p.nodes == 2 and p.ppn == 12 and p.ranks == 24

    def test_plfs_writer_count_from_dropping_creates(self, flashio_profile):
        # Every rank creates its own dropping pair: 24 writers, and the
        # opener count equals the rank count (all produce PLFS metadata).
        p = flashio_profile
        assert p.uses_plfs
        assert p.writers == 24
        assert p.openers == 24
        assert p.dropping_creates == 48  # data + index dropping per rank

    def test_write_size_histogram(self, flashio_profile):
        p = flashio_profile
        # 24 ranks x 24 variable slabs of ~8.5 MB, plus 8 x 64 KB headers.
        assert p.write_size_histogram["4M-10M"] == 24 * NUM_VARIABLES
        assert p.write_size_histogram["10K-100K"] == HEADER_WRITES
        assert p.write_calls == 24 * NUM_VARIABLES + HEADER_WRITES
        # Only the headers sit below the 4 MB write-through threshold.
        expected = HEADER_WRITES / p.write_calls
        assert p.small_write_fraction == pytest.approx(expected)

    def test_plfs_stream_is_sequential_log(self, flashio_profile):
        assert flashio_profile.sequentiality == 1.0
        assert not flashio_profile.shared_file

    def test_mds_plane_captured(self, flashio_profile):
        p = flashio_profile
        assert p.mds_dedicated and p.mds_count == 1
        assert p.metadata_ops > 0
        assert p.metadata_op_counts["dropping_create"] == 48
        assert 0.0 < p.mds_utilisation < 1.0
        assert p.metadata_op_rate > 0

    def test_shared_file_route(self):
        result = run_mpiio_test(MINERVA, MPIIO, 2, 1)
        p = profile_from_run(result, MINERVA, MPIIO, workload="mpiio-test")
        assert not p.uses_plfs
        assert p.shared_file and p.write_through_shared
        assert p.writers == 2  # collective: one aggregator per node
        assert p.read_calls > 0 and p.total_bytes_read > 0
        assert 0.0 <= p.lock_wait_share <= 1.0
        assert p.dropping_creates == 0
        assert p.mds_count == 2  # Minerva's MDS is not dedicated

    def test_bt_workload_label_from_details(self):
        result = run_bt(SIERRA, MPIIO, 16, "C")
        p = profile_from_run(result, SIERRA, MPIIO)
        assert p.workload == "bt.C"

    def test_as_dict_is_json_ready(self, flashio_profile):
        d = flashio_profile.as_dict()
        text = json.dumps(d)
        assert json.loads(text)["writers"] == 24
        assert d["write_bandwidth_mbps"] > 0


class TestProfileFromTrace:
    def test_aggregates_os_level_trace(self, tmp_path):
        a = str(tmp_path / "a.dat")
        b = str(tmp_path / "b.dat")
        with traced() as tracer:
            fd = os.open(a, os.O_CREAT | os.O_RDWR)
            os.write(fd, b"x" * 10)
            os.write(fd, b"y" * 10)
            os.lseek(fd, 0, os.SEEK_SET)
            os.read(fd, 20)
            os.close(fd)
            fd = os.open(b, os.O_CREAT | os.O_WRONLY)
            os.write(fd, b"z" * 2000)
            os.close(fd)
        p = profile_from_trace(tracer.report())
        assert p.source == "trace"
        assert p.opens == 2 and p.closes == 2
        assert p.seeks == 1
        assert p.write_calls == 3 and p.read_calls == 1
        assert p.total_bytes_written == 2020
        assert p.total_bytes_read == 20
        assert p.write_size_histogram == {"0-100": 2, "1K-10K": 1}
        assert p.small_write_fraction == 1.0  # everything under 4 MB
        assert p.file_count == 2
        assert p.metadata_op_counts == {"open": 2, "close": 2, "seek": 1}
        assert p.metadata_op_rate > 0

    def test_sequentiality_from_offsets(self, tmp_path):
        path = str(tmp_path / "seq")
        with traced() as tracer:
            fd = os.open(path, os.O_CREAT | os.O_WRONLY)
            os.write(fd, b"a" * 100)   # sequential (offset 0)
            os.write(fd, b"b" * 100)   # sequential (continues)
            os.pwrite(fd, b"c" * 10, 5000)  # jump
            os.close(fd)
        p = profile_from_trace(tracer.report())
        assert p.sequentiality == pytest.approx(2 / 3)

    def test_per_file_skew(self, tmp_path):
        with traced() as tracer:
            for name, size in (("big", 9000), ("s1", 500), ("s2", 500)):
                fd = os.open(str(tmp_path / name), os.O_CREAT | os.O_WRONLY)
                os.write(fd, b"x" * size)
                os.close(fd)
        p = profile_from_trace(tracer.report())
        # busiest file moved 9000 B vs a mean of ~3333 B -> skew 2.7x
        assert p.per_file_skew == pytest.approx(9000 / (10000 / 3))

    def test_buffered_proxy_counts_and_opacity(self, tmp_path):
        counted = str(tmp_path / "counted.txt")
        opaque = str(tmp_path / "opaque.txt")
        with traced() as tracer:
            with open(counted, "w") as fh:
                fh.write("hello")
            with open(opaque, "w"):
                pass  # opened but never written
        p = profile_from_trace(tracer.report())
        # The proxy accounted the buffered write; only the untouched file
        # is opaque.
        assert p.total_bytes_written == 5
        assert p.buffered_opaque_files == 1
        by_path = {f["path"]: f for f in p.files}
        assert by_path[counted]["buffered"]
        assert by_path[counted]["mode"] == "w"

    def test_dropping_paths_counted_as_creates(self, tmp_path):
        d = tmp_path / "container"
        d.mkdir()
        path = str(d / "dropping.data.0")
        with traced() as tracer:
            fd = os.open(path, os.O_CREAT | os.O_WRONLY)
            os.write(fd, b"log")
            os.close(fd)
        p = profile_from_trace(tracer.report())
        assert p.dropping_creates == 1

    def test_shared_file_context_is_caller_supplied(self, tmp_path):
        with traced() as tracer:
            fd = os.open(str(tmp_path / "shared"), os.O_CREAT | os.O_WRONLY)
            os.write(fd, b"x")
            os.close(fd)
        p = profile_from_trace(tracer.report(), shared_file=True)
        assert p.shared_file and p.write_through_shared


class TestProfileProperties:
    def test_bandwidth_and_totals(self):
        p = IORunProfile(
            source="simulation",
            elapsed_seconds=2.0,
            total_bytes_written=4 * 1024 * 1024,
            total_bytes_read=1024,
        )
        assert p.total_bytes == 4 * 1024 * 1024 + 1024
        assert p.write_bandwidth_mbps == pytest.approx(2.0)

    def test_zero_elapsed_bandwidth(self):
        p = IORunProfile(source="trace")
        assert p.write_bandwidth_mbps == 0.0


class TestReadPathEvidence:
    def test_attach_read_path_evidence_folds_counters(self):
        from repro.insights import attach_read_path_evidence

        p = IORunProfile(source="trace")
        attach_read_path_evidence(
            p,
            cache_stats={
                "hits": 7,
                "misses": 2,
                "compacted_loads": 1,
                "merged_builds": 1,
            },
            read_stats={"preads": 12, "coalesced_slices": 5},
        )
        assert p.index_cache_hits == 7
        assert p.index_cache_misses == 2
        assert p.compacted_index_loads == 1
        assert p.index_rebuild_ops == 1
        assert p.read_preads == 12
        assert p.read_preads_coalesced == 5
        d = p.as_dict()
        assert d["index_cache_hits"] == 7
        assert d["read_preads_coalesced"] == 5

    def test_attach_read_path_evidence_accepts_live_objects(
        self, tmp_path
    ):
        from repro import plfs
        from repro.insights import attach_read_path_evidence
        from repro.plfs.cache import shared_cache
        from repro.plfs.container import Container
        from repro.plfs.reader import ReadFile

        path = str(tmp_path / "f")
        fd = plfs.plfs_open(path, os.O_CREAT | os.O_WRONLY)
        plfs.plfs_write(fd, b"x" * 64, 64, 0)
        plfs.plfs_close(fd)
        cache = shared_cache()
        cache.clear()
        cache.reset_stats()
        with ReadFile(Container(path)) as r:
            r.read(64, 0)
            p = attach_read_path_evidence(
                IORunProfile(source="trace"),
                cache_stats=cache.stats,
                read_stats=r.stats,
            )
        assert p.index_cache_misses == 1
        assert p.compacted_index_loads == 1  # clean close compacted
        assert p.read_preads == 1
