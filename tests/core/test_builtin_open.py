"""Tests for the interposed ``builtins.open`` (buffered/text layers)."""

from __future__ import annotations

import io
import os

import pytest


class TestBinary:
    def test_write_read_roundtrip(self, interposer, mnt):
        with open(f"{mnt}/f.bin", "wb") as fh:
            fh.write(b"\x00\x01\x02")
        with open(f"{mnt}/f.bin", "rb") as fh:
            assert fh.read() == b"\x00\x01\x02"

    def test_seek_tell(self, interposer, mnt):
        with open(f"{mnt}/f.bin", "wb") as fh:
            fh.write(b"0123456789")
        with open(f"{mnt}/f.bin", "rb") as fh:
            fh.seek(4)
            assert fh.tell() == 4
            assert fh.read(2) == b"45"
            fh.seek(-2, os.SEEK_END)
            assert fh.read() == b"89"

    def test_rplus_update(self, interposer, mnt):
        with open(f"{mnt}/f.bin", "wb") as fh:
            fh.write(b"AAAAAA")
        with open(f"{mnt}/f.bin", "r+b") as fh:
            fh.seek(2)
            fh.write(b"XX")
        with open(f"{mnt}/f.bin", "rb") as fh:
            assert fh.read() == b"AAXXAA"

    def test_unbuffered_raw(self, interposer, mnt):
        with open(f"{mnt}/f.bin", "wb", buffering=0) as fh:
            assert fh.write(b"raw") == 3
        with open(f"{mnt}/f.bin", "rb", buffering=0) as fh:
            assert fh.read(3) == b"raw"

    def test_unbuffered_text_rejected(self, interposer, mnt):
        with pytest.raises(ValueError):
            open(f"{mnt}/f.txt", "w", buffering=0)

    def test_truncate_method(self, interposer, mnt):
        with open(f"{mnt}/f.bin", "wb") as fh:
            fh.write(b"0123456789")
        with open(f"{mnt}/f.bin", "r+b") as fh:
            fh.truncate(4)
        assert os.stat(f"{mnt}/f.bin").st_size == 4

    def test_fileno_is_tracked_fd(self, interposer, mnt):
        with open(f"{mnt}/f.bin", "wb") as fh:
            assert interposer.shim.table.lookup(fh.fileno()) is not None

    def test_missing_file_raises(self, interposer, mnt):
        with pytest.raises(FileNotFoundError):
            open(f"{mnt}/missing", "rb")

    def test_exclusive_mode(self, interposer, mnt):
        with open(f"{mnt}/f.bin", "xb") as fh:
            fh.write(b"x")
        with pytest.raises(OSError):
            open(f"{mnt}/f.bin", "xb")


class TestText:
    def test_text_roundtrip(self, interposer, mnt):
        with open(f"{mnt}/f.txt", "w") as fh:
            fh.write("héllo wörld\n")
        with open(f"{mnt}/f.txt", encoding="utf-8") as fh:
            assert fh.read() == "héllo wörld\n"

    def test_readline_and_iteration(self, interposer, mnt):
        with open(f"{mnt}/f.txt", "w") as fh:
            fh.write("one\ntwo\nthree\n")
        with open(f"{mnt}/f.txt") as fh:
            assert fh.readline() == "one\n"
            assert list(fh) == ["two\n", "three\n"]

    def test_append_text(self, interposer, mnt):
        with open(f"{mnt}/f.txt", "w") as fh:
            fh.write("start\n")
        with open(f"{mnt}/f.txt", "a") as fh:
            fh.write("more\n")
        with open(f"{mnt}/f.txt") as fh:
            assert fh.read() == "start\nmore\n"

    def test_encoding_respected(self, interposer, mnt):
        with open(f"{mnt}/f.txt", "w", encoding="latin-1") as fh:
            fh.write("café")
        with open(f"{mnt}/f.txt", "rb") as fh:
            assert fh.read() == "café".encode("latin-1")

    def test_invalid_mode(self, interposer, mnt):
        with pytest.raises(ValueError):
            open(f"{mnt}/f.txt", "z")


class TestPassthrough:
    def test_outside_mount_untouched(self, interposer, tmp_path):
        p = tmp_path / "plain.txt"
        with open(p, "w") as fh:
            fh.write("plain")
        with open(p) as fh:
            assert fh.read() == "plain"
        # It really is a plain file, not a container.
        assert p.is_file()

    def test_open_by_fd_passthrough(self, interposer, tmp_path):
        fd = os.open(str(tmp_path / "x"), os.O_CREAT | os.O_WRONLY)
        with open(fd, "wb") as fh:
            fh.write(b"via fd")
        assert (tmp_path / "x").read_bytes() == b"via fd"

    def test_open_plfs_fd_wraps(self, interposer, mnt):
        fd = os.open(f"{mnt}/f", os.O_CREAT | os.O_RDWR)
        os.write(fd, b"hello")
        os.lseek(fd, 0, os.SEEK_SET)
        with open(fd, "rb") as fh:
            assert fh.read() == b"hello"

    def test_stringio_unaffected(self, interposer):
        buf = io.StringIO()
        buf.write("no files involved")
        assert buf.getvalue() == "no files involved"
