"""Tests for the extended shim surface: statvfs, links, zero-copy guards,
and the -wrap analogue for import-time bound functions."""

from __future__ import annotations

import errno
import os
import types

import pytest


def make_file(path: str, payload: bytes = b"data") -> None:
    fd = os.open(path, os.O_CREAT | os.O_WRONLY)
    os.write(fd, payload)
    os.close(fd)


class TestStatvfs:
    def test_statvfs_on_mount_path(self, interposer, mnt):
        make_file(f"{mnt}/f")
        vfs = os.statvfs(f"{mnt}/f")
        assert vfs.f_bsize > 0
        # Same file system as the backend (that's where droppings live).
        backend_vfs = interposer.real.statvfs(interposer.mount_table.mounts()[0].backend)
        assert vfs.f_blocks == backend_vfs.f_blocks

    def test_statvfs_on_missing_logical_path(self, interposer, mnt):
        # Walks up to the nearest existing backend ancestor.
        vfs = os.statvfs(f"{mnt}/not/created/yet")
        assert vfs.f_bsize > 0

    def test_statvfs_passthrough(self, interposer, tmp_path):
        assert os.statvfs(str(tmp_path)).f_bsize > 0

    def test_fstatvfs_on_plfs_fd(self, interposer, mnt):
        fd = os.open(f"{mnt}/f", os.O_CREAT | os.O_WRONLY)
        vfs = os.fstatvfs(fd)
        assert vfs.f_bsize > 0
        os.close(fd)

    def test_fstatvfs_passthrough(self, interposer, tmp_path):
        fd = os.open(str(tmp_path / "x"), os.O_CREAT | os.O_WRONLY)
        assert os.fstatvfs(fd).f_bsize > 0
        os.close(fd)


class TestLinks:
    def test_hard_link_into_mount_refused(self, interposer, mnt, tmp_path):
        make_file(f"{mnt}/f")
        with pytest.raises(OSError) as exc:
            os.link(f"{mnt}/f", f"{mnt}/g")
        assert exc.value.errno == errno.EPERM

    def test_symlink_into_mount_refused(self, interposer, mnt):
        with pytest.raises(OSError) as exc:
            os.symlink("/etc/passwd", f"{mnt}/sneaky")
        assert exc.value.errno == errno.EPERM

    def test_readlink_in_mount_einval(self, interposer, mnt):
        make_file(f"{mnt}/f")
        with pytest.raises(OSError) as exc:
            os.readlink(f"{mnt}/f")
        assert exc.value.errno == errno.EINVAL

    def test_links_passthrough_outside(self, interposer, tmp_path):
        target = tmp_path / "t"
        target.write_text("x")
        os.link(str(target), str(tmp_path / "hard"))
        os.symlink(str(target), str(tmp_path / "soft"))
        assert os.readlink(str(tmp_path / "soft")) == str(target)


class TestZeroCopyGuards:
    def test_copy_file_range_guarded(self, interposer, mnt, tmp_path):
        if not hasattr(os, "copy_file_range"):
            pytest.skip("no copy_file_range on this platform")
        fd_in = os.open(f"{mnt}/src", os.O_CREAT | os.O_RDWR)
        os.write(fd_in, b"payload")
        fd_out = os.open(str(tmp_path / "dst"), os.O_CREAT | os.O_WRONLY)
        with pytest.raises(OSError) as exc:
            os.copy_file_range(fd_in, fd_out, 7)
        assert exc.value.errno == errno.EXDEV
        os.close(fd_in)
        os.close(fd_out)

    def test_copy_file_range_passthrough(self, interposer, tmp_path):
        if not hasattr(os, "copy_file_range"):
            pytest.skip("no copy_file_range on this platform")
        src = tmp_path / "a"
        src.write_bytes(b"12345")
        fd_in = os.open(str(src), os.O_RDONLY)
        fd_out = os.open(str(tmp_path / "b"), os.O_CREAT | os.O_WRONLY)
        try:
            copied = os.copy_file_range(fd_in, fd_out, 5)
            assert copied == 5
        except OSError:
            pytest.skip("copy_file_range unsupported by this kernel/fs")
        finally:
            os.close(fd_in)
            os.close(fd_out)


class TestWrapModule:
    def _app_module(self):
        """An 'application' that bound POSIX functions at import time."""
        app = types.ModuleType("app_with_from_imports")
        app.open_ = os.open  # captured BEFORE interposition in real life;
        app.write_ = os.write  # the fixture installs after module creation
        app.close_ = os.close
        app.bopen = open
        return app

    def test_unwrapped_module_misses_plfs(self, mnt, backend, tmp_path):
        # Build the module BEFORE installing: it holds the originals.
        from repro.core.interpose import Interposer

        app = self._app_module()
        ip = Interposer([(mnt, backend)])
        ip.install()
        try:
            with pytest.raises(FileNotFoundError):
                # The captured original os.open knows nothing of the mount.
                app.open_(f"{mnt}/f", os.O_CREAT | os.O_WRONLY)
        finally:
            ip.uninstall()

    def test_wrap_module_rebinds(self, mnt, backend):
        from repro.core.interpose import Interposer
        from repro.plfs import is_container

        app = self._app_module()
        ip = Interposer([(mnt, backend)])
        ip.install()
        try:
            rebound = ip.wrap_module(app)
            assert rebound == 4
            fd = app.open_(f"{mnt}/wrapped", os.O_CREAT | os.O_WRONLY)
            app.write_(fd, b"via wrapped symbols")
            app.close_(fd)
            with app.bopen(f"{mnt}/wrapped", "rb") as fh:
                assert fh.read() == b"via wrapped symbols"
        finally:
            ip.uninstall()
        assert is_container(os.path.join(backend, "wrapped"))
        # Uninstall restored the module's original bindings.
        assert app.open_ is os.open
        assert app.bopen is open

    def test_wrap_requires_install(self, mnt, backend):
        from repro.core.interpose import Interposer

        ip = Interposer([(mnt, backend)])
        with pytest.raises(RuntimeError):
            ip.wrap_module(types.ModuleType("m"))
