"""Tests for the stacking I/O tracer (the paper's footnote-1 scenario)."""

from __future__ import annotations

import os

import pytest

from repro.core.interpose import Interposer
from repro.core.trace import Tracer, traced


class TestTracerAlone:
    def test_counts_os_level_io(self, tmp_path):
        path = str(tmp_path / "f")
        with traced() as tracer:
            fd = os.open(path, os.O_CREAT | os.O_RDWR)
            os.write(fd, b"0123456789")
            os.lseek(fd, 0, os.SEEK_SET)
            os.read(fd, 4)
            os.pread(fd, 2, 4)
            os.pwrite(fd, b"xx", 8)
            os.close(fd)
        report = tracer.report()
        stats = report.files[path]
        assert stats.opens == 1
        assert stats.writes == 2
        assert stats.reads == 2
        assert stats.bytes_written == 12
        assert stats.bytes_read == 6
        assert stats.max_write == 10
        assert report.total_ops == 5

    def test_untracked_after_uninstall(self, tmp_path):
        tracer = Tracer()
        tracer.install()
        tracer.uninstall()
        fd = os.open(str(tmp_path / "x"), os.O_CREAT | os.O_WRONLY)
        os.write(fd, b"y")
        os.close(fd)
        assert tracer.report().files == {}

    def test_builtin_open_counts_opens(self, tmp_path):
        path = str(tmp_path / "g")
        with traced() as tracer:
            with open(path, "w") as fh:
                fh.write("hello")
        assert tracer.report().files[path].opens == 1

    def test_double_install_rejected(self):
        tracer = Tracer()
        tracer.install()
        try:
            with pytest.raises(RuntimeError):
                tracer.install()
        finally:
            tracer.uninstall()
        with pytest.raises(RuntimeError):
            tracer.uninstall()

    def test_timing_recorded(self, tmp_path):
        clock_values = iter(float(i) for i in range(100))
        tracer = Tracer(clock=lambda: next(clock_values))
        tracer.install()
        try:
            fd = os.open(str(tmp_path / "t"), os.O_CREAT | os.O_WRONLY)
            os.write(fd, b"abc")
            os.close(fd)
        finally:
            tracer.uninstall()
        stats = tracer.report().files[str(tmp_path / "t")]
        assert stats.write_time == 1.0  # one tick per write with the fake clock

    def test_reset(self, tmp_path):
        with traced() as tracer:
            fd = os.open(str(tmp_path / "r"), os.O_CREAT | os.O_WRONLY)
            os.close(fd)
            tracer.reset()
        assert tracer.report().files == {}

    def test_render(self, tmp_path):
        with traced() as tracer:
            fd = os.open(str(tmp_path / "render-me"), os.O_CREAT | os.O_WRONLY)
            os.write(fd, b"zz")
            os.close(fd)
        text = tracer.report().render()
        assert "render-me" in text
        assert "total:" in text


class TestStackingWithLdplfs:
    def test_tracer_over_ldplfs_sees_logical_io(self, mnt, backend):
        """Tracer installed after LDPLFS: observes the application's view
        (logical paths under the mount point)."""
        ip = Interposer([(mnt, backend)])
        ip.install()
        try:
            with traced() as tracer:
                fd = os.open(f"{mnt}/traced.dat", os.O_CREAT | os.O_WRONLY)
                os.write(fd, b"through both layers")
                os.close(fd)
            report = tracer.report()
        finally:
            ip.uninstall()
        stats = report.files[f"{mnt}/traced.dat"]
        assert stats.opens == 1
        assert stats.bytes_written == 19
        # And the data really landed in PLFS.
        from repro.plfs import is_container

        assert is_container(os.path.join(backend, "traced.dat"))

    def test_tracer_under_ldplfs_sees_physical_io(self, mnt, backend):
        """Tracer installed first: LDPLFS saves the *traced* functions as
        its originals, so backend dropping traffic is what gets counted."""
        tracer = Tracer()
        tracer.install()
        try:
            ip = Interposer([(mnt, backend)])
            ip.install()
            try:
                fd = os.open(f"{mnt}/deep.dat", os.O_CREAT | os.O_WRONLY)
                os.write(fd, b"x" * 100)
                os.close(fd)
            finally:
                ip.uninstall()
        finally:
            tracer.uninstall()
        report = tracer.report()
        # The logical path never reaches this layer; dropping files do.
        assert f"{mnt}/deep.dat" not in report.files
        dropping_paths = [p for p in report.files if "dropping.data" in p]
        assert len(dropping_paths) == 1
        assert report.files[dropping_paths[0]].bytes_written == 100

    def test_layers_unwind_cleanly(self, mnt, backend):
        orig_open = os.open
        ip = Interposer([(mnt, backend)])
        ip.install()
        tracer = Tracer().install()
        tracer.uninstall()
        ip.uninstall()
        assert os.open is orig_open
