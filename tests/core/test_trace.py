"""Tests for the stacking I/O tracer (the paper's footnote-1 scenario)."""

from __future__ import annotations

import os

import pytest

from repro.core.interpose import Interposer
from repro.core.trace import Tracer, traced


class TestTracerAlone:
    def test_counts_os_level_io(self, tmp_path):
        path = str(tmp_path / "f")
        with traced() as tracer:
            fd = os.open(path, os.O_CREAT | os.O_RDWR)
            os.write(fd, b"0123456789")
            os.lseek(fd, 0, os.SEEK_SET)
            os.read(fd, 4)
            os.pread(fd, 2, 4)
            os.pwrite(fd, b"xx", 8)
            os.close(fd)
        report = tracer.report()
        stats = report.files[path]
        assert stats.opens == 1
        assert stats.writes == 2
        assert stats.reads == 2
        assert stats.bytes_written == 12
        assert stats.bytes_read == 6
        assert stats.max_write == 10
        assert report.total_ops == 5

    def test_untracked_after_uninstall(self, tmp_path):
        tracer = Tracer()
        tracer.install()
        tracer.uninstall()
        fd = os.open(str(tmp_path / "x"), os.O_CREAT | os.O_WRONLY)
        os.write(fd, b"y")
        os.close(fd)
        assert tracer.report().files == {}

    def test_builtin_open_counts_opens(self, tmp_path):
        path = str(tmp_path / "g")
        with traced() as tracer:
            with open(path, "w") as fh:
                fh.write("hello")
        assert tracer.report().files[path].opens == 1

    def test_double_install_rejected(self):
        tracer = Tracer()
        tracer.install()
        try:
            with pytest.raises(RuntimeError):
                tracer.install()
        finally:
            tracer.uninstall()
        with pytest.raises(RuntimeError):
            tracer.uninstall()

    def test_timing_recorded(self, tmp_path):
        clock_values = iter(float(i) for i in range(100))
        tracer = Tracer(clock=lambda: next(clock_values))
        tracer.install()
        try:
            fd = os.open(str(tmp_path / "t"), os.O_CREAT | os.O_WRONLY)
            os.write(fd, b"abc")
            os.close(fd)
        finally:
            tracer.uninstall()
        stats = tracer.report().files[str(tmp_path / "t")]
        assert stats.write_time == 1.0  # one tick per write with the fake clock

    def test_reset(self, tmp_path):
        with traced() as tracer:
            fd = os.open(str(tmp_path / "r"), os.O_CREAT | os.O_WRONLY)
            os.close(fd)
            tracer.reset()
        assert tracer.report().files == {}

    def test_render(self, tmp_path):
        with traced() as tracer:
            fd = os.open(str(tmp_path / "render-me"), os.O_CREAT | os.O_WRONLY)
            os.write(fd, b"zz")
            os.close(fd)
        text = tracer.report().render()
        assert "render-me" in text
        assert "total:" in text


class TestTracerMetrics:
    """The characterisation metrics feeding ``repro.insights``."""

    def test_seeks_and_closes_counted(self, tmp_path):
        path = str(tmp_path / "m")
        with traced() as tracer:
            fd = os.open(path, os.O_CREAT | os.O_RDWR)
            os.write(fd, b"0123456789")
            os.lseek(fd, 0, os.SEEK_CUR)  # a tell — not a reposition
            os.lseek(fd, 0, os.SEEK_SET)  # a real reposition
            os.read(fd, 10)
            os.close(fd)
        stats = tracer.report().files[path]
        assert stats.seeks == 1
        assert stats.closes == 1

    def test_access_size_histograms(self, tmp_path):
        path = str(tmp_path / "h")
        with traced() as tracer:
            fd = os.open(path, os.O_CREAT | os.O_RDWR)
            os.write(fd, b"x" * 10)
            os.write(fd, b"y" * 2000)
            os.lseek(fd, 0, os.SEEK_SET)
            os.read(fd, 500)
            os.close(fd)
        stats = tracer.report().files[path]
        assert stats.write_sizes.as_dict() == {"0-100": 1, "1K-10K": 1}
        assert stats.read_sizes.as_dict() == {"100-1K": 1}

    def test_consecutive_offset_sequentiality(self, tmp_path):
        path = str(tmp_path / "s")
        with traced() as tracer:
            fd = os.open(path, os.O_CREAT | os.O_WRONLY)
            os.write(fd, b"a" * 10)        # offset 0: sequential
            os.write(fd, b"b" * 10)        # offset 10: sequential
            os.pwrite(fd, b"c" * 10, 100)  # jump: not sequential
            os.pwrite(fd, b"d" * 10, 110)  # continues the jump: sequential
            os.close(fd)
        stats = tracer.report().files[path]
        assert stats.sequential_accesses == 3
        assert stats.sequentiality == pytest.approx(0.75)

    def test_lseek_resets_sequential_expectation(self, tmp_path):
        path = str(tmp_path / "k")
        with traced() as tracer:
            fd = os.open(path, os.O_CREAT | os.O_RDWR)
            os.write(fd, b"x" * 20)
            os.lseek(fd, 5, os.SEEK_SET)
            os.read(fd, 5)  # reads at 5, but the log expected offset 20
            os.close(fd)
        stats = tracer.report().files[path]
        assert stats.sequentiality == pytest.approx(0.5)

    def test_buffered_open_is_accounted_via_proxy(self, tmp_path):
        """The fixed bypass: builtins.open I/O used to report 0 bytes."""
        path = str(tmp_path / "buf.txt")
        with traced() as tracer:
            with open(path, "w") as fh:
                fh.write("hello")
                fh.write(" world")
            with open(path) as fh:
                assert fh.read() == "hello world"
        stats = tracer.report().files[path]
        assert stats.buffered
        assert stats.mode == "r"  # last open mode seen
        assert stats.opens == 2 and stats.closes == 2
        assert stats.writes == 2 and stats.bytes_written == 11
        assert stats.reads >= 1 and stats.bytes_read == 11
        assert "[buffered]" in tracer.report().render()

    def test_buffered_binary_seek_and_iteration(self, tmp_path):
        path = str(tmp_path / "buf.bin")
        with traced() as tracer:
            with open(path, "wb") as fh:
                fh.write(b"line1\nline2\n")
            with open(path, "rb") as fh:
                fh.seek(6)
                fh.read(6)
                fh.seek(0)
                assert [len(l) for l in fh] == [6, 6]
        stats = tracer.report().files[path]
        assert stats.seeks == 2  # seek(0) after read-to-6... both reposition
        assert stats.bytes_read == 6 + 12  # explicit read + iteration

    def test_opaque_buffered_file_flagged(self, tmp_path):
        path = str(tmp_path / "opaque")
        with traced() as tracer:
            with open(path, "w"):
                pass  # opened, never touched
        stats = tracer.report().files[path]
        assert stats.buffered and stats.accesses == 0
        assert "[opacity: buffered]" in tracer.report().render()


class TestStackingWithLdplfs:
    def test_tracer_over_ldplfs_sees_logical_io(self, mnt, backend):
        """Tracer installed after LDPLFS: observes the application's view
        (logical paths under the mount point)."""
        ip = Interposer([(mnt, backend)])
        ip.install()
        try:
            with traced() as tracer:
                fd = os.open(f"{mnt}/traced.dat", os.O_CREAT | os.O_WRONLY)
                os.write(fd, b"through both layers")
                os.close(fd)
            report = tracer.report()
        finally:
            ip.uninstall()
        stats = report.files[f"{mnt}/traced.dat"]
        assert stats.opens == 1
        assert stats.bytes_written == 19
        # And the data really landed in PLFS.
        from repro.plfs import is_container

        assert is_container(os.path.join(backend, "traced.dat"))

    def test_tracer_under_ldplfs_sees_physical_io(self, mnt, backend):
        """Tracer installed first: LDPLFS saves the *traced* functions as
        its originals, so backend dropping traffic is what gets counted."""
        tracer = Tracer()
        tracer.install()
        try:
            ip = Interposer([(mnt, backend)])
            ip.install()
            try:
                fd = os.open(f"{mnt}/deep.dat", os.O_CREAT | os.O_WRONLY)
                os.write(fd, b"x" * 100)
                os.close(fd)
            finally:
                ip.uninstall()
        finally:
            tracer.uninstall()
        report = tracer.report()
        # The logical path never reaches this layer; dropping files do.
        assert f"{mnt}/deep.dat" not in report.files
        dropping_paths = [p for p in report.files if "dropping.data" in p]
        assert len(dropping_paths) == 1
        assert report.files[dropping_paths[0]].bytes_written == 100

    def test_tracer_over_ldplfs_buffered_open(self, mnt, backend):
        """builtins.open through both layers: the proxy accounts logical
        bytes even though the PLFS shim serves the actual I/O."""
        ip = Interposer([(mnt, backend)])
        ip.install()
        try:
            with traced() as tracer:
                with open(f"{mnt}/buffered.txt", "w") as fh:
                    fh.write("via plfs")
                with open(f"{mnt}/buffered.txt") as fh:
                    assert fh.read() == "via plfs"
        finally:
            ip.uninstall()
        stats = tracer.report().files[f"{mnt}/buffered.txt"]
        assert stats.buffered
        assert stats.bytes_written == 8
        assert stats.bytes_read == 8
        assert stats.closes == 2
        from repro.plfs import is_container

        assert is_container(os.path.join(backend, "buffered.txt"))

    def test_logical_vs_physical_histograms(self, mnt, backend):
        """Over the shim the tracer sees the app's access sizes; under it,
        the dropping log's — same bytes, different characterisation."""
        # Over: logical sizes.
        ip = Interposer([(mnt, backend)])
        ip.install()
        try:
            with traced() as over:
                fd = os.open(f"{mnt}/sizes.dat", os.O_CREAT | os.O_WRONLY)
                os.write(fd, b"x" * 50)
                os.write(fd, b"y" * 50)
                os.close(fd)
        finally:
            ip.uninstall()
        logical = over.report().files[f"{mnt}/sizes.dat"]
        assert logical.write_sizes.as_dict() == {"0-100": 2}
        assert logical.sequentiality == 1.0

        # Under: physical dropping traffic.
        tracer = Tracer()
        tracer.install()
        try:
            ip = Interposer([(mnt, backend)])
            ip.install()
            try:
                fd = os.open(f"{mnt}/deep2.dat", os.O_CREAT | os.O_WRONLY)
                os.write(fd, b"x" * 50)
                os.write(fd, b"y" * 50)
                os.close(fd)
            finally:
                ip.uninstall()
        finally:
            tracer.uninstall()
        droppings = [
            f
            for p, f in tracer.report().files.items()
            if "dropping.data" in p
        ]
        assert len(droppings) == 1
        # The dropping is a pure log: appends at consecutive offsets.
        assert droppings[0].write_sizes.as_dict() == {"0-100": 2}
        assert droppings[0].sequentiality == 1.0

    def test_layers_unwind_cleanly(self, mnt, backend):
        orig_open = os.open
        ip = Interposer([(mnt, backend)])
        ip.install()
        tracer = Tracer().install()
        tracer.uninstall()
        ip.uninstall()
        assert os.open is orig_open
