"""Tests for the mount table (logical path → backend resolution)."""

from __future__ import annotations

import os

import pytest

from repro.core.mounts import Mount, MountTable


class TestMount:
    def test_translate_file(self):
        m = Mount("/mnt/plfs", "/backend")
        assert m.translate("/mnt/plfs/a/b") == "/backend/a/b"

    def test_translate_root(self):
        m = Mount("/mnt/plfs", "/backend")
        assert m.translate("/mnt/plfs") == "/backend"


class TestMountTable:
    def test_add_and_resolve(self, tmp_path):
        t = MountTable()
        t.add("/mnt/plfs", str(tmp_path / "be"))
        resolved = t.resolve("/mnt/plfs/file")
        assert resolved is not None
        mount, backend = resolved
        assert backend == str(tmp_path / "be" / "file")

    def test_add_creates_backend_dir(self, tmp_path):
        t = MountTable()
        be = tmp_path / "newdir"
        t.add("/mnt/plfs", str(be))
        assert be.is_dir()

    def test_resolve_outside_mount_is_none(self, tmp_path):
        t = MountTable([("/mnt/plfs", str(tmp_path))])
        assert t.resolve("/etc/passwd") is None
        assert t.resolve("/mnt/plfsother/file") is None  # no prefix confusion

    def test_resolve_mount_point_itself(self, tmp_path):
        t = MountTable([("/mnt/plfs", str(tmp_path))])
        mount, backend = t.resolve("/mnt/plfs")
        assert backend == str(tmp_path)

    def test_longest_prefix_wins(self, tmp_path):
        be1, be2 = tmp_path / "b1", tmp_path / "b2"
        t = MountTable([("/mnt", str(be1)), ("/mnt/inner", str(be2))])
        _, backend = t.resolve("/mnt/inner/x")
        assert backend == str(be2 / "x")
        _, backend = t.resolve("/mnt/other/x")
        assert backend == str(be1 / "other" / "x")

    def test_relative_paths_resolved_against_cwd(self, tmp_path, monkeypatch):
        t = MountTable([(str(tmp_path / "mnt"), str(tmp_path / "be"))])
        monkeypatch.chdir(tmp_path)
        resolved = t.resolve("mnt/file")
        assert resolved is not None
        assert resolved[1] == str(tmp_path / "be" / "file")

    def test_dot_segments_normalised(self, tmp_path):
        t = MountTable([("/mnt/plfs", str(tmp_path))])
        _, backend = t.resolve("/mnt/plfs/a/../b/./c")
        assert backend == str(tmp_path / "b" / "c")

    def test_duplicate_mount_raises(self, tmp_path):
        t = MountTable([("/mnt/plfs", str(tmp_path / "a"))])
        with pytest.raises(ValueError):
            t.add("/mnt/plfs", str(tmp_path / "b"))

    def test_mount_over_root_refused(self, tmp_path):
        with pytest.raises(ValueError):
            MountTable([("/", str(tmp_path))])

    def test_backend_under_mount_refused(self):
        with pytest.raises(ValueError):
            MountTable([("/mnt/plfs", "/mnt/plfs/backend")])

    def test_remove(self, tmp_path):
        t = MountTable([("/mnt/plfs", str(tmp_path))])
        t.remove("/mnt/plfs")
        assert t.resolve("/mnt/plfs/x") is None
        with pytest.raises(KeyError):
            t.remove("/mnt/plfs")

    def test_len_and_clear(self, tmp_path):
        t = MountTable([("/mnt/a", str(tmp_path / "a")), ("/mnt/b", str(tmp_path / "b"))])
        assert len(t) == 2
        t.clear()
        assert len(t) == 0

    def test_bytes_path(self, tmp_path):
        t = MountTable([("/mnt/plfs", str(tmp_path))])
        mount = t.find(os.fsencode("/mnt/plfs/x"))
        assert mount is None or mount.mount_point == "/mnt/plfs"
