"""End-to-end preload scenarios: plfsrc files and leaked descriptors."""

from __future__ import annotations

import os
import subprocess
import sys

from repro.core import config
from repro.plfs import is_container, plfs_getattr


def run_child(program: str, env_extra: dict[str, str]) -> None:
    env = dict(os.environ)
    env.update(env_extra)
    subprocess.run([sys.executable, "-c", program], env=env, check=True)


class TestPlfsrcActivation:
    def test_plfsrc_file_drives_preload(self, tmp_path):
        backend = tmp_path / "backend"
        mnt = tmp_path / "mnt"
        rc = tmp_path / "plfsrc"
        rc.write_text(f"mount_point {mnt}\nbackends {backend}\n")
        program = (
            "import repro.core.preload\n"
            f"open({str(mnt / 'via-rc.txt')!r}, 'w').write('rc works')\n"
        )
        run_child(
            program,
            {config.ENV_PRELOAD: "1", config.ENV_PLFSRC: str(rc), config.ENV_MOUNTS: ""},
        )
        assert is_container(str(backend / "via-rc.txt"))

    def test_leaked_fd_flushed_at_exit(self, tmp_path):
        """The atexit drain: an application that never closes its file
        must still leave a complete container behind (index flushed)."""
        backend = tmp_path / "backend"
        mnt = tmp_path / "mnt"
        program = (
            "import os, repro.core.preload\n"
            f"fd = os.open({str(mnt / 'leaky.dat')!r}, os.O_CREAT | os.O_WRONLY)\n"
            "os.write(fd, b'x' * 12345)\n"
            "# no close: process exits with the descriptor open\n"
        )
        run_child(
            program,
            {config.ENV_PRELOAD: "1", config.ENV_MOUNTS: f"{mnt}:{backend}"},
        )
        path = str(backend / "leaky.dat")
        assert is_container(path)
        assert plfs_getattr(path).st_size == 12345

    def test_two_mounts_same_process(self, tmp_path):
        mnt_a, mnt_b = tmp_path / "a", tmp_path / "b"
        be_a, be_b = tmp_path / "ba", tmp_path / "bb"
        program = (
            "import repro.core.preload\n"
            f"open({str(mnt_a / 'x')!r}, 'w').write('A')\n"
            f"open({str(mnt_b / 'y')!r}, 'w').write('B')\n"
        )
        run_child(
            program,
            {
                config.ENV_PRELOAD: "1",
                config.ENV_MOUNTS: f"{mnt_a}:{be_a},{mnt_b}:{be_b}",
            },
        )
        assert is_container(str(be_a / "x"))
        assert is_container(str(be_b / "y"))
