"""Descriptor-level shim tests: the paper's two book-keeping mechanisms.

These exercise the fd lookup table (real shadow descriptors) and the
lseek-emulated file pointer through the patched ``os`` functions.
"""

from __future__ import annotations

import errno
import os

import pytest


@pytest.fixture
def f(mnt):
    return f"{mnt}/file"


class TestOpenClose:
    def test_open_returns_real_fd(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_WRONLY)
        assert isinstance(fd, int) and fd >= 0
        # A real kernel descriptor: fstat on the raw fd must succeed even
        # via the original (unpatched) function.
        interposer.real.fstat(fd)
        os.close(fd)

    def test_fd_table_tracks_entry(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_WRONLY)
        assert interposer.shim.table.lookup(fd) is not None
        os.close(fd)
        assert interposer.shim.table.lookup(fd) is None

    def test_open_missing_raises_enoent(self, interposer, f):
        with pytest.raises(FileNotFoundError):
            os.open(f, os.O_RDONLY)

    def test_open_passthrough_outside_mount(self, interposer, tmp_path):
        out = str(tmp_path / "plain")
        fd = os.open(out, os.O_CREAT | os.O_WRONLY)
        assert interposer.shim.table.lookup(fd) is None
        os.write(fd, b"plain")
        os.close(fd)
        assert open(out, "rb").read() == b"plain"

    def test_close_passthrough(self, interposer, tmp_path):
        fd = os.open(str(tmp_path / "x"), os.O_CREAT | os.O_WRONLY)
        os.close(fd)
        with pytest.raises(OSError):
            interposer.real.fstat(fd)


class TestFailedOpenCleanup:
    """A failed plfs_open must leave no residue: no shadow descriptor, no
    fd-table entry, no PLFS handle, no openhost marker."""

    @staticmethod
    def open_fd_count():
        return len(os.listdir("/proc/self/fd"))

    def test_failed_insert_releases_handle_and_marker(
        self, interposer, f, backend, monkeypatch
    ):
        from repro.core.fdtable import FdTable

        def boom(self, *args, **kwargs):
            raise RuntimeError("injected registration failure")

        monkeypatch.setattr(FdTable, "insert", boom)
        before = self.open_fd_count()
        with pytest.raises(RuntimeError):
            os.open(f, os.O_CREAT | os.O_WRONLY)
        assert self.open_fd_count() == before  # no descriptor leaked
        from repro.plfs.container import Container

        container = Container(os.path.join(backend, "file"))
        assert container.open_writers() == []  # the marker was withdrawn
        assert len(interposer.shim.table) == 0

    def test_failed_entry_registration_closes_shadow_fd(
        self, interposer, f, monkeypatch
    ):
        from repro.core import fdtable

        def boom(*args, **kwargs):
            raise RuntimeError("injected entry failure")

        monkeypatch.setattr(fdtable, "FdEntry", boom)
        before = self.open_fd_count()
        with pytest.raises(RuntimeError):
            os.open(f, os.O_CREAT | os.O_WRONLY)
        assert self.open_fd_count() == before
        assert len(interposer.shim.table) == 0

    def test_file_usable_after_failed_open(self, interposer, f, monkeypatch):
        from repro.core.fdtable import FdTable

        original = FdTable.insert
        calls = {"n": 0}

        def fail_once(self, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected")
            return original(self, *args, **kwargs)

        monkeypatch.setattr(FdTable, "insert", fail_once)
        with pytest.raises(RuntimeError):
            os.open(f, os.O_CREAT | os.O_WRONLY)
        # No stale writer state blocks the retry.
        fd = os.open(f, os.O_CREAT | os.O_WRONLY)
        os.write(fd, b"recovered")
        os.close(fd)
        fd = os.open(f, os.O_RDONLY)
        assert os.read(fd, 20) == b"recovered"
        os.close(fd)


class TestCursorEmulation:
    def test_sequential_reads_advance(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_RDWR)
        os.write(fd, b"0123456789")
        os.lseek(fd, 0, os.SEEK_SET)
        assert os.read(fd, 4) == b"0123"
        assert os.read(fd, 4) == b"4567"
        assert os.read(fd, 4) == b"89"
        assert os.read(fd, 4) == b""
        os.close(fd)

    def test_write_advances_cursor(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_RDWR)
        os.write(fd, b"abc")
        os.write(fd, b"def")
        os.lseek(fd, 0, os.SEEK_SET)
        assert os.read(fd, 6) == b"abcdef"
        os.close(fd)

    def test_seek_set_cur_end(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_RDWR)
        os.write(fd, b"0123456789")
        assert os.lseek(fd, 2, os.SEEK_SET) == 2
        assert os.lseek(fd, 3, os.SEEK_CUR) == 5
        assert os.lseek(fd, -2, os.SEEK_END) == 8
        assert os.read(fd, 10) == b"89"
        os.close(fd)

    def test_seek_past_eof_then_write_leaves_hole(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_RDWR)
        os.write(fd, b"A")
        os.lseek(fd, 5, os.SEEK_SET)
        os.write(fd, b"B")
        os.lseek(fd, 0, os.SEEK_SET)
        assert os.read(fd, 6) == b"A\x00\x00\x00\x00B"
        os.close(fd)

    def test_negative_seek_raises(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_RDWR)
        with pytest.raises(OSError):
            os.lseek(fd, -1, os.SEEK_SET)
        with pytest.raises(OSError):
            os.lseek(fd, -10, os.SEEK_END)
        os.close(fd)

    def test_append_mode(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_WRONLY)
        os.write(fd, b"base")
        os.close(fd)
        fd = os.open(f, os.O_WRONLY | os.O_APPEND)
        os.write(fd, b"+one")
        os.write(fd, b"+two")
        os.close(fd)
        fd = os.open(f, os.O_RDONLY)
        assert os.read(fd, 100) == b"base+one+two"
        os.close(fd)


class TestPositionalIO:
    def test_pread_does_not_move_cursor(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_RDWR)
        os.write(fd, b"0123456789")
        os.lseek(fd, 0, os.SEEK_SET)
        assert os.pread(fd, 3, 5) == b"567"
        assert os.read(fd, 3) == b"012"  # cursor untouched by pread
        os.close(fd)

    def test_pwrite_does_not_move_cursor(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_RDWR)
        os.write(fd, b"0000000000")
        os.lseek(fd, 2, os.SEEK_SET)
        os.pwrite(fd, b"XY", 6)
        assert os.lseek(fd, 0, os.SEEK_CUR) == 2
        assert os.pread(fd, 10, 0) == b"000000XY00"
        os.close(fd)

    def test_pread_passthrough(self, interposer, tmp_path):
        p = str(tmp_path / "plain")
        with open(p, "wb") as fh:
            fh.write(b"abcdef")
        fd = os.open(p, os.O_RDONLY)
        assert os.pread(fd, 2, 2) == b"cd"
        os.close(fd)


class TestDup:
    def test_dup_shares_cursor(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_RDWR)
        os.write(fd, b"0123456789")
        os.lseek(fd, 0, os.SEEK_SET)
        fd2 = os.dup(fd)
        assert os.read(fd, 2) == b"01"
        assert os.read(fd2, 2) == b"23"  # shared offset, like POSIX dup
        os.close(fd2)
        assert os.read(fd, 2) == b"45"  # original still open
        os.close(fd)

    def test_dup2_replaces_plfs_target(self, interposer, f, mnt):
        fd_a = os.open(f, os.O_CREAT | os.O_RDWR)
        fd_b = os.open(f"{mnt}/other", os.O_CREAT | os.O_RDWR)
        os.write(fd_a, b"AAA")
        os.dup2(fd_a, fd_b)
        # fd_b now refers to the first file.
        os.lseek(fd_b, 0, os.SEEK_SET)
        assert os.read(fd_b, 3) == b"AAA"
        os.close(fd_a)
        os.close(fd_b)

    def test_dup2_same_fd_is_noop(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_RDWR)
        assert os.dup2(fd, fd) == fd
        os.close(fd)


class TestFdMetadata:
    def test_fstat_logical_size(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_WRONLY)
        os.write(fd, b"x" * 1234)
        assert os.fstat(fd).st_size == 1234
        os.close(fd)

    def test_fsync_flushes_index(self, interposer, f, backend):
        fd = os.open(f, os.O_CREAT | os.O_WRONLY)
        os.write(fd, b"payload")
        os.fsync(fd)
        from repro.plfs.container import Container

        [(index_path, _)] = Container(os.path.join(backend, "file")).droppings()
        assert os.path.getsize(index_path) > 0
        os.close(fd)

    def test_ftruncate(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_RDWR)
        os.write(fd, b"0123456789")
        os.ftruncate(fd, 4)
        assert os.fstat(fd).st_size == 4
        os.close(fd)

    def test_read_on_wronly_fd_raises_ebadf(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_WRONLY)
        with pytest.raises(OSError) as exc:
            os.read(fd, 1)
        assert exc.value.errno == errno.EBADF
        os.close(fd)

    def test_write_on_rdonly_fd_raises_ebadf(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_WRONLY)
        os.close(fd)
        fd = os.open(f, os.O_RDONLY)
        with pytest.raises(OSError) as exc:
            os.write(fd, b"x")
        assert exc.value.errno == errno.EBADF
        os.close(fd)

    def test_sendfile_on_plfs_fd_gives_einval(self, interposer, f, tmp_path):
        fd_in = os.open(f, os.O_CREAT | os.O_RDWR)
        os.write(fd_in, b"data")
        fd_out = os.open(str(tmp_path / "out"), os.O_CREAT | os.O_WRONLY)
        with pytest.raises(OSError) as exc:
            os.sendfile(fd_out, fd_in, 0, 4)
        assert exc.value.errno == errno.EINVAL
        os.close(fd_in)
        os.close(fd_out)


class TestCrossDescriptorFreshness:
    """Regression: logical size served to one descriptor must reflect
    another descriptor's synced writes (each ``os.open`` makes its own
    PLFS handle, so this crosses handles, not just cursors)."""

    def test_fstat_sees_other_descriptor_sync(self, interposer, f):
        wfd = os.open(f, os.O_CREAT | os.O_WRONLY)
        rfd = os.open(f, os.O_RDONLY)
        assert os.fstat(rfd).st_size == 0
        os.write(wfd, b"x" * 100)
        os.fsync(wfd)
        assert os.fstat(rfd).st_size == 100
        os.write(wfd, b"y" * 28)
        os.fsync(wfd)
        assert os.fstat(rfd).st_size == 128
        os.close(wfd)
        os.close(rfd)

    def test_seek_end_sees_other_descriptor_sync(self, interposer, f):
        wfd = os.open(f, os.O_CREAT | os.O_WRONLY)
        rfd = os.open(f, os.O_RDONLY)
        os.write(wfd, b"0123456789")
        os.fsync(wfd)
        assert os.lseek(rfd, 0, os.SEEK_END) == 10
        os.write(wfd, b"abcdef")
        os.fsync(wfd)
        assert os.lseek(rfd, -6, os.SEEK_END) == 10
        assert os.read(rfd, 6) == b"abcdef"
        os.close(wfd)
        os.close(rfd)

    def test_read_sees_other_descriptor_sync(self, interposer, f):
        wfd = os.open(f, os.O_CREAT | os.O_WRONLY)
        rfd = os.open(f, os.O_RDONLY)
        os.write(wfd, b"first")
        os.fsync(wfd)
        assert os.pread(rfd, 5, 0) == b"first"
        os.pwrite(wfd, b"SECOND", 0)
        os.fsync(wfd)
        assert os.pread(rfd, 6, 0) == b"SECOND"
        os.close(wfd)
        os.close(rfd)
