"""Tests for environment / plfsrc configuration parsing."""

from __future__ import annotations

import pytest

from repro.core import config


class TestPreloadFlag:
    @pytest.mark.parametrize("value", ["1", "true", "TRUE", "yes", "on"])
    def test_truthy(self, value):
        assert config.preload_requested({config.ENV_PRELOAD: value})

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "nope"])
    def test_falsy(self, value):
        assert not config.preload_requested({config.ENV_PRELOAD: value})

    def test_unset(self):
        assert not config.preload_requested({})


class TestMountsEnv:
    def test_single_pair(self):
        env = {config.ENV_MOUNTS: "/mnt/plfs:/backend"}
        assert config.mounts_from_environ(env) == [("/mnt/plfs", "/backend")]

    def test_multiple_pairs(self):
        env = {config.ENV_MOUNTS: "/a:/b, /c:/d"}
        assert config.mounts_from_environ(env) == [("/a", "/b"), ("/c", "/d")]

    def test_empty(self):
        assert config.mounts_from_environ({}) == []
        assert config.mounts_from_environ({config.ENV_MOUNTS: "  "}) == []

    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            config.mounts_from_environ({config.ENV_MOUNTS: "nocolon"})


class TestPlfsrc:
    def test_basic(self):
        text = """
        # a comment
        mount_point /mnt/plfs
        backends /scratch/backend
        """
        assert config.parse_plfsrc(text) == [("/mnt/plfs", "/scratch/backend")]

    def test_colon_style(self):
        text = "mount_point: /mnt/plfs\nbackends: /scratch/backend\n"
        assert config.parse_plfsrc(text) == [("/mnt/plfs", "/scratch/backend")]

    def test_multiple_mounts(self):
        text = (
            "mount_point /a\nbackends /ba\n"
            "mount_point /b\nbackends /bb\n"
        )
        assert config.parse_plfsrc(text) == [("/a", "/ba"), ("/b", "/bb")]

    def test_multiple_backends_takes_first(self):
        text = "mount_point /m\nbackends /b1,/b2\n"
        assert config.parse_plfsrc(text) == [("/m", "/b1")]

    def test_backends_without_mount_raises(self):
        with pytest.raises(ValueError):
            config.parse_plfsrc("backends /b\n")

    def test_unknown_directives_ignored(self):
        text = "threadpool_size 16\nmount_point /m\nbackends /b\n"
        assert config.parse_plfsrc(text) == [("/m", "/b")]

    def test_file_roundtrip(self, tmp_path):
        rc = tmp_path / "plfsrc"
        rc.write_text("mount_point /m\nbackends /b\n")
        assert config.mounts_from_plfsrc(str(rc)) == [("/m", "/b")]


class TestDiscover:
    def test_env_takes_priority(self, tmp_path):
        rc = tmp_path / "plfsrc"
        rc.write_text("mount_point /rc\nbackends /rcb\n")
        env = {
            config.ENV_MOUNTS: "/env:/envb",
            config.ENV_PLFSRC: str(rc),
        }
        assert config.discover_mounts(env) == [("/env", "/envb")]

    def test_fallback_to_plfsrc(self, tmp_path):
        rc = tmp_path / "plfsrc"
        rc.write_text("mount_point /rc\nbackends /rcb\n")
        env = {config.ENV_PLFSRC: str(rc)}
        assert config.discover_mounts(env) == [("/rc", "/rcb")]

    def test_missing_plfsrc_file(self):
        env = {config.ENV_PLFSRC: "/nonexistent/plfsrc"}
        assert config.discover_mounts(env) == []

    def test_nothing_configured(self):
        assert config.discover_mounts({}) == []
