"""Stateful equivalence: a PLFS mount must be indistinguishable from a
plain directory.

Hypothesis drives random operation sequences against two trees at once —
a plain directory manipulated with the *original* functions (reference)
and a PLFS mount manipulated through the interposition layer (system
under test) — and checks contents, sizes and listings agree after every
step.  This is the strongest form of the paper's transparency claim.
"""

from __future__ import annotations

import os
import shutil
import tempfile

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.interpose import Interposer

FILE_NAMES = ["a.dat", "b.txt", "c"]
payloads = st.binary(min_size=0, max_size=200)
names = st.sampled_from(FILE_NAMES)
offsets = st.integers(min_value=0, max_value=500)


class MountEquivalence(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.base = tempfile.mkdtemp(prefix="ldplfs-equiv-")
        self.ref_dir = os.path.join(self.base, "reference")
        os.mkdir(self.ref_dir)
        backend = os.path.join(self.base, "backend")
        self.mnt = os.path.join(self.base, "mnt")
        self.interposer = Interposer([(self.mnt, backend)])
        self.interposer.install()
        self.real = self.interposer.real

    # ------------------------------------------------------------------ #
    # operations (each applied to both trees)
    # ------------------------------------------------------------------ #

    @rule(name=names, payload=payloads)
    def write_file(self, name, payload):
        with open(f"{self.mnt}/{name}", "wb") as fh:  # interposed
            fh.write(payload)
        with self.real.builtins_open(f"{self.ref_dir}/{name}", "wb") as fh:
            fh.write(payload)

    @rule(name=names, payload=payloads)
    def append_file(self, name, payload):
        for root, opener in (
            (self.mnt, open),
            (self.ref_dir, self.real.builtins_open),
        ):
            with opener(f"{root}/{name}", "ab") as fh:
                fh.write(payload)

    @rule(name=names, payload=payloads, offset=offsets)
    def pwrite_file(self, name, payload, offset):
        flags = os.O_CREAT | os.O_WRONLY
        fd = os.open(f"{self.mnt}/{name}", flags)
        os.pwrite(fd, payload, offset)
        os.close(fd)
        fd = self.real.open(f"{self.ref_dir}/{name}", flags)
        os.pwrite(fd, payload, offset)  # plain fd: shim passes through
        os.close(fd)

    @rule(name=names)
    def unlink_file(self, name):
        existed_sut = os.path.exists(f"{self.mnt}/{name}")
        existed_ref = self.real.path_exists(f"{self.ref_dir}/{name}")
        assert existed_sut == existed_ref
        if existed_ref:
            os.unlink(f"{self.mnt}/{name}")
            self.real.unlink(f"{self.ref_dir}/{name}")

    @rule(src=names, dst=names)
    def rename_file(self, src, dst):
        if src == dst or not os.path.exists(f"{self.mnt}/{src}"):
            return
        os.replace(f"{self.mnt}/{src}", f"{self.mnt}/{dst}")
        self.real.replace(f"{self.ref_dir}/{src}", f"{self.ref_dir}/{dst}")

    @rule(name=names, size=st.integers(0, 300))
    def truncate_file(self, name, size):
        if not os.path.exists(f"{self.mnt}/{name}"):
            return
        os.truncate(f"{self.mnt}/{name}", size)
        self.real.truncate(f"{self.ref_dir}/{name}", size)

    # ------------------------------------------------------------------ #
    # invariants
    # ------------------------------------------------------------------ #

    @invariant()
    def trees_agree(self):
        sut_names = sorted(os.listdir(self.mnt))
        ref_names = sorted(self.real.listdir(self.ref_dir))
        assert sut_names == ref_names
        for name in ref_names:
            ref_path = f"{self.ref_dir}/{name}"
            sut_path = f"{self.mnt}/{name}"
            with self.real.builtins_open(ref_path, "rb") as fh:
                expected = fh.read()
            assert os.stat(sut_path).st_size == len(expected)
            with open(sut_path, "rb") as fh:
                assert fh.read() == expected

    def teardown(self):
        try:
            self.interposer.drain()
            self.interposer.uninstall()
        finally:
            shutil.rmtree(self.base, ignore_errors=True)


MountEquivalence.TestCase.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)
TestMountEquivalence = MountEquivalence.TestCase
