"""Path-level shim tests: namespace and metadata operations over mounts."""

from __future__ import annotations

import errno
import os

import pytest

from repro.plfs.container import is_container


def make_file(path: str, payload: bytes = b"data") -> None:
    fd = os.open(path, os.O_CREAT | os.O_WRONLY)
    os.write(fd, payload)
    os.close(fd)


class TestStat:
    def test_stat_logical_size(self, interposer, mnt):
        make_file(f"{mnt}/f", b"x" * 100)
        assert os.stat(f"{mnt}/f").st_size == 100

    def test_stat_missing(self, interposer, mnt):
        with pytest.raises(FileNotFoundError):
            os.stat(f"{mnt}/missing")

    def test_stat_mount_root_is_dir(self, interposer, mnt):
        st = os.stat(mnt)
        import stat as stat_module

        assert stat_module.S_ISDIR(st.st_mode)

    def test_lstat_equals_stat_for_containers(self, interposer, mnt):
        make_file(f"{mnt}/f", b"abc")
        assert os.lstat(f"{mnt}/f").st_size == os.stat(f"{mnt}/f").st_size

    def test_os_path_helpers(self, interposer, mnt):
        make_file(f"{mnt}/f")
        os.mkdir(f"{mnt}/d")
        assert os.path.exists(f"{mnt}/f")
        assert os.path.isfile(f"{mnt}/f")
        assert not os.path.isdir(f"{mnt}/f")
        assert os.path.isdir(f"{mnt}/d")
        assert os.path.getsize(f"{mnt}/f") == 4
        assert not os.path.exists(f"{mnt}/nope")

    def test_access(self, interposer, mnt):
        make_file(f"{mnt}/f")
        assert os.access(f"{mnt}/f", os.R_OK)
        assert not os.access(f"{mnt}/missing", os.F_OK)

    def test_utime(self, interposer, mnt):
        make_file(f"{mnt}/f")
        os.utime(f"{mnt}/f", (1000000, 1000000))
        with pytest.raises(FileNotFoundError):
            os.utime(f"{mnt}/missing")

    def test_chmod_updates_logical_mode(self, interposer, mnt):
        import stat as stat_module

        make_file(f"{mnt}/f")
        os.chmod(f"{mnt}/f", 0o600)
        assert stat_module.S_IMODE(os.stat(f"{mnt}/f").st_mode) == 0o600


class TestNamespace:
    def test_unlink_container(self, interposer, mnt, backend):
        make_file(f"{mnt}/f")
        os.unlink(f"{mnt}/f")
        assert not os.path.exists(f"{mnt}/f")
        assert not os.path.exists(os.path.join(backend, "f"))

    def test_unlink_missing(self, interposer, mnt):
        with pytest.raises(FileNotFoundError):
            os.unlink(f"{mnt}/missing")

    def test_unlink_directory_raises(self, interposer, mnt):
        os.mkdir(f"{mnt}/d")
        with pytest.raises(IsADirectoryError):
            os.unlink(f"{mnt}/d")

    def test_remove_alias(self, interposer, mnt):
        make_file(f"{mnt}/f")
        os.remove(f"{mnt}/f")
        assert not os.path.exists(f"{mnt}/f")

    def test_rename_within_mount(self, interposer, mnt):
        make_file(f"{mnt}/a", b"payload")
        os.rename(f"{mnt}/a", f"{mnt}/b")
        assert not os.path.exists(f"{mnt}/a")
        fd = os.open(f"{mnt}/b", os.O_RDONLY)
        assert os.read(fd, 10) == b"payload"
        os.close(fd)

    def test_rename_across_boundary_is_exdev(self, interposer, mnt, tmp_path):
        make_file(f"{mnt}/a")
        with pytest.raises(OSError) as exc:
            os.rename(f"{mnt}/a", str(tmp_path / "outside"))
        assert exc.value.errno == errno.EXDEV

    def test_replace_within_mount(self, interposer, mnt):
        make_file(f"{mnt}/a", b"new")
        make_file(f"{mnt}/b", b"old")
        os.replace(f"{mnt}/a", f"{mnt}/b")
        fd = os.open(f"{mnt}/b", os.O_RDONLY)
        assert os.read(fd, 10) == b"new"
        os.close(fd)

    def test_mkdir_rmdir(self, interposer, mnt, backend):
        os.mkdir(f"{mnt}/d")
        assert os.path.isdir(os.path.join(backend, "d"))
        os.rmdir(f"{mnt}/d")
        assert not os.path.exists(os.path.join(backend, "d"))

    def test_rmdir_on_container_raises(self, interposer, mnt):
        make_file(f"{mnt}/f")
        with pytest.raises(NotADirectoryError):
            os.rmdir(f"{mnt}/f")

    def test_makedirs(self, interposer, mnt, backend):
        os.makedirs(f"{mnt}/a/b/c")
        assert os.path.isdir(os.path.join(backend, "a", "b", "c"))

    def test_truncate_path(self, interposer, mnt):
        make_file(f"{mnt}/f", b"0123456789")
        os.truncate(f"{mnt}/f", 3)
        assert os.stat(f"{mnt}/f").st_size == 3


class TestListingAndWalk:
    def test_listdir_containers_as_files(self, interposer, mnt):
        make_file(f"{mnt}/f1")
        make_file(f"{mnt}/f2")
        os.mkdir(f"{mnt}/sub")
        assert sorted(os.listdir(mnt)) == ["f1", "f2", "sub"]

    def test_listdir_on_container_raises(self, interposer, mnt):
        make_file(f"{mnt}/f")
        with pytest.raises(NotADirectoryError):
            os.listdir(f"{mnt}/f")

    def test_listdir_missing_raises(self, interposer, mnt):
        with pytest.raises(FileNotFoundError):
            os.listdir(f"{mnt}/nope")

    def test_scandir_entries(self, interposer, mnt):
        make_file(f"{mnt}/f", b"xyz")
        os.mkdir(f"{mnt}/d")
        with os.scandir(mnt) as it:
            entries = {e.name: e for e in it}
        assert entries["f"].is_file()
        assert not entries["f"].is_dir()
        assert entries["d"].is_dir()
        assert entries["f"].stat().st_size == 3
        assert entries["f"].path == f"{mnt}/f"

    def test_walk(self, interposer, mnt):
        make_file(f"{mnt}/top")
        os.mkdir(f"{mnt}/sub")
        make_file(f"{mnt}/sub/inner")
        walked = {r: (sorted(d), sorted(f)) for r, d, f in os.walk(mnt)}
        assert walked[mnt] == (["sub"], ["top"])
        assert walked[f"{mnt}/sub"] == ([], ["inner"])

    def test_glob(self, interposer, mnt):
        import glob

        make_file(f"{mnt}/a.dat")
        make_file(f"{mnt}/b.dat")
        make_file(f"{mnt}/c.txt")
        assert sorted(glob.glob(f"{mnt}/*.dat")) == [f"{mnt}/a.dat", f"{mnt}/b.dat"]


class TestBackendIsReal:
    def test_container_created_on_backend(self, interposer, mnt, backend):
        make_file(f"{mnt}/f")
        assert is_container(os.path.join(backend, "f"))

    def test_plain_files_on_backend_pass_through(self, interposer, mnt, backend):
        # A non-PLFS file placed directly in the backend tree is readable
        # through the mount (mixed trees are legal).
        with open(os.path.join(backend, "plain.txt"), "w") as fh:
            fh.write("plain contents")
        fd = os.open(f"{mnt}/plain.txt", os.O_RDONLY)
        assert os.read(fd, 100) == b"plain contents"
        os.close(fd)
        assert os.stat(f"{mnt}/plain.txt").st_size == 14
