"""Tests for install/uninstall mechanics and env-driven activation."""

from __future__ import annotations

import builtins
import os

import pytest

from repro.core import config, interpose
from repro.core.interpose import Interposer, interposed


@pytest.fixture
def pair(tmp_path):
    return str(tmp_path / "mnt"), str(tmp_path / "backend")


class TestInstallLifecycle:
    def test_install_patches_and_uninstall_restores(self, pair):
        orig_open, orig_os_open = builtins.open, os.open
        ip = Interposer([pair])
        ip.install()
        try:
            assert builtins.open is not orig_open
            assert os.open is not orig_os_open
        finally:
            ip.uninstall()
        assert builtins.open is orig_open
        assert os.open is orig_os_open

    def test_nested_install_same_interposer(self, pair):
        orig = os.open
        ip = Interposer([pair])
        ip.install()
        ip.install()
        ip.uninstall()
        assert os.open is not orig  # still installed (depth 1)
        ip.uninstall()
        assert os.open is orig

    def test_second_interposer_rejected(self, pair, tmp_path):
        ip1 = Interposer([pair])
        ip1.install()
        try:
            ip2 = Interposer([(str(tmp_path / "m2"), str(tmp_path / "b2"))])
            with pytest.raises(RuntimeError):
                ip2.install()
        finally:
            ip1.uninstall()

    def test_uninstall_without_install(self, pair):
        with pytest.raises(RuntimeError):
            Interposer([pair]).uninstall()

    def test_context_manager(self, pair):
        orig = os.open
        with Interposer([pair]):
            assert os.open is not orig
        assert os.open is orig

    def test_module_level_interposed(self, pair):
        mnt, backend = pair
        orig = os.open
        with interposed([pair]):
            with open(f"{mnt}/f", "w") as fh:
                fh.write("x")
            assert os.path.exists(f"{mnt}/f")
        assert os.open is orig
        assert not os.path.exists(f"{mnt}/f")

    def test_current(self, pair):
        assert interpose.current() is None
        with Interposer([pair]) as ip:
            assert interpose.current() is ip
        assert interpose.current() is None

    def test_drain_closes_leaked_fds(self, pair):
        mnt, backend = pair
        ip = Interposer([pair])
        ip.install()
        try:
            fd = os.open(f"{mnt}/leaky", os.O_CREAT | os.O_WRONLY)
            os.write(fd, b"leaked data")
            # no close: simulate a sloppy application
            ip.drain()
            assert ip.shim.table.lookup(fd) is None
        finally:
            ip.uninstall()
        # Data survived because drain closed (and therefore flushed) it.
        from repro.plfs import plfs_getattr

        assert plfs_getattr(os.path.join(backend, "leaky")).st_size == 11


class TestStatsCounters:
    def test_counters_move(self, pair, tmp_path):
        mnt, backend = pair
        with Interposer([pair]) as ip:
            before = dict(ip.shim.stats)
            with open(f"{mnt}/f", "w") as fh:
                fh.write("x")
            assert ip.shim.stats["plfs_calls"] > before["plfs_calls"]
            with open(tmp_path / "plain", "w") as fh:
                fh.write("y")
            assert ip.shim.stats["passthrough_calls"] > before["passthrough_calls"]


class TestEnvActivation:
    def test_not_requested(self):
        assert interpose.activate_from_environ({}) is None

    def test_requested_without_mounts_raises(self):
        with pytest.raises(RuntimeError):
            interpose.activate_from_environ({config.ENV_PRELOAD: "1"})

    def test_requested_with_mounts(self, pair):
        mnt, backend = pair
        env = {
            config.ENV_PRELOAD: "1",
            config.ENV_MOUNTS: f"{mnt}:{backend}",
        }
        ip = interpose.activate_from_environ(env)
        assert ip is not None
        try:
            with open(f"{mnt}/envfile", "w") as fh:
                fh.write("via env")
            assert os.stat(f"{mnt}/envfile").st_size == 7
        finally:
            ip.uninstall()

    def test_preload_module_in_subprocess(self, pair):
        """The full LD_PRELOAD analogue: an unmodified python child program
        writes through PLFS purely because of the environment."""
        import subprocess
        import sys

        mnt, backend = pair
        env = dict(os.environ)
        env[config.ENV_PRELOAD] = "1"
        env[config.ENV_MOUNTS] = f"{mnt}:{backend}"
        program = (
            "import repro.core.preload\n"  # the preload hook
            f"fh = open({mnt + '/child.out'!r}, 'w')\n"
            "fh.write('written by unmodified app')\n"
            "fh.close()\n"
        )
        subprocess.run([sys.executable, "-c", program], env=env, check=True)
        from repro.plfs import is_container

        assert is_container(os.path.join(backend, "child.out"))
