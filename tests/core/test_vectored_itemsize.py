"""Regression: scatter reads into non-byte buffers (readv/preadv).

``os.readv`` accepts any writable buffer — ``array('i')``, numpy slabs,
multi-byte memoryviews.  The shim's scatter loop assigned byte strings
into those views without casting, so a PLFS-backed ``readv`` into an
``array('i')`` raised ``ValueError: memoryview assignment: lvalue and
rvalue have different structures`` where the real syscall fills bytes
regardless of element type.  The return value was also wrong on short
reads: ``os.readv`` returns bytes *scattered*, which the old code only
got right when every buffer filled completely.
"""

from __future__ import annotations

import os
from array import array

import pytest


@pytest.fixture
def f(mnt):
    return f"{mnt}/itemsize"


def test_readv_fills_int_array(interposer, f):
    values = array("i", range(8))
    fd = os.open(f, os.O_CREAT | os.O_RDWR)
    os.write(fd, values.tobytes())
    os.lseek(fd, 0, os.SEEK_SET)
    out = array("i", [0] * 8)
    n = os.readv(fd, [out])
    os.close(fd)
    assert n == 8 * values.itemsize
    assert out == values


def test_preadv_scatter_across_mixed_itemsizes(interposer, f):
    fd = os.open(f, os.O_CREAT | os.O_RDWR)
    os.write(fd, bytes(range(16)))
    head = bytearray(4)
    tail = array("i", [0, 0])
    n = os.preadv(fd, [head, tail], 2)
    os.close(fd)
    assert n == 12
    assert bytes(head) == bytes([2, 3, 4, 5])
    assert tail.tobytes() == bytes(range(6, 14))


def test_readv_short_read_returns_bytes_scattered(interposer, f):
    fd = os.open(f, os.O_CREAT | os.O_RDWR)
    os.write(fd, b"abcdef")
    os.lseek(fd, 0, os.SEEK_SET)
    out = array("i", [0, 0, 0])  # 12-byte buffer over a 6-byte file
    n = os.readv(fd, [out])
    assert n == 6
    assert out.tobytes()[:6] == b"abcdef"
    # the cursor moved by exactly the scattered bytes
    assert os.lseek(fd, 0, os.SEEK_CUR) == 6
    os.close(fd)
