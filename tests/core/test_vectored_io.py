"""Vectored (scatter/gather) I/O through the shim.

``os.readv``/``os.writev``/``os.preadv``/``os.pwritev`` were the audited
interposition gap: before PR 2 they fell through to the real OS even on a
PLFS-backed descriptor, silently reading shadow-file bytes.  These tests
pin the retargeted behaviour: gather writes land in the container, scatter
reads come back from it, the emulated cursor moves exactly once per call,
and the positional variants leave it alone.
"""

from __future__ import annotations

import errno
import os

import pytest


@pytest.fixture
def f(mnt):
    return f"{mnt}/vectored"


class TestWritev:
    def test_gather_write_lands_in_container(self, interposer, f, backend):
        fd = os.open(f, os.O_CREAT | os.O_WRONLY)
        n = os.writev(fd, [b"abc", b"defg", b"hi"])
        os.close(fd)
        assert n == 9
        from repro.plfs import is_container

        assert is_container(os.path.join(backend, "vectored"))
        with open(f, "rb") as fh:
            assert fh.read() == b"abcdefghi"

    def test_cursor_advances_once(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_RDWR)
        os.writev(fd, [b"0123", b"45"])
        assert os.lseek(fd, 0, os.SEEK_CUR) == 6
        os.writev(fd, [b"67"])
        os.lseek(fd, 0, os.SEEK_SET)
        assert os.read(fd, 8) == b"01234567"
        os.close(fd)

    def test_append_mode_writes_at_eof(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_WRONLY)
        os.write(fd, b"base")
        os.close(fd)
        fd = os.open(f, os.O_WRONLY | os.O_APPEND)
        os.writev(fd, [b"+", b"tail"])
        os.close(fd)
        with open(f, "rb") as fh:
            assert fh.read() == b"base+tail"

    def test_readonly_fd_raises_ebadf(self, interposer, f):
        os.close(os.open(f, os.O_CREAT | os.O_WRONLY))
        fd = os.open(f, os.O_RDONLY)
        with pytest.raises(OSError) as exc:
            os.writev(fd, [b"x"])
        assert exc.value.errno == errno.EBADF
        os.close(fd)

    def test_passthrough_outside_mount(self, interposer, tmp_path):
        out = str(tmp_path / "plain")
        fd = os.open(out, os.O_CREAT | os.O_WRONLY)
        assert os.writev(fd, [b"pl", b"ain"]) == 5
        os.close(fd)
        assert open(out, "rb").read() == b"plain"


class TestReadv:
    def test_scatter_read_fills_buffers(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_RDWR)
        os.write(fd, b"0123456789")
        os.lseek(fd, 0, os.SEEK_SET)
        b1, b2 = bytearray(4), bytearray(4)
        assert os.readv(fd, [b1, b2]) == 8
        assert bytes(b1) == b"0123" and bytes(b2) == b"4567"
        # cursor moved by the total, so a plain read continues at 8
        assert os.read(fd, 2) == b"89"
        os.close(fd)

    def test_short_read_at_eof(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_RDWR)
        os.write(fd, b"abcde")
        os.lseek(fd, 0, os.SEEK_SET)
        b1, b2 = bytearray(3), bytearray(4)
        assert os.readv(fd, [b1, b2]) == 5
        assert bytes(b1) == b"abc" and bytes(b2[:2]) == b"de"
        os.close(fd)

    def test_writeonly_fd_raises_ebadf(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_WRONLY)
        with pytest.raises(OSError) as exc:
            os.readv(fd, [bytearray(1)])
        assert exc.value.errno == errno.EBADF
        os.close(fd)


class TestPositionalVectored:
    def test_pwritev_honours_offset_and_keeps_cursor(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_RDWR)
        os.write(fd, b"XXXXXXXX")
        cursor = os.lseek(fd, 0, os.SEEK_CUR)
        assert os.pwritev(fd, [b"ab", b"cd"], 2) == 4
        assert os.lseek(fd, 0, os.SEEK_CUR) == cursor
        os.lseek(fd, 0, os.SEEK_SET)
        assert os.read(fd, 8) == b"XXabcdXX"
        os.close(fd)

    def test_preadv_does_not_move_cursor(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_RDWR)
        os.write(fd, b"0123456789")
        os.lseek(fd, 1, os.SEEK_SET)
        b1, b2 = bytearray(2), bytearray(3)
        assert os.preadv(fd, [b1, b2], 4) == 5
        assert bytes(b1) == b"45" and bytes(b2) == b"678"
        assert os.lseek(fd, 0, os.SEEK_CUR) == 1
        os.close(fd)

    def test_positional_passthrough(self, interposer, tmp_path):
        out = str(tmp_path / "plain")
        fd = os.open(out, os.O_CREAT | os.O_RDWR)
        os.pwritev(fd, [b"hello"], 0)
        buf = bytearray(5)
        assert os.preadv(fd, [buf], 0) == 5
        assert bytes(buf) == b"hello"
        os.close(fd)


@pytest.mark.skipif(not hasattr(os, "splice"), reason="os.splice unavailable")
class TestSplice:
    def test_splice_refuses_plfs_fd(self, interposer, f):
        fd = os.open(f, os.O_CREAT | os.O_WRONLY)
        r, w = os.pipe()
        try:
            with pytest.raises(OSError) as exc:
                os.splice(r, fd, 16)
            assert exc.value.errno == errno.EINVAL
        finally:
            os.close(r)
            os.close(w)
            os.close(fd)
