"""Thread-safety and path-resolution edge cases for the shim."""

from __future__ import annotations

import os
import threading

import pytest


class TestThreads:
    def test_concurrent_writers_to_distinct_files(self, interposer, mnt):
        errors = []

        def worker(i):
            try:
                path = f"{mnt}/thread-{i}.dat"
                payload = bytes([i]) * 1000
                with open(path, "wb") as fh:
                    fh.write(payload)
                with open(path, "rb") as fh:
                    assert fh.read() == payload
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append((i, exc))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(os.listdir(mnt)) == 8

    def test_concurrent_readers_shared_file(self, interposer, mnt):
        with open(f"{mnt}/shared.dat", "wb") as fh:
            fh.write(bytes(range(256)) * 40)
        results = []

        def reader():
            fd = os.open(f"{mnt}/shared.dat", os.O_RDONLY)
            try:
                results.append(os.pread(fd, 256, 256))
            finally:
                os.close(fd)

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == [bytes(range(256))] * 8


class TestPathResolution:
    def test_relative_path_through_cwd(self, interposer, mnt, monkeypatch, tmp_path):
        # cd into the mount's parent and address the mount relatively.
        parent = os.path.dirname(mnt)
        os.makedirs(parent, exist_ok=True)
        monkeypatch.chdir(parent)
        rel = os.path.join(os.path.basename(mnt), "relative.dat")
        with open(rel, "wb") as fh:
            fh.write(b"via relative path")
        assert os.stat(rel).st_size == 17
        assert os.path.exists(f"{mnt}/relative.dat")

    def test_dot_segments(self, interposer, mnt):
        with open(f"{mnt}/x.dat", "wb") as fh:
            fh.write(b"abc")
        assert os.stat(f"{mnt}/sub/../x.dat").st_size == 3

    def test_trailing_slash_directory_ops(self, interposer, mnt):
        os.mkdir(f"{mnt}/d/")
        assert os.path.isdir(f"{mnt}/d")

    def test_unicode_names(self, interposer, mnt):
        name = f"{mnt}/datei-äöü-файл.txt"
        with open(name, "w", encoding="utf-8") as fh:
            fh.write("unicode")
        assert os.stat(name).st_size == 7
        assert "datei-äöü-файл.txt" in os.listdir(mnt)

    def test_pathlib_works(self, interposer, mnt):
        from pathlib import Path

        p = Path(mnt) / "via-pathlib.txt"
        p.write_text("pathlib uses io.open underneath")
        assert p.exists()
        assert p.read_text() == "pathlib uses io.open underneath"
        assert p.stat().st_size == 31

    def test_fspath_objects(self, interposer, mnt):
        class PathLike:
            def __init__(self, p):
                self._p = p

            def __fspath__(self):
                return self._p

        obj = PathLike(f"{mnt}/fspath.dat")
        with open(obj, "wb") as fh:
            fh.write(b"zz")
        assert os.stat(obj).st_size == 2

    def test_deeply_nested(self, interposer, mnt):
        os.makedirs(f"{mnt}/a/b/c/d")
        with open(f"{mnt}/a/b/c/d/leaf", "wb") as fh:
            fh.write(b"deep")
        found = []
        for root, dirs, files in os.walk(mnt):
            found.extend(files)
        assert found == ["leaf"]
