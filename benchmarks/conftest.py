"""Shared helpers for the benchmark suite.

Every module regenerates one table or figure of the paper.  Rendered
output is printed (visible with ``pytest -s``) and archived under
``benchmarks/out/`` so EXPERIMENTS.md can reference concrete runs.

Scale note: simulated experiments run at the paper's full node/core
counts.  Data volumes for the *real-I/O* Table II benchmark and the per-
process volume of the Fig. 3 sweep are scaled down by default so the
suite completes in minutes; set ``LDPLFS_BENCH_FULL=1`` to use the
paper's sizes.
"""

from __future__ import annotations

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

FULL_SCALE = os.environ.get("LDPLFS_BENCH_FULL", "").strip() in {"1", "true", "yes"}


def save_report(name: str, text: str) -> str:
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, name)
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print()
    print(text)
    return path


@pytest.fixture
def report():
    return save_report
