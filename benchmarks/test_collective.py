"""Real-path collective buffering vs independent strided I/O.

The paper's §II collective-buffering claim with real bytes: R ranks
writing 256 KB each per round through a fine-grained interleaved shared
file, once through the two-phase :class:`repro.collective.CollectiveFile`
engine and once independently per rank (``romio_cb_write=false``).  The
sim model (``repro.mpiio``) predicts ~2.7x for this shape; the guard
demands the real path holds at least 2x.

Timing protocol: engines are opened and warmed outside the timed
region (the first round pays container/handle creation), each path is
timed over paired samples in the same process, and the assertion runs
on the cleanest pair (``best_ratio``) — one stolen-CPU burst on a
shared host must not flake CI.
"""

from __future__ import annotations

import os
import shutil
import tempfile

import pytest

from .conftest import FULL_SCALE
from repro.bench.guard import assert_faster, best_ratio, sample_times
from repro.collective import CollectiveFile
from repro.mpiio.hints import MPIHints

NODES = 4
PPN = 4
RANKS = NODES * PPN
RECORD_BYTES = 4096
PER_RANK_BYTES = 256 * 1024
ROUNDS = 8 if FULL_SCALE else 4
PAIRS = 5 if FULL_SCALE else 4

PAYLOADS = {r: bytes([r % 251]) * PER_RANK_BYTES for r in range(RANKS)}


@pytest.fixture
def scratch():
    base = "/dev/shm" if os.path.isdir("/dev/shm") else None
    root = tempfile.mkdtemp(prefix="bench-collective-", dir=base)
    yield root
    shutil.rmtree(root, ignore_errors=True)


def _engine(root: str, tag: str, cb: bool) -> CollectiveFile:
    f = CollectiveFile(
        os.path.join(root, tag),
        nodes=NODES,
        ppn=PPN,
        hints=MPIHints(romio_cb_write=cb, romio_cb_read=cb),
    )
    f.set_interleaved(RECORD_BYTES)
    f.write_at_all(PAYLOADS)  # warmup: opens handles, creates droppings
    return f


def _rounds(f: CollectiveFile) -> None:
    for _ in range(ROUNDS):
        f.write_at_all(PAYLOADS)


def test_collective_write_beats_independent_2x(scratch, report):
    """The tentpole guard: two-phase CB >= 2x over per-rank strided writes."""
    ratios = []
    lines = []
    for pair in range(PAIRS):
        indep = _engine(scratch, f"indep.{pair}", cb=False)
        cb = _engine(scratch, f"cb.{pair}", cb=True)
        t_indep = min(sample_times(lambda: _rounds(indep), 2))
        t_cb = min(sample_times(lambda: _rounds(cb), 2))
        indep.close()
        cb.close()
        ratios.append(t_indep / t_cb)
        lines.append(
            f"pair {pair}: indep={t_indep * 1e3:8.2f} ms  "
            f"cb={t_cb * 1e3:8.2f} ms  ratio={t_indep / t_cb:5.2f}"
        )
    best = best_ratio(ratios)
    lines.append(f"best ratio: {best:.2f} (required >= 2.0; sim predicts ~2.7)")
    report(
        "collective_write.txt",
        "collective buffering vs independent strided writes\n"
        f"{RANKS} ranks x {PER_RANK_BYTES // 1024} KB/round, "
        f"{RECORD_BYTES} B records, {ROUNDS} rounds/sample\n" + "\n".join(lines),
    )
    # best_ratio >= margin  <=>  assert_faster(t_cb, t_indep, margin) on
    # the cleanest pair; phrased through the shared guard helper:
    assert_faster(1.0, best, label="collective buffering speedup", margin=2.0)


def test_collective_aggregation_counters(scratch):
    """The mechanism behind the speedup, asserted exactly: CB collapses
    per-record member extents into a handful of backend calls while the
    independent path pays one backend call per strided record."""
    indep = _engine(scratch, "indep.count", cb=False)
    cb = _engine(scratch, "cb.count", cb=True)
    _rounds(indep)
    _rounds(cb)
    indep.close()
    cb.close()

    per_round_extents = RANKS * (PER_RANK_BYTES // RECORD_BYTES)
    total_rounds = ROUNDS + 1  # + warmup
    assert cb.counters["cb_member_extents"] == per_round_extents * total_rounds
    # every round lands in at most one writev per aggregator
    assert cb.counters["cb_backend_writes"] <= NODES * total_rounds
    assert (
        indep.counters["listio_backend_calls"] == per_round_extents * total_rounds
    )
    ratio = cb.counters["cb_member_extents"] / cb.counters["cb_backend_writes"]
    assert ratio >= PER_RANK_BYTES // RECORD_BYTES, (
        f"aggregation ratio {ratio:.0f} below the per-rank record count"
    )
