"""Experiment T1 — Table I: the benchmarking platforms.

Regenerates the paper's platform-summary table from the machine models
that drive every simulated experiment, so the inventory used here is
auditable against the paper's.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.cluster import MINERVA, SIERRA, table1_rows


def build_table() -> str:
    rows = [[field, minerva, sierra] for field, minerva, sierra in table1_rows()]
    return render_table(
        ["", "Minerva", "Sierra"],
        rows,
        title="Table I: Benchmarking platforms used in this study",
    )


def test_table1_platforms(benchmark, report):
    text = benchmark.pedantic(build_table, rounds=1, iterations=1)
    report("table1_platforms.txt", text)

    # The rendered table must carry the paper's headline facts.
    for fact in (
        "Intel Xeon 5650",
        "Intel Xeon 5660",
        "258",
        "1,849",
        "GPFS",
        "Lustre",
        "~4 GB/s",
        "~30 GB/s",
        "3600",
        "7,200 RPM",
        "15,000 RPM",
    ):
        assert fact in text, f"Table I is missing {fact!r}"
    assert MINERVA.io_servers == 2 and SIERRA.io_servers == 24
