"""Write-path fast lane: group-commit WAL, vectored and zero-copy appends.

Not a paper figure — evidence for the write-path optimisation layer.  The
workload is the shape the paper's write benchmarks (Fig. 3 N-1 strided
writes, BT class write phases) stress hardest: long streams of small
writes, where per-append overheads dominate.

Smoke scale by default (CI runs this); ``LDPLFS_BENCH_FULL=1`` widens the
streams.
"""

from __future__ import annotations

import pytest

from .conftest import FULL_SCALE
from repro.bench.guard import assert_faster, median_time
from repro.plfs import backing
from repro.plfs.container import Container
from repro.plfs.reader import ReadFile
from repro.plfs.writer import WriteFile


class _NullStore(backing.BackingStore):
    """Acknowledges every persistence operation without touching disk."""

    def write_data(self, fd, buf, path):
        return len(buf)

    def write_datav(self, fd, buffers, path):
        return sum(len(b) for b in buffers)

    def append_index(self, path, payload):
        return len(payload)

    def write_wal(self, fd, payload, path):
        return len(payload)

    def create_meta(self, path):
        pass

    def fsync(self, fd):
        pass

SMALL_WRITES = 8192 if FULL_SCALE else 2048
WRITE_SIZE = 64
WAL_BATCH = 64
IOVEC = 16
CHUNK = 1 << 20 if FULL_SCALE else 1 << 18
CHUNKS = 32 if FULL_SCALE else 16
REPEATS = 5


@pytest.fixture
def fresh_container(tmp_path):
    """A factory for one-shot containers (append benchmarks must not
    accumulate droppings across timing rounds)."""
    counter = [0]

    def make():
        counter[0] += 1
        c = Container(str(tmp_path / f"c{counter[0]}"))
        c.create()
        return c

    return make


def small_write_stream(container, *, wal, wal_batch):
    payload = b"s" * WRITE_SIZE
    with WriteFile(container, wal=wal, wal_batch=wal_batch) as w:
        for i in range(SMALL_WRITES):
            w.write(payload, i * WRITE_SIZE, pid=1)
        return w.stats


def test_write_path_fast_lane(fresh_container, report):
    size_mb = SMALL_WRITES * WRITE_SIZE / 1e6

    # Baseline: no WAL at all (the durability-free upper bound).
    t_nowal = median_time(
        lambda: small_write_stream(fresh_container(), wal=False, wal_batch=1)
    )

    # Per-append WAL: one write_wal syscall before every data append.
    t_per_append = median_time(
        lambda: small_write_stream(fresh_container(), wal=True, wal_batch=1)
    )

    # Group commit: one write_wal per WAL_BATCH-append window.
    t_batched = median_time(
        lambda: small_write_stream(fresh_container(), wal=True, wal_batch=WAL_BATCH)
    )
    stats = small_write_stream(
        fresh_container(), wal=True, wal_batch=WAL_BATCH
    )
    assert stats["wal_records"] == SMALL_WRITES
    assert stats["wal_batches"] == SMALL_WRITES // WAL_BATCH

    # Vectored appends: the same bytes as IOVEC-buffer gather writes.
    payload = b"v" * WRITE_SIZE

    def vectored():
        c = fresh_container()
        with WriteFile(c) as w:
            for i in range(0, SMALL_WRITES, IOVEC):
                w.append_many([payload] * IOVEC, i * WRITE_SIZE, pid=1)

    t_scalar = median_time(
        lambda: small_write_stream(fresh_container(), wal=False, wal_batch=1)
    )
    t_vectored = median_time(vectored)

    # Zero-copy: memoryview windows of one big buffer vs bytes copies.
    # Timed against a null backing store: page-cache writeback noise is
    # orders of magnitude above the memcpy a copy costs, so the disk
    # would only measure itself — the null store isolates exactly the
    # work zero-copy removes.
    big = b"z" * (CHUNK * CHUNKS)

    def run_chunks(make_buf):
        c = fresh_container()
        with WriteFile(c) as w:
            view = memoryview(big)
            for i in range(CHUNKS):
                w.write(make_buf(view[i * CHUNK : (i + 1) * CHUNK]), i * CHUNK, pid=1)
        return c

    previous = backing.install(_NullStore())
    try:
        t_copy = median_time(lambda: run_chunks(bytes))
        t_view = median_time(lambda: run_chunks(lambda v: v))
    finally:
        backing.install(previous)
    c = run_chunks(lambda v: v)
    with ReadFile(c) as r:
        assert r.read(CHUNK, 0) == b"z" * CHUNK  # views landed intact

    lines = [
        "write-path fast lane "
        f"({SMALL_WRITES} x {WRITE_SIZE} B small writes = {size_mb:.1f} MB, "
        f"median of {REPEATS})",
        f"{'variant':28s} {'stream (ms)':>12s} {'vs per-append':>14s}",
        f"{'no WAL':28s} {t_nowal * 1e3:12.2f} {t_per_append / t_nowal:13.2f}x",
        f"{'per-append WAL':28s} {t_per_append * 1e3:12.2f} {1.0:13.2f}x",
        f"{'group commit (batch=' + str(WAL_BATCH) + ')':28s} "
        f"{t_batched * 1e3:12.2f} {t_per_append / t_batched:13.2f}x",
        "",
        f"scalar appends              : {t_scalar * 1e3:.2f} ms",
        f"vectored appends (iovec={IOVEC:2d}) : {t_vectored * 1e3:.2f} ms "
        f"({t_scalar / t_vectored:.2f}x)",
        f"{CHUNKS} x {CHUNK >> 10} KiB copied (null store)    : "
        f"{t_copy * 1e3:.2f} ms",
        f"{CHUNKS} x {CHUNK >> 10} KiB zero-copy (null store) : "
        f"{t_view * 1e3:.2f} ms ({t_copy / t_view:.2f}x)",
    ]
    report("write_path.txt", "\n".join(lines))

    # Coarse regression guards (the CI write-path job runs these): group
    # commit must beat the per-append WAL it batches — that is its whole
    # reason to exist — and a gather write must not lose to the scalar
    # loop it replaces.
    assert_faster(t_batched, t_per_append, "group-commit WAL vs per-append WAL")
    assert_faster(t_vectored, t_scalar, "vectored appends vs scalar appends")


def test_adaptive_flush_holds_back_merged_streams(fresh_container, monkeypatch):
    """With a tiny base threshold, a perfectly sequential stream (whose
    records all merge) must flush its index far fewer times than a
    random-offset stream of the same length."""
    from repro.plfs import writer as writer_module

    monkeypatch.setattr(writer_module, "INDEX_FLUSH_THRESHOLD", 8)

    seq = small_write_stream(fresh_container(), wal=False, wal_batch=1)
    c = fresh_container()
    with WriteFile(c) as w:
        for i in range(SMALL_WRITES):
            w.write(b"r" * WRITE_SIZE, ((i * 199) % SMALL_WRITES) * WRITE_SIZE, pid=1)
        rnd = w.stats

    assert seq["records_merged"] > rnd["records_merged"]
    assert seq["index_flushes"] < rnd["index_flushes"]
    assert seq["adaptive_threshold"] >= 8
