"""Experiment A2 — ablation: where the method overheads come from.

Two design-choice studies DESIGN.md calls out:

1. *FUSE request chunking* — the paper attributes FUSE's poor showing to
   data passing through the kernel; mechanically that is the kernel
   splitting writes into ``max_write`` chunks that each pay per-request
   costs.  Sweeping ``fuse_max_write`` shows FUSE converging on the
   ROMIO/LDPLFS routes as chunks grow — evidence the chunking, not PLFS
   itself, is the penalty.

2. *Interposition cost* — LDPLFS's per-call cost (fd-table lookup +
   lseek bookkeeping) vs the ROMIO driver's.  Sweeping the per-call
   overhead brackets how expensive interposition would have to be before
   LDPLFS stops matching ROMIO (the paper's "almost equivalent" claim).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis import Panel, render_panel
from repro.cluster import MINERVA
from repro.mpiio import FUSE, LDPLFS, ROMIO
from repro.sim.stats import MB
from repro.workloads import run_mpiio_test

KB = 1024.0
NODES = 16
PER_PROC = 64 * MB


def run_fuse_chunk_sweep() -> Panel:
    panel = Panel(
        title=f"Ablation: FUSE max_write sweep, Minerva, {NODES} nodes",
        xlabel="max_write (KB)",
        ylabel="Write bandwidth (MB/s)",
    )
    baseline = run_mpiio_test(
        MINERVA, LDPLFS, NODES, 1, per_proc=PER_PROC, read_back=False
    ).write_bandwidth
    for chunk_kb in (64, 128, 512, 2048, 8192):
        machine = MINERVA.with_perf(fuse_max_write=chunk_kb * KB)
        bw = run_mpiio_test(
            machine, FUSE, NODES, 1, per_proc=PER_PROC, read_back=False
        ).write_bandwidth
        panel.add("FUSE", chunk_kb, bw)
        panel.add("LDPLFS (no chunking)", chunk_kb, baseline)
    return panel


def run_interposition_cost_sweep() -> Panel:
    panel = Panel(
        title=f"Ablation: per-call interposition cost, Minerva, {NODES} nodes",
        xlabel="per-call overhead (us)",
        ylabel="Write bandwidth (MB/s)",
    )
    romio_bw = run_mpiio_test(
        MINERVA, ROMIO, NODES, 1, per_proc=PER_PROC, read_back=False
    ).write_bandwidth
    for overhead_us in (1, 30, 100, 10000, 100000):
        method = replace(LDPLFS, per_call_overhead=overhead_us * 1e-6)
        bw = run_mpiio_test(
            MINERVA, method, NODES, 1, per_proc=PER_PROC, read_back=False
        ).write_bandwidth
        panel.add("LDPLFS", overhead_us, bw)
        panel.add("ROMIO (fixed)", overhead_us, romio_bw)
    return panel


def test_ablation_fuse_chunking(benchmark, report):
    panel = benchmark.pedantic(run_fuse_chunk_sweep, rounds=1, iterations=1)
    report("ablation_fuse_chunking.txt", render_panel(panel))
    fuse = panel.series["FUSE"]
    baseline = panel.series["LDPLFS (no chunking)"].at(64)
    # Improvement with chunk size through the realistic range...
    assert fuse.at(64) < fuse.at(128) < fuse.at(512) < fuse.at(2048)
    # ...small chunks are the penalty...
    assert fuse.at(64) < 0.75 * baseline
    # ...and with 8 MB chunks (no splitting of these writes) FUSE matches
    # the direct PLFS route to within scheduling noise.
    assert fuse.at(8192) == pytest.approx(baseline, rel=0.1)


def test_ablation_interposition_cost(benchmark, report):
    panel = benchmark.pedantic(run_interposition_cost_sweep, rounds=1, iterations=1)
    report("ablation_interposition_cost.txt", render_panel(panel))
    ldplfs = panel.series["LDPLFS"]
    romio = panel.series["ROMIO (fixed)"].at(1)
    # At realistic interposition costs LDPLFS matches the ROMIO driver.
    assert ldplfs.at(1) >= 0.98 * romio
    assert ldplfs.at(30) >= 0.97 * romio
    assert ldplfs.at(100) >= 0.95 * romio
    # The equivalence claim only breaks at absurd per-call costs (100 ms
    # per MPI write call — four orders above the real shim).
    assert ldplfs.at(100000) < 0.9 * romio
