"""Experiment T2 — Table II: standard UNIX tools on a PLFS container.

This is the one experiment that runs on the *real* PLFS implementation
(``repro.plfs``) through the *real* interposition layer (``repro.core``)
against the local disk — exactly the paper's setup on Minerva's login
node, where each serial tool was timed against a 4 GB PLFS container and
an equivalent flat file.

The default container is 256 MB (scaled from the paper's 4 GB;
``LDPLFS_BENCH_FULL=1`` restores 4 GB).  The paper's finding is that the
times are "largely the same" for containers and flat files, with cp
marginally faster from/to PLFS; we assert the ratio band rather than
absolute seconds (the backing store here is whatever disk /tmp is on,
not Minerva's GPFS).
"""

from __future__ import annotations

import io
import os
import time

from repro.analysis import render_table
from repro.core import interposed
from repro.unixtools import cat, cp, grep, md5sum

from .conftest import FULL_SCALE

SIZE = (4 * 1024 if FULL_SCALE else 256) * 1024 * 1024
LINE = b"the quick brown fox jumps over the lazy dog 0123456789\n"


def _build_payload_file(path: str) -> None:
    block = LINE * (1024 * 1024 // len(LINE))
    with open(path, "wb") as fh:
        written = 0
        while written < SIZE:
            fh.write(block)
            written += len(block)


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def run_table2(tmp_base: str) -> tuple[str, dict[str, tuple[float, float]]]:
    flat_dir = os.path.join(tmp_base, "flat")
    backend = os.path.join(tmp_base, "backend")
    os.makedirs(flat_dir)
    mnt = os.path.join(tmp_base, "mnt")

    flat = os.path.join(flat_dir, "file.dat")
    _build_payload_file(flat)

    rows: dict[str, tuple[float, float]] = {}
    with interposed([(mnt, backend)]):
        plfs_file = f"{mnt}/file.dat"
        # cp (write): flat -> PLFS container; the flat->flat copy is the
        # "Standard UNIX File" column.
        t_cp_write_plfs = _timed(lambda: cp(flat, plfs_file))
        t_cp_flat = _timed(lambda: cp(flat, os.path.join(flat_dir, "copy.dat")))
        # cp (read): PLFS -> flat.
        t_cp_read_plfs = _timed(lambda: cp(plfs_file, os.path.join(flat_dir, "out.dat")))

        sink = io.BytesIO()
        t_cat_plfs = _timed(lambda: cat([plfs_file]))
        t_cat_flat = _timed(lambda: cat([flat]))

        t_grep_plfs = _timed(lambda: grep(b"lazy dog 0".decode(), [plfs_file]))
        t_grep_flat = _timed(lambda: grep(b"lazy dog 0".decode(), [flat]))

        t_md5_plfs = _timed(lambda: md5sum(plfs_file))
        t_md5_flat = _timed(lambda: md5sum(flat))

        # Correctness alongside timing: identical digests.
        [(d_plfs, _)] = md5sum(plfs_file)
        del sink
    [(d_flat, _)] = md5sum(flat)
    assert d_plfs == d_flat, "container contents diverged from the flat file"

    rows["cp (read)"] = (t_cp_read_plfs, t_cp_flat)
    rows["cp (write)"] = (t_cp_write_plfs, t_cp_flat)
    rows["cat"] = (t_cat_plfs, t_cat_flat)
    rows["grep"] = (t_grep_plfs, t_grep_flat)
    rows["md5sum"] = (t_md5_plfs, t_md5_flat)

    table = render_table(
        ["", "PLFS Container (s)", "Standard UNIX File (s)", "ratio"],
        [
            [name, f"{p:.3f}", f"{f:.3f}", f"{p / f:.2f}"]
            for name, (p, f) in rows.items()
        ],
        title=(
            f"Table II: UNIX commands on a {SIZE // (1024 * 1024)} MB PLFS "
            "container through LDPLFS, vs a flat file"
        ),
    )
    return table, rows


def test_table2_unixtools(benchmark, report, tmp_path):
    table, rows = benchmark.pedantic(
        run_table2, args=(str(tmp_path),), rounds=1, iterations=1
    )
    report("table2_unixtools.txt", table)

    # Paper claim: "the time for each of the commands to complete is
    # largely the same" — no substantial interposition penalty.  The
    # Python interposition adds interpreter-level dispatch the C shim
    # does not pay, so the band is generous, but the order of magnitude
    # must hold and nothing should be pathologically slower.
    for name, (p, f) in rows.items():
        ratio = p / f
        assert ratio < 3.5, f"{name}: PLFS {ratio:.2f}x slower than flat"
        assert ratio > 0.2, f"{name}: implausible timing ({ratio:.2f})"
