"""Read-path fast lane: cold merge vs compacted index vs warm cache.

Not a paper figure — evidence for the read-path optimisation layer: the
persistent compacted ``global.index``, the process-wide shared index
cache, and coalesced read plans.  The workload is the shape the paper's
read benchmarks (unixtools ``cp``/``cat``, BT read phases) stress
hardest: a container fanned out over many droppings, re-opened and
re-stat'ed repeatedly.

Smoke scale by default (CI runs this); ``LDPLFS_BENCH_FULL=1`` widens the
container.
"""

from __future__ import annotations

import pytest

from .conftest import FULL_SCALE
from repro.bench.guard import assert_faster, median_time
from repro.plfs.cache import compact, load_index, shared_cache
from repro.plfs.container import Container
from repro.plfs.reader import ReadFile
from repro.plfs.writer import WriteFile

DROPPINGS = 128 if FULL_SCALE else 64
WRITES_PER_DROPPING = 64 if FULL_SCALE else 16
STRIPE = 512
REPEATS = 5
STAT_CALLS = 200


@pytest.fixture
def wide_container(tmp_path):
    """A container striped over DROPPINGS droppings (one pid each)."""
    c = Container(str(tmp_path / "wide"))
    c.create()
    writers = [WriteFile(c) for _ in range(DROPPINGS)]
    for r in range(WRITES_PER_DROPPING):
        for i in range(DROPPINGS):
            off = (r * DROPPINGS + i) * STRIPE
            writers[i].write(bytes([(r + i) % 256]) * STRIPE, off, pid=i + 1)
    for w in writers:
        w.close()
    shared_cache().clear()
    shared_cache().reset_stats()
    yield c
    shared_cache().clear()
    shared_cache().reset_stats()


def open_and_read(container, nbytes):
    with ReadFile(container) as r:
        assert len(r.read(nbytes, 0)) == nbytes


def test_read_path_fast_lane(wide_container, report, tmp_path):
    c = wide_container
    size = DROPPINGS * WRITES_PER_DROPPING * STRIPE
    pairs = len(c.droppings())
    assert pairs == DROPPINGS

    # Cold merge: no compacted index, cache cleared every round.
    c.drop_global_index()

    def cold():
        shared_cache().clear()
        open_and_read(c, size)

    t_cold = median_time(cold, repeats=REPEATS)
    assert load_index(c).source == "merged"

    # Compacted: global.index present, cache still cleared every round.
    segments = compact(c)

    def compacted():
        shared_cache().clear()
        open_and_read(c, size)

    t_compacted = median_time(compacted, repeats=REPEATS)
    assert load_index(c).source == "compacted"

    # Warm cache: the index survives across opens.
    shared_cache().clear()
    open_and_read(c, size)  # prime

    def warm():
        open_and_read(c, size)

    t_warm = median_time(warm, repeats=REPEATS)
    hits = shared_cache().stats["hits"]
    assert hits >= REPEATS

    # Repeated stat through the shared cache.
    t_stat = median_time(
        lambda: [c.getattr() for _ in range(STAT_CALLS)], repeats=3
    )

    # Coalescing: a writer that lands stripes slightly out of order
    # (chunks of four written 0,2,1,3) fragments the index into per-stripe
    # slices whose physical neighbours sit within the sieve gap.
    frag = Container(str(tmp_path / "frag"))
    frag.create()
    w = WriteFile(frag)
    stripes = DROPPINGS * 4
    for base in range(0, stripes, 4):
        for k in (0, 2, 1, 3):
            s = base + k
            w.write(bytes([s % 256]) * STRIPE, s * STRIPE, pid=1)
    w.close()
    frag_size = stripes * STRIPE
    with ReadFile(frag, coalesce=False) as r:
        r.read(frag_size, 0)
        preads_plain = r.stats["preads"]
    with ReadFile(frag) as r:
        r.read(frag_size, 0)
        preads_coalesced = r.stats["preads"]
        sieved = r.stats["sieved_gap_bytes"]

    lines = [
        "read-path fast lane "
        f"({DROPPINGS} droppings x {WRITES_PER_DROPPING} writes x {STRIPE} B"
        f" = {size / 1e6:.1f} MB, median of {REPEATS})",
        f"{'route':28s} {'open+read (ms)':>15s} {'speedup':>9s}",
        f"{'cold merge':28s} {t_cold * 1e3:15.2f} {1.0:9.2f}x",
        f"{'compacted global.index':28s} {t_compacted * 1e3:15.2f} "
        f"{t_cold / t_compacted:9.2f}x",
        f"{'warm shared cache':28s} {t_warm * 1e3:15.2f} "
        f"{t_cold / t_warm:9.2f}x",
        "",
        f"compacted segments          : {segments}",
        f"{STAT_CALLS} stat calls (warm)      : {t_stat * 1e3:.2f} ms",
        f"fragmented-scan preads      : {preads_plain} plain -> "
        f"{preads_coalesced} coalesced ({sieved} B sieved)",
    ]
    report("read_path.txt", "\n".join(lines))

    # Coarse regression guards (the CI read-path job runs these):
    # a cached open must beat re-merging every dropping cold, and the
    # compacted load must not be slower than the merge it replaces.
    assert_faster(t_warm, t_cold, "warm cached open vs cold merge")
    assert preads_coalesced < preads_plain


def test_repeated_stat_builds_index_once(wide_container):
    c = wide_container
    for _ in range(STAT_CALLS):
        c.getattr()
    stats = shared_cache().stats
    assert stats["misses"] == 1
    assert stats["hits"] == STAT_CALLS - 1
