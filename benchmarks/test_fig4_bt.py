"""Experiment F4 — Fig. 4: NAS BT I/O bandwidths on Sierra.

Panel (a): class C (6.4 GB over 20 collective writes, strong scaled,
4..1,024 cores).  Panel (b): class D (136 GB, 64..4,096 cores).  Methods:
MPI-IO, ROMIO, LDPLFS (the paper drops FUSE for the at-scale study).

Expected shape (paper §IV):
- (a) PLFS routes grow with core count — ~300 KB per-process writes are
  absorbed by the client write cache — while plain MPI-IO stays flat;
  several-fold PLFS advantage at 1,024 cores.
- (b) at 1,024 cores the ~7 MB writes exceed the cache threshold (no
  caching); at 4,096 cores the <2 MB writes bring the caching effects
  back, so bandwidth recovers.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    Panel,
    check_monotone_rise,
    check_ratio_at,
    render_panel,
    summarise,
)
from repro.cluster import SIERRA
from repro.mpiio import LDPLFS, MPIIO, ROMIO
from repro.workloads import bt_core_counts, run_bt

METHODS = [MPIIO, ROMIO, LDPLFS]


def run_panel(cls: str) -> Panel:
    panel = Panel(
        title=f"Fig. 4 BT Problem Class {cls}, Sierra",
        xlabel="Cores",
        ylabel="Bandwidth (MB/s)",
    )
    for cores in bt_core_counts(cls):
        for method in METHODS:
            result = run_bt(SIERRA, method, cores, cls)
            panel.add(method.name, cores, result.write_bandwidth)
    return panel


def test_fig4a_bt_class_c(benchmark, report):
    panel = benchmark.pedantic(run_panel, args=("C",), rounds=1, iterations=1)
    checks = [
        check_monotone_rise(
            panel, "LDPLFS", through=1024, tolerance=0.1,
            claim="PLFS bandwidth grows with cores (write caching)",
        ),
        check_ratio_at(
            panel, "LDPLFS", "MPI-IO", 1024, at_least=3.0,
            claim="PLFS several-fold above MPI-IO at 1,024 cores",
        ),
        check_ratio_at(
            panel, "MPI-IO", "MPI-IO", 4, at_least=1.0,
            claim="baseline present",
        ),
        check_ratio_at(
            panel, "LDPLFS", "ROMIO", 1024, at_least=0.9, at_most=1.1,
            claim="LDPLFS ≈ ROMIO (slight divergence only)",
        ),
    ]
    text = "\n\n".join([render_panel(panel), summarise(checks)])
    report("fig4a_bt_class_c.txt", text)
    failed = [c for c in checks if not c.holds]
    assert not failed, "\n".join(map(str, failed))

    # MPI-IO flattens once enough writers feed the shared-file lanes: from
    # 64 cores on, no point is more than 2x any other.
    mpiio = [panel.series["MPI-IO"].at(c) for c in (64, 256, 1024)]
    assert max(mpiio) < 2 * min(mpiio)


def test_fig4b_bt_class_d(benchmark, report):
    panel = benchmark.pedantic(run_panel, args=("D",), rounds=1, iterations=1)
    per_write_1024 = 136e9 / 20 / 1024
    per_write_4096 = 136e9 / 20 / 4096
    checks = [
        check_ratio_at(
            panel, "LDPLFS", "MPI-IO", 256, at_least=1.5,
            claim="PLFS advantage in the mid range",
        ),
        check_ratio_at(
            panel, "LDPLFS", "ROMIO", 4096, at_least=0.9, at_most=1.1,
            claim="LDPLFS ≈ ROMIO at scale",
        ),
    ]
    text = "\n\n".join([render_panel(panel), summarise(checks)])
    report("fig4b_bt_class_d.txt", text)
    failed = [c for c in checks if not c.holds]
    assert not failed, "\n".join(map(str, failed))

    # The cache-threshold mechanics the paper describes: 1,024-core
    # writes (~7 MB) bypass the cache, 4,096-core writes (<2 MB) use it,
    # and bandwidth at 4,096 does not regress despite 4x the writers
    # (in the paper the recovery is pronounced; here the aggregator's
    # dirty budget limits it — see EXPERIMENTS.md).
    assert per_write_1024 > SIERRA.perf.cache_write_through
    assert per_write_4096 < SIERRA.perf.cache_write_through
    assert panel.series["LDPLFS"].at(4096) >= 0.99 * panel.series["LDPLFS"].at(1024)
