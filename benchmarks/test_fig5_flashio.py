"""Experiment F5 — Fig. 5: FLASH-IO checkpoint bandwidths on Sierra.

Weak scaled at 12 processes per node over 1..256 nodes (12..3,072 cores);
each process writes ~205 MB through HDF5-style independent writes.
Methods: MPI-IO, ROMIO, LDPLFS.

Expected shape (paper §IV): plain MPI-IO creeps up to ~550 MB/s; the PLFS
routes rise sharply to a peak around 16 nodes (~1,650 MB/s in the paper)
and then *collapse* — to ~210 MB/s at 3,072 cores, below plain MPI-IO —
because every process's pair of dropping creates funnels through Lustre's
single dedicated MDS.  This is the paper's headline negative result:
"PLFS can harm an application's performance at scale".
"""

from __future__ import annotations

from repro.analysis import (
    Panel,
    check_collapse,
    check_peak_location,
    check_ratio_at,
    render_ascii_chart,
    render_panel,
    summarise,
)
from repro.cluster import SIERRA
from repro.mpiio import LDPLFS, MPIIO, ROMIO
from repro.workloads import FLASHIO_NODE_SWEEP, run_flashio

METHODS = [MPIIO, ROMIO, LDPLFS]


def run_panel() -> Panel:
    panel = Panel(
        title="Fig. 5 FLASH-IO, Sierra (weak scaled, 12 ppn)",
        xlabel="Cores",
        ylabel="Bandwidth (MB/s)",
    )
    mds_ops = Panel(
        title="MDS load", xlabel="Cores", ylabel="metadata ops"
    )
    for nodes in FLASHIO_NODE_SWEEP:
        for method in METHODS:
            result = run_flashio(SIERRA, method, nodes)
            panel.add(method.name, nodes * 12, result.write_bandwidth)
            mds_ops.add(method.name, nodes * 12, result.mds_ops)
    panel.series_for("_mds_ops_ldplfs").points = mds_ops.series["LDPLFS"].points
    return panel


def test_fig5_flashio(benchmark, report):
    panel = benchmark.pedantic(run_panel, rounds=1, iterations=1)
    mds_series = panel.series.pop("_mds_ops_ldplfs")

    checks = [
        check_peak_location(
            panel, "LDPLFS", between=(96, 384),
            claim="PLFS peaks around 16 nodes (192 cores)",
        ),
        check_collapse(
            panel, "LDPLFS", from_peak_factor=4.0,
            claim="PLFS collapses at scale (MDS bottleneck)",
        ),
        check_ratio_at(
            panel, "LDPLFS", "MPI-IO", 3072, at_most=1.0,
            claim="PLFS ends BELOW plain MPI-IO at 3,072 cores",
        ),
        check_ratio_at(
            panel, "LDPLFS", "MPI-IO", 192, at_least=2.0,
            claim="PLFS ~3x MPI-IO at its peak",
        ),
        check_ratio_at(
            panel, "LDPLFS", "ROMIO", 3072, at_least=0.9, at_most=1.1,
            claim="LDPLFS ≈ ROMIO throughout",
        ),
    ]
    text = "\n\n".join(
        [
            render_panel(panel),
            render_ascii_chart(panel, symbol_map={"MPI-IO": "m", "ROMIO": "r", "LDPLFS": "L"}),
            summarise(checks),
        ]
    )
    report("fig5_flashio.txt", text)
    failed = [c for c in checks if not c.holds]
    assert not failed, "\n".join(map(str, failed))

    # The mechanism: PLFS metadata traffic scales with ranks (droppings
    # per process), so the MDS op count at 3,072 cores dwarfs the 12-core
    # count.
    assert mds_series.at(3072) > 50 * mds_series.at(12)
    assert mds_series.at(3072) > 10000


def test_fig5_gpfs_contrast(benchmark, report):
    """The paper's closing observation for Fig. 5: "On a file system like
    GPFS, where metadata is distributed, these performance decreases may
    not materialise."  To isolate the metadata architecture we keep
    Sierra's data plane and replace only the metadata service: one
    thrash-prone dedicated MDS (Lustre) vs metadata distributed over the
    24 I/O servers (GPFS-style).  The distributed variant must keep PLFS
    above MPI-IO at every scale."""
    gpfs_style = SIERRA.with_perf(
        mds_count=SIERRA.io_servers, mds_contention=0.0, mds_linear=0.0005
    )

    def run():
        panel = Panel(
            title="FLASH-IO on Sierra's data plane: dedicated vs distributed metadata",
            xlabel="Cores",
            ylabel="Bandwidth (MB/s)",
        )
        for nodes in (4, 16, 64, 128, 256):
            for label, machine in (
                ("dedicated MDS", SIERRA),
                ("distributed MDS", gpfs_style),
            ):
                result = run_flashio(machine, LDPLFS, nodes)
                panel.add(label, nodes * 12, result.write_bandwidth)
            panel.add(
                "MPI-IO", nodes * 12, run_flashio(SIERRA, MPIIO, nodes).write_bandwidth
            )
        return panel

    panel = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig5_gpfs_contrast.txt", render_panel(panel))

    # Dedicated MDS: collapses below the baseline (Fig. 5).
    assert panel.ratio("dedicated MDS", "MPI-IO", 3072) < 1.0
    # Distributed metadata: "decreases may not materialise" — PLFS stays
    # above MPI-IO at every measured scale...
    for cores in (48, 192, 768, 3072):
        assert panel.ratio("distributed MDS", "MPI-IO", cores) > 1.0
    # ...and any tail-off (stream interleaving on the arrays) is mild
    # next to the dedicated-MDS cliff.
    def drop(label: str) -> float:
        series = panel.series[label]
        return series.peak[1] / series.ys()[-1]

    assert drop("dedicated MDS") > 4.0
    assert drop("distributed MDS") < 2.5
