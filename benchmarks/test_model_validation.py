"""Experiment M1 — validating the analytic model against the simulator.

The paper's §V.A goal: "model the performance of our implementation in
order to aid auto-optimisation of parameters, as well as assess the
benefits of PLFS on future I/O backplanes without requiring extensive
benchmarking".  Here the closed-form model (``repro.model``) is checked
against the discrete-event simulator over the F3 and F5 grids, and the
auto-tuner's recommendation is verified to flip from a PLFS route to
plain MPI-IO exactly in the collapse regime.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.cluster import MINERVA, SIERRA
from repro.model import WorkloadPattern, choose_method, predict_write
from repro.mpiio import LDPLFS, MPIIO
from repro.sim.stats import MB
from repro.workloads import run_flashio, run_mpiio_test

TOLERANCE = 0.5  # |model - sim| / sim


def flash_pattern(nodes: int) -> WorkloadPattern:
    ranks = nodes * 12
    return WorkloadPattern(
        nodes=nodes, writers=ranks, openers=ranks,
        total_bytes=205 * MB * ranks, write_size=205 * MB / 24,
        collective=False,
    )


def mpiio_pattern(nodes: int, per_proc: float) -> WorkloadPattern:
    return WorkloadPattern(
        nodes=nodes, writers=nodes, openers=nodes,
        total_bytes=per_proc * nodes, write_size=8 * MB,
        collective=True,
    )


def run_validation() -> tuple[str, list[tuple[str, float, float]]]:
    rows: list[tuple[str, float, float]] = []

    per_proc = 64 * MB
    for nodes in (4, 16, 64):
        for method in (MPIIO, LDPLFS):
            sim = run_mpiio_test(
                MINERVA, method, nodes, 1, per_proc=per_proc, read_back=False
            ).write_bandwidth
            model = predict_write(
                MINERVA, method, mpiio_pattern(nodes, per_proc)
            ).bandwidth_mbps
            rows.append((f"F3 {method.name} @{nodes}n", sim, model))

    for nodes in (8, 64, 256):
        for method in (MPIIO, LDPLFS):
            sim = run_flashio(SIERRA, method, nodes).write_bandwidth
            model = predict_write(
                SIERRA, method, flash_pattern(nodes)
            ).bandwidth_mbps
            rows.append((f"F5 {method.name} @{nodes * 12}c", sim, model))

    table = render_table(
        ["configuration", "simulator (MB/s)", "model (MB/s)", "error"],
        [
            [name, f"{sim:.0f}", f"{model:.0f}", f"{(model - sim) / sim:+.0%}"]
            for name, sim, model in rows
        ],
        title="M1: analytic model vs discrete-event simulator",
    )
    return table, rows


def test_model_tracks_simulator(benchmark, report):
    table, rows = benchmark.pedantic(run_validation, rounds=1, iterations=1)
    report("model_validation.txt", table)
    for name, sim, model in rows:
        err = abs(model - sim) / sim
        assert err <= TOLERANCE, f"{name}: model off by {err:.0%}"


def test_autotuner_flips_in_collapse_regime(benchmark, report):
    def run():
        lines = []
        picks = {}
        for nodes in (8, 32, 256):
            rec = choose_method(SIERRA, flash_pattern(nodes))
            picks[nodes] = rec
            lines.append(f"{nodes * 12:5d} cores -> {rec.method.name}: {rec.explanation}")
        return picks, "\n".join(lines)

    picks, text = benchmark.pedantic(run, rounds=1, iterations=1)
    report("model_autotune.txt", text)
    assert picks[8].method.uses_plfs and picks[8].plfs_helps
    assert picks[32].method.uses_plfs
    assert picks[256].method.name == "MPI-IO"
    assert not picks[256].plfs_helps
