"""plfsd daemon benchmarks: the create-storm meltdown and multi-tenant
append throughput.

Not a paper figure — evidence for the daemon subsystem.  The create storm
reproduces §V.C's dedicated-MDS meltdown *in the real path*: every create
from every client serializes on the daemon's one metadata lock, so the
per-create queue wait inflects upward as clients are added — the same
curve that melted FLASH-IO at 3,072 cores, measured here with real
containers and real droppings.

The append workload answers the daemon's cost question: multi-client
aggregate append throughput must stay within 2x of the single-process
direct path, or the service model is a regression rather than a
deployment convenience.  The plane that clears that bar is the paper's
own architecture: PLFS never streams bytes through its metadata service,
so write-only opens *delegate* — the daemon serializes the metadata
create (its MDS role) and each tenant writes droppings straight to the
backend.  The fully-remote plane (shm segment, wire fallback) is also
measured and recorded as evidence of what funnelling data through one
Python process costs.

Results land in ``benchmarks/out/BENCH_plfsd.json`` as a schema-valid
:mod:`repro.bench.record` BenchRecord (the CI regression guard reads the
same numbers this test asserts on).

Smoke scale by default; ``LDPLFS_BENCH_FULL=1`` widens the sweep.
"""

from __future__ import annotations

import os
import shutil
import tempfile

import pytest

from .conftest import FULL_SCALE, OUT_DIR
from repro.bench import guard as bench_guard
from repro.bench import record as bench_record
from repro.plfsd import stress

CLIENT_SWEEP = (1, 2, 4, 8) if not FULL_SCALE else (1, 2, 4, 8, 16)
CREATES_PER_CLIENT = 40 if FULL_SCALE else 12
APPEND_CLIENTS = 4
APPEND_CHUNK = 4 << 20
APPENDS_PER_CLIENT = 48 if FULL_SCALE else 24
#: daemon/direct runs are interleaved this many times and compared
#: pairwise: the shared-host CPU gets stolen in bursts that swing even
#: tmpfs throughput several-fold, and pairing bounds how much of that
#: noise lands between the two sides of one ratio.
APPEND_PAIRS = 3
REMOTE_APPEND_CHUNK = 1 << 20
REMOTE_APPENDS_PER_CLIENT = 8


@pytest.fixture
def arena():
    """Short-pathed scratch dir: unix socket paths cap at ~107 chars.

    Prefers tmpfs: there both paths are CPU-bound and repeatable, so the
    throughput ratio measures the daemon's real overhead instead of the
    shared disk's scheduling noise (which swings 5x run to run).
    """
    base = "/dev/shm" if os.path.isdir("/dev/shm") else "/tmp"
    d = tempfile.mkdtemp(prefix="plfsd-bench-", dir=base)
    try:
        yield d
    finally:
        shutil.rmtree(d, ignore_errors=True)


def _fresh_daemon_run(arena: str, tag: str, fn):
    """Run *fn(socket, backend)* against a daemon started just for it, so
    sweep points don't inherit each other's accounting or page cache."""
    sock = os.path.join(arena, f"{tag}.sock")
    backend = os.path.join(arena, f"backend-{tag}")
    os.makedirs(backend)
    proc = stress.start_daemon(sock)
    try:
        return fn(sock, backend)
    finally:
        stress.stop_daemon(proc, sock)


def _direct_append_baseline(arena: str, tag: str) -> dict:
    """Single-process direct-path writer: the throughput yardstick, run
    as a subprocess so it meets the same interpreter and scheduling
    conditions as the daemon tenants."""
    backend = os.path.join(arena, f"backend-direct-{tag}")
    os.makedirs(backend)
    return stress.run_direct_baseline(
        backend, APPENDS_PER_CLIENT * APPEND_CLIENTS, APPEND_CHUNK
    )


def test_plfsd_create_storm_and_throughput(arena):
    # ---- the meltdown curve -------------------------------------------- #
    storm = []
    for clients in CLIENT_SWEEP:
        point = _fresh_daemon_run(
            arena,
            f"storm{clients}",
            lambda sock, backend: stress.run_create_storm(
                sock, backend, clients, CREATES_PER_CLIENT
            ),
        )
        point.pop("server", None)
        point.pop("workers", None)
        storm.append(point)

    qw = {p["clients"]: p["queue_wait_per_create_seconds"] for p in storm}
    lo, hi = min(CLIENT_SWEEP), max(CLIENT_SWEEP)
    # The meltdown signal: per-create queue wait inflects upward as client
    # processes are added — creates serialize on the one metadata lock.
    bench_guard.assert_inflection(
        qw[lo], qw[hi], 2, f"queue wait per create over {lo}->{hi} clients"
    )
    assert qw[hi] > 1e-4, f"contention at {hi} clients implausibly small: {qw}"

    # ---- multi-tenant append throughput (delegated data plane) --------- #
    pairs = []
    for i in range(APPEND_PAIRS):
        os.sync()  # drain prior writeback before each timed pair

        def _daemon_side():
            run = _fresh_daemon_run(
                arena,
                f"append{i}",
                lambda sock, backend: stress.run_append_workload(
                    sock,
                    backend,
                    APPEND_CLIENTS,
                    APPENDS_PER_CLIENT,
                    APPEND_CHUNK,
                    delegated=True,
                ),
            )
            run.pop("server", None)
            return run

        # Alternate which side runs first: the host throttles CPU in
        # bursts, and a fixed order would hand one side the fresher
        # budget every time.
        if i % 2 == 0:
            daemon_run = _daemon_side()
            direct = _direct_append_baseline(arena, str(i))
        else:
            direct = _direct_append_baseline(arena, str(i))
            daemon_run = _daemon_side()
        pairs.append(
            {
                "daemon": daemon_run,
                "direct_single_process": direct,
                "ratio": daemon_run["aggregate_mib_per_second"]
                / direct["mib_per_second"],
            }
        )
        # Bound tmpfs usage: each pair leaves ~2x the workload behind.
        shutil.rmtree(os.path.join(arena, f"backend-append{i}"), ignore_errors=True)
        shutil.rmtree(os.path.join(arena, f"backend-direct-{i}"), ignore_errors=True)

    ratios = [p["ratio"] for p in pairs]
    best_ratio = bench_guard.best_ratio(ratios)
    # Acceptance: aggregate daemon throughput within 2x of the direct path.
    # Best-of-pairs, because a stolen-CPU burst landing on one side of one
    # pair says nothing about the daemon; the architecture still has to
    # clear the bar in a cleanly-scheduled window.
    assert best_ratio >= 0.5, (
        f"daemon aggregate never within 2x of direct: ratios {ratios}"
    )

    # ---- fully-remote data plane, recorded as evidence ------------------ #
    remote_run = _fresh_daemon_run(
        arena,
        "append-remote",
        lambda sock, backend: stress.run_append_workload(
            sock,
            backend,
            APPEND_CLIENTS,
            REMOTE_APPENDS_PER_CLIENT,
            REMOTE_APPEND_CHUNK,
        ),
    )
    remote_server = remote_run.pop("server", {})

    # Everything wall-clock lands in ``timings`` (never guarded across
    # runs); the sweep shape itself is deterministic and lands in
    # ``counters``; the two meltdown/throughput signals this test asserts
    # on are within-run ratios, so they land in ``derived.ratios``.
    rec = bench_record.make_record(
        scenario="plfsd",
        profile="full" if FULL_SCALE else "short",
        config="daemon",
        seed=0,
        params={
            "client_sweep": list(CLIENT_SWEEP),
            "creates_per_client": CREATES_PER_CLIENT,
            "append_clients": APPEND_CLIENTS,
            "appends_per_client": APPENDS_PER_CLIENT,
            "append_chunk_bytes": APPEND_CHUNK,
            "append_pairs": APPEND_PAIRS,
        },
        counters={
            "storm_points": len(storm),
            "creates_total": sum(CLIENT_SWEEP) * CREATES_PER_CLIENT,
            "appends_per_side": APPEND_CLIENTS * APPENDS_PER_CLIENT,
            "append_bytes_per_side": APPEND_CLIENTS
            * APPENDS_PER_CLIENT
            * APPEND_CHUNK,
            "remote_appends": APPEND_CLIENTS * REMOTE_APPENDS_PER_CLIENT,
        },
        timings={
            "create_storm": storm,
            "queue_wait_per_create_seconds": {str(k): v for k, v in qw.items()},
            "append_pairs": pairs,
            "append_ratios": ratios,
            "remote_data_plane": {
                "run": remote_run,
                "shm_appends": remote_server.get("totals", {}).get("shm_appends"),
            },
        },
        derived={
            "normalized": {},
            "ratios": {
                "queue_wait_inflection": qw[hi] / qw[lo] if qw[lo] > 0 else 0.0,
                "append_best_ratio": best_ratio,
            },
        },
    )
    path = bench_record.save(rec, OUT_DIR, filename="BENCH_plfsd.json")
    print(f"\nBenchRecord (schema v{bench_record.SCHEMA_VERSION}) -> {path}")
