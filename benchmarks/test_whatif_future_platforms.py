"""Experiment W1 — what-if: PLFS on future I/O backplanes (paper §V.A).

"...as well as assess the benefits of PLFS on future I/O backplanes
without requiring extensive benchmarking.  We hope to use our performance
model to highlight systems where PLFS may have a negative effect on
performance."

Three hypothetical evolutions of Sierra, each run through BOTH the
simulator and the analytic model on the FLASH-IO pattern:

- *flash storage*: no positioning time and 4x server bandwidth — the
  log-structured write benefit should shrink (seeks were half the win);
- *beefy MDS*: 10x metadata service with no thrash — the Fig. 5 collapse
  should disappear;
- *both*: PLFS should keep a (reduced) partitioning benefit everywhere.
"""

from __future__ import annotations

from repro.analysis import Panel, render_panel
from repro.cluster import SIERRA
from repro.model import WorkloadPattern, predict_write
from repro.mpiio import LDPLFS, MPIIO
from repro.sim.stats import MB
from repro.workloads import run_flashio

FUTURES = {
    "Sierra (2011)": SIERRA,
    "flash storage": SIERRA.with_perf(
        seek_time=0.0, server_bandwidth=320 * MB, stream_interleave_factor=0.0
    ),
    "beefy MDS": SIERRA.with_perf(
        mds_base_service=0.03e-3, mds_contention=0.0, mds_linear=0.0
    ),
    "flash + beefy MDS": SIERRA.with_perf(
        seek_time=0.0,
        server_bandwidth=320 * MB,
        stream_interleave_factor=0.0,
        mds_base_service=0.03e-3,
        mds_contention=0.0,
        mds_linear=0.0,
    ),
}

NODE_POINTS = [8, 64, 256]


def flash_pattern(nodes: int) -> WorkloadPattern:
    ranks = nodes * 12
    return WorkloadPattern(
        nodes=nodes, writers=ranks, openers=ranks,
        total_bytes=205 * MB * ranks, write_size=205 * MB / 24,
        collective=False,
    )


def run_whatif() -> dict[str, Panel]:
    panels: dict[str, Panel] = {}
    for name, machine in FUTURES.items():
        panel = Panel(
            title=f"What-if: FLASH-IO on '{name}'",
            xlabel="Cores",
            ylabel="Write bandwidth (MB/s)",
        )
        for nodes in NODE_POINTS:
            for method in (MPIIO, LDPLFS):
                sim = run_flashio(machine, method, nodes).write_bandwidth
                panel.add(method.name, nodes * 12, sim)
            model = predict_write(machine, LDPLFS, flash_pattern(nodes))
            panel.add("LDPLFS (model)", nodes * 12, model.bandwidth_mbps)
        panels[name] = panel
    return panels


def test_whatif_future_platforms(benchmark, report):
    panels = benchmark.pedantic(run_whatif, rounds=1, iterations=1)
    text = "\n\n".join(render_panel(p) for p in panels.values())
    report("whatif_future_platforms.txt", text)

    today = panels["Sierra (2011)"]
    flash = panels["flash storage"]
    mds = panels["beefy MDS"]
    both = panels["flash + beefy MDS"]

    # 1. On flash storage the PLFS/MPI-IO ratio shrinks at moderate scale
    #    (no seeks left to save), though partitioning still helps.
    ratio_today = today.ratio("LDPLFS", "MPI-IO", 96)
    ratio_flash = flash.ratio("LDPLFS", "MPI-IO", 96)
    assert ratio_flash < ratio_today

    # 2. A beefy MDS removes the collapse: PLFS stays above MPI-IO at
    #    3,072 cores instead of falling below it.
    assert today.ratio("LDPLFS", "MPI-IO", 3072) < 1.0
    assert mds.ratio("LDPLFS", "MPI-IO", 3072) > 1.5

    # 3. With both, PLFS helps everywhere (no negative-effect regime).
    for cores in (96, 768, 3072):
        assert both.ratio("LDPLFS", "MPI-IO", cores) > 1.0

    # 4. The analytic model agrees with the simulator on every future
    #    platform (the "without extensive benchmarking" promise).
    for name, panel in panels.items():
        for cores in (96, 768, 3072):
            sim = panel.series["LDPLFS"].at(cores)
            model = panel.series["LDPLFS (model)"].at(cores)
            assert abs(model - sim) / sim < 0.5, (name, cores, sim, model)
