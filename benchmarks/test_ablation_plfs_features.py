"""Experiment A1 — ablation: log-structure vs file partitioning.

The paper's future work (§V.A) wants "to investigate the low-level
performance effects of a log-based file system and file partitioning in
isolation", hoping that "perhaps using just file partitioning or a
log-based file system will provide greater performance" where full PLFS
hurts.  The simulator exposes both switches:

- *partitioning only*: per-process droppings, but written in place
  (every write pays positioning time) — ``log_structured=False``;
- *log-structure only*: one shared file, but written append-style
  (no positioning time) — ``shared_sequential=True``;
- *both* = PLFS; *neither* = plain MPI-IO.

Run on the Fig. 3 workload (MPI-IO Test) on both machines.
"""

from __future__ import annotations

import pytest

from repro.analysis import Panel, render_panel
from repro.cluster import MINERVA, SIERRA
from repro.mpiio import LDPLFS, MPIIO, Communicator, MPIIOSimFile
from repro.sim.stats import MB
from repro.workloads.base import make_platform

PER_PROC = 64 * MB
BLOCK = 8 * MB

VARIANTS = [
    ("neither (MPI-IO)", MPIIO, {}),
    ("log-structure only", MPIIO, {"shared_sequential": True}),
    ("partitioning only", LDPLFS, {"log_structured": False}),
    ("both (PLFS)", LDPLFS, {}),
]


def run_variant(machine, method, options, nodes: int, ppn: int = 1) -> float:
    env, platform = make_platform(machine)
    comm = Communicator(nodes, ppn)
    steps = int(PER_PROC // BLOCK)
    elapsed = {}

    def driver():
        f = MPIIOSimFile(platform, method, comm, name="ablate", **options)
        t0 = env.now
        yield from f.open_all()
        for _ in range(steps):
            yield from f.write_at_all(BLOCK)
        yield from f.close_all()
        elapsed["t"] = env.now - t0

    env.run(until=env.process(driver()))
    total = BLOCK * steps * comm.size
    return total / MB / elapsed["t"]


def run_ablation(machine) -> Panel:
    panel = Panel(
        title=f"Ablation: PLFS features in isolation, {machine.name} (write)",
        xlabel="Nodes",
        ylabel="Bandwidth (MB/s)",
    )
    for nodes in (4, 16, 64):
        for label, method, options in VARIANTS:
            panel.add(label, nodes, run_variant(machine, method, options, nodes))
    return panel


@pytest.mark.parametrize("machine", [MINERVA, SIERRA], ids=lambda m: m.name)
def test_ablation_plfs_features(benchmark, report, machine):
    panel = benchmark.pedantic(run_ablation, args=(machine,), rounds=1, iterations=1)
    report(f"ablation_plfs_features_{machine.name.lower()}.txt", render_panel(panel))

    at = 64
    neither = panel.series["neither (MPI-IO)"].at(at)
    log_only = panel.series["log-structure only"].at(at)
    part_only = panel.series["partitioning only"].at(at)
    both = panel.series["both (PLFS)"].at(at)

    # Each feature alone helps over plain MPI-IO...
    assert log_only > neither
    assert part_only > neither
    # ...and full PLFS is at least as good as either alone.
    assert both >= 0.95 * max(log_only, part_only)
    # Partitioning is the dominant effect at scale (it removes the
    # shared-file serialisation entirely; log-structure only removes
    # positioning costs).
    assert part_only > log_only
