"""Experiment F3 — Fig. 3: MPI-IO Test bandwidths on Minerva.

Six panels: write and read, at 1/2/4 processes per node, over 1..64
nodes, for the four access routes (MPI-IO, FUSE, ROMIO, LDPLFS).  The
paper writes 1 GB per process in 8 MB blocks with collective buffering;
the default here scales the per-process volume down (same block size,
fewer blocks — the steady-state bandwidth is volume-insensitive) so the
84-configuration sweep finishes in minutes.  ``LDPLFS_BENCH_FULL=1``
restores 1 GB per process.

Expected shape (paper §III.C):
- LDPLFS ≈ ROMIO, both ≈ 2x plain MPI-IO on writes at scale;
- FUSE below both PLFS routes (up to 2x) and ~20% below plain MPI-IO;
- reads behave like writes, PLFS routes ~2x MPI-IO.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    Panel,
    check_ratio_at,
    render_panel,
    summarise,
)
from repro.cluster import MINERVA
from repro.mpiio import ALL_METHODS
from repro.sim.stats import GB, MB
from repro.workloads import run_mpiio_test

from .conftest import FULL_SCALE

NODE_SWEEP = [1, 2, 4, 8, 16, 32, 64]
PER_PROC = 1 * GB if FULL_SCALE else 64 * MB


def run_panels(ppn: int) -> tuple[Panel, Panel]:
    write = Panel(
        title=f"Fig. 3 Write ({ppn} Proc/Node), Minerva",
        xlabel="Nodes",
        ylabel="Bandwidth (MB/s)",
    )
    read = Panel(
        title=f"Fig. 3 Read ({ppn} Proc/Node), Minerva",
        xlabel="Nodes",
        ylabel="Bandwidth (MB/s)",
    )
    for nodes in NODE_SWEEP:
        for method in ALL_METHODS:
            result = run_mpiio_test(
                MINERVA, method, nodes, ppn, per_proc=PER_PROC
            )
            write.add(method.name, nodes, result.write_bandwidth)
            read.add(method.name, nodes, result.read_bandwidth)
    return write, read


@pytest.mark.parametrize("ppn", [1, 2, 4])
def test_fig3_mpiio_test(benchmark, report, ppn):
    write, read = benchmark.pedantic(run_panels, args=(ppn,), rounds=1, iterations=1)

    checks = [
        check_ratio_at(
            write, "LDPLFS", "MPI-IO", 64, at_least=1.6,
            claim="PLFS ~2x plain MPI-IO on writes at scale",
        ),
        check_ratio_at(
            write, "LDPLFS", "ROMIO", 64, at_least=0.95, at_most=1.1,
            claim="LDPLFS nearly identical to the ROMIO driver",
        ),
        check_ratio_at(
            write, "FUSE", "MPI-IO", 64, at_most=1.0,
            claim="FUSE below plain MPI-IO on parallel writes",
        ),
        check_ratio_at(
            write, "FUSE", "LDPLFS", 64, at_most=0.7,
            claim="FUSE well below the other PLFS routes (up to 2x)",
        ),
        check_ratio_at(
            read, "LDPLFS", "MPI-IO", 64, at_least=1.6,
            claim="PLFS read-back ~2x plain MPI-IO",
        ),
        check_ratio_at(
            read, "LDPLFS", "ROMIO", 64, at_least=0.9, at_most=1.15,
            claim="LDPLFS read ≈ ROMIO read",
        ),
    ]
    text = "\n\n".join(
        [render_panel(write), render_panel(read), summarise(checks)]
    )
    report(f"fig3_mpiio_test_ppn{ppn}.txt", text)
    failed = [c for c in checks if not c.holds]
    assert not failed, "shape checks failed:\n" + "\n".join(map(str, failed))
