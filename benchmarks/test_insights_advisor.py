"""Experiment I1 — the insights advisor reproduces the paper's split verdict.

The paper's two headline results pull in opposite directions: PLFS via
LDPLFS is a large win for BT's small collective writes (Fig. 4), and a
large loss for FLASH-IO at 3,072 cores where the per-rank dropping
creates melt Sierra's dedicated MDS (Fig. 5).  The detectors must reach
*both* verdicts from run counters alone: the MDS-storm rule fires at
3,072 cores but stays silent at the 192-core peak, and the BT profile
yields a "use PLFS via LDPLFS" recommendation with cited evidence.
"""

from __future__ import annotations

from repro.cluster import SIERRA
from repro.insights import (
    profile_from_run,
    render_report,
    report_to_json,
    run_rules,
)
from repro.mpiio import LDPLFS, MPIIO
from repro.model.autotune import advise_from_profile
from repro.workloads import run_bt, run_flashio

#: Fig. 5 grid points (nodes x 12 ppn -> 12..3,072 cores)
GRID_NODES = [1, 4, 16, 64, 256]


def run_grid():
    rows = []
    for nodes in GRID_NODES:
        result = run_flashio(SIERRA, LDPLFS, nodes)
        profile = profile_from_run(result, SIERRA, LDPLFS, workload="flashio")
        rows.append((nodes * 12, profile, run_rules(profile)))
    return rows


def test_insights_flashio_grid(benchmark, report):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    by_cores = {cores: (profile, findings) for cores, profile, findings in rows}

    storm = {
        cores: next((f for f in fs if f.rule == "mds-create-storm"), None)
        for cores, (_, fs) in by_cores.items()
    }
    # Silent at the paper's peak, screaming at the paper's cliff.
    assert storm[192] is None
    hit = storm[3072]
    assert hit is not None
    assert hit.severity.name == "HIGH"
    assert hit.title == "PLFS harmful: dedicated-MDS create storm"
    for key in ("dropping_creates", "writers", "mds_utilisation"):
        assert key in hit.evidence
    assert hit.evidence["dropping_creates"] == 2 * 3072

    # The mechanism behind the split: MDS utilisation straddles the
    # warn/high thresholds across the sweep.
    assert by_cores[192][0].mds_utilisation < 0.25
    assert by_cores[3072][0].mds_utilisation > 0.5

    sections = [
        f"=== {cores} cores ===\n" + render_report(profile, findings)
        for cores, (profile, findings) in sorted(by_cores.items())
    ]
    report("insights_flashio.txt", "\n\n".join(sections))


def test_bt_small_write_verdict(benchmark, report):
    """Fig. 4's positive verdict, with the model advisor citing it."""

    def run():
        result = run_bt(SIERRA, MPIIO, 1024, "C")
        profile = profile_from_run(result, SIERRA, MPIIO, workload="bt.C")
        return profile, run_rules(profile)

    profile, findings = benchmark.pedantic(run, rounds=1, iterations=1)
    small = next(f for f in findings if f.rule == "small-writes-shared-file")
    assert small.severity.name == "HIGH"
    assert "use PLFS via LDPLFS" in small.recommendation
    assert small.evidence["small_write_fraction"] >= 0.9

    rec = advise_from_profile(SIERRA, profile)
    assert rec.method.uses_plfs and rec.plfs_helps
    assert "Observed evidence" in rec.explanation
    assert rec.findings  # detector evidence attached to the recommendation

    report(
        "insights_bt_verdict.txt",
        render_report(profile, findings)
        + f"\n\nmodel advice: use {rec.method.name} — {rec.explanation}",
    )


def test_report_byte_identical(benchmark):
    """Two runs of the same seeded simulation -> identical JSON bytes."""

    def one() -> str:
        result = run_flashio(SIERRA, LDPLFS, 16)
        profile = profile_from_run(result, SIERRA, LDPLFS, workload="flashio")
        return report_to_json(profile, run_rules(profile))

    first = benchmark.pedantic(one, rounds=1, iterations=1)
    assert first == one()
