"""Experiment A3 — ablation: the ROMIO optimisations under LDPLFS.

The paper argues (§II, §V) that a key LDPLFS advantage over the raw PLFS
API is keeping "advanced MPI-IO features, such as collective buffering
and data-sieving".  This bench quantifies each on the simulated
platforms:

1. collective buffering on/off and the aggregator count (``cb_nodes``)
   for the Fig. 3 workload — the paper's footnote-3 default (one
   aggregator per node) against alternatives;
2. data sieving on/off for a dense interleaved independent write
   pattern (the §II file-view scenario).
"""

from __future__ import annotations

from repro.analysis import Panel, render_panel
from repro.cluster import MINERVA, Platform
from repro.mpiio import LDPLFS, MPIIO, Communicator, MPIHints, MPIIOSimFile
from repro.sim import Environment
from repro.sim.stats import MB

NODES = 16
PER_PROC = 64 * MB
BLOCK = 8 * MB


def run_collective(method, hints: MPIHints, ppn: int = 4) -> float:
    env = Environment()
    platform = Platform(env, MINERVA)
    comm = Communicator(NODES, ppn)
    steps = int(PER_PROC // BLOCK)
    out = {}

    def driver():
        f = MPIIOSimFile(platform, method, comm, hints=hints)
        t0 = env.now
        yield from f.open_all()
        for _ in range(steps):
            yield from f.write_at_all(BLOCK)
        yield from f.close_all()
        out["t"] = env.now - t0

    env.run(until=env.process(driver()))
    return BLOCK * steps * comm.size / MB / out["t"]


def run_cb_sweep() -> Panel:
    panel = Panel(
        title=f"Ablation: collective buffering, Minerva, {NODES} nodes x 4 ppn",
        xlabel="cb_nodes (0 = CB disabled)",
        ylabel="Write bandwidth (MB/s)",
    )
    for method in (MPIIO, LDPLFS):
        panel.add(method.name, 0, run_collective(method, MPIHints(romio_cb_write=False)))
        for cb_nodes in (1, 4, 16):
            panel.add(
                method.name,
                cb_nodes,
                run_collective(method, MPIHints(cb_nodes=cb_nodes)),
            )
    return panel


def run_sieving_sweep() -> Panel:
    panel = Panel(
        title="Ablation: data sieving on interleaved writes, Minerva",
        xlabel="writers",
        ylabel="Write bandwidth (MB/s)",
    )
    record, stride, count = 64 * 1024, 128 * 1024, 128
    for writers in (1, 2, 4):
        for label, ds in (("naive", False), ("data sieving", True)):
            env = Environment()
            platform = Platform(env, MINERVA)
            comm = Communicator(writers, 1)
            out = {}

            def driver():
                f = MPIIOSimFile(
                    platform, MPIIO, comm, hints=MPIHints(romio_ds_write=ds)
                )
                t0 = env.now
                yield from f.open_all()
                procs = [
                    env.process(
                        f.write_strided_independent(
                            rank,
                            rank.rank * record,
                            record,
                            stride * writers,
                            count,
                        )
                    )
                    for rank in f.comm.ranks
                ]
                yield env.all_of(procs)
                yield from f.close_all()
                out["t"] = env.now - t0

            env.run(until=env.process(driver()))
            payload = record * count * writers
            panel.add(label, writers, payload / MB / out["t"])
    return panel


def test_ablation_collective_buffering(benchmark, report):
    panel = benchmark.pedantic(run_cb_sweep, rounds=1, iterations=1)
    report("ablation_romio_cb.txt", render_panel(panel))
    ldplfs = panel.series["LDPLFS"]
    # The paper's default (one aggregator per node = 16) beats both a
    # single aggregator (one NIC carries everything) and no CB at all
    # (every rank issues its own write).
    assert ldplfs.at(16) > ldplfs.at(1)
    assert ldplfs.at(16) > ldplfs.at(0)
    # With 8 MB blocks the shared file is lane-bound either way: CB may
    # not help plain MPI-IO, but must not hurt.
    mpiio = panel.series["MPI-IO"]
    assert mpiio.at(16) > 0.95 * mpiio.at(0)


def test_ablation_cb_small_writes(benchmark, report):
    """The §II claim proper: collective buffering yields "a significant
    speed-up ... on applications writing relatively small amounts of
    data" — larger buffered writes use the bandwidth better."""

    def run():
        small = 256 * 1024  # per-rank write far below the block size
        with_cb = run_collective_block(MPIIO, MPIHints(), block=small)
        without = run_collective_block(
            MPIIO, MPIHints(romio_cb_write=False), block=small
        )
        return with_cb, without

    with_cb, without = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_romio_cb_small.txt",
        "CB with 256 KB per-rank writes, Minerva, 16 nodes x 4 ppn\n"
        f"  collective buffering on : {with_cb:8.1f} MB/s\n"
        f"  collective buffering off: {without:8.1f} MB/s\n"
        f"  speed-up                : {with_cb / without:8.1f}x",
    )
    assert with_cb > 1.5 * without


def run_collective_block(method, hints: MPIHints, *, block: float, ppn: int = 4) -> float:
    env = Environment()
    platform = Platform(env, MINERVA)
    comm = Communicator(NODES, ppn)
    steps = 16
    out = {}

    def driver():
        f = MPIIOSimFile(platform, method, comm, hints=hints)
        t0 = env.now
        yield from f.open_all()
        for _ in range(steps):
            yield from f.write_at_all(block)
        yield from f.close_all()
        out["t"] = env.now - t0

    env.run(until=env.process(driver()))
    return block * steps * comm.size / MB / out["t"]


def test_ablation_data_sieving(benchmark, report):
    panel = benchmark.pedantic(run_sieving_sweep, rounds=1, iterations=1)
    report("ablation_romio_ds.txt", render_panel(panel))
    # Dense interleaves: sieving wins big (fewer seeks, larger ops)...
    assert panel.series["data sieving"].at(1) > 2.5 * panel.series["naive"].at(1)
    assert panel.series["data sieving"].at(2) > 1.5 * panel.series["naive"].at(2)
    # ...but the benefit decays as the view grows sparser (the covering
    # extent amplifies the data moved), which is why ROMIO leaves it as a
    # hint rather than always-on.  It must still never be catastrophic.
    assert panel.series["data sieving"].at(4) > 0.9 * panel.series["naive"].at(4)
    ratio = [
        panel.series["data sieving"].at(w) / panel.series["naive"].at(w)
        for w in (1, 2, 4)
    ]
    assert ratio[0] > ratio[1] > ratio[2]
