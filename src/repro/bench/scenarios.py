"""Deterministic, composable workload generators for the bench suite.

Each scenario is a pure function from ``(seed, params)`` to a flat list
of :class:`Op` — no wall-clock, no host state, no randomness outside one
``random.Random(seed)`` stream — so the same seed always yields the same
op stream on every machine and Python version (the Mersenne Twister is
part of the language spec).  The runner replays the stream against any
backend (direct, WAL-batched, daemon, CAWL sim) and the differential
tests replay it against two backends and demand identical bytes.

The four production shapes (ROADMAP item 4):

``metadata_storm``
    N clients x M tiny-file create+write+close — the paper's §V.C
    FLASH-IO create storm with real bytes.  Every create is one timed
    op, so per-create latency percentiles expose metadata serialization.
``hot_cold_mix``
    Zipf-skewed mixed read/write over a small hot set and a large cold
    set of containers (CAWL's cache-aware regime: hot overwrites should
    be absorbed by any write-back layer, cold reads should miss).
``multi_tenant``
    A metadata-storm tenant and a streaming-append tenant interleaved
    over one store — the interference workload; the runner reports
    per-tenant latency percentiles.
``crash_soak``
    Seeded crash/recovery cycles: each cycle runs a faulted write
    schedule (reusing :mod:`repro.faults`), fscks the container, rereads
    it and verifies the recovery invariant.
``collective_io``
    The §II optimisation comparison with real bytes: the same strided
    shared-file rounds replayed by a ``cb`` tenant (two-phase collective
    buffering) and an ``indep`` tenant (per-rank list I/O), so the
    per-tenant latency ratio tracks the aggregation win.
"""

from __future__ import annotations

import hashlib
import random
import zlib
from dataclasses import dataclass, field
from typing import Callable

#: default seed for committed baselines and CI runs
DEFAULT_SEED = 1337

#: op kinds the runner understands
KINDS = (
    "create",
    "write",
    "read",
    "fsync",
    "crash_cycle",
    "coll_write",
    "coll_read",
)

#: fault arms a crash_soak cycle rotates through: (point, behavior, wal)
SOAK_ARMS: tuple[tuple[str, str, bool], ...] = (
    ("data_write", "torn", False),
    ("data_write", "crash", False),
    ("index_flush", "crash", False),
    ("data_write", "torn", True),
    ("wal_write", "torn", True),
    ("fsync", "crash", False),
)


@dataclass(frozen=True)
class Op:
    """One operation of a workload stream.

    ``create`` — open O_CREAT|O_WRONLY, write ``size`` payload bytes at 0,
    close (one timed metadata-heavy op).  ``write``/``read`` — positioned
    I/O on a handle the runner keeps open.  ``fsync`` — plfs_sync on the
    open handle.  ``crash_cycle`` — one faulted write schedule + fsck +
    verify; ``offset`` carries the cycle seed and ``size`` the arm index
    into :data:`SOAK_ARMS`.
    """

    tenant: str
    kind: str
    file: str
    offset: int = 0
    size: int = 0


_BLOCK = bytes(range(256)) * 2


def payload(seed: int, file: str, offset: int, size: int) -> bytes:
    """Deterministic payload bytes for a write: a phase-shifted repeating
    block keyed by (seed, file, offset).  Cheap to build at any size and
    identical on every backend — the differential tests depend on it."""
    phase = (zlib.crc32(f"{seed}:{file}".encode()) + offset) % 256
    need = (phase + size + len(_BLOCK) - 1) // len(_BLOCK)
    return (_BLOCK * max(1, need))[phase : phase + size]


def op_stream_digest(ops: list[Op]) -> str:
    """Stable hex digest of an op stream (the determinism fingerprint)."""
    h = hashlib.sha256()
    for op in ops:
        h.update(
            f"{op.tenant}|{op.kind}|{op.file}|{op.offset}|{op.size}\n".encode()
        )
    return h.hexdigest()


def stream_summary(ops: list[Op]) -> dict:
    """Deterministic shape of a stream, embedded in every BenchRecord."""
    by_kind: dict[str, int] = {}
    files: set[str] = set()
    tenants: set[str] = set()
    written = 0
    read = 0
    for op in ops:
        by_kind[op.kind] = by_kind.get(op.kind, 0) + 1
        files.add(op.file)
        tenants.add(op.tenant)
        if op.kind in ("create", "write", "coll_write"):
            written += op.size
        elif op.kind in ("read", "coll_read"):
            read += op.size
    return {
        "ops": len(ops),
        "digest": op_stream_digest(ops),
        "by_kind": dict(sorted(by_kind.items())),
        "bytes_written": written,
        "bytes_read": read,
        "files": len(files),
        "tenants": len(tenants),
    }


def zipf_rank(rng: random.Random, n: int, s: float) -> int:
    """A rank in [0, n) drawn from a Zipf(s) distribution via inverse CDF
    over the finite harmonic weights (exact and deterministic)."""
    weights = [1.0 / (k + 1) ** s for k in range(n)]
    total = sum(weights)
    x = rng.random() * total
    acc = 0.0
    for k, w in enumerate(weights):
        acc += w
        if x <= acc:
            return k
    return n - 1


# ---------------------------------------------------------------------- #
# generators
# ---------------------------------------------------------------------- #


def gen_metadata_storm(
    seed: int,
    *,
    clients: int = 4,
    files_per_client: int = 12,
    payload_bytes: int = 256,
) -> list[Op]:
    """N clients x M tiny-file creates, interleaved round-robin with a
    seeded jitter so creates from different clients collide the way a
    real storm's do."""
    rng = random.Random(seed)
    pending = {
        c: [
            Op(f"client{c}", "create", f"storm/c{c}.f{i}", 0, payload_bytes)
            for i in range(files_per_client)
        ]
        for c in range(clients)
    }
    ops: list[Op] = []
    live = [c for c in pending if pending[c]]
    while live:
        c = live[rng.randrange(len(live))]
        ops.append(pending[c].pop(0))
        if not pending[c]:
            live.remove(c)
    return ops


def gen_hot_cold_mix(
    seed: int,
    *,
    hot_files: int = 4,
    cold_files: int = 16,
    ops: int = 320,
    zipf_s: float = 1.2,
    read_fraction: float = 0.45,
    hot_fraction: float = 0.8,
    max_chunk: int = 4096,
    file_bytes: int = 65536,
) -> list[Op]:
    """Zipf-skewed mixed read/write over warm and cold containers.

    A warm-up phase seeds every file with one chunk (so reads always have
    bytes to hit); the mixed phase then sends ``hot_fraction`` of ops to
    the Zipf-ranked hot set and the rest uniformly over the cold set.
    Reads stay within each file's written high-water mark; every 32nd op
    is an fsync on the hottest file (the write-back flush pressure CAWL
    models).
    """
    rng = random.Random(seed)
    names = [f"hot/h{i}" for i in range(hot_files)] + [
        f"cold/c{i}" for i in range(cold_files)
    ]
    size: dict[str, int] = {}
    out: list[Op] = []
    for name in names:
        n = rng.randint(max_chunk // 2, max_chunk)
        out.append(Op("mixer", "write", name, 0, n))
        size[name] = n
    for i in range(ops):
        if i % 32 == 31:
            out.append(Op("mixer", "fsync", names[0], 0, 0))
            continue
        if rng.random() < hot_fraction:
            name = names[zipf_rank(rng, hot_files, zipf_s)]
        else:
            name = names[hot_files + rng.randrange(cold_files)]
        n = rng.randint(64, max_chunk)
        if rng.random() < read_fraction:
            off = rng.randrange(max(1, size[name]))
            n = min(n, size[name] - off)
            if n <= 0:
                n = 1
                off = 0
            out.append(Op("mixer", "read", name, off, n))
        else:
            off = rng.randrange(max(1, min(size[name], file_bytes - n)))
            out.append(Op("mixer", "write", name, off, n))
            size[name] = max(size[name], off + n)
    return out


def gen_multi_tenant(
    seed: int,
    *,
    storm_files: int = 24,
    storm_payload: int = 256,
    stream_chunks: int = 32,
    stream_chunk_bytes: int = 32768,
    storm_weight: float = 0.5,
) -> list[Op]:
    """A storm tenant and a streaming tenant sharing one store: tiny-file
    creates interleaved into a large sequential append stream, so each
    tenant's latency percentiles show what the other costs it."""
    rng = random.Random(seed)
    storm = [
        Op("storm", "create", f"mt/storm.{i}", 0, storm_payload)
        for i in range(storm_files)
    ]
    stream = [
        Op(
            "stream",
            "write",
            "mt/stream",
            j * stream_chunk_bytes,
            stream_chunk_bytes,
        )
        for j in range(stream_chunks)
    ]
    ops: list[Op] = []
    while storm or stream:
        take_storm = storm and (not stream or rng.random() < storm_weight)
        ops.append(storm.pop(0) if take_storm else stream.pop(0))
    return ops


def gen_collective_io(
    seed: int,
    *,
    nodes: int = 4,
    ppn: int = 4,
    rounds: int = 3,
    per_rank_bytes: int = 262144,
    record_bytes: int = 4096,
    read_rounds: int = 1,
) -> list[Op]:
    """Two tenants replay the *same* strided shared-file workload:
    every rank contributes ``per_rank_bytes`` per round through an
    interleaved ``record_bytes`` file view — the ``cb`` tenant down the
    two-phase collective engine, the ``indep`` tenant down per-rank
    list I/O (``romio_cb_write=false``).  One ``coll_write`` op is one
    whole collective round (``offset`` carries the round index, ``size``
    the per-rank contribution); ``nodes``/``ppn``/``record_bytes`` ride
    into the runner's engine parameters.  With exactly two tenants the
    derived ``cb_p50_over_indep_p50`` ratio *is* the aggregation win,
    guarded like any other trajectory metric.  Each round's contribution
    is jittered by a seeded whole-record amount — identically for both
    tenants, so the pairing stays a fair comparison while the stream
    (and its digest) is a function of the seed like every scenario."""
    rng = random.Random(seed)
    ops: list[Op] = []
    for rnd in range(rounds):
        size = per_rank_bytes + rng.randrange(0, 8) * record_bytes
        for tenant in ("cb", "indep"):
            ops.append(Op(tenant, "coll_write", f"coll/{tenant}", rnd, size))
    for rnd in range(read_rounds):
        size = per_rank_bytes + rng.randrange(0, 8) * record_bytes
        for tenant in ("cb", "indep"):
            ops.append(Op(tenant, "coll_read", f"coll/{tenant}", rnd, size))
    return ops


def gen_crash_soak(
    seed: int,
    *,
    cycles: int = 6,
    ops_per_cycle: int = 18,
) -> list[Op]:
    """Seeded crash/recovery cycles rotating through :data:`SOAK_ARMS`.

    Each op's ``offset`` is the cycle's schedule seed and ``size`` the
    arm index; ``ops_per_cycle`` rides along in the runner params."""
    rng = random.Random(seed)
    return [
        Op(
            "soaker",
            "crash_cycle",
            f"soak/cycle.{i}",
            rng.randrange(2**31),
            i % len(SOAK_ARMS),
        )
        for i in range(cycles)
    ]


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class Scenario:
    """One declarative workload: generator + per-profile parameters."""

    name: str
    description: str
    generate: Callable[..., list[Op]]
    profiles: dict[str, dict] = field(default_factory=dict)
    #: runner configurations this scenario supports
    configs: tuple[str, ...] = ("direct", "wal_batched", "daemon")

    def ops(self, seed: int, profile: str = "short", params: dict | None = None) -> list[Op]:
        if profile not in self.profiles:
            raise KeyError(
                f"scenario {self.name!r} has no profile {profile!r} "
                f"(have: {sorted(self.profiles)})"
            )
        merged = dict(self.profiles[profile])
        if params:
            merged.update(params)
        return self.generate(seed, **merged)

    def profile_params(self, profile: str, params: dict | None = None) -> dict:
        merged = dict(self.profiles[profile])
        if params:
            merged.update(params)
        return merged


SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            "metadata_storm",
            "N clients x M tiny-file creates (the §V.C storm, real bytes)",
            gen_metadata_storm,
            profiles={
                "short": dict(clients=4, files_per_client=12, payload_bytes=256),
                "full": dict(clients=8, files_per_client=200, payload_bytes=256),
            },
        ),
        Scenario(
            "hot_cold_mix",
            "Zipf-skewed mixed read/write over hot and cold containers",
            gen_hot_cold_mix,
            profiles={
                "short": dict(hot_files=4, cold_files=16, ops=320),
                "full": dict(hot_files=8, cold_files=64, ops=4096),
            },
            configs=("direct", "wal_batched", "daemon", "sim", "objectstore"),
        ),
        Scenario(
            "multi_tenant",
            "a create-storm tenant interfering with a streaming tenant",
            gen_multi_tenant,
            profiles={
                "short": dict(storm_files=24, stream_chunks=32),
                "full": dict(
                    storm_files=256, stream_chunks=256, stream_chunk_bytes=262144
                ),
            },
        ),
        Scenario(
            "collective_io",
            "two-phase collective buffering vs independent strided list I/O",
            gen_collective_io,
            profiles={
                "short": dict(
                    nodes=4,
                    ppn=4,
                    rounds=3,
                    per_rank_bytes=262144,
                    record_bytes=4096,
                    read_rounds=1,
                ),
                "full": dict(
                    nodes=4,
                    ppn=4,
                    rounds=8,
                    per_rank_bytes=262144,
                    record_bytes=4096,
                    read_rounds=2,
                ),
            },
            configs=("direct",),
        ),
        Scenario(
            "crash_soak",
            "fault-injected writers + fsck + reread (recovery under churn)",
            gen_crash_soak,
            profiles={
                "short": dict(cycles=6, ops_per_cycle=18),
                "full": dict(cycles=48, ops_per_cycle=32),
            },
            configs=("direct", "objectstore"),
        ),
    )
}
