"""``repro-bench`` — run scenarios, inspect trajectories, guard CI.

Subcommands:

``run``
    Execute scenarios (``--scenario``/``--config``/``--profile``) and
    write ``BENCH_*.json`` records to the trajectory directory.
``compare``
    Human-readable diff of current records against a baseline directory
    (never fails the build; for local inspection).
``guard``
    The CI gate: exits nonzero when any current record regresses past
    the committed baseline's tolerance, or a baselined scenario went
    missing.
``list``
    Show the scenario registry (profiles, configs, descriptions).
"""

from __future__ import annotations

import argparse
import sys
import time

from . import guard as guard_mod
from . import record as record_mod
from . import runner
from .scenarios import DEFAULT_SEED, SCENARIOS


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--out",
        default=None,
        help="trajectory directory (default: $REPRO_BENCH_OUT or ./benchmarks/out)",
    )


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="production workload suite + perf-trajectory guard",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run scenarios and write BENCH_*.json")
    run_p.add_argument(
        "--scenario",
        action="append",
        choices=sorted(SCENARIOS),
        help="scenario to run (repeatable; default: all)",
    )
    run_p.add_argument(
        "--config",
        action="append",
        choices=sorted(runner.CONFIGS),
        help="configuration to run (repeatable; default: direct)",
    )
    run_p.add_argument("--profile", default="short", choices=("short", "full"))
    run_p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    run_p.add_argument(
        "--max-timing-regression",
        type=float,
        default=None,
        help="embed a guard tolerance into the emitted records "
        "(what committed baselines use to widen CI headroom)",
    )
    run_p.add_argument(
        "--no-history",
        action="store_true",
        help="skip appending trajectory lines to the history sibling of "
        "the out dir ($REPRO_BENCH_HISTORY overrides the location)",
    )
    _add_common(run_p)

    cmp_p = sub.add_parser(
        "compare", help="diff current records against a baseline (never fails)"
    )
    cmp_p.add_argument("--baseline", required=True)
    cmp_p.add_argument("--scenario", action="append", default=None)
    cmp_p.add_argument(
        "--config",
        action="append",
        default=None,
        help="restrict the comparison to these configs (repeatable)",
    )
    _add_common(cmp_p)

    guard_p = sub.add_parser(
        "guard", help="fail (exit 1) on regressions vs the baseline"
    )
    guard_p.add_argument("--baseline", required=True)
    guard_p.add_argument("--scenario", action="append", default=None)
    guard_p.add_argument(
        "--config",
        action="append",
        default=None,
        help="restrict the guard to these configs (repeatable; a job "
        "that only regenerated one config guards only that config)",
    )
    guard_p.add_argument(
        "--max-timing-regression",
        type=float,
        default=None,
        help="override every baseline's embedded tolerance",
    )
    _add_common(guard_p)

    list_p = sub.add_parser("list", help="show the scenario registry")
    _add_common(list_p)
    return parser


def _cmd_run(args) -> int:
    out_dir = args.out or record_mod.default_out_dir()
    names = args.scenario or sorted(SCENARIOS)
    configs = args.config or ["direct"]
    guard_policy = None
    if args.max_timing_regression is not None:
        guard_policy = {"max_timing_regression": args.max_timing_regression}
    wrote = []
    for name in names:
        scenario = SCENARIOS[name]
        for config in configs:
            if config not in scenario.configs:
                print(
                    f"skip {name}/{config}: unsupported "
                    f"(supports {', '.join(scenario.configs)})",
                    file=sys.stderr,
                )
                continue
            rec = runner.run_scenario(
                name,
                profile=args.profile,
                config=config,
                seed=args.seed,
                guard_policy=guard_policy,
            )
            path = record_mod.save(rec, out_dir)
            if not args.no_history:
                stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
                record_mod.append_history(
                    rec, record_mod.history_dir_for(out_dir), timestamp=stamp
                )
            wall = rec["timings"]["wall_seconds"]
            norm = rec["derived"]["normalized"]["wall_over_calibration"]
            print(
                f"{name}/{config} [{args.profile}]: "
                f"{rec['counters']['ops_total']} ops in {wall:.3f}s "
                f"(x{norm:.1f} calibration) -> {path}"
            )
            wrote.append(path)
    if not wrote:
        print("nothing ran (scenario/config selection was empty)", file=sys.stderr)
        return 2
    return 0


def _cmd_compare(args) -> int:
    out_dir = args.out or record_mod.default_out_dir()
    results = guard_mod.guard_directory(
        out_dir, args.baseline, scenarios=args.scenario, configs=args.config
    )
    print(guard_mod.render_results(results))
    return 0


def _cmd_guard(args) -> int:
    out_dir = args.out or record_mod.default_out_dir()
    results = guard_mod.guard_directory(
        out_dir,
        args.baseline,
        max_timing_regression=args.max_timing_regression,
        scenarios=args.scenario,
        configs=args.config,
    )
    print(guard_mod.render_results(results))
    return 0 if all(r.ok for r in results) else 1


def _cmd_list(args) -> int:
    for name in sorted(SCENARIOS):
        s = SCENARIOS[name]
        print(f"{name}: {s.description}")
        print(f"  profiles: {', '.join(sorted(s.profiles))}")
        print(f"  configs:  {', '.join(s.configs)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "guard": _cmd_guard,
        "list": _cmd_list,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
