"""``repro.bench`` — production workload suite + standing perf-trajectory
harness (ROADMAP item 4).

Layers:

- :mod:`~repro.bench.scenarios` — deterministic workload generators
  (metadata storm, hot/cold Zipf mix, multi-tenant interference,
  crash-recovery soak);
- :mod:`~repro.bench.runner` — executes a scenario against the direct,
  WAL-batched, daemon or CAWL-sim configuration and assembles a
  versioned BenchRecord;
- :mod:`~repro.bench.record` — the schema + canonical trajectory store
  (``BENCH_*.json``);
- :mod:`~repro.bench.guard` — ratio-based regression guards shared by
  ``repro-bench guard`` and the benchmark suite;
- :mod:`~repro.bench.cli` — the ``repro-bench`` entry point.
"""

from .guard import (
    GuardResult,
    assert_faster,
    assert_inflection,
    best_of,
    best_ratio,
    compare_records,
    guard_directory,
    median_time,
)
from .record import (
    DEFAULT_MAX_TIMING_REGRESSION,
    SCHEMA_VERSION,
    make_record,
    record_filename,
    validate,
)
from .runner import CONFIGS, execute_stream, run_scenario
from .scenarios import DEFAULT_SEED, SCENARIOS, Op, op_stream_digest, payload

__all__ = [
    "SCENARIOS",
    "CONFIGS",
    "DEFAULT_SEED",
    "SCHEMA_VERSION",
    "DEFAULT_MAX_TIMING_REGRESSION",
    "Op",
    "payload",
    "op_stream_digest",
    "make_record",
    "validate",
    "record_filename",
    "run_scenario",
    "execute_stream",
    "GuardResult",
    "compare_records",
    "guard_directory",
    "median_time",
    "best_of",
    "best_ratio",
    "assert_faster",
    "assert_inflection",
]
