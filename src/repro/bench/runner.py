"""Execute a scenario's op stream against a real PLFS configuration and
assemble the :mod:`~repro.bench.record` for it.

Configurations (the ``config`` axis of a BenchRecord):

``direct``
    In-process :mod:`repro.plfs` API — the LDPLFS fast path.
``wal_batched``
    Same, with the PR-5 group-commit write-ahead index
    (``OpenOptions(write_ahead_index=True, wal_batch_records=N)``).
``daemon``
    Through a ``repro-plfsd`` daemon subprocess: one
    :class:`~repro.plfsd.client.PlfsdClient` per tenant, all metadata
    serializing on the daemon's global meta lock (the paper's dedicated
    MDS).
``sim``
    The CAWL cache-aware write-back model in :mod:`repro.sim.cawl` —
    same op stream, simulated clock, so the simulated and real
    trajectories are directly comparable.
``objectstore``
    The tiered object backend (:mod:`repro.plfs.objectstore`) installed
    behind ``plfs.backing``: writes land on the local tier and drain to
    the content-addressed store under the CAWL write-back policy — the
    real-path twin of the ``sim`` configuration.

Execution is deliberately *sequential and deterministic*: the generator
already interleaves tenants, so every counter in the record reproduces
exactly under a fixed seed (the determinism tests assert this).
``coll_write``/``coll_read`` ops replay whole collective rounds through
:class:`repro.collective.CollectiveFile`; the engine's aggregator
threads do run concurrently inside one op, but domain partitioning and
the post-barrier counter merge are deterministic, so the guarded
counters still reproduce exactly.  True
multi-process contention is the daemon stress benchmark's job
(``benchmarks/test_plfsd.py``); the scenario suite tracks the cost
trajectory of the op streams themselves.

Timing is normalized per record: a fixed *calibration probe* (a small
direct-path workload, best-of-3) runs in the same process right before
the scenario, and every guarded timing metric is expressed as a ratio
over it — hardware speed cancels, regressions don't.
"""

from __future__ import annotations

import os
import shutil
import statistics
import tempfile
import time
from dataclasses import dataclass, field

from repro import plfs
from repro.insights.metrics import export_runtime_counters
from repro.plfs.api import OpenOptions
from repro.plfs.cache import shared_cache

from . import record as record_mod
from .scenarios import (
    DEFAULT_SEED,
    SCENARIOS,
    SOAK_ARMS,
    Op,
    payload,
    stream_summary,
)

#: WAL group-commit window for the ``wal_batched`` configuration
WAL_BATCH_RECORDS = 16


@dataclass(frozen=True)
class BenchConfig:
    name: str
    daemon: bool = False
    sim: bool = False
    wal: bool = False
    wal_batch: int = 1
    objectstore: bool = False

    def open_options(self) -> OpenOptions:
        return OpenOptions(
            write_ahead_index=self.wal, wal_batch_records=self.wal_batch
        )


CONFIGS: dict[str, BenchConfig] = {
    "direct": BenchConfig("direct"),
    "wal_batched": BenchConfig(
        "wal_batched", wal=True, wal_batch=WAL_BATCH_RECORDS
    ),
    "daemon": BenchConfig("daemon", daemon=True),
    "sim": BenchConfig("sim", sim=True),
    "objectstore": BenchConfig("objectstore", objectstore=True),
}


@dataclass
class ExecutionResult:
    """Raw outcome of one op-stream replay."""

    counters: dict = field(default_factory=dict)
    #: (tenant, kind) -> per-op latencies in seconds
    latencies: dict = field(default_factory=dict)
    wall_seconds: float = 0.0
    #: scenario-specific extra timing observations (never guarded)
    observed: dict = field(default_factory=dict)


def _accumulate(totals: dict, stats: dict) -> None:
    for key, value in stats.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        totals[key] = totals.get(key, 0) + value


# ---------------------------------------------------------------------- #
# executors
# ---------------------------------------------------------------------- #


class _DirectExecutor:
    """Replays ops through the in-process plfs API, keeping one O_RDWR
    handle per logical file and harvesting fast-lane counters on close."""

    def __init__(
        self, root: str, config: BenchConfig, seed: int, params: dict | None = None
    ):
        self.root = root
        self.config = config
        self.seed = seed
        self.params = params or {}
        self.handles: dict[str, object] = {}
        #: collective engines (coll_* ops), one per logical shared file
        self.engines: dict[str, object] = {}
        self.writer_totals: dict = {}
        self.reader_totals: dict = {}
        self.collective_totals: dict = {}

    def _path(self, file: str) -> str:
        path = os.path.join(self.root, file)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        return path

    def _handle(self, file: str):
        fd = self.handles.get(file)
        if fd is None:
            fd = plfs.plfs_open(
                self._path(file),
                os.O_CREAT | os.O_RDWR,
                mode=0o644,
                open_opt=self.config.open_options(),
            )
            self.handles[file] = fd
        return fd

    def _harvest(self, fd) -> None:
        if getattr(fd, "writer", None) is not None:
            _accumulate(self.writer_totals, fd.writer.stats)
        reader = getattr(fd, "_reader", None)
        if reader is not None:
            _accumulate(self.reader_totals, reader.stats)

    # -- op surface ----------------------------------------------------- #

    def create(self, op: Op) -> None:
        fd = plfs.plfs_open(
            self._path(op.file),
            os.O_CREAT | os.O_WRONLY,
            mode=0o644,
            open_opt=self.config.open_options(),
        )
        try:
            if op.size:
                data = payload(self.seed, op.file, 0, op.size)
                plfs.plfs_write(fd, data, op.size, 0)
        finally:
            self._harvest(fd)
            plfs.plfs_close(fd)

    def write(self, op: Op) -> int:
        data = payload(self.seed, op.file, op.offset, op.size)
        return plfs.plfs_write(self._handle(op.file), data, op.size, op.offset)

    def read(self, op: Op) -> int:
        return len(plfs.plfs_read(self._handle(op.file), op.size, op.offset))

    def fsync(self, op: Op) -> None:
        plfs.plfs_sync(self._handle(op.file))

    # -- collective ops (repro.collective engine, one per shared file) -- #

    def _engine(self, op: Op):
        eng = self.engines.get(op.file)
        if eng is None:
            from repro.collective import CollectiveFile
            from repro.mpiio.hints import MPIHints

            # tenant name selects the path under test; "inline" exchange
            # keeps the counters host-independent (no shm availability
            # dependence in the guarded record)
            cb = op.tenant != "indep"
            eng = CollectiveFile(
                self._path(op.file),
                nodes=int(self.params.get("nodes", 4)),
                ppn=int(self.params.get("ppn", 4)),
                hints=MPIHints(romio_cb_write=cb, romio_cb_read=cb),
                open_opt=self.config.open_options(),
                exchange="inline",
            )
            eng.set_interleaved(int(self.params.get("record_bytes", 4096)))
            self.engines[op.file] = eng
        return eng

    def coll_write(self, op: Op) -> int:
        eng = self._engine(op)
        ranks = eng.ranks
        contribs = {
            r: payload(
                self.seed, op.file, (op.offset * ranks + r) * op.size, op.size
            )
            for r in range(ranks)
        }
        return eng.write_at_all(contribs)

    def coll_read(self, op: Op) -> int:
        eng = self._engine(op)
        got = eng.read_at_all(op.size, position=op.offset * op.size)
        return sum(len(v) for v in got.values())

    def finish(self) -> dict:
        for fd in self.handles.values():
            self._harvest(fd)
            plfs.plfs_close(fd)
        self.handles.clear()
        for eng in self.engines.values():
            eng.close()
            _accumulate(self.writer_totals, eng.writer_stats)
            _accumulate(self.collective_totals, eng.counters)
        self.engines.clear()
        return export_runtime_counters(
            cache_stats=shared_cache().stats,
            writer_stats=self.writer_totals,
            reader_stats=self.reader_totals,
            collective_stats=self.collective_totals or None,
        )


class _DaemonExecutor:
    """Replays ops through a running plfsd daemon: one client connection
    per tenant, handles held daemon-side, every create serializing on the
    daemon's global meta lock."""

    def __init__(self, root: str, socket_path: str, seed: int):
        from repro.plfsd import client as plfsd_client

        self.root = root
        self.socket_path = socket_path
        self.seed = seed
        self._connect = plfsd_client.connect
        self.clients: dict[str, object] = {}
        self.handles: dict[str, object] = {}

    def _client(self, tenant: str):
        cli = self.clients.get(tenant)
        if cli is None:
            cli = self._connect(self.socket_path, name=f"bench-{tenant}")
            self.clients[tenant] = cli
        return cli

    def _path(self, file: str) -> str:
        path = os.path.join(self.root, file)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        return path

    def _handle(self, op: Op):
        fd = self.handles.get(op.file)
        if fd is None:
            fd = self._client(op.tenant).open(
                self._path(op.file), os.O_CREAT | os.O_RDWR, 0o644
            )
            self.handles[op.file] = fd
        return fd

    # -- op surface ----------------------------------------------------- #

    def create(self, op: Op) -> None:
        fd = self._client(op.tenant).open(
            self._path(op.file), os.O_CREAT | os.O_WRONLY, 0o644
        )
        try:
            if op.size:
                data = payload(self.seed, op.file, 0, op.size)
                plfs.plfs_write(fd, data, op.size, 0)
        finally:
            plfs.plfs_close(fd)

    def write(self, op: Op) -> int:
        data = payload(self.seed, op.file, op.offset, op.size)
        return plfs.plfs_write(self._handle(op), data, op.size, op.offset)

    def read(self, op: Op) -> int:
        return len(plfs.plfs_read(self._handle(op), op.size, op.offset))

    def fsync(self, op: Op) -> None:
        plfs.plfs_sync(self._handle(op))

    def finish(self) -> dict:
        from repro.plfsd import stress

        for fd in self.handles.values():
            plfs.plfs_close(fd)
        self.handles.clear()
        stats = stress.daemon_stats(self.socket_path)
        for cli in self.clients.values():
            cli.close()
        self.clients.clear()
        counters = export_runtime_counters(server_stats=stats)
        agg = stats.get("aggregate", {})
        counters["_observed_queue_wait_seconds"] = float(
            agg.get("queue_wait_seconds", 0.0)
        )
        return counters


# ---------------------------------------------------------------------- #
# crash-soak cycles (direct/objectstore only: faults inject in-process)
# ---------------------------------------------------------------------- #


def _run_crash_cycle(root: str, op: Op, ops_per_cycle: int, backend=None) -> dict:
    """One seeded crash/recovery cycle: faulted schedule -> fsck ->
    reread -> verify against the recovery invariant.  Returns the cycle's
    deterministic counter deltas.

    Under the objectstore config (*backend* given) the cycle additionally
    drains the tier, hands the store to fsck's reconcile passes, then
    round-trips the container through a prefix-scoped evict + restore —
    proving the recovered content survives losing every local copy.
    """
    from repro.faults import harness
    from repro.faults.fsck import fsck
    from repro.faults.injector import FaultInjector, FaultSpec

    point, behavior, wal = SOAK_ARMS[op.size % len(SOAK_ARMS)]
    schedule = harness.random_schedule(op.offset, ops=ops_per_cycle)
    sync_every = max(1, len(schedule) // 2)
    if point == "index_flush":
        fire = 2
    elif point == "fsync":
        fire = 1
    else:
        fire = max(1, (2 * len(schedule)) // 3)
    injector = FaultInjector([FaultSpec(point, behavior, op=fire)], seed=op.offset)

    path = os.path.join(root, op.file)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    outcome = harness.run_schedule(
        path,
        schedule,
        wal=wal,
        wal_batch=4 if wal else 1,
        injector=injector,
        sync_every=sync_every,
    )
    if backend is not None:
        backend.tier.drain()
        report = fsck(
            path, objectstore=backend.store, objectstore_root=backend.tier.root
        )
    else:
        report = fsck(path)
    content = harness.read_back(path)
    acceptable = outcome.acceptable_states()
    if content not in acceptable:
        raise AssertionError(
            f"crash_soak cycle {op.file} ({point}:{behavior}, wal={wal}) "
            f"recovered {len(content)} bytes outside the acceptable states "
            f"({len(acceptable)} candidates; fsck: {len(report.actions)} "
            f"actions, unrecoverable={report.unrecoverable})"
        )
    deltas = {
        "cycles": 1,
        "crashes": int(outcome.crashed),
        "full_recoveries": int(content == outcome.expected_full()),
        "acknowledged_writes": len(outcome.applied),
        "fsck_actions": len(report.actions),
        "fsck_rebuilt_indexes": report.rebuilt_indexes,
        "fsck_unrecoverable": len(report.unrecoverable),
        "verified_bytes": len(content),
    }
    if backend is not None:
        # The store is the authority: evict every local copy of this
        # container and fault it back, demanding identical logical reads.
        prefix = (
            os.path.relpath(path, backend.tier.root).replace(os.sep, "/") + "/"
        )
        deltas["tier_cycle_evicted_bytes"] = backend.tier.evict(prefix)
        deltas["tier_cycle_restores"] = len(backend.tier.restore_missing(prefix))
        roundtrip = harness.read_back(path)
        if roundtrip != content:
            raise AssertionError(
                f"crash_soak cycle {op.file}: evict/restore round trip "
                f"changed the recovered content "
                f"({len(roundtrip)} vs {len(content)} bytes)"
            )
    return deltas


# ---------------------------------------------------------------------- #
# stream execution
# ---------------------------------------------------------------------- #


def execute_stream(
    ops: list[Op],
    root: str,
    config: str | BenchConfig,
    seed: int,
    *,
    params: dict | None = None,
    socket_path: str | None = None,
    object_store_dir: str | None = None,
) -> ExecutionResult:
    """Replay *ops* against *root* under *config*, timing every op.

    For the ``daemon`` config the caller owns the daemon lifecycle and
    passes its *socket_path* (so differential tests can replay several
    streams against one daemon).  ``sim`` streams never touch *root*.
    The ``objectstore`` config installs the tiered object backend for
    the duration of the replay (*object_store_dir* defaults to a sibling
    of *root*) and drains the tier at the end — the sync barrier the
    wall-clock includes, exactly as the CAWL sim charges for it.
    """
    cfg = CONFIGS[config] if isinstance(config, str) else config
    params = params or {}
    if cfg.sim:
        from repro.sim.cawl import execute_sim_stream

        return execute_sim_stream(ops, seed, params=params)
    if cfg.daemon:
        if socket_path is None:
            raise ValueError("daemon config requires socket_path")
        executor = _DaemonExecutor(root, socket_path, seed)
    else:
        executor = _DirectExecutor(root, cfg, seed, params)

    backend = None
    previous = None
    if cfg.objectstore:
        from repro.plfs import backing
        from repro.plfs.objectstore import make_backend

        backend = make_backend(root, object_store_dir)
        previous = backing.install(backend)

    result = ExecutionResult()
    dispatch = {
        "create": executor.create,
        "write": executor.write,
        "read": executor.read,
        "fsync": executor.fsync,
        "coll_write": getattr(executor, "coll_write", None),
        "coll_read": getattr(executor, "coll_read", None),
    }
    by_kind: dict[str, int] = {}
    bytes_read = 0
    t_start = time.perf_counter()
    try:
        for op in ops:
            by_kind[op.kind] = by_kind.get(op.kind, 0) + 1
            t0 = time.perf_counter()
            if op.kind == "crash_cycle":
                if cfg.daemon or cfg.wal:
                    raise ValueError(
                        "crash_cycle ops only run on the direct or "
                        f"objectstore configs, not {cfg.name}"
                    )
                deltas = _run_crash_cycle(
                    root, op, int(params.get("ops_per_cycle", 18)), backend=backend
                )
                _accumulate(result.counters, deltas)
            else:
                fn = dispatch.get(op.kind)
                if fn is None:
                    raise ValueError(
                        f"op kind {op.kind!r} is not supported by the "
                        f"{cfg.name} config"
                    )
                if op.kind in ("read", "coll_read"):
                    bytes_read += fn(op)
                else:
                    fn(op)
            result.latencies.setdefault((op.tenant, op.kind), []).append(
                time.perf_counter() - t0
            )
        result.counters.update(executor.finish())
        if backend is not None:
            backend.tier.drain()
    finally:
        if backend is not None:
            backing.install(previous)
    result.wall_seconds = time.perf_counter() - t_start
    if backend is not None:
        result.counters.update(backend.counters())
    result.counters["ops_total"] = len(ops)
    for kind, n in sorted(by_kind.items()):
        result.counters[f"ops_{kind}"] = n
    result.counters["bytes_read_back"] = bytes_read
    queue_wait = result.counters.pop("_observed_queue_wait_seconds", None)
    if queue_wait is not None:
        result.observed["queue_wait_seconds"] = queue_wait
        creates = result.counters.get("daemon_creates", 0)
        if creates:
            result.observed["queue_wait_per_create_seconds"] = queue_wait / creates
    return result


# ---------------------------------------------------------------------- #
# calibration + percentiles
# ---------------------------------------------------------------------- #

_CALIBRATION_WRITES = 48
_CALIBRATION_CREATES = 6


def calibration_probe(root: str) -> float:
    """Best-of-3 timing of a fixed direct-path workload (creates + small
    writes + readback) run in this process: the normalization unit every
    guarded timing metric divides by."""
    base = os.path.join(root, "__calibration__")
    counter = [0]

    def probe() -> None:
        counter[0] += 1
        d = os.path.join(base, f"p{counter[0]}")
        os.makedirs(d, exist_ok=True)
        fd = plfs.plfs_open(os.path.join(d, "probe"), os.O_CREAT | os.O_RDWR)
        chunk = b"\xa5" * 1024
        for i in range(_CALIBRATION_WRITES):
            plfs.plfs_write(fd, chunk, len(chunk), i * len(chunk))
        plfs.plfs_sync(fd)
        plfs.plfs_read(fd, 8192, 0)
        plfs.plfs_close(fd)
        for i in range(_CALIBRATION_CREATES):
            tiny = plfs.plfs_open(
                os.path.join(d, f"tiny.{i}"), os.O_CREAT | os.O_WRONLY
            )
            plfs.plfs_write(tiny, b"x", 1, 0)
            plfs.plfs_close(tiny)

    from .guard import best_of

    elapsed = best_of(probe, 3)
    shutil.rmtree(base, ignore_errors=True)
    return elapsed


def _percentile(sorted_xs: list[float], q: float) -> float:
    if not sorted_xs:
        return 0.0
    return sorted_xs[int(q * (len(sorted_xs) - 1))]


def summarize_latencies(latencies: dict) -> tuple[dict, dict]:
    """(per-kind, per-tenant) latency summaries from raw samples."""
    per_kind: dict[str, list[float]] = {}
    per_tenant: dict[str, list[float]] = {}
    for (tenant, kind), xs in latencies.items():
        per_kind.setdefault(kind, []).extend(xs)
        per_tenant.setdefault(tenant, []).extend(xs)

    def summary(xs: list[float]) -> dict:
        xs = sorted(xs)
        return {
            "count": len(xs),
            "mean": statistics.fmean(xs) if xs else 0.0,
            "p50": _percentile(xs, 0.50),
            "p99": _percentile(xs, 0.99),
        }

    return (
        {k: summary(v) for k, v in sorted(per_kind.items())},
        {t: summary(v) for t, v in sorted(per_tenant.items())},
    )


def derive_metrics(
    per_kind: dict,
    per_tenant: dict,
    wall_seconds: float,
    calibration_seconds: float,
) -> dict:
    """The dimensionless ``derived`` section: calibration-normalized
    timings plus within-run ratios — the only timing metrics guards
    compare across runs."""
    unit = calibration_seconds or 1.0
    normalized = {"wall_over_calibration": wall_seconds / unit}
    for kind, summary in per_kind.items():
        if summary["count"]:
            normalized[f"p50_{kind}_over_calibration"] = summary["p50"] / unit
    ratios: dict[str, float] = {}
    if (
        "create" in per_kind
        and "write" in per_kind
        and per_kind["write"]["p50"] > 0
    ):
        ratios["create_p50_over_write_p50"] = (
            per_kind["create"]["p50"] / per_kind["write"]["p50"]
        )
    if (
        "read" in per_kind
        and "write" in per_kind
        and per_kind["write"]["p50"] > 0
    ):
        ratios["read_p50_over_write_p50"] = (
            per_kind["read"]["p50"] / per_kind["write"]["p50"]
        )
    tenants = sorted(per_tenant)
    if len(tenants) == 2 and per_tenant[tenants[1]]["p50"] > 0:
        a, b = tenants
        ratios[f"{a}_p50_over_{b}_p50"] = (
            per_tenant[a]["p50"] / per_tenant[b]["p50"]
        )
    return {"normalized": normalized, "ratios": ratios}


# ---------------------------------------------------------------------- #
# the top-level entry point
# ---------------------------------------------------------------------- #


def _scratch_root(tag: str) -> str:
    """Short-pathed scratch dir (unix sockets cap at ~107 chars; tmpfs
    preferred so the trajectory measures code, not disk scheduling)."""
    base = "/dev/shm" if os.path.isdir("/dev/shm") else "/tmp"
    return tempfile.mkdtemp(prefix=f"bench-{tag}-", dir=base)


def run_scenario(
    scenario_name: str,
    *,
    profile: str = "short",
    config: str = "direct",
    seed: int = DEFAULT_SEED,
    params: dict | None = None,
    store: str | None = None,
    guard_policy: dict | None = None,
) -> dict:
    """Run one scenario end to end and return its validated BenchRecord."""
    scenario = SCENARIOS[scenario_name]
    if config not in scenario.configs:
        raise ValueError(
            f"scenario {scenario_name!r} does not support config {config!r} "
            f"(supported: {scenario.configs})"
        )
    cfg = CONFIGS[config]
    ops = scenario.ops(seed, profile, params)
    merged_params = scenario.profile_params(profile, params)

    owns_store = store is None
    root = store or _scratch_root(scenario_name)
    daemon_proc = None
    socket_path = None
    try:
        if cfg.sim:
            calibration = 1.0  # simulated clocks need no normalization
        else:
            calibration = calibration_probe(root)
        shared_cache().clear()
        shared_cache().reset_stats()
        if cfg.daemon:
            from repro.plfsd import stress

            socket_path = os.path.join(root, "bench.sock")
            daemon_proc = stress.start_daemon(socket_path)
        result = execute_stream(
            ops,
            os.path.join(root, "backend"),
            cfg,
            seed,
            params=merged_params,
            socket_path=socket_path,
        )
    finally:
        if daemon_proc is not None:
            from repro.plfsd import stress

            stress.stop_daemon(daemon_proc, socket_path)
        if owns_store:
            shutil.rmtree(root, ignore_errors=True)

    per_kind, per_tenant = summarize_latencies(result.latencies)
    timings = {
        "wall_seconds": result.wall_seconds,
        "calibration_seconds": calibration,
        "per_kind": per_kind,
        "per_tenant": per_tenant,
    }
    timings.update(result.observed)
    return record_mod.assert_valid(
        record_mod.make_record(
            scenario=scenario_name,
            profile=profile,
            config=cfg.name,
            seed=seed,
            params={k: merged_params[k] for k in sorted(merged_params)},
            op_stream=stream_summary(ops),
            counters=result.counters,
            timings=timings,
            derived=derive_metrics(
                per_kind, per_tenant, result.wall_seconds, calibration
            ),
            guard=guard_policy,
        )
    )
