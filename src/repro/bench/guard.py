"""Ratio-based regression guards and shared timing helpers.

Two consumers:

- the benchmark suite (``benchmarks/test_*.py``) uses the sampling and
  assertion helpers (:func:`median_time`, :func:`best_of`,
  :func:`assert_faster`, :func:`assert_inflection`, :func:`best_ratio`)
  instead of per-file ad-hoc threshold code;
- ``repro-bench guard`` uses :func:`compare_records` /
  :func:`guard_directory` to diff fresh ``BENCH_*.json`` records against
  the committed baseline.

The comparison rules are deliberately asymmetric:

- **counters** are deterministic under a fixed seed, so any drift is a
  behaviour change and fails exactly;
- **timings** are never compared across runs — only the *dimensionless*
  ``derived.normalized`` (timings over the record's own calibration
  probe) and ``derived.ratios`` (within-run ratios) are, and only as
  ``current/baseline`` ratios against a tolerance.  Hardware speed
  cancels out of both sides, which is what keeps the guard from flaking
  on shared CI runners while still catching a real 2x regression.

Tolerance priority: explicit argument > the baseline record's own
``guard.max_timing_regression`` > :data:`record.DEFAULT_MAX_TIMING_REGRESSION`.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field

from . import record as record_mod


# ---------------------------------------------------------------------- #
# sampling + assertion helpers (shared by benchmarks/)
# ---------------------------------------------------------------------- #


def sample_times(fn, repeats: int = 5) -> list[float]:
    """Wall-clock samples of ``fn()`` (perf_counter)."""
    out = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        out.append(time.perf_counter() - t0)
    return out


def median_time(fn, repeats: int = 5) -> float:
    """Median-of-N timing: the default estimator for comparing two code
    paths run back to back on the same machine."""
    return statistics.median(sample_times(fn, repeats))


def best_of(fn, repeats: int = 3) -> float:
    """Best-of-N timing: the estimator for *calibration probes* and
    noisy shared hosts, where the minimum is the least-stolen sample."""
    return min(sample_times(fn, repeats))


def assert_faster(fast: float, slow: float, label: str = "", margin: float = 1.0) -> None:
    """Guard that *fast* beat *slow* (optionally by ``margin``x).

    The canonical ratio-based guard: both sides were measured in the same
    process moments apart, so the comparison is hardware-independent.
    """
    if not fast * margin < slow:
        raise AssertionError(
            f"{label or 'fast path'}: {fast * 1e3:.2f} ms did not beat "
            f"{slow * 1e3:.2f} ms"
            + (f" by the required {margin:g}x margin" if margin != 1.0 else "")
        )


def assert_inflection(lo: float, hi: float, factor: float, label: str = "") -> None:
    """Guard that a metric inflected upward by at least *factor* between
    the low and high end of a sweep (e.g. queue wait per create as
    clients are added — the §V.C meltdown signal)."""
    if not hi > lo * factor:
        raise AssertionError(
            f"{label or 'sweep'}: no {factor:g}x inflection "
            f"({lo:.3g} -> {hi:.3g})"
        )


def best_ratio(ratios: list[float]) -> float:
    """Best of paired-run ratios: one stolen-CPU burst landing on one
    side of one pair says nothing about the code, so paired benchmarks
    assert on the cleanest pair."""
    if not ratios:
        raise ValueError("no ratios sampled")
    return max(ratios)


# ---------------------------------------------------------------------- #
# record-vs-baseline comparison
# ---------------------------------------------------------------------- #


@dataclass
class GuardResult:
    """Outcome of one record-vs-baseline comparison."""

    name: str
    violations: list[str] = field(default_factory=list)
    checked_counters: int = 0
    checked_metrics: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


def _tolerance(baseline: dict, override: float | None) -> float:
    if override is not None:
        return override
    embedded = baseline.get("guard", {}).get("max_timing_regression")
    if embedded is not None:
        return float(embedded)
    return record_mod.DEFAULT_MAX_TIMING_REGRESSION


def compare_records(
    current: dict,
    baseline: dict,
    *,
    max_timing_regression: float | None = None,
    name: str = "",
) -> GuardResult:
    """Diff *current* against *baseline* under the guard rules."""
    result = GuardResult(name=name or baseline.get("scenario", "?"))
    limit = _tolerance(baseline, max_timing_regression)

    for key in ("scenario", "profile", "config", "seed", "schema_version"):
        if current.get(key) != baseline.get(key):
            result.violations.append(
                f"{key} mismatch: current {current.get(key)!r} "
                f"!= baseline {baseline.get(key)!r}"
            )
    if result.violations:
        return result

    base_digest = baseline.get("op_stream", {}).get("digest")
    cur_digest = current.get("op_stream", {}).get("digest")
    if base_digest and cur_digest and base_digest != cur_digest:
        result.violations.append(
            "op-stream digest changed: the generator no longer reproduces "
            "the baseline workload under this seed"
        )

    for key, base_val in sorted(baseline.get("counters", {}).items()):
        result.checked_counters += 1
        cur_val = current.get("counters", {}).get(key)
        if cur_val != base_val:
            result.violations.append(
                f"counter {key}: {base_val!r} -> {cur_val!r} "
                "(counters are deterministic; exact match required)"
            )

    for section in ("normalized", "ratios"):
        base_sub = baseline.get("derived", {}).get(section, {})
        cur_sub = current.get("derived", {}).get(section, {})
        for key, base_val in sorted(base_sub.items()):
            result.checked_metrics += 1
            cur_val = cur_sub.get(key)
            if cur_val is None:
                result.violations.append(f"{section}.{key}: missing from current record")
                continue
            if base_val <= 0:
                continue
            ratio = cur_val / base_val
            if ratio > limit:
                result.violations.append(
                    f"{section}.{key}: {base_val:.4g} -> {cur_val:.4g} "
                    f"({ratio:.2f}x > allowed {limit:g}x)"
                )
    return result


def guard_directory(
    current_dir: str,
    baseline_dir: str,
    *,
    max_timing_regression: float | None = None,
    scenarios: list[str] | None = None,
    configs: list[str] | None = None,
) -> list[GuardResult]:
    """Compare every baseline ``BENCH_*.json`` against its counterpart in
    *current_dir*.  A baseline with no (or an unreadable) counterpart is
    a violation: the trajectory must never silently lose a scenario.
    *scenarios* / *configs* restrict which baselines are compared (a CI
    job that only regenerated one config guards only that config)."""
    import os

    results: list[GuardResult] = []
    baselines = record_mod.load_all(baseline_dir)
    if not baselines:
        res = GuardResult(name=baseline_dir)
        res.violations.append(f"no BENCH_*.json baselines found in {baseline_dir}")
        return [res]
    for name, baseline in baselines.items():
        if scenarios and baseline.get("scenario") not in scenarios:
            continue
        if configs and baseline.get("config") not in configs:
            continue
        path = os.path.join(current_dir, name)
        try:
            current = record_mod.load(path)
        except FileNotFoundError:
            res = GuardResult(name=name)
            res.violations.append(f"current record missing: {path}")
            results.append(res)
            continue
        except ValueError as exc:
            res = GuardResult(name=name)
            res.violations.append(f"current record invalid: {exc}")
            results.append(res)
            continue
        results.append(
            compare_records(
                current,
                baseline,
                max_timing_regression=max_timing_regression,
                name=name,
            )
        )
    return results


def render_results(results: list[GuardResult]) -> str:
    lines = []
    for res in results:
        status = "ok" if res.ok else "FAIL"
        lines.append(
            f"{status:4s} {res.name}  "
            f"({res.checked_counters} counters, {res.checked_metrics} metrics)"
        )
        for v in res.violations:
            lines.append(f"       - {v}")
    total = sum(len(r.violations) for r in results)
    lines.append(
        f"{len(results)} record(s) checked, {total} violation(s)"
    )
    return "\n".join(lines)
