"""The versioned ``BenchRecord`` schema and its canonical on-disk form.

Every benchmark run — scenario runs from :mod:`repro.bench.runner`, the
daemon stress benchmark, the CAWL sim — lands as one ``BENCH_*.json``
in the canonical output directory (``benchmarks/out``), validated against
this schema.  Records split cleanly into:

``counters``
    Deterministic under a fixed seed: op counts, bytes, cache hits,
    merge/flush/WAL-batch counts.  Guards compare these *exactly* —
    a changed counter means the code path changed, not the hardware.
``timings``
    Wall-clock measurements, never guarded directly.
``derived``
    Dimensionless ``normalized`` metrics (timings over the record's own
    calibration probe) and within-run ``ratios`` (e.g. queue-wait
    inflection).  Hardware largely cancels out of both, so guards
    compare them across runs as *ratios with a tolerance* instead of
    absolute times — the property that keeps CI from flaking.

Validation is hand-rolled (no jsonschema in the image): it checks the
required keys, their types, and the split above, and returns a list of
problems so callers can report all of them at once.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
from numbers import Number

from repro.analysis.export import canonical_json

SCHEMA_VERSION = 1
RECORD_KIND = "bench-record"

#: default relative regression tolerance for normalized timings / ratios
#: when neither the CLI nor the baseline record pins one (1.75 means a
#: guarded metric may grow up to 75% over baseline before failing).
DEFAULT_MAX_TIMING_REGRESSION = 1.75

_REQUIRED: dict[str, type | tuple[type, ...]] = {
    "schema_version": int,
    "kind": str,
    "scenario": str,
    "profile": str,
    "config": str,
    "seed": int,
    "params": dict,
    "counters": dict,
    "timings": dict,
    "derived": dict,
    "environment": dict,
}

_OPTIONAL: dict[str, type | tuple[type, ...]] = {
    "op_stream": dict,
    "guard": dict,
}


def environment_fingerprint() -> dict:
    """Where a record was produced (no wall-clock: records must be
    reproducible byte-for-byte aside from measured timings)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
    }


def make_record(
    *,
    scenario: str,
    profile: str,
    config: str,
    seed: int,
    params: dict,
    counters: dict,
    timings: dict,
    derived: dict,
    op_stream: dict | None = None,
    guard: dict | None = None,
) -> dict:
    """Assemble a schema-`validate`-clean record dict."""
    record = {
        "schema_version": SCHEMA_VERSION,
        "kind": RECORD_KIND,
        "scenario": scenario,
        "profile": profile,
        "config": config,
        "seed": seed,
        "params": params,
        "counters": counters,
        "timings": timings,
        "derived": derived,
        "environment": environment_fingerprint(),
    }
    if op_stream is not None:
        record["op_stream"] = op_stream
    if guard is not None:
        record["guard"] = guard
    return record


def validate(record) -> list[str]:
    """All schema problems with *record* (empty list = valid)."""
    problems: list[str] = []
    if not isinstance(record, dict):
        return [f"record must be a dict, got {type(record).__name__}"]
    for key, typ in _REQUIRED.items():
        if key not in record:
            problems.append(f"missing required key: {key}")
        elif not isinstance(record[key], typ):
            problems.append(
                f"{key} must be {getattr(typ, '__name__', typ)}, "
                f"got {type(record[key]).__name__}"
            )
    for key, typ in _OPTIONAL.items():
        if key in record and not isinstance(record[key], typ):
            problems.append(
                f"{key} must be {getattr(typ, '__name__', typ)}, "
                f"got {type(record[key]).__name__}"
            )
    if problems:
        return problems
    if record["kind"] != RECORD_KIND:
        problems.append(f"kind must be {RECORD_KIND!r}, got {record['kind']!r}")
    if record["schema_version"] != SCHEMA_VERSION:
        problems.append(
            f"schema_version {record['schema_version']} != {SCHEMA_VERSION}"
        )
    for key, value in record["counters"].items():
        if not isinstance(value, Number) or isinstance(value, bool):
            problems.append(f"counters[{key!r}] must be a number")
    for section in ("normalized", "ratios"):
        sub = record["derived"].get(section, {})
        if not isinstance(sub, dict):
            problems.append(f"derived.{section} must be a dict")
            continue
        for key, value in sub.items():
            if not isinstance(value, Number) or isinstance(value, bool):
                problems.append(f"derived.{section}[{key!r}] must be a number")
    return problems


def assert_valid(record) -> dict:
    problems = validate(record)
    if problems:
        raise ValueError(
            "invalid BenchRecord: " + "; ".join(problems)
        )
    return record


# ---------------------------------------------------------------------- #
# the trajectory store: canonical filenames + load/save
# ---------------------------------------------------------------------- #


def record_filename(scenario: str, config: str = "direct") -> str:
    """``BENCH_<scenario>.json`` for the default (direct) configuration;
    other configs get a ``__<config>`` suffix so one scenario's configs
    coexist in the canonical directory."""
    if config in ("direct", ""):
        return f"BENCH_{scenario}.json"
    return f"BENCH_{scenario}__{config}.json"


def default_out_dir(start: str | None = None) -> str:
    """The canonical trajectory directory: ``$REPRO_BENCH_OUT`` when set,
    else ``benchmarks/out`` relative to *start* (default: cwd)."""
    env = os.environ.get("REPRO_BENCH_OUT", "").strip()
    if env:
        return env
    return os.path.join(start or os.getcwd(), "benchmarks", "out")


def save(record: dict, out_dir: str, filename: str | None = None) -> str:
    """Validate and write *record* to its canonical file; returns the path.

    *filename* overrides the derived name for records that predate the
    scenario/config naming (e.g. ``BENCH_plfsd.json``)."""
    assert_valid(record)
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(
        out_dir, filename or record_filename(record["scenario"], record["config"])
    )
    with open(path, "w") as fh:
        fh.write(canonical_json(record) + "\n")
    return path


def load(path: str) -> dict:
    with open(path) as fh:
        record = json.load(fh)
    return assert_valid(record)


def load_all(directory: str) -> dict[str, dict]:
    """Every ``BENCH_*.json`` in *directory*, keyed by filename."""
    out: dict[str, dict] = {}
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return out
    for name in names:
        if name.startswith("BENCH_") and name.endswith(".json"):
            out[name] = load(os.path.join(directory, name))
    return out


# ---------------------------------------------------------------------- #
# the append-only history (ROADMAP item 3): one line per run, forever
# ---------------------------------------------------------------------- #

HISTORY_FILENAME = "trajectory.jsonl"


def history_dir_for(out_dir: str) -> str:
    """The history directory paired with a trajectory *out_dir*:
    ``$REPRO_BENCH_HISTORY`` when set, else the ``history`` sibling of
    *out_dir* (so ``benchmarks/out`` runs append to
    ``benchmarks/history`` and scratch-dir test runs stay in scratch)."""
    env = os.environ.get("REPRO_BENCH_HISTORY", "").strip()
    if env:
        return env
    parent = os.path.dirname(os.path.abspath(out_dir))
    return os.path.join(parent, "history")


def history_line(record: dict, *, timestamp: str | None = None) -> dict:
    """The compact trajectory line for one record: identity (scenario /
    config / seed / op-stream digest), a digest of the exact-guarded
    counters, and the dimensionless derived metrics — enough to plot a
    perf trajectory across commits without replaying anything."""
    assert_valid(record)
    counters_digest = hashlib.sha256(
        canonical_json(record["counters"]).encode()
    ).hexdigest()
    line = {
        "scenario": record["scenario"],
        "profile": record["profile"],
        "config": record["config"],
        "seed": record["seed"],
        "op_digest": record.get("op_stream", {}).get("digest", ""),
        "counters_digest": counters_digest,
        "normalized": record["derived"].get("normalized", {}),
        "ratios": record["derived"].get("ratios", {}),
        "python": record["environment"].get("python", ""),
    }
    if timestamp is not None:
        line["timestamp"] = timestamp
    return line


def append_history(
    record: dict, history_dir: str, *, timestamp: str | None = None
) -> str:
    """Append *record*'s trajectory line to the append-only history file
    (one JSON object per line; never rewritten); returns the path."""
    os.makedirs(history_dir, exist_ok=True)
    path = os.path.join(history_dir, HISTORY_FILENAME)
    with open(path, "a") as fh:
        fh.write(json.dumps(history_line(record, timestamp=timestamp), sort_keys=True))
        fh.write("\n")
    return path


def load_history(history_dir: str) -> list[dict]:
    """Every line of the append-only history, oldest first."""
    path = os.path.join(history_dir, HISTORY_FILENAME)
    out: list[dict] = []
    try:
        with open(path) as fh:
            for raw in fh:
                raw = raw.strip()
                if raw:
                    out.append(json.loads(raw))
    except OSError:
        return out
    return out
