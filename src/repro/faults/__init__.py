"""``repro.faults`` — deterministic fault injection and crash recovery.

PLFS's log-structured container turns one logical file into many backend
files whose mutual consistency is maintained by ordering conventions, not
atomicity: data bytes land before their index records, openhost markers
bracket writer lifetimes, cached metadata is advisory.  This package
stress-tests those conventions and repairs their violations:

- :mod:`repro.faults.injector` — a seedable :class:`FaultInjector` that
  wraps the PLFS backing store (:mod:`repro.plfs.backing`) and makes any
  persistence operation fail deterministically: short writes, torn
  (partial + crash) writes, ``ENOSPC``, ``EINTR``, or a process kill
  modelled as :class:`InjectedCrash`.
- :mod:`repro.faults.matrix` — the fault matrix: every injection point and
  damage pattern, each with its post-crash invariant and recovery verdict.
- :mod:`repro.faults.fsck` — ``repro-fsck``, the :func:`plfs_recover`
  analogue: truncates torn index droppings, rebuilds indexes from
  write-ahead droppings, quarantines orphans, restores the container
  skeleton, clears stale markers and rebuilds cached metadata.
- :mod:`repro.faults.harness` — the crash-consistency test driver: runs a
  write schedule against a container with one armed fault while keeping a
  shadow copy, then checks the recovered container against it.
"""

from .fsck import FsckAction, FsckReport, fsck
from .injector import (
    FaultEvent,
    FaultInjector,
    FaultSpec,
    FaultyBackingStore,
    InjectedCrash,
    injector_from_env,
)
from .matrix import FAULT_MATRIX, FaultCase, matrix_by_name

__all__ = [
    "FaultSpec",
    "FaultEvent",
    "FaultInjector",
    "FaultyBackingStore",
    "InjectedCrash",
    "injector_from_env",
    "FAULT_MATRIX",
    "FaultCase",
    "matrix_by_name",
    "fsck",
    "FsckReport",
    "FsckAction",
]
