"""``repro-fsck``: repair a PLFS container after a crash or backend damage.

The Python analogue of the C distribution's ``plfs_recover``, extended for
the write-ahead index.  Repairs are ordered so each step only ever sees
state the previous steps made consistent:

1. restore missing skeleton directories (``openhosts/``, ``meta/``);
2. per data dropping, make its index authoritative again:

   - a surviving write-ahead dropping is a superset of the flushed index
     (records are written ahead of every data append and only deleted on
     clean close), so the index is **rebuilt** from the WAL's whole-record
     prefix, clipped to the bytes the data dropping physically holds;
   - otherwise a torn index dropping is truncated to its last whole
     record, and any unindexed data tail is trimmed and reported
     **unrecoverable** (nothing on disk maps those bytes to logical
     offsets);
   - a data dropping with no index and no WAL is quarantined (renamed out
     of the data namespace) and reported unrecoverable;

3. orphan index droppings (index without data) are deleted — and when
   the orphan's records promised bytes that no quarantine holds, the
   extent is reported **unrecoverable** rather than silently dropped
   (the lost-PUT / vanished-dropping verdict);
4. stale openhost markers are cleared (fsck runs offline, like the C
   tool);
5. the cached-size metadata is rebuilt from the repaired global index;
6. the persistent compacted global index is audited: a copy whose epoch
   no longer matches the (possibly just-repaired) droppings — or that
   does not parse — is deleted, never trusted, and leftover compaction
   temporaries (``global.index.tmp.*``, a crash mid-compaction) are
   swept;
7. a final :func:`~repro.plfs.tools.plfs_check` verifies the result.

When the container is tiered over an object store (*objectstore* /
*objectstore_root* arguments), two reconcile passes bracket the repair:
committed objects whose local copies are missing are restored first
(the store is the authority; the tier is a cache), and after repair the
store is swept (torn multipart staging, crashed commit temporaries) and
resynced to the repaired container so stale objects cannot resurrect.

``dry_run`` records every action and verdict without touching the
container.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.plfs import constants, util
from repro.plfs.cache import invalidate as invalidate_index_cache
from repro.plfs.container import Container, assert_container
from repro.plfs.errors import CorruptIndexError
from repro.plfs.index import (
    clip_to_physical,
    load_global_index,
    pack_records,
    parse_compacted,
    split_torn,
)
from repro.plfs.tools import ContainerReport, plfs_check

#: prefix quarantined (orphaned) data droppings are renamed under, taking
#: them out of the ``dropping.data.`` namespace the reader enumerates
QUARANTINE_PREFIX = "quarantine."


@dataclass(frozen=True)
class FsckAction:
    """One repair performed (or, under ``dry_run``, proposed)."""

    kind: str
    path: str
    detail: str

    def render(self) -> str:
        return f"{self.kind:24s} {self.path}: {self.detail}"


@dataclass
class FsckReport:
    """Outcome of one container's fsck."""

    path: str
    dry_run: bool = False
    actions: list[FsckAction] = field(default_factory=list)
    #: losses with no on-disk recovery path — the "detected, reported
    #: verdict" the fault matrix requires for non-recoverable faults
    unrecoverable: list[str] = field(default_factory=list)
    rebuilt_indexes: int = 0
    clipped_bytes: int = 0
    trimmed_bytes: int = 0
    quarantined_bytes: int = 0
    check: ContainerReport | None = None

    @property
    def ok(self) -> bool:
        """Fully recovered: container consistent and nothing was lost."""
        return (
            not self.unrecoverable
            and self.check is not None
            and self.check.ok
        )

    @property
    def repaired(self) -> bool:
        return bool(self.actions)

    def act(self, kind: str, path: str, detail: str) -> None:
        self.actions.append(FsckAction(kind, path, detail))

    def lose(self, message: str) -> None:
        self.unrecoverable.append(message)

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "dry_run": self.dry_run,
            "ok": self.ok,
            "actions": [
                {"kind": a.kind, "path": a.path, "detail": a.detail}
                for a in self.actions
            ],
            "unrecoverable": list(self.unrecoverable),
            "rebuilt_indexes": self.rebuilt_indexes,
            "clipped_bytes": self.clipped_bytes,
            "trimmed_bytes": self.trimmed_bytes,
            "quarantined_bytes": self.quarantined_bytes,
            "check_ok": None if self.check is None else self.check.ok,
            "check_problems": [] if self.check is None else list(self.check.problems),
        }

    def render(self) -> str:
        lines = [f"fsck      : {self.path} {'(dry run)' if self.dry_run else ''}".rstrip()]
        for a in self.actions:
            lines.append(f"  {a.render()}")
        for u in self.unrecoverable:
            lines.append(f"  UNRECOVERABLE            {u}")
        if not self.actions and not self.unrecoverable:
            lines.append("  clean: nothing to repair")
        if self.check is not None:
            lines.append(
                f"result    : {'OK' if self.ok else 'LOSSY' if self.check.ok else 'BROKEN'}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------- #


def _rel(container_path: str, path: str) -> str:
    return os.path.relpath(path, container_path)


def _record_coverage(index_path: str) -> int:
    """Bytes the whole records of an index/WAL dropping promise."""
    try:
        with open(index_path, "rb") as fh:
            raw = fh.read()
    except OSError:
        return 0
    records, _ = split_torn(raw)
    if not records.shape[0]:
        return 0
    return int(records["length"].sum())


def _repair_dropping(
    report: FsckReport,
    container_path: str,
    hostdir: str,
    data_name: str,
    *,
    dry_run: bool,
) -> None:
    """Make one data dropping's index authoritative (step 2 above)."""
    data_path = os.path.join(hostdir, data_name)
    index_path = os.path.join(hostdir, util.index_name_for_data(data_name))
    wal_path = os.path.join(hostdir, util.wal_name_for_data(data_name))
    data_size = os.path.getsize(data_path)
    rel_data = _rel(container_path, data_path)

    if os.path.exists(wal_path):
        with open(wal_path, "rb") as fh:
            raw = fh.read()
        records, torn = split_torn(raw)
        clipped, lost = clip_to_physical(records, data_size)
        detail = (
            f"rebuilt {clipped.shape[0]} record(s) from write-ahead index"
        )
        if torn:
            detail += f", discarded {torn} torn WAL byte(s)"
        if lost:
            detail += f", clipped {lost} promised byte(s) that never landed"
        report.act("rebuild-index", rel_data, detail)
        report.rebuilt_indexes += 1
        report.clipped_bytes += lost
        if not dry_run:
            with open(index_path, "wb") as fh:
                fh.write(pack_records(clipped))
        # The clipped WAL byte(s) were never acknowledged to the writer —
        # clipping is reconciliation, not loss; no unrecoverable verdict.
        # Data bytes *past* the WAL coverage are a different matter: with
        # group commit (wal_batch > 1) a crash inside a batch window can
        # land appends whose records never reached the WAL.  Nothing on
        # disk maps those bytes, so they are trimmed and reported — the
        # batch-boundary half of the recovery invariant.
        indexed_end = 0
        if clipped.shape[0]:
            indexed_end = int((clipped["physical_offset"] + clipped["length"]).max())
        if data_size > indexed_end:
            stranded = data_size - indexed_end
            report.act(
                "trim-unindexed-tail",
                rel_data,
                f"trimmed {stranded} data byte(s) past the write-ahead coverage",
            )
            report.trimmed_bytes += stranded
            report.lose(
                f"{stranded} byte(s) in {rel_data} were appended inside a "
                "write-ahead batch window whose records never reached the "
                "WAL (the writer died before the batch flush)"
            )
            if not dry_run:
                with open(data_path, "ab") as fh:
                    fh.truncate(indexed_end)
        if not dry_run:
            os.unlink(wal_path)
        return

    if not os.path.exists(index_path):
        quarantine = os.path.join(hostdir, QUARANTINE_PREFIX + data_name)
        report.act(
            "quarantine-orphan",
            rel_data,
            f"{data_size} data byte(s) have no index and no write-ahead "
            f"index; moved to {os.path.basename(quarantine)}",
        )
        report.quarantined_bytes += data_size
        report.lose(
            f"{data_size} byte(s) in {rel_data}: no surviving record maps "
            "them to logical offsets"
        )
        if not dry_run:
            os.rename(data_path, quarantine)
        return

    with open(index_path, "rb") as fh:
        raw = fh.read()
    records, torn = split_torn(raw)
    if torn:
        report.act(
            "truncate-torn-index",
            _rel(container_path, index_path),
            f"dropped {torn} trailing byte(s) of a partial record",
        )
        report.lose(
            f"{torn} torn byte(s) in {_rel(container_path, index_path)}: "
            "the interrupted flush's remaining records died with the writer"
        )
    clipped, lost = clip_to_physical(records, data_size)
    if lost or (torn and not dry_run):
        if lost:
            report.act(
                "clip-index",
                _rel(container_path, index_path),
                f"clipped {lost} promised byte(s) past the data dropping's end",
            )
            report.clipped_bytes += lost
        if not dry_run:
            with open(index_path, "wb") as fh:
                fh.write(pack_records(clipped))

    indexed_end = 0
    if clipped.shape[0]:
        indexed_end = int((clipped["physical_offset"] + clipped["length"]).max())
    if data_size > indexed_end:
        stranded = data_size - indexed_end
        report.act(
            "trim-unindexed-tail",
            rel_data,
            f"trimmed {stranded} data byte(s) no index record covers",
        )
        report.trimmed_bytes += stranded
        report.lose(
            f"{stranded} unindexed byte(s) in {rel_data}: the writer died "
            "between the data append and the index flush, and no "
            "write-ahead index was enabled"
        )
        if not dry_run:
            with open(data_path, "ab") as fh:
                fh.truncate(indexed_end)


def fsck(
    path: str,
    *,
    dry_run: bool = False,
    objectstore=None,
    objectstore_root: str | None = None,
) -> FsckReport:
    """Repair the container at *path*; see the module docstring for the
    repair sequence.  Read-only when *dry_run*.

    *objectstore* is an :class:`~repro.plfs.objectstore.ObjectStore` (or
    the path of one's root directory) the container is tiered over;
    *objectstore_root* is the tiered local root object keys are relative
    to (default: the container's parent directory).
    """
    assert_container(path)
    container = Container(path)
    report = FsckReport(path=os.path.abspath(path), dry_run=dry_run)

    store = None
    if objectstore is not None:
        from repro.plfs.objectstore import ObjectStore, fsckx

        store = (
            ObjectStore(objectstore) if isinstance(objectstore, str) else objectstore
        )
        store_root = objectstore_root or os.path.dirname(os.path.abspath(path))
        # 0. the store is authority: restore evicted/lost local copies
        # before the ordinary repair steps reason about what's missing
        fsckx.reconcile_before(store, path, store_root, report, dry_run=dry_run)

    # 1. skeleton
    missing = [
        name
        for name in (constants.OPENHOSTS_DIR, constants.META_DIR)
        if not os.path.isdir(os.path.join(path, name))
    ]
    if missing:
        report.act("restore-skeleton", path, f"recreated {', '.join(missing)}")
        if not dry_run:
            container.restore_skeleton()

    # 2. per-dropping index repair
    for hostdir in container.hostdirs():
        for name in sorted(os.listdir(hostdir)):
            if name.startswith(constants.DATA_PREFIX):
                _repair_dropping(
                    report, container.path, hostdir, name, dry_run=dry_run
                )

    # 3. orphan index droppings (index without data).  Deleting the
    # orphan is right — nothing can serve reads from it — but the bytes
    # its records promised were acknowledged to a writer, and if no
    # quarantine file holds them the data dropping itself vanished (a
    # lost PUT, a vanished backend file): that extent must be reported
    # unrecoverable, not silently truncated away with the index.
    for hostdir in container.hostdirs():
        names = sorted(os.listdir(hostdir))
        present = set(names)
        for name in names:
            if not name.startswith(constants.INDEX_PREFIX):
                continue
            data_name = constants.DATA_PREFIX + name[len(constants.INDEX_PREFIX):]
            if data_name in present:
                continue
            rel_index = _rel(container.path, os.path.join(hostdir, name))
            covered = _record_coverage(os.path.join(hostdir, name))
            if covered and QUARANTINE_PREFIX + data_name not in present:
                report.lose(
                    f"{covered} byte(s) promised by {rel_index} have no "
                    "data dropping behind them: the backend lost the data "
                    "(a lost PUT or vanished dropping), not just records"
                )
            report.act(
                "drop-orphan-index",
                rel_index,
                f"index dropping ({covered} promised byte(s)) has no data dropping",
            )
            if not dry_run:
                os.unlink(os.path.join(hostdir, name))
        # leftover WALs whose data dropping vanished entirely: same
        # verdict logic, but only when no index sibling existed to carry
        # it above (the WAL is a superset of the flushed index)
        for name in names:
            if not name.startswith(constants.WAL_PREFIX):
                continue
            data_name = constants.DATA_PREFIX + name[len(constants.WAL_PREFIX):]
            if data_name in present:
                continue
            rel_wal = _rel(container.path, os.path.join(hostdir, name))
            index_name = constants.INDEX_PREFIX + name[len(constants.WAL_PREFIX):]
            covered = _record_coverage(os.path.join(hostdir, name))
            if (
                covered
                and index_name not in present
                and QUARANTINE_PREFIX + data_name not in present
            ):
                report.lose(
                    f"{covered} byte(s) promised by {rel_wal} have no data "
                    "dropping behind them: the backend lost the data"
                )
            report.act(
                "drop-orphan-wal",
                rel_wal,
                "write-ahead dropping has no data dropping",
            )
            if not dry_run:
                os.unlink(os.path.join(hostdir, name))

    # 4. stale openhost markers
    for marker in container.open_writers():
        report.act(
            "clear-openhost",
            os.path.join(constants.OPENHOSTS_DIR, marker),
            "stale marker (fsck runs offline; no writer can be live)",
        )
        if not dry_run:
            try:
                os.unlink(os.path.join(path, constants.OPENHOSTS_DIR, marker))
            except FileNotFoundError:
                pass

    # 5. rebuild cached metadata from the repaired index
    if not dry_run:
        index, _ = load_global_index(container.droppings())
        container.clear_meta()
        physical = container.physical_bytes()
        if physical or index.logical_size:
            container.drop_meta(index.logical_size, physical)
        if report.repaired:
            report.act(
                "rebuild-meta",
                constants.META_DIR,
                f"cached size {index.logical_size} from the repaired index",
            )

    # 6. compacted global index: a cache, never an authority — anything
    # not byte-for-byte trustworthy against the repaired droppings goes.
    gpath = container.global_index_path()
    if os.path.exists(gpath):
        reason = None
        try:
            with open(gpath, "rb") as fh:
                _, _, file_epoch, _ = parse_compacted(fh.read(), source=gpath)
        except (OSError, CorruptIndexError):
            reason = "does not parse"
        else:
            if file_epoch != container.index_epoch():
                reason = "epoch no longer matches the droppings"
        if reason is not None:
            report.act(
                "drop-stale-compacted",
                constants.GLOBAL_INDEX_FILE,
                f"compacted global index {reason}; readers re-merge "
                "(repro-plfs compact rebuilds it)",
            )
            if not dry_run:
                container.drop_global_index()
    for name in sorted(os.listdir(path)):
        if name.startswith(constants.GLOBAL_INDEX_FILE + ".tmp."):
            report.act(
                "sweep-compaction-tmp",
                name,
                "leftover temporary from a compaction that never completed",
            )
            if not dry_run:
                os.unlink(os.path.join(path, name))
        elif name.startswith(constants.GENERATION_FILE + ".tmp."):
            report.act(
                "sweep-generation-tmp",
                name,
                "leftover temporary from an interrupted generation bump",
            )
            if not dry_run:
                os.unlink(os.path.join(path, name))
    if not dry_run:
        invalidate_index_cache(container.path)
        # Repairs changed what readers should see; tell other processes.
        container.bump_generation()

    # 6b. object-store sweep + resync: the repaired container is what
    # this fsck decided the truth is — push it to the authority and
    # delete anything stale enough to resurrect later.
    if store is not None:
        from repro.plfs.objectstore import fsckx

        fsckx.reconcile_after(store, path, store_root, report, dry_run=dry_run)

    # 7. verify
    report.check = plfs_check(path)
    return report
