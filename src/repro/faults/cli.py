"""``repro-fsck`` — check and repair PLFS containers from the shell.

Usage::

    repro-fsck [--dry-run] [--json] CONTAINER [CONTAINER ...]
    repro-fsck [--dry-run] [--json] --scan BACKEND_DIR
    repro-fsck --objectstore STORE_DIR [--objectstore-root DIR] CONTAINER

``--scan`` walks a backend directory tree and repairs every container it
finds.  ``--objectstore`` names the object-store root a tiered container
is backed by: fsck then restores evicted local copies from the store
first and resyncs the store to the repaired container afterwards
(``--objectstore-root`` is the tiered local root object keys are
relative to; default the container's parent, or the ``--scan`` dir).
Exit status: 0 — every container clean or fully recovered;
1 — repairs left unrecoverable losses (reported) or a container is still
broken; 2 — usage error / path is not a container.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.plfs.container import is_container
from repro.plfs.errors import PlfsError

from .fsck import fsck


def scan_containers(root: str) -> list[str]:
    """All container paths under *root* (not descending into containers:
    their internals are droppings, not files)."""
    found: list[str] = []
    for dirpath, dirnames, _ in os.walk(root):
        if is_container(dirpath):
            found.append(dirpath)
            dirnames[:] = []
    return sorted(found)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fsck",
        description="check and repair PLFS containers (plfs_recover analogue)",
    )
    parser.add_argument("paths", nargs="*", help="container paths to repair")
    parser.add_argument(
        "--scan",
        metavar="DIR",
        help="walk DIR and repair every container found",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="report repairs and verdicts without touching anything",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON report per container",
    )
    parser.add_argument(
        "--objectstore",
        metavar="DIR",
        help="object-store root the containers are tiered over; enables "
        "the restore/sweep/resync reconcile passes",
    )
    parser.add_argument(
        "--objectstore-root",
        metavar="DIR",
        help="tiered local root object keys are relative to (default: "
        "each container's parent directory, or the --scan directory)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if bool(args.paths) == bool(args.scan):
        print(
            "repro-fsck: give container paths or --scan DIR (not both, not neither)",
            file=sys.stderr,
        )
        return 2

    if args.scan:
        if not os.path.isdir(args.scan):
            print(f"repro-fsck: no such directory: {args.scan}", file=sys.stderr)
            return 2
        targets = scan_containers(args.scan)
        if not targets:
            print(f"repro-fsck: no containers under {args.scan}", file=sys.stderr)
            return 0
    else:
        targets = args.paths

    objectstore_root = args.objectstore_root
    if objectstore_root is None and args.scan:
        objectstore_root = args.scan

    worst = 0
    reports = []
    for path in targets:
        try:
            report = fsck(
                path,
                dry_run=args.dry_run,
                objectstore=args.objectstore,
                objectstore_root=objectstore_root,
            )
        except (PlfsError, FileNotFoundError) as exc:
            print(f"repro-fsck: {path}: {exc}", file=sys.stderr)
            return 2
        reports.append(report)
        if not args.json:
            print(report.render())
        if not report.ok:
            worst = 1
    if args.json:
        print(json.dumps([r.as_dict() for r in reports], indent=2))
    return worst


if __name__ == "__main__":  # pragma: no cover - exercised via main() tests
    sys.exit(main())
