"""The fault matrix: every fault class, its invariant, and its verdict.

Each :class:`FaultCase` is either an *injected* fault (the
:class:`~repro.faults.injector.FaultInjector` fires it mid-run at a chosen
operation) or a *damage* pattern (applied to the container after the run,
modelling backend corruption such as a lost ``hostdir.N`` tree).

Every case carries its **post-crash invariant** — what must hold after
``repro-fsck`` runs — and a recovery verdict per arm:

- ``recoverable_with_wal`` / ``recoverable_without_wal`` — ``True`` means
  the recovered container must read back *byte-identical* to the expected
  shadow content; ``False`` means the loss is inherent (no on-disk record
  of the lost bytes' logical offsets exists) and fsck must instead
  **detect and report** it as unrecoverable.

The two arms differ in one open option:
``OpenOptions(write_ahead_index=True)`` persists each index record before
its data append (see the recovery invariant in :mod:`repro.plfs`), which
upgrades every crash fault to byte-identical recoverability.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field
from typing import Callable

from repro.plfs import constants
from repro.plfs.index import RECORD_SIZE

from .injector import FaultSpec


@dataclass(frozen=True)
class FaultCase:
    """One row of the fault matrix."""

    name: str
    #: "inject" (fires mid-run) or "damage" (applied to the container after
    #: a clean run)
    mode: str
    description: str
    #: what must hold after repro-fsck, regardless of arm
    invariant: str
    recoverable_with_wal: bool
    recoverable_without_wal: bool
    #: injection point/behavior (inject mode)
    point: str | None = None
    behavior: str | None = None
    #: extra FaultSpec parameters (e.g. short_bytes)
    params: dict = field(default_factory=dict)
    #: the run "dies" mid-schedule (InjectedCrash escapes)
    crashes: bool = False
    #: only meaningful when the write-ahead arm is on (faults the WAL itself)
    wal_only: bool = False
    #: group-commit window the WAL arm runs with (1 = strict per-append)
    wal_batch: int = 1
    #: fire on exactly this operation number, overriding the harness's
    #: default arm position (needed when the fault must land at a precise
    #: phase of a batch window)
    fire_op: int | None = None
    #: additional faults armed alongside the primary one; each entry is a
    #: dict with "point", "behavior", optional "params", and either "op"
    #: (absolute) or "op_frac" (fraction of the schedule length)
    companions: tuple = ()
    #: objectstore arm: the schedule runs over the tiered object backend
    #: and the fault fires during the post-run tier drain (upload), not
    #: during the schedule itself — see ``harness.run_objectstore_case``
    objectstore: bool = False
    #: after the (faulted) drain, evict the tier's clean entries and
    #: restore from the store — exposing any entry a failed upload
    #: falsely marked clean (the stale-tier-eviction failure mode)
    tier_evict: bool = False
    #: damage function (damage mode): takes the container path
    damage: Callable[[str], None] | None = None

    def spec(self, op: int = 1) -> FaultSpec:
        """Build the armed FaultSpec, firing on the *op*-th operation at
        this case's point (inject mode only)."""
        if self.mode != "inject":
            raise ValueError(f"{self.name} is a damage case, not an injection")
        return FaultSpec(self.point, self.behavior, op=op, **self.params)


# ---------------------------------------------------------------------- #
# damage functions
# ---------------------------------------------------------------------- #


def damage_lose_index_droppings(path: str) -> None:
    """Delete every index dropping, orphaning the data droppings — the
    lost-``hostdir.N``-metadata class from the issue, in its most hostile
    form (data survives, the map to logical offsets does not)."""
    for entry in sorted(os.listdir(path)):
        if not entry.startswith(constants.HOSTDIR_PREFIX):
            continue
        hostdir = os.path.join(path, entry)
        if not os.path.isdir(hostdir):
            continue
        for name in sorted(os.listdir(hostdir)):
            if name.startswith(constants.INDEX_PREFIX):
                os.unlink(os.path.join(hostdir, name))


def damage_lose_skeleton(path: str) -> None:
    """Delete the bookkeeping directories (``openhosts/``, ``meta/``) —
    recoverable damage: they carry no unrecoverable state."""
    for name in (constants.OPENHOSTS_DIR, constants.META_DIR):
        shutil.rmtree(os.path.join(path, name), ignore_errors=True)


def damage_stale_openhost_marker(path: str) -> None:
    """Plant an openhost marker for a writer that no longer exists — the
    residue of a crashed process that never reached unregister."""
    d = os.path.join(path, constants.OPENHOSTS_DIR)
    os.makedirs(d, exist_ok=True)
    with open(os.path.join(d, "deadhost.99999"), "w") as fh:
        fh.write("0.0\n")


# ---------------------------------------------------------------------- #
# the matrix
# ---------------------------------------------------------------------- #

FAULT_MATRIX: tuple[FaultCase, ...] = (
    FaultCase(
        name="short-data-write",
        mode="inject",
        point="data_write",
        behavior="short",
        params={"short_bytes": 3},
        description="a data-dropping append persists only a prefix and "
        "returns the short count (POSIX short write)",
        invariant="the index records exactly the bytes the append "
        "acknowledged; the container is consistent without repair and "
        "reads back byte-identical to the acknowledged writes",
        recoverable_with_wal=True,
        recoverable_without_wal=True,
    ),
    FaultCase(
        name="enospc-data-write",
        mode="inject",
        point="data_write",
        behavior="enospc",
        description="a data-dropping append fails wholesale with ENOSPC",
        invariant="the failed write leaves no trace: no data bytes, no "
        "index record; the container reads back byte-identical to the "
        "successful writes",
        recoverable_with_wal=True,
        recoverable_without_wal=True,
    ),
    FaultCase(
        name="eintr-data-write",
        mode="inject",
        point="data_write",
        behavior="eintr",
        description="a data-dropping append is interrupted by a signal "
        "before writing anything (EINTR)",
        invariant="identical to enospc-data-write: the interrupted call "
        "leaves no trace (the shim retry policy makes it invisible to "
        "applications; here the bare API surfaces it)",
        recoverable_with_wal=True,
        recoverable_without_wal=True,
    ),
    FaultCase(
        name="torn-data-write",
        mode="inject",
        point="data_write",
        behavior="torn",
        params={"short_bytes": 5},
        crashes=True,
        description="the process is killed mid-append: a prefix of the "
        "payload reached the data dropping, the index record only ever "
        "existed in memory",
        invariant="with WAL: fsck clips the write-ahead record to the "
        "bytes that landed and the file reads back byte-identical "
        "including the torn prefix; without WAL: the torn bytes are "
        "unindexed, fsck trims them, reports them unrecoverable, and the "
        "file reads back as the last synced state",
        recoverable_with_wal=True,
        recoverable_without_wal=False,
    ),
    FaultCase(
        name="crash-before-data-write",
        mode="inject",
        point="data_write",
        behavior="crash",
        crashes=True,
        description="the process is killed the instant before a data "
        "append: with WAL the record was already promised on disk, but "
        "zero payload bytes ever landed",
        invariant="with WAL: fsck clips the promised record to zero "
        "bytes and drops it — the file reads back byte-identical to the "
        "completed writes; without WAL: earlier unflushed records are "
        "lost with the process and reported unrecoverable",
        recoverable_with_wal=True,
        recoverable_without_wal=False,
    ),
    FaultCase(
        name="crash-before-index-flush",
        mode="inject",
        point="index_flush",
        behavior="crash",
        crashes=True,
        description="the process is killed after data appends but before "
        "the buffered index records are flushed (the canonical PLFS "
        "crash window)",
        invariant="with WAL: fsck rebuilds the index dropping from the "
        "write-ahead records and the file reads back byte-identical; "
        "without WAL: the unindexed data bytes are trimmed and reported "
        "unrecoverable; previously synced records always survive",
        recoverable_with_wal=True,
        recoverable_without_wal=False,
    ),
    FaultCase(
        name="torn-index-flush",
        mode="inject",
        point="index_flush",
        behavior="torn",
        crashes=True,
        description="the process is killed mid-index-flush: the index "
        "dropping ends on a partial record",
        invariant="with WAL: fsck discards the torn index and rebuilds "
        "it whole from the write-ahead records (byte-identical); without "
        "WAL: fsck truncates to the last whole record — the surviving "
        "content is a write-order-consistent prefix and the stranded "
        "tail is reported unrecoverable",
        recoverable_with_wal=True,
        recoverable_without_wal=False,
    ),
    FaultCase(
        name="torn-wal-write",
        mode="inject",
        point="wal_write",
        behavior="torn",
        crashes=True,
        wal_only=True,
        description="the process is killed mid-WAL-append, before the "
        "corresponding data append even started",
        invariant="fsck parses the whole-record prefix of the WAL, clips "
        "it to the data dropping's actual bytes, and the file reads back "
        "byte-identical to the completed writes (the torn record's write "
        "never happened)",
        recoverable_with_wal=True,
        recoverable_without_wal=True,
    ),
    FaultCase(
        name="short-write-then-crash-before-index-flush",
        mode="inject",
        point="index_flush",
        behavior="crash",
        crashes=True,
        companions=(
            {
                "point": "data_write",
                "behavior": "short",
                "params": {"short_bytes": 3},
                "op_frac": 0.75,
            },
        ),
        description="a mid-stream append persists only a prefix (short "
        "write), more appends follow in the same dropping, then the "
        "process is killed before the index flush — the WAL record for "
        "the short write promised the full length but physical_offset "
        "only advanced by the acknowledged bytes",
        invariant="with WAL: fsck clips the short write's promised record "
        "to the bytes that landed (bounded by the next record's physical "
        "start, so the later appends stay correctly mapped) and the file "
        "reads back byte-identical to the acknowledged writes; without "
        "WAL: the records buffered since the last sync die with the "
        "process, the unindexed tail is trimmed and reported "
        "unrecoverable",
        recoverable_with_wal=True,
        recoverable_without_wal=False,
    ),
    FaultCase(
        name="enospc-meta-create",
        mode="inject",
        point="meta_create",
        behavior="enospc",
        description="writing the cached-size meta dropping at close time "
        "fails with ENOSPC (close raises; index and data are already "
        "safe)",
        invariant="the container is fully readable without the meta "
        "cache; fsck rebuilds it from the global index and the file "
        "reads back byte-identical",
        recoverable_with_wal=True,
        recoverable_without_wal=True,
    ),
    FaultCase(
        name="crash-inside-wal-batch",
        mode="inject",
        point="data_write",
        behavior="crash",
        crashes=True,
        wal_only=True,
        wal_batch=4,
        fire_op=10,
        description="group commit (wal_batch=4): the process is killed at "
        "a data append while earlier appends in the same batch window "
        "already landed — their write-ahead records were buffered, never "
        "flushed",
        invariant="the batch-boundary half of the recovery invariant: "
        "fsck rebuilds the index from the flushed batches, trims the "
        "data bytes appended inside the open batch window (nothing on "
        "disk maps them), and reports them unrecoverable; everything up "
        "to the last batch boundary reads back byte-identical",
        recoverable_with_wal=False,
        recoverable_without_wal=False,
    ),
    FaultCase(
        name="torn-wal-batch-flush",
        mode="inject",
        point="wal_write",
        behavior="torn",
        params={"short_bytes": RECORD_SIZE + 5},
        crashes=True,
        wal_only=True,
        wal_batch=4,
        fire_op=2,
        description="group commit (wal_batch=4): the process is killed "
        "mid-batch-flush — one whole record of the batch reached the "
        "WAL, the rest tore, and the previous window's data appends "
        "already landed",
        invariant="fsck keeps the WAL's whole-record prefix (flushed "
        "batches plus the surviving head of the torn one), trims data "
        "bytes past that coverage, and reports them unrecoverable; the "
        "covered prefix reads back byte-identical",
        recoverable_with_wal=False,
        recoverable_without_wal=False,
    ),
    FaultCase(
        name="lost-index-droppings",
        mode="damage",
        damage=damage_lose_index_droppings,
        description="backend metadata loss deletes every index dropping "
        "after a clean close (WALs were already deleted), orphaning the "
        "data droppings",
        invariant="no record of the data's logical offsets survives in "
        "either arm: fsck quarantines the orphaned data droppings, "
        "reports every lost byte as unrecoverable, and leaves a "
        "consistent (empty) container",
        recoverable_with_wal=False,
        recoverable_without_wal=False,
    ),
    FaultCase(
        name="lost-container-skeleton",
        mode="damage",
        damage=damage_lose_skeleton,
        description="backend metadata loss deletes the bookkeeping "
        "directories (openhosts/, meta/) while droppings survive",
        invariant="the skeleton carries no unrecoverable state: fsck "
        "recreates it and rebuilds the meta cache from the index; the "
        "file reads back byte-identical",
        recoverable_with_wal=True,
        recoverable_without_wal=True,
    ),
    FaultCase(
        name="stale-openhost-marker",
        mode="damage",
        damage=damage_stale_openhost_marker,
        description="a crashed writer's openhost marker survives, making "
        "the size cache permanently untrusted",
        invariant="fsck clears the stale marker (it runs offline, like "
        "plfs_recover) and the file reads back byte-identical",
        recoverable_with_wal=True,
        recoverable_without_wal=True,
    ),
    # ------------------------------------------------------------------ #
    # objectstore arms: the schedule runs clean over the tiered object
    # backend; the fault fires during the tier's upload drain.
    # ------------------------------------------------------------------ #
    FaultCase(
        name="lost-object-put",
        mode="inject",
        point="object_commit",
        behavior="lost",
        objectstore=True,
        # drain order is FIFO by first local write: the index dropping is
        # touched at open (commit 1), the data dropping's first append
        # enters second (commit 2), the close-time meta drop third
        fire_op=2,
        description="the object store acknowledges the data dropping's "
        "PUT but persists nothing (a lost PUT): the key manifest never "
        "commits, yet the tier's flusher sees success",
        invariant="the local tier copy survives (it is only a *cache* "
        "that may be dropped, but it has not been yet): fsck's resync "
        "detects the missing object, re-uploads it from the repaired "
        "local copy, and the file reads back byte-identical",
        recoverable_with_wal=True,
        recoverable_without_wal=True,
    ),
    FaultCase(
        name="torn-multipart-upload",
        mode="inject",
        point="object_part",
        behavior="torn",
        crashes=True,
        objectstore=True,
        fire_op=2,
        description="the uploader is killed mid-multipart-upload: part "
        "one of the data dropping landed in staging, part two tore, no "
        "key manifest was ever committed",
        invariant="the torn staging is invisible to readers (the "
        "manifest commit is the linearization point): fsck sweeps the "
        "staging directory, re-uploads the dropping whole from the "
        "intact local copy, and the file reads back byte-identical",
        recoverable_with_wal=True,
        recoverable_without_wal=True,
    ),
    FaultCase(
        name="stale-tier-eviction",
        mode="inject",
        point="object_commit",
        behavior="lost",
        objectstore=True,
        tier_evict=True,
        fire_op=2,  # the data dropping's commit; see lost-object-put
        description="a lost PUT is compounded by capacity pressure: the "
        "tier — believing the acknowledged upload — marks the data "
        "dropping clean and evicts its local copy before anyone notices "
        "the object never landed",
        invariant="both copies are gone; the index records promise "
        "bytes nothing holds.  fsck restores what the store does have "
        "(index, meta), detects the orphaned index, and reports the "
        "promised extent explicitly unrecoverable — never a silent "
        "truncation",
        recoverable_with_wal=False,
        recoverable_without_wal=False,
    ),
)


def matrix_by_name(name: str) -> FaultCase:
    for case in FAULT_MATRIX:
        if case.name == name:
            return case
    raise KeyError(name)
