"""Crash-consistency test driver.

Runs a write schedule against a real container while keeping a *shadow*
model — the flat-file content the schedule's acknowledged writes imply —
with one fault from the matrix armed.  After the fault (and ``repro-fsck``)
the container is compared against the shadow:

- for **recoverable** arms the recovered content must be *byte-identical*
  to :meth:`RunOutcome.expected_full` (every acknowledged byte, plus the
  physically-landed prefix of a torn write);
- for **unrecoverable** arms the content must be one of
  :meth:`RunOutcome.acceptable_states`: a write-order-consistent prefix of
  the acknowledged writes that is *at least* the last synced state —
  recovery may lose unflushed tail writes (and must say so), but may never
  lose synced data or invent bytes.

The harness talks to the bare :mod:`repro.plfs` API (no shim) so each
fault lands at a known operation; the multiprocess stress test covers the
shim path.
"""

from __future__ import annotations

import os
import random
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro import plfs
from repro.plfs.api import OpenOptions

from .injector import FaultEvent, FaultInjector, FaultSpec, InjectedCrash
from .matrix import FaultCase


@dataclass(frozen=True)
class WriteOp:
    offset: int
    data: bytes


def random_schedule(
    seed: int,
    ops: int = 24,
    max_offset: int = 4096,
    max_len: int = 512,
) -> list[WriteOp]:
    """A seeded schedule mixing sequential runs (which exercise index-record
    merging) with random-offset writes (which exercise overwrite
    resolution)."""
    rng = random.Random(seed)
    out: list[WriteOp] = []
    for _ in range(ops):
        length = rng.randint(1, max_len)
        if out and rng.random() < 0.5:
            prev = out[-1]
            offset = prev.offset + len(prev.data)
        else:
            offset = rng.randint(0, max_offset)
        out.append(WriteOp(offset, rng.randbytes(length)))
    return out


def replay(ops: list[tuple[int, bytes]]) -> bytes:
    """The flat-file content a sequence of (offset, data) writes implies
    (holes read back as zeros, later writes shadow earlier ones)."""
    buf = bytearray()
    for off, data in ops:
        end = off + len(data)
        if end > len(buf):
            buf.extend(b"\x00" * (end - len(buf)))
        buf[off:end] = data
    return bytes(buf)


@dataclass
class RunOutcome:
    """What one faulted run actually did, from the application's view."""

    schedule: list[WriteOp]
    wal: bool
    #: acknowledged effective writes, in order (short writes store the
    #: acknowledged prefix only)
    applied: list[tuple[int, bytes]] = field(default_factory=list)
    #: len(applied) at the last successful plfs_sync
    synced_applied: int = 0
    #: physically-landed prefix of the op that crashed mid-data-append
    partial: tuple[int, bytes] | None = None
    crashed: bool = False
    close_error: OSError | None = None
    #: OSErrors the "application" saw mid-schedule (EINTR/ENOSPC faults)
    errors: list[OSError] = field(default_factory=list)
    events: list[FaultEvent] = field(default_factory=list)

    def expected_full(self) -> bytes:
        """The maximal recoverable content: every acknowledged write plus
        the torn write's physically-landed prefix."""
        ops = list(self.applied)
        if self.partial is not None:
            ops.append(self.partial)
        return replay(ops)

    def acceptable_states(self) -> list[bytes]:
        """Contents a lossy-but-sound recovery may produce: replay of the
        first *m* acknowledged writes for any ``m >= synced_applied``
        (synced data must never be lost), plus the maximal state."""
        states = [
            replay(self.applied[:m])
            for m in range(self.synced_applied, len(self.applied) + 1)
        ]
        states.append(self.expected_full())
        return states


def crash_handle(fd: plfs.Plfs_fd) -> None:
    """Model the process dying while holding *fd*: descriptors released,
    nothing flushed, no unregister, no metadata — exactly what SIGKILL
    leaves behind."""
    if fd._reader is not None:
        fd._reader.close()
        fd._reader = None
    if fd.writer is not None:
        fd.writer.abandon()
        fd.writer = None


def run_schedule(
    path: str,
    schedule: list[WriteOp],
    *,
    wal: bool = False,
    wal_batch: int = 1,
    injector: FaultInjector | None = None,
    sync_every: int | None = None,
) -> RunOutcome:
    """Apply *schedule* to the container at *path* with *injector* armed,
    tracking the shadow bookkeeping a later comparison needs.  An
    :class:`InjectedCrash` ends the run the way SIGKILL would."""
    out = RunOutcome(schedule=schedule, wal=wal)
    opts = OpenOptions(write_ahead_index=wal, wal_batch_records=wal_batch)
    fd = plfs.plfs_open(path, os.O_CREAT | os.O_RDWR, mode=0o644, open_opt=opts)
    ctx = injector.armed() if injector is not None else nullcontext()
    current: WriteOp | None = None
    with ctx:
        try:
            for i, op in enumerate(schedule):
                current = op
                try:
                    n = plfs.plfs_write(fd, op.data, len(op.data), op.offset)
                except OSError as exc:
                    out.errors.append(exc)
                    continue
                if n:
                    out.applied.append((op.offset, bytes(op.data[:n])))
                if sync_every and (i + 1) % sync_every == 0:
                    plfs.plfs_sync(fd)
                    out.synced_applied = len(out.applied)
            current = None
            try:
                plfs.plfs_close(fd)
            except OSError as exc:
                out.close_error = exc
        except InjectedCrash:
            out.crashed = True
            crash_handle(fd)
    if injector is not None:
        out.events = injector.fired()
        if out.crashed and current is not None:
            last = out.events[-1]
            if last.point == "data_write" and last.actual:
                out.partial = (current.offset, bytes(current.data[: last.actual]))
    return out


def arm_for_case(case: FaultCase, schedule: list[WriteOp], seed: int = 0) -> FaultInjector | None:
    """Build the injector for one matrix case, targeting an operation
    deep enough into the schedule to be interesting: data/WAL faults fire
    two-thirds of the way through, index-flush faults on the second flush
    (i.e. after one successful sync), meta faults on the close-time meta
    drop.  A case's explicit ``fire_op`` overrides the default position
    (batch-window cases must land at a precise phase of the window), and
    its ``companions`` are armed alongside."""
    if case.mode != "inject":
        return None
    if case.fire_op is not None:
        op = case.fire_op
    elif case.point == "meta_create":
        # create_meta op 1 is the writer's index-dropping touch at the
        # first write; op 2 is the cached-size meta drop at close time.
        op = 2
    elif case.point == "index_flush":
        op = 2
    else:
        op = max(1, (2 * len(schedule)) // 3)
    specs = [case.spec(op)]
    for comp in case.companions:
        if "op" in comp:
            comp_op = comp["op"]
        else:
            comp_op = max(1, int(comp["op_frac"] * len(schedule)))
        specs.append(
            FaultSpec(
                comp["point"],
                comp["behavior"],
                op=comp_op,
                **comp.get("params", {}),
            )
        )
    return FaultInjector(specs, seed=seed)


def default_sync_every(case: FaultCase, schedule: list[WriteOp]) -> int | None:
    """Index-flush faults target the *second* flush, so the schedule needs
    one successful mid-run sync; other cases run unsynced by default."""
    if case.mode == "inject" and case.point == "index_flush":
        return max(1, len(schedule) // 2)
    return None


def run_case(
    path: str,
    case: FaultCase,
    schedule: list[WriteOp],
    *,
    wal: bool,
    seed: int = 0,
    sync_every: int | None = None,
) -> RunOutcome:
    """Run one matrix case end to end (fault armed or damage applied);
    fsck and the comparison are the caller's job."""
    injector = arm_for_case(case, schedule, seed=seed)
    if sync_every is None:
        sync_every = default_sync_every(case, schedule)
    out = run_schedule(
        path,
        schedule,
        wal=wal,
        wal_batch=case.wal_batch if wal else 1,
        injector=injector,
        sync_every=sync_every,
    )
    if case.mode == "damage":
        case.damage(path)
    return out


def run_objectstore_case(
    path: str,
    case: FaultCase,
    schedule: list[WriteOp],
    *,
    wal: bool,
    seed: int = 0,
    store_root: str | None = None,
    part_bytes: int | None = None,
):
    """Run one *objectstore* matrix case: the schedule executes clean over
    the tiered object backend, then the fault fires during the tier's
    upload drain (where every objectstore failure mode lives).  Returns
    ``(outcome, store, backend)``; fsck — with the store passed along —
    and the comparison are the caller's job.

    *part_bytes* shrinks the multipart threshold so harness-sized
    droppings exercise the multipart path; ``case.tier_evict`` arms the
    post-drain evict-and-restore round trip that exposes a falsely-clean
    entry.
    """
    from repro.plfs import backing
    from repro.plfs.objectstore import ObjectStore, ObjectStoreBackingStore, TierConfig

    root = os.path.dirname(os.path.abspath(path))
    store = ObjectStore(store_root or os.path.abspath(path) + ".objects")
    config = TierConfig(multipart_part_bytes=part_bytes) if part_bytes else TierConfig()
    backend = ObjectStoreBackingStore(store, root, config)

    previous = backing.install(backend)
    try:
        # Clean run: no mid-run syncs, so the drain below uploads every
        # dropping with deterministic operation numbering.
        out = run_schedule(
            path,
            schedule,
            wal=wal,
            wal_batch=case.wal_batch if wal else 1,
            injector=None,
            sync_every=None,
        )
        injector = FaultInjector([case.spec(case.fire_op or 1)], seed=seed)
        try:
            with injector.armed():
                backend.tier.drain()
        except InjectedCrash:
            out.crashed = True
        except OSError as exc:
            out.errors.append(exc)
        out.events = injector.fired()
    finally:
        backing.install(previous)

    if case.tier_evict:
        # Capacity pressure after the (faulted) drain: evict everything
        # the tier believes is clean, then restore what the store truly
        # holds — a falsely-clean entry comes back from neither.
        backend.tier.evict()
        backend.tier.restore_missing()
    return out, store, backend


def read_back(path: str) -> bytes:
    """The container's full logical content through the PLFS API."""
    fd = plfs.plfs_open(path, os.O_RDONLY)
    try:
        size = plfs.plfs_getattr(fd).st_size
        return plfs.plfs_read(fd, size, 0) if size else b""
    finally:
        plfs.plfs_close(fd)
