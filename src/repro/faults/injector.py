"""Deterministic, seedable fault injection for the PLFS backing store.

The injector interposes on :mod:`repro.plfs.backing` — the narrow surface
every crash-relevant persistence operation flows through — so faults land
at exactly the instruction boundaries a real crash would: after some bytes
of a data append, between a data append and its index flush, mid-way
through an index flush, and so on.  Nothing in the PLFS library is patched
or subclassed; tests arm the injector, run a workload, and the workload
crashes (or limps) on schedule.

Determinism: firing decisions depend only on the spec parameters and a
``random.Random(seed)`` stream, so a failing seed reproduces exactly.

Injection points (the ``point`` of a :class:`FaultSpec`):

========= ==============================================================
point      operation
========= ==============================================================
data_write  append to a data dropping (``BackingStore.write_data`` and
            the vectored ``write_datav`` share one operation counter:
            either way it is one data append)
index_flush append packed records to an index dropping (``append_index``)
wal_write   append one record batch to a write-ahead dropping
            (``write_wal``; with group commit one call covers a whole
            batch window)
meta_create create an empty dropping file (``create_meta``: cached-meta
            droppings *and* the writer's index-dropping touch at open)
fsync       fsync a data dropping (``fsync``)
global_index write the compacted global index (``write_global_index``)
object_put  commit one content-addressed blob to the object store
            (``put_blob``; the write-back tier's PUT of a dropping)
object_part append one multipart-upload part to its staging file
            (``write_part``)
object_commit commit the key manifest that makes an object visible
            (``commit_key``; the object store's linearization point)
object_get  read one committed blob back (``get_object``; the tier's
            restore / fault-in path)
========= ==============================================================

Behaviours (the ``behavior``):

- ``short``  — persist only ``short_bytes`` of the payload and return the
  short count to the caller (a classic POSIX short write).
- ``eintr``  — persist nothing, raise ``OSError(EINTR)``.
- ``eagain`` — persist nothing, raise ``OSError(EAGAIN)``.
- ``enospc`` — persist nothing, raise ``OSError(ENOSPC)``.
- ``crash``  — persist nothing, raise :class:`InjectedCrash` (the process
  died *before* the operation took effect).
- ``torn``   — persist a partial payload, then raise
  :class:`InjectedCrash` (the process died *mid*-operation).
- ``lost``   — persist nothing but *acknowledge success* (return the full
  byte count).  The silent-loss mode object stores are notorious for: a
  PUT the caller believes landed, an object that never existed.  On
  ``object_get`` the inversion: the object the caller committed reads
  back as vanished (``ENOENT``).
"""

from __future__ import annotations

import errno
import os
import random
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.plfs import backing
from repro.plfs.index import RECORD_SIZE

#: environment variables that arm an injector in a subprocess (see
#: :func:`injector_from_env`); value format documented on ``parse_specs``.
ENV_SPECS = "REPRO_FAULTS"
ENV_SEED = "REPRO_FAULT_SEED"

POINTS = (
    "data_write",
    "index_flush",
    "wal_write",
    "meta_create",
    "fsync",
    "global_index",
    "object_put",
    "object_part",
    "object_commit",
    "object_get",
)
BEHAVIORS = ("short", "eintr", "eagain", "enospc", "crash", "torn", "lost")


class InjectedCrash(BaseException):
    """The injected process-kill.

    Deliberately a ``BaseException``: library code catching ``Exception``
    (or ``OSError``) for error-path cleanup must *not* swallow it, because
    a SIGKILL gives no such opportunity — whatever the library would have
    done in an ``except`` block did not happen in the real failure either.
    """


@dataclass
class FaultSpec:
    """One armed fault: where, how, and when to fire.

    Firing predicates (combinable; all must pass):

    - ``op``    — fire on the Nth operation at this point (1-based);
    - ``every`` — fire on every Nth operation;
    - ``prob``  — fire with this probability (seeded rng);
    - ``count`` — stop after firing this many times (default 1;
      ``None`` = unlimited).
    """

    point: str
    behavior: str
    op: int | None = None
    every: int | None = None
    prob: float | None = None
    count: int | None = 1
    #: bytes actually persisted for ``short``/``torn`` on data writes; for
    #: index/WAL payloads the default tears mid-record
    short_bytes: int | None = None
    fired: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.point not in POINTS:
            raise ValueError(f"unknown fault point: {self.point!r}")
        if self.behavior not in BEHAVIORS:
            raise ValueError(f"unknown fault behavior: {self.behavior!r}")

    def spent(self) -> bool:
        return self.count is not None and self.fired >= self.count


@dataclass(frozen=True)
class FaultEvent:
    """One fault that fired: the evidence trail.

    ``requested``/``actual`` are payload byte counts — for torn writes the
    crash-consistency harness uses ``actual`` to compute the exact bytes
    that reached the backend before the "kill"."""

    point: str
    behavior: str
    op: int
    path: str
    requested: int
    actual: int


def parse_specs(text: str) -> list[FaultSpec]:
    """Parse a spec string: ``point:behavior[:key=value]...`` joined by
    ``;``.  Keys: ``op``, ``every``, ``count`` (ints; ``count=inf`` for
    unlimited), ``prob`` (float), ``bytes`` (``short_bytes``).

    Example: ``"data_write:eintr:every=5;data_write:short:every=7:bytes=3"``
    """
    specs: list[FaultSpec] = []
    for part in text.split(";"):
        part = part.strip()
        if not part:
            continue
        fields = part.split(":")
        if len(fields) < 2:
            raise ValueError(f"bad fault spec (need point:behavior): {part!r}")
        kwargs: dict = {}
        for kv in fields[2:]:
            key, _, value = kv.partition("=")
            if key == "op":
                kwargs["op"] = int(value)
            elif key == "every":
                kwargs["every"] = int(value)
            elif key == "count":
                kwargs["count"] = None if value == "inf" else int(value)
            elif key == "prob":
                kwargs["prob"] = float(value)
            elif key == "bytes":
                kwargs["short_bytes"] = int(value)
            else:
                raise ValueError(f"unknown fault spec key: {key!r}")
        specs.append(FaultSpec(fields[0], fields[1], **kwargs))
    return specs


class FaultInjector:
    """Decides, deterministically, which operations fail and how.

    Use :meth:`armed` to install the wrapping store for a block of code::

        inj = FaultInjector([FaultSpec("data_write", "torn", op=3)], seed=7)
        with inj.armed():
            run_workload()          # third data append tears, then "dies"
        assert inj.events[0].actual < inj.events[0].requested
    """

    def __init__(self, specs: list[FaultSpec] | str, seed: int = 0):
        if isinstance(specs, str):
            specs = parse_specs(specs)
        self.specs = list(specs)
        self.seed = seed
        self.rng = random.Random(seed)
        self.events: list[FaultEvent] = []
        self.op_counts: dict[str, int] = {}

    # ------------------------------------------------------------------ #

    def decide(self, point: str) -> tuple[FaultSpec | None, int]:
        """Count one operation at *point*; return the spec that fires (if
        any) and the 1-based operation number."""
        n = self.op_counts.get(point, 0) + 1
        self.op_counts[point] = n
        for spec in self.specs:
            if spec.point != point or spec.spent():
                continue
            if spec.op is not None and n != spec.op:
                continue
            if spec.every is not None and n % spec.every != 0:
                continue
            if spec.prob is not None and self.rng.random() >= spec.prob:
                continue
            spec.fired += 1
            return spec, n
        return None, n

    def record(self, event: FaultEvent) -> None:
        self.events.append(event)

    def fired(self, point: str | None = None) -> list[FaultEvent]:
        if point is None:
            return list(self.events)
        return [e for e in self.events if e.point == point]

    @contextmanager
    def armed(self):
        """Install a :class:`FaultyBackingStore` around this injector for
        the duration of the ``with`` block (always restores the previous
        store, even when an :class:`InjectedCrash` escapes).

        The wrapper delegates to the store installed *at arming time*, not
        a fresh default — arming over an installed object-store backend
        (or any other interposer) must inject faults into that backend's
        operations, not silently route around it (the same routing-gap
        class the vectored-append audit caught on ``write_datav``).
        """
        previous = backing.install(FaultyBackingStore(self, inner=backing.current()))
        try:
            yield self
        finally:
            backing.install(previous)


class FaultyBackingStore(backing.BackingStore):
    """A backing store that consults a :class:`FaultInjector` before every
    persistence operation and fails the chosen ones."""

    def __init__(self, injector: FaultInjector, inner: backing.BackingStore | None = None):
        self.injector = injector
        self.inner = inner or backing.BackingStore()

    # ------------------------------------------------------------------ #

    def _errno_for(self, behavior: str) -> int:
        return {
            "eintr": errno.EINTR,
            "eagain": errno.EAGAIN,
            "enospc": errno.ENOSPC,
        }[behavior]

    def _torn_cut(self, spec: FaultSpec, size: int, *, record_payload: bool) -> int:
        """How many bytes a short/torn operation persists."""
        if spec.short_bytes is not None:
            return max(0, min(spec.short_bytes, size - 1)) if size else 0
        if record_payload and size >= RECORD_SIZE:
            # Tear mid-record so the dropping ends on a partial record.
            return size - RECORD_SIZE // 2
        return size // 2

    def _fail(
        self,
        spec: FaultSpec,
        op: int,
        path: str,
        payload,
        fd: int | None,
        *,
        record_payload: bool = False,
    ) -> int:
        """Apply *spec* to an append of *payload*; returns the short count
        for ``short``, the (false) full count for ``lost``, raises for
        everything else."""
        size = len(payload)
        actual = 0
        if spec.behavior == "lost":
            # Acknowledge success, persist nothing: the caller cannot tell
            # this apart from a clean operation — only a later reconcile
            # (or read) can.
            self.injector.record(
                FaultEvent(spec.point, spec.behavior, op, path, size, 0)
            )
            return size
        if spec.behavior in ("short", "torn"):
            actual = self._torn_cut(spec, size, record_payload=record_payload)
            if actual and fd is not None:
                os.write(fd, bytes(payload[:actual]))
            elif actual:
                with open(path, "ab") as fh:
                    fh.write(bytes(payload[:actual]))
        self.injector.record(
            FaultEvent(spec.point, spec.behavior, op, path, size, actual)
        )
        if spec.behavior == "short":
            return actual
        if spec.behavior in ("crash", "torn"):
            raise InjectedCrash(
                f"{spec.point} op {op} on {os.path.basename(path)}: "
                f"{actual}/{size} bytes persisted before the kill"
            )
        err = self._errno_for(spec.behavior)
        raise OSError(err, os.strerror(err), path)

    # ------------------------------------------------------------------ #
    # BackingStore surface
    # ------------------------------------------------------------------ #

    def write_data(self, fd: int, buf, path: str) -> int:
        spec, op = self.injector.decide("data_write")
        if spec is not None:
            return self._fail(spec, op, path, buf, fd)
        return self.inner.write_data(fd, buf, path)

    def write_datav(self, fd: int, buffers, path: str) -> int:
        spec, op = self.injector.decide("data_write")
        if spec is not None:
            # A vectored append is one data_write operation; flatten the
            # iovec so short/torn cuts land at exact byte positions.
            joined = b"".join(bytes(b) for b in buffers)
            return self._fail(spec, op, path, joined, fd)
        return self.inner.write_datav(fd, buffers, path)

    def append_index(self, path: str, payload: bytes) -> int:
        spec, op = self.injector.decide("index_flush")
        if spec is not None:
            return self._fail(spec, op, path, payload, None, record_payload=True)
        return self.inner.append_index(path, payload)

    def write_wal(self, fd: int, payload: bytes, path: str) -> int:
        spec, op = self.injector.decide("wal_write")
        if spec is not None:
            return self._fail(spec, op, path, payload, fd, record_payload=True)
        return self.inner.write_wal(fd, payload, path)

    def create_meta(self, path: str) -> None:
        spec, op = self.injector.decide("meta_create")
        if spec is not None:
            self._fail(spec, op, path, b"", None)
            return
        self.inner.create_meta(path)

    def write_global_index(self, path: str, payload: bytes) -> None:
        spec, op = self.injector.decide("global_index")
        if spec is not None:
            # Short/torn payloads land in the *temporary* — exactly what a
            # real crash leaves: the visible compacted index (if any) is
            # untouched and readers fall back to the merge path.
            tmp = f"{path}.tmp.{os.getpid()}"
            self._fail(spec, op, tmp, payload, None, record_payload=True)
            return
        self.inner.write_global_index(path, payload)

    def fsync(self, fd: int) -> None:
        spec, op = self.injector.decide("fsync")
        if spec is not None:
            self._fail(spec, op, "<fsync>", b"", None)
            return
        self.inner.fsync(fd)

    # ------------------------------------------------------------------ #
    # object-store layer
    # ------------------------------------------------------------------ #

    def put_blob(self, path: str, payload: bytes, key: str) -> int:
        spec, op = self.injector.decide("object_put")
        if spec is not None:
            # Short/torn bytes land in the blob's *temporary* — a crashed
            # PUT never half-commits a content-addressed blob; the stray
            # temporary is repro-fsck's to sweep.
            tmp = f"{path}.tmp.{os.getpid()}"
            return self._fail(spec, op, tmp, payload, None)
        return self.inner.put_blob(path, payload, key)

    def write_part(self, fd: int, payload: bytes, path: str) -> int:
        spec, op = self.injector.decide("object_part")
        if spec is not None:
            return self._fail(spec, op, path, payload, fd)
        return self.inner.write_part(fd, payload, path)

    def commit_key(self, path: str, payload: bytes, key: str) -> None:
        spec, op = self.injector.decide("object_commit")
        if spec is not None:
            # "lost" returns success here without the rename ever
            # happening: the acknowledged-but-nonexistent object.
            tmp = f"{path}.tmp.{os.getpid()}"
            self._fail(spec, op, tmp, payload, None)
            return
        self.inner.commit_key(path, payload, key)

    def get_object(self, path: str, key: str) -> bytes:
        spec, op = self.injector.decide("object_get")
        if spec is not None:
            data = self.inner.get_object(path, key)
            if spec.behavior == "lost":
                # The committed object reads back as vanished.
                self.injector.record(
                    FaultEvent(spec.point, spec.behavior, op, path, len(data), 0)
                )
                raise OSError(errno.ENOENT, os.strerror(errno.ENOENT), path)
            if spec.behavior in ("short", "torn"):
                # A truncated GET: the store's etag/size check must catch
                # it rather than hand corrupt bytes to the tier.
                actual = self._torn_cut(spec, len(data), record_payload=False)
                self.injector.record(
                    FaultEvent(spec.point, spec.behavior, op, path, len(data), actual)
                )
                if spec.behavior == "torn":
                    raise InjectedCrash(
                        f"object_get op {op} on {os.path.basename(path)}: "
                        "killed mid-read"
                    )
                return data[:actual]
            self._fail(spec, op, path, b"", None)
        return self.inner.get_object(path, key)


def injector_from_env(environ=None) -> FaultInjector | None:
    """Build (but do not arm) an injector from ``REPRO_FAULTS`` /
    ``REPRO_FAULT_SEED``, or ``None`` when unset.

    Lets a *subprocess* — e.g. a writer child in the multiprocess stress
    test — arm faults its parent configured::

        inj = injector_from_env()
        ctx = inj.armed() if inj else contextlib.nullcontext()
        with ctx:
            ...
    """
    environ = os.environ if environ is None else environ
    text = environ.get(ENV_SPECS, "").strip()
    if not text:
        return None
    seed = int(environ.get(ENV_SEED, "0"))
    return FaultInjector(text, seed=seed)
