"""``repro.analysis`` — result series, table rendering, shape checks."""

from .compare import (
    ShapeCheck,
    check_collapse,
    check_monotone_rise,
    check_peak_location,
    check_ratio_at,
    summarise,
)
from .export import (
    canonical_json,
    panel_from_dict,
    panel_from_json,
    panel_to_csv,
    panel_to_dict,
    panel_to_json,
)
from .results import Panel, Series
from .tables import render_ascii_chart, render_panel, render_table

__all__ = [
    "Series",
    "Panel",
    "render_table",
    "render_panel",
    "render_ascii_chart",
    "ShapeCheck",
    "check_ratio_at",
    "check_peak_location",
    "check_collapse",
    "check_monotone_rise",
    "summarise",
    "canonical_json",
    "panel_to_csv",
    "panel_to_dict",
    "panel_to_json",
    "panel_from_dict",
    "panel_from_json",
]
