"""ASCII rendering of the paper's tables and figure panels.

The benchmarks print these so a run of ``pytest benchmarks/`` regenerates
the same rows/series the paper reports, directly comparable by eye.
"""

from __future__ import annotations

from .results import Panel


def render_table(
    headers: list[str], rows: list[list[str]], *, title: str = ""
) -> str:
    """Simple fixed-width table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(
            " | ".join(str(c).ljust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_panel(panel: Panel, *, fmt: str = "{:.1f}") -> str:
    """A figure panel as a table: one row per x, one column per series."""
    labels = list(panel.series)
    headers = [panel.xlabel] + labels
    rows = []
    for x in panel.xs():
        row = [f"{x:g}"]
        for label in labels:
            try:
                row.append(fmt.format(panel.series[label].at(x)))
            except KeyError:
                row.append("-")
        rows.append(row)
    title = f"{panel.title}  [{panel.ylabel}]"
    return render_table(headers, rows, title=title)


def render_ascii_chart(
    panel: Panel, *, width: int = 60, symbol_map: dict[str, str] | None = None
) -> str:
    """A rough horizontal bar view of a panel (one block per x value)."""
    labels = list(panel.series)
    symbols = symbol_map or {
        label: label[0] for label in labels
    }
    ymax = max((max(s.ys(), default=0.0) for s in panel.series.values()), default=0.0)
    if ymax <= 0:
        return f"{panel.title}: (no data)"
    lines = [f"{panel.title}  [{panel.ylabel}, full bar = {ymax:.0f}]"]
    for x in panel.xs():
        lines.append(f"  {panel.xlabel} = {x:g}")
        for label in labels:
            try:
                y = panel.series[label].at(x)
            except KeyError:
                continue
            bar = symbols[label] * max(1, int(round(y / ymax * width)))
            lines.append(f"    {label:>7s} |{bar} {y:.0f}")
    return "\n".join(lines)
