"""Containers for benchmark series (one per figure panel)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Series:
    """One curve: method name → points of (x, y)."""

    label: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((x, y))

    def xs(self) -> list[float]:
        return [x for x, _ in self.points]

    def ys(self) -> list[float]:
        return [y for _, y in self.points]

    def at(self, x: float) -> float:
        for px, py in self.points:
            if px == x:
                return py
        raise KeyError(f"no point at x={x} in series {self.label!r}")

    @property
    def peak(self) -> tuple[float, float]:
        """(x, y) of the maximum y."""
        return max(self.points, key=lambda p: p[1])


@dataclass
class Panel:
    """One figure panel: several series over a shared x axis."""

    title: str
    xlabel: str
    ylabel: str
    series: dict[str, Series] = field(default_factory=dict)

    def series_for(self, label: str) -> Series:
        s = self.series.get(label)
        if s is None:
            s = Series(label)
            self.series[label] = s
        return s

    def add(self, label: str, x: float, y: float) -> None:
        self.series_for(label).add(x, y)

    def xs(self) -> list[float]:
        xs: list[float] = []
        for s in self.series.values():
            for x in s.xs():
                if x not in xs:
                    xs.append(x)
        return sorted(xs)

    def ratio(self, numerator: str, denominator: str, x: float) -> float:
        return self.series[numerator].at(x) / self.series[denominator].at(x)
