"""Paper-vs-measured shape checks.

The reproduction target is the *shape* of each figure — who wins, by
roughly what factor, where crossovers fall — not absolute numbers (the
substrate is a simulator, not the authors' testbed).  These helpers turn
a measured :class:`~repro.analysis.results.Panel` into pass/fail shape
assertions and a human-readable summary used by EXPERIMENTS.md and the
benchmark output.
"""

from __future__ import annotations

from dataclasses import dataclass

from .results import Panel


@dataclass
class ShapeCheck:
    """One qualitative claim from the paper and whether we reproduce it."""

    claim: str
    holds: bool
    detail: str

    def __str__(self) -> str:
        mark = "PASS" if self.holds else "MISS"
        return f"[{mark}] {self.claim}: {self.detail}"


def check_ratio_at(
    panel: Panel,
    numerator: str,
    denominator: str,
    x: float,
    *,
    at_least: float | None = None,
    at_most: float | None = None,
    claim: str,
) -> ShapeCheck:
    ratio = panel.ratio(numerator, denominator, x)
    holds = True
    if at_least is not None:
        holds = holds and ratio >= at_least
    if at_most is not None:
        holds = holds and ratio <= at_most
    return ShapeCheck(
        claim=claim,
        holds=holds,
        detail=f"{numerator}/{denominator} at {panel.xlabel}={x:g} is {ratio:.2f}",
    )


def check_peak_location(
    panel: Panel,
    label: str,
    *,
    between: tuple[float, float],
    claim: str,
) -> ShapeCheck:
    x, y = panel.series[label].peak
    lo, hi = between
    return ShapeCheck(
        claim=claim,
        holds=lo <= x <= hi,
        detail=f"{label} peaks at {panel.xlabel}={x:g} ({y:.0f})",
    )


def check_collapse(
    panel: Panel,
    label: str,
    *,
    from_peak_factor: float,
    claim: str,
) -> ShapeCheck:
    """The curve's last point must be at least *from_peak_factor* below
    its peak (e.g. 4.0 = final value under a quarter of the peak)."""
    series = panel.series[label]
    _, peak = series.peak
    final = series.ys()[-1]
    ratio = peak / final if final > 0 else float("inf")
    return ShapeCheck(
        claim=claim,
        holds=ratio >= from_peak_factor,
        detail=f"{label} peak {peak:.0f} vs final {final:.0f} ({ratio:.1f}x drop)",
    )


def check_monotone_rise(
    panel: Panel, label: str, *, through: float, claim: str, tolerance: float = 0.05
) -> ShapeCheck:
    """The curve must be (near-)monotonically rising up to x=through."""
    series = panel.series[label]
    prev = None
    holds = True
    for x, y in series.points:
        if x > through:
            break
        if prev is not None and y < prev * (1 - tolerance):
            holds = False
        prev = y
    return ShapeCheck(
        claim=claim,
        holds=holds,
        detail=f"{label} over {panel.xlabel} <= {through:g}",
    )


def summarise(checks: list[ShapeCheck]) -> str:
    lines = [str(c) for c in checks]
    passed = sum(c.holds for c in checks)
    lines.append(f"{passed}/{len(checks)} shape checks hold")
    return "\n".join(lines)
