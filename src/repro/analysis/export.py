"""Exporting result panels for external plotting (CSV / JSON)."""

from __future__ import annotations

import csv
import io
import json

from .results import Panel


def _round_floats(obj, ndigits: int):
    if isinstance(obj, float):
        return round(obj, ndigits)
    if isinstance(obj, dict):
        return {k: _round_floats(v, ndigits) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_round_floats(v, ndigits) for v in obj]
    return obj


def canonical_json(obj, *, indent: int = 2, ndigits: int = 9) -> str:
    """Deterministic JSON: sorted keys, floats rounded to *ndigits*.

    Byte-identical across runs for identical inputs — the property the
    insights reports and archived benchmark artefacts rely on.
    """
    return json.dumps(
        _round_floats(obj, ndigits), indent=indent, sort_keys=True
    )


def panel_to_csv(panel: Panel) -> str:
    """One row per x value, one column per series; empty cell = no point."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    labels = list(panel.series)
    writer.writerow([panel.xlabel] + labels)
    for x in panel.xs():
        row: list = [x]
        for label in labels:
            try:
                row.append(panel.series[label].at(x))
            except KeyError:
                row.append("")
        writer.writerow(row)
    return buf.getvalue()


def panel_to_dict(panel: Panel) -> dict:
    return {
        "title": panel.title,
        "xlabel": panel.xlabel,
        "ylabel": panel.ylabel,
        "series": {
            label: {"x": s.xs(), "y": s.ys()} for label, s in panel.series.items()
        },
    }


def panel_to_json(panel: Panel, *, indent: int = 2) -> str:
    return json.dumps(panel_to_dict(panel), indent=indent)


def panel_from_dict(data: dict) -> Panel:
    """Inverse of :func:`panel_to_dict` (round-trip for archival)."""
    panel = Panel(
        title=data["title"], xlabel=data["xlabel"], ylabel=data["ylabel"]
    )
    for label, points in data["series"].items():
        for x, y in zip(points["x"], points["y"]):
            panel.add(label, x, y)
    return panel


def panel_from_json(text: str) -> Panel:
    return panel_from_dict(json.loads(text))
