"""``dd`` — block-oriented copy with seek/skip, the lseek workout."""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class DdResult:
    full_blocks: int
    partial_blocks: int
    bytes_copied: int

    def __str__(self) -> str:
        return (
            f"{self.full_blocks}+{1 if self.partial_blocks else 0} records, "
            f"{self.bytes_copied} bytes copied"
        )


def dd(
    src: str,
    dst: str,
    *,
    bs: int = 512,
    count: int | None = None,
    skip: int = 0,
    seek: int = 0,
    conv_notrunc: bool = False,
) -> DdResult:
    """Copy *count* blocks of *bs* bytes from *src* to *dst*.

    ``skip`` input blocks are skipped (lseek on the input), the output is
    positioned ``seek`` blocks in (lseek on the output), and without
    ``conv_notrunc`` the destination is truncated first — the exact POSIX
    call pattern of the real tool, which makes this a thorough exercise
    of the shim's cursor emulation.
    """
    if bs <= 0:
        raise ValueError("bs must be positive")
    in_fd = os.open(src, os.O_RDONLY)
    try:
        out_flags = os.O_WRONLY | os.O_CREAT
        if not conv_notrunc and seek == 0:
            out_flags |= os.O_TRUNC
        out_fd = os.open(dst, out_flags)
        try:
            if skip:
                os.lseek(in_fd, skip * bs, os.SEEK_SET)
            if seek:
                os.lseek(out_fd, seek * bs, os.SEEK_SET)
            full = partial = copied = 0
            while count is None or full + partial < count:
                block = os.read(in_fd, bs)
                if not block:
                    break
                os.write(out_fd, block)
                copied += len(block)
                if len(block) == bs:
                    full += 1
                else:
                    partial += 1
            return DdResult(full, partial, copied)
        finally:
            os.close(out_fd)
    finally:
        os.close(in_fd)
