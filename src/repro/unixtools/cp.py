"""``cp`` — copy a file, POSIX-call for POSIX-call like the real tool."""

from __future__ import annotations

import os

#: coreutils-style copy buffer.
BLOCK_SIZE = 128 * 1024


def cp(src: str, dst: str, *, block_size: int = BLOCK_SIZE) -> int:
    """Copy *src* to *dst*; returns bytes copied.

    If *dst* is an existing directory the file is copied into it under its
    base name, as with the command-line tool.
    """
    if os.path.isdir(dst):
        dst = os.path.join(dst, os.path.basename(src))
    with open(src, "rb") as fsrc, open(dst, "wb") as fdst:
        copied = 0
        while True:
            block = fsrc.read(block_size)
            if not block:
                break
            fdst.write(block)
            copied += len(block)
    return copied
