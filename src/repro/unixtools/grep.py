"""``grep`` — search files for a pattern, line by line."""

from __future__ import annotations

import re
from typing import Iterable


def grep(
    pattern: str | re.Pattern,
    paths: Iterable[str],
    *,
    fixed_string: bool = False,
    invert: bool = False,
) -> list[tuple[str, int, str]]:
    """Return (path, line_number, line) for every matching line.

    Files are read in binary and decoded permissively, mirroring GNU grep's
    tolerance of arbitrary bytes.  Line iteration goes through the standard
    buffered reader, i.e. through interposed ``read`` calls.
    """
    if fixed_string:
        regex = re.compile(re.escape(pattern))
    elif isinstance(pattern, str):
        regex = re.compile(pattern)
    else:
        regex = pattern

    matches: list[tuple[str, int, str]] = []
    for path in paths:
        with open(path, "rb") as fh:
            for lineno, raw in enumerate(fh, 1):
                line = raw.decode("utf-8", errors="replace").rstrip("\n")
                hit = regex.search(line) is not None
                if hit != invert:
                    matches.append((path, lineno, line))
    return matches


def grep_count(pattern: str, paths: Iterable[str], **kwargs) -> int:
    """``grep -c`` across all *paths*."""
    return len(grep(pattern, paths, **kwargs))
