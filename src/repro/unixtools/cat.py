"""``cat`` — concatenate files to an output stream."""

from __future__ import annotations

import io
from typing import BinaryIO, Iterable

#: Read granularity; matches GNU coreutils' preferred I/O block ballpark.
BLOCK_SIZE = 128 * 1024


def cat(paths: Iterable[str], out: BinaryIO | None = None) -> int:
    """Concatenate *paths* into *out* (or a discarding sink).

    Returns the total number of bytes written.  Reads in fixed blocks with
    plain ``open``/``read`` so the interposition layer sees the same POSIX
    call pattern the real tool produces.
    """
    sink = out if out is not None else io.BytesIO()
    total = 0
    for path in paths:
        with open(path, "rb") as fh:
            while True:
                block = fh.read(BLOCK_SIZE)
                if not block:
                    break
                sink.write(block)
                total += len(block)
        if out is None:
            # Discarding sink: don't accumulate gigabytes in memory.
            sink.seek(0)
            sink.truncate()
    return total
