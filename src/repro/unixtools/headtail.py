"""``head`` and ``tail`` — line-oriented file slicing.

``tail`` uses the real tool's strategy: seek to the end, scan backwards
in blocks until enough newlines are found — exercising SEEK_END and
pread on the interposed descriptor.
"""

from __future__ import annotations

import os

BLOCK = 8192


def head(path: str, lines: int = 10) -> list[str]:
    """First *lines* lines (without trailing newlines)."""
    out: list[str] = []
    with open(path, "rb") as fh:
        for raw in fh:
            out.append(raw.decode("utf-8", errors="replace").rstrip("\n"))
            if len(out) >= lines:
                break
    return out


def tail(path: str, lines: int = 10) -> list[str]:
    """Last *lines* lines, by scanning backwards from EOF."""
    fd = os.open(path, os.O_RDONLY)
    try:
        size = os.lseek(fd, 0, os.SEEK_END)
        if size == 0:
            return []
        newlines = 0
        pos = size
        chunks: list[bytes] = []
        while pos > 0 and newlines <= lines:
            take = min(BLOCK, pos)
            pos -= take
            chunk = os.pread(fd, take, pos)
            chunks.append(chunk)
            newlines += chunk.count(b"\n")
        data = b"".join(reversed(chunks))
        text_lines = data.decode("utf-8", errors="replace").splitlines()
        return text_lines[-lines:]
    finally:
        os.close(fd)
