"""``ls`` — list a directory with optional long format."""

from __future__ import annotations

import os
import stat as stat_module
from dataclasses import dataclass


@dataclass(frozen=True)
class LsEntry:
    name: str
    size: int
    mode: int
    is_dir: bool

    def format_long(self) -> str:
        kind = "d" if self.is_dir else "-"
        perms = stat_module.filemode(self.mode)[1:]
        return f"{kind}{perms} {self.size:>12} {self.name}"


def ls(path: str = ".", *, long_format: bool = False) -> list[LsEntry] | list[str]:
    """List *path*.  Plain mode returns names; long mode stats each entry
    (so PLFS containers report their *logical* size under the shim)."""
    names = sorted(os.listdir(path))
    if not long_format:
        return names
    entries: list[LsEntry] = []
    for name in names:
        st = os.stat(os.path.join(path, name))
        entries.append(
            LsEntry(
                name=name,
                size=st.st_size,
                mode=st.st_mode,
                is_dir=stat_module.S_ISDIR(st.st_mode),
            )
        )
    return entries
