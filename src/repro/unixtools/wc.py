"""``wc`` — count lines, words and bytes."""

from __future__ import annotations

from dataclasses import dataclass

BLOCK_SIZE = 128 * 1024


@dataclass(frozen=True)
class WcResult:
    lines: int
    words: int
    bytes: int


def wc(path: str) -> WcResult:
    """Count lines/words/bytes of one file, streaming in blocks."""
    lines = words = nbytes = 0
    in_word = False
    with open(path, "rb") as fh:
        while True:
            block = fh.read(BLOCK_SIZE)
            if not block:
                break
            nbytes += len(block)
            lines += block.count(b"\n")
            for byte in block:
                is_space = byte in (0x20, 0x09, 0x0A, 0x0B, 0x0C, 0x0D)
                if in_word and is_space:
                    in_word = False
                elif not in_word and not is_space:
                    words += 1
                    in_word = True
    return WcResult(lines, words, nbytes)
