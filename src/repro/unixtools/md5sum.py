"""``md5sum`` — hex digests of files."""

from __future__ import annotations

import hashlib
from typing import Iterable

BLOCK_SIZE = 128 * 1024


def md5sum(paths: Iterable[str] | str) -> list[tuple[str, str]]:
    """Return (hex_digest, path) pairs in md5sum's output order."""
    if isinstance(paths, str):
        paths = [paths]
    out: list[tuple[str, str]] = []
    for path in paths:
        digest = hashlib.md5()
        with open(path, "rb") as fh:
            while True:
                block = fh.read(BLOCK_SIZE)
                if not block:
                    break
                digest.update(block)
        out.append((digest.hexdigest(), path))
    return out
