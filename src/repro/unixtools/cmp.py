"""``cmp`` — byte-wise file comparison."""

from __future__ import annotations

from dataclasses import dataclass

BLOCK = 128 * 1024


@dataclass(frozen=True)
class CmpResult:
    equal: bool
    #: 0-based byte offset of the first difference (or where one file
    #: ended), None when identical
    first_difference: int | None

    def __bool__(self) -> bool:
        return self.equal


def cmp(path_a: str, path_b: str) -> CmpResult:
    """Compare two files; block-buffered like the real tool."""
    offset = 0
    with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
        while True:
            block_a = fa.read(BLOCK)
            block_b = fb.read(BLOCK)
            if block_a == block_b:
                if not block_a:
                    return CmpResult(True, None)
                offset += len(block_a)
                continue
            limit = min(len(block_a), len(block_b))
            for i in range(limit):
                if block_a[i] != block_b[i]:
                    return CmpResult(False, offset + i)
            return CmpResult(False, offset + limit)
