"""``ldplfs`` command-line entry point.

Runs the bundled UNIX tools with interposition active, so containers under
the configured mounts behave as ordinary files — the paper's "extract raw
data from PLFS structures without a FUSE file system" use case::

    ldplfs --mount /mnt/plfs:/scratch/backend cat /mnt/plfs/output.dat
    ldplfs --mount /mnt/plfs:/scratch/backend cp /mnt/plfs/ckpt /tmp/ckpt
    ldplfs --mount /mnt/plfs:/scratch/backend md5sum /mnt/plfs/ckpt

Mounts may also come from ``LDPLFS_MOUNTS``/``LDPLFS_PLFSRC``.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import config, interposed

from .cat import cat
from .cmp import cmp
from .cp import cp
from .dd import dd
from .grep import grep
from .headtail import head, tail
from .ls import ls
from .md5sum import md5sum
from .wc import wc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ldplfs",
        description="Run bundled UNIX tools with LDPLFS interposition active.",
    )
    parser.add_argument(
        "--mount",
        action="append",
        default=[],
        metavar="MOUNT:BACKEND",
        help="add a PLFS mount (repeatable); falls back to LDPLFS_MOUNTS",
    )
    sub = parser.add_subparsers(dest="tool", required=True)

    p = sub.add_parser("cat", help="concatenate files to stdout")
    p.add_argument("paths", nargs="+")

    p = sub.add_parser("cp", help="copy a file")
    p.add_argument("src")
    p.add_argument("dst")

    p = sub.add_parser("grep", help="search files for a pattern")
    p.add_argument("pattern")
    p.add_argument("paths", nargs="+")
    p.add_argument("-c", "--count", action="store_true")

    p = sub.add_parser("md5sum", help="print MD5 digests")
    p.add_argument("paths", nargs="+")

    p = sub.add_parser("ls", help="list a directory")
    p.add_argument("path", nargs="?", default=".")
    p.add_argument("-l", "--long", action="store_true")

    p = sub.add_parser("wc", help="count lines, words and bytes")
    p.add_argument("paths", nargs="+")

    p = sub.add_parser("dd", help="block copy with seek/skip")
    p.add_argument("src")
    p.add_argument("dst")
    p.add_argument("--bs", type=int, default=512)
    p.add_argument("--count", type=int, default=None)
    p.add_argument("--skip", type=int, default=0)
    p.add_argument("--seek", type=int, default=0)

    p = sub.add_parser("head", help="first lines of a file")
    p.add_argument("path")
    p.add_argument("-n", "--lines", type=int, default=10)

    p = sub.add_parser("tail", help="last lines of a file")
    p.add_argument("path")
    p.add_argument("-n", "--lines", type=int, default=10)

    p = sub.add_parser("cmp", help="compare two files byte by byte")
    p.add_argument("a")
    p.add_argument("b")
    return parser


def _parse_mounts(args) -> list[tuple[str, str]]:
    mounts: list[tuple[str, str]] = []
    for item in args.mount:
        if ":" not in item:
            raise SystemExit(f"--mount {item!r} is not MOUNT:BACKEND")
        mount_point, backend = item.split(":", 1)
        mounts.append((mount_point, backend))
    if not mounts:
        mounts = config.discover_mounts()
    if not mounts:
        raise SystemExit(
            "no mounts configured: pass --mount or set "
            f"{config.ENV_MOUNTS}/{config.ENV_PLFSRC}"
        )
    return mounts


def run_tool(args, out=None) -> int:
    out = out if out is not None else sys.stdout
    if args.tool == "cat":
        cat(args.paths, out=sys.stdout.buffer if out is sys.stdout else out)
    elif args.tool == "cp":
        cp(args.src, args.dst)
    elif args.tool == "grep":
        hits = grep(args.pattern, args.paths)
        if args.count:
            print(len(hits), file=out if out is not sys.stdout.buffer else sys.stdout)
        else:
            for path, lineno, line in hits:
                print(f"{path}:{lineno}:{line}", file=out)
        return 0 if hits else 1
    elif args.tool == "md5sum":
        for digest, path in md5sum(args.paths):
            print(f"{digest}  {path}", file=out)
    elif args.tool == "ls":
        result = ls(args.path, long_format=args.long)
        for item in result:
            print(item.format_long() if args.long else item, file=out)
    elif args.tool == "wc":
        for path in args.paths:
            res = wc(path)
            print(f"{res.lines:>8} {res.words:>8} {res.bytes:>8} {path}", file=out)
    elif args.tool == "dd":
        result = dd(
            args.src, args.dst, bs=args.bs, count=args.count,
            skip=args.skip, seek=args.seek,
        )
        print(result, file=out)
    elif args.tool == "head":
        for line in head(args.path, args.lines):
            print(line, file=out)
    elif args.tool == "tail":
        for line in tail(args.path, args.lines):
            print(line, file=out)
    elif args.tool == "cmp":
        result = cmp(args.a, args.b)
        if not result.equal:
            print(
                f"{args.a} {args.b} differ: byte {result.first_difference}",
                file=out,
            )
            return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    mounts = _parse_mounts(args)
    with interposed(mounts):
        return run_tool(args)


if __name__ == "__main__":
    sys.exit(main())
