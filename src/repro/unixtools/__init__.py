"""``repro.unixtools`` — unmodified POSIX applications for Table II.

Faithful Python implementations of the UNIX tools the paper runs over PLFS
containers through LDPLFS (`cp`, `cat`, `grep`, `md5sum`, plus `ls` and
`wc` for convenience).  They are written purely against ``builtins.open``
and the ``os`` module — *no PLFS imports* — so that running them under
:func:`repro.core.interposed` demonstrates exactly the paper's claim: an
application that knows nothing about PLFS transparently operates on PLFS
containers once the shim is loaded.
"""

from .cat import cat
from .cmp import cmp
from .cp import cp
from .dd import dd
from .grep import grep
from .headtail import head, tail
from .ls import ls
from .md5sum import md5sum
from .wc import wc

__all__ = [
    "cat",
    "cp",
    "grep",
    "md5sum",
    "ls",
    "wc",
    "dd",
    "head",
    "tail",
    "cmp",
]
