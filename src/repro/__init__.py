"""LDPLFS reproduction (Wright et al., "LDPLFS: Improving I/O Performance
Without Application Modification", 2012).

Sub-packages:

- :mod:`repro.plfs` — a complete Parallel Log-structured File System on a
  real backend directory tree (containers, droppings, index).
- :mod:`repro.core` — LDPLFS itself: transparent POSIX→PLFS interposition
  (the paper's primary contribution).
- :mod:`repro.unixtools` — cp/cat/grep/md5sum/ls/wc as unmodified POSIX
  applications (Table II).
- :mod:`repro.sim` — deterministic discrete-event simulation core.
- :mod:`repro.cluster` — Minerva and Sierra platform models (Table I).
- :mod:`repro.fs` — simulated parallel-FS data paths (shared files vs
  PLFS containers).
- :mod:`repro.mpiio` — simulated MPI-IO with collective buffering and the
  four access methods (MPI-IO, FUSE, ROMIO, LDPLFS).
- :mod:`repro.workloads` — MPI-IO Test, NAS BT, FLASH-IO generators
  (Figs. 3-5).
- :mod:`repro.model` — analytic performance model + auto-tuning (§V.A).
- :mod:`repro.analysis` — series containers, tables, shape checks.

Quick start (the paper's headline capability)::

    from repro.core import interposed

    with interposed([("/mnt/plfs", "/tmp/plfs_backend")]):
        with open("/mnt/plfs/out.dat", "wb") as fh:   # unmodified code
            fh.write(b"transparently stored in a PLFS container")
"""

__version__ = "1.0.0"

from . import analysis, cluster, core, fs, model, mpiio, plfs, sim, unixtools, workloads

__all__ = [
    "plfs",
    "core",
    "unixtools",
    "sim",
    "cluster",
    "fs",
    "mpiio",
    "workloads",
    "model",
    "analysis",
    "__version__",
]
