"""The NAS BT I/O workload (paper §IV, Fig. 4).

The Block-Tridiagonal solver's I/O mode dumps the solution array every few
timesteps: 20 collective write calls over the run, strong-scaled (the
global problem — and therefore the total output — is fixed while the core
count grows, so the per-process write size shrinks).  Class C writes
6.4 GB total, class D 136 GB, as stated in the paper.

BT requires a square number of processes; the paper's core counts
(4, 16, 64, 256, 1024, 4096) are all squares.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.machine import MachineSpec
from repro.mpiio.file import MPIIOSimFile
from repro.mpiio.methods import AccessMethod
from repro.mpiio.simmpi import Communicator
from repro.sim.stats import GB

from .base import RunResult, finish_run, make_platform, validate_run


@dataclass(frozen=True)
class BTClass:
    name: str
    grid: tuple[int, int, int]
    total_bytes: float
    write_steps: int
    min_cores: int
    max_cores: int


#: Problem classes as benchmarked in the paper (§IV).
BT_CLASSES = {
    "C": BTClass("C", (162, 162, 162), 6.4 * GB, 20, 4, 1024),
    "D": BTClass("D", (408, 408, 408), 136.0 * GB, 20, 64, 4096),
}


def bt_core_counts(cls: str) -> list[int]:
    """The square core counts the paper sweeps for a class."""
    spec = BT_CLASSES[cls]
    counts = []
    n = int(math.isqrt(spec.min_cores))
    while n * n <= spec.max_cores:
        if n * n >= spec.min_cores:
            counts.append(n * n)
        n *= 2
    return counts


def run_bt(
    machine: MachineSpec,
    method: AccessMethod,
    cores: int,
    cls: str = "C",
) -> RunResult:
    """Simulate BT's I/O for one core count and problem class."""
    spec = BT_CLASSES[cls]
    if int(math.isqrt(cores)) ** 2 != cores:
        raise ValueError(f"BT needs a square process count, got {cores}")
    if not spec.min_cores <= cores <= spec.max_cores:
        raise ValueError(
            f"class {cls} scales from {spec.min_cores} to {spec.max_cores} cores"
        )
    # Fill nodes with the largest process count that divides the total (so
    # every node is uniformly loaded, as mpirun block placement gives).
    ppn = next(
        p for p in range(min(machine.cores_per_node, cores), 0, -1) if cores % p == 0
    )
    nodes = cores // ppn
    validate_run(machine, method, nodes, ppn)
    per_rank_per_step = spec.total_bytes / spec.write_steps / cores

    result = RunResult(
        machine=machine.name,
        method=method.name,
        nodes=nodes,
        ppn=ppn,
        total_bytes=spec.total_bytes,
        details={"class": cls, "cores": cores, "per_write": per_rank_per_step},
    )

    env, platform = make_platform(machine)
    comm = Communicator(nodes, ppn)

    def driver():
        f = MPIIOSimFile(platform, method, comm, name=f"bt.{cls}.out")
        t0 = env.now
        yield from f.open_all()
        for _ in range(spec.write_steps):
            yield from f.write_at_all(per_rank_per_step)
        yield from f.close_all()
        result.write_seconds = env.now - t0

    env.run(until=env.process(driver()))
    return finish_run(
        result,
        platform,
        write_size=per_rank_per_step,
        write_calls_per_rank=spec.write_steps,
        collective=True,
        strided=False,
    )
