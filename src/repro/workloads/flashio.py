"""The FLASH-IO checkpoint workload (paper §IV, Fig. 5).

FLASH-IO recreates the FLASH thermonuclear code's HDF5 checkpoint: weak
scaled with a 24³ local block, each process writes ~205 MB per checkpoint.
HDF5 datasets are written with *independent* I/O (the benchmark's default),
so every rank issues its own writes — which is exactly why PLFS creates
dropping files for every processor and floods the Lustre MDS at scale.

The paper runs 1..256 nodes at 12 processes per node (12..3072 cores).
"""

from __future__ import annotations

from repro.cluster.machine import MachineSpec
from repro.mpiio.file import MPIIOSimFile
from repro.mpiio.methods import AccessMethod
from repro.mpiio.simmpi import Communicator
from repro.sim.stats import MB

from .base import RunResult, finish_run, make_platform, validate_run

#: bytes per process per checkpoint (paper: "approximately 205 MB")
PER_PROC_BYTES = 205 * MB
#: FLASH writes one dataset per solution variable; the standard FLASH-IO
#: configuration carries 24 unknowns, giving ~8.5 MB slabs per variable.
NUM_VARIABLES = 24
#: small per-file header/attribute writes performed by rank 0
HEADER_WRITES = 8
HEADER_BYTES = 64 * 1024


def run_flashio(
    machine: MachineSpec,
    method: AccessMethod,
    nodes: int,
    ppn: int = 12,
) -> RunResult:
    """Simulate one FLASH-IO checkpoint."""
    validate_run(machine, method, nodes, ppn)
    env, platform = make_platform(machine)
    comm = Communicator(nodes, ppn)
    per_var = PER_PROC_BYTES / NUM_VARIABLES
    total = PER_PROC_BYTES * comm.size

    result = RunResult(
        machine=machine.name,
        method=method.name,
        nodes=nodes,
        ppn=ppn,
        total_bytes=total,
        details={"per_var": per_var, "variables": NUM_VARIABLES},
    )

    def rank_writes(f: MPIIOSimFile, rank):
        # Dataset layout: variable v occupies a contiguous region of the
        # checkpoint; rank r's slab sits at r * per_var within it.  The
        # resulting shared-file offsets are strided, as HDF5 hyperslab
        # writes produce.
        for v in range(NUM_VARIABLES):
            dataset_base = v * per_var * comm.size
            offset = dataset_base + rank.rank * per_var
            yield from f.write_independent(rank, offset, per_var)

    def driver():
        f = MPIIOSimFile(platform, method, comm, name="flash.chk")
        t0 = env.now
        yield from f.open_all()
        # Rank 0 writes the HDF5 header/attributes first.
        rank0 = comm.ranks[0]
        for _ in range(HEADER_WRITES):
            yield from f.write_independent(rank0, 0, HEADER_BYTES)
        # All ranks write their variable slabs concurrently.
        procs = [
            env.process(rank_writes(f, rank)) for rank in comm.ranks
        ]
        yield env.all_of(procs)
        yield from f.close_all()
        result.write_seconds = env.now - t0

    env.run(until=env.process(driver()))
    return finish_run(
        result,
        platform,
        write_size=per_var,
        write_calls_per_rank=NUM_VARIABLES,
        collective=False,
        strided=True,
        header_writes=HEADER_WRITES,
        header_bytes=HEADER_BYTES,
    )


#: the node counts of the paper's Fig. 5 sweep
FLASHIO_NODE_SWEEP = [1, 2, 4, 8, 16, 32, 64, 128, 256]
