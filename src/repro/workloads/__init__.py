"""``repro.workloads`` — the paper's benchmark applications as workload
generators for the simulated platform.

- :func:`run_mpiio_test` — LANL MPI-IO Test (Fig. 3)
- :func:`run_bt` — NAS BT class C/D I/O (Fig. 4)
- :func:`run_flashio` — FLASH-IO weak-scaled checkpoint (Fig. 5)
"""

from .base import RunResult, make_platform, validate_run
from .bt import BT_CLASSES, BTClass, bt_core_counts, run_bt
from .flashio import FLASHIO_NODE_SWEEP, PER_PROC_BYTES, run_flashio
from .mpiio_test import run_mpiio_test

__all__ = [
    "RunResult",
    "make_platform",
    "validate_run",
    "run_mpiio_test",
    "run_bt",
    "bt_core_counts",
    "BT_CLASSES",
    "BTClass",
    "run_flashio",
    "FLASHIO_NODE_SWEEP",
    "PER_PROC_BYTES",
]
