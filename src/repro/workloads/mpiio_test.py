"""The LANL MPI-IO Test workload (paper §III.C, Fig. 3).

Collective blocking MPI-IO: every process writes ``per_proc`` bytes in
``block``-sized collective steps (the paper uses 1 GB per process in 8 MB
blocks), then the file is reopened and read back on the same layout.
Collective buffering is on, one aggregator per node (footnote 3).
"""

from __future__ import annotations

from repro.cluster.machine import MachineSpec
from repro.mpiio.file import MPIIOSimFile
from repro.mpiio.methods import AccessMethod
from repro.mpiio.simmpi import Communicator
from repro.sim.stats import GB, MB

from .base import RunResult, finish_run, make_platform, validate_run

DEFAULT_BLOCK = 8 * MB
DEFAULT_PER_PROC = 1 * GB


def run_mpiio_test(
    machine: MachineSpec,
    method: AccessMethod,
    nodes: int,
    ppn: int,
    *,
    block: float = DEFAULT_BLOCK,
    per_proc: float = DEFAULT_PER_PROC,
    read_back: bool = True,
) -> RunResult:
    """Simulate one MPI-IO Test run; returns bandwidths in the result."""
    validate_run(machine, method, nodes, ppn)
    if per_proc < block:
        raise ValueError("per_proc must be at least one block")
    env, platform = make_platform(machine)
    comm = Communicator(nodes, ppn)
    steps = int(per_proc // block)
    total = block * steps * comm.size

    result = RunResult(
        machine=machine.name,
        method=method.name,
        nodes=nodes,
        ppn=ppn,
        total_bytes=total,
    )

    def driver():
        f = MPIIOSimFile(platform, method, comm, name="mpiio_test.out")
        # ---- write phase (timed open-to-close, as the tool reports) ----
        t0 = env.now
        yield from f.open_all()
        for _ in range(steps):
            yield from f.write_at_all(block)
        yield from f.close_all()
        result.write_seconds = env.now - t0
        if read_back:
            t0 = env.now
            yield from f.open_all(for_read=True)
            for _ in range(steps):
                yield from f.read_at_all(block)
            yield from f.close_all()
            result.read_seconds = env.now - t0

    env.run(until=env.process(driver()))
    return finish_run(
        result,
        platform,
        write_size=block,
        write_calls_per_rank=steps,
        collective=True,
        strided=False,
        read_back=read_back,
    )
