"""Common scaffolding for the benchmark workloads."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.machine import MachineSpec
from repro.cluster.platform import Platform
from repro.mpiio.methods import AccessMethod
from repro.sim.engine import Environment
from repro.sim.stats import MB


@dataclass
class RunResult:
    """Outcome of one simulated benchmark run."""

    machine: str
    method: str
    nodes: int
    ppn: int
    total_bytes: float
    write_seconds: float = 0.0
    read_seconds: float = 0.0
    mds_ops: int = 0
    mds_longest_queue: int = 0
    details: dict = field(default_factory=dict)
    #: snapshot of :meth:`repro.cluster.platform.Platform.report` at the
    #: end of the run — the raw material for ``repro.insights``
    platform_report: dict = field(default_factory=dict)

    @property
    def cores(self) -> int:
        return self.nodes * self.ppn

    @property
    def write_bandwidth(self) -> float:
        """MB/s, the unit of every figure in the paper."""
        if self.write_seconds <= 0:
            return 0.0
        return self.total_bytes / MB / self.write_seconds

    @property
    def read_bandwidth(self) -> float:
        if self.read_seconds <= 0:
            return 0.0
        return self.total_bytes / MB / self.read_seconds


def make_platform(machine: MachineSpec) -> tuple[Environment, Platform]:
    """Fresh simulation environment + platform for one run."""
    env = Environment(strict=True)
    return env, Platform(env, machine)


def finish_run(result: RunResult, platform: Platform, **pattern) -> RunResult:
    """Capture end-of-run platform state on the result.

    *pattern* keys (``write_size``, ``collective``, ``strided``,
    ``write_calls_per_rank`` …) describe the I/O pattern the workload
    issued; they are merged into ``result.details`` so downstream
    characterisation (``repro.insights``) does not have to re-derive
    them per workload.
    """
    result.mds_ops = platform.mds.ops_issued()
    result.mds_longest_queue = platform.mds.longest_observed_queue
    result.platform_report = platform.report()
    result.details.update(pattern)
    return result


def validate_run(machine: MachineSpec, method: AccessMethod, nodes: int, ppn: int) -> None:
    if nodes < 1:
        raise ValueError("need at least one node")
    if nodes > machine.nodes:
        raise ValueError(
            f"{machine.name} has {machine.nodes} nodes; asked for {nodes}"
        )
    if not 1 <= ppn <= machine.cores_per_node:
        raise ValueError(
            f"{machine.name} has {machine.cores_per_node} cores per node; "
            f"asked for {ppn} processes per node"
        )
