"""On-disk names and magic values for the PLFS container format.

The layout follows the PLFS 2.x container structure described in the paper
(Fig. 1) and in Bent et al., SC'09: a logical file is a directory on the
backend file system holding one ``hostdir.N`` sub-directory per writing host,
each containing *data droppings* (the log) and *index droppings* (the maps
from logical file offsets to extents inside the data droppings).
"""

from __future__ import annotations

#: Marker file that makes a backend directory recognisable as a PLFS
#: container rather than a plain directory.  The numeric suffix matches the
#: magic used by the original C implementation.
ACCESS_FILE = ".plfsaccess113918400"

#: Records which host/pid created the container and when.
CREATOR_FILE = "creator"

#: Directory holding one marker file per host that currently has the
#: container open for writing (used to decide whether cached metadata in
#: ``META_DIR`` can be trusted).
OPENHOSTS_DIR = "openhosts"

#: Directory of cached-metadata droppings written at close time; each file is
#: named ``<last_offset>.<total_bytes>.<host>``.
META_DIR = "meta"

#: Prefix of the per-host data/index sub-directories: ``hostdir.0`` ...
HOSTDIR_PREFIX = "hostdir."

#: Data dropping file name prefix: ``dropping.data.<ts>.<host>.<pid>``.
DATA_PREFIX = "dropping.data."

#: Index dropping file name prefix: ``dropping.index.<ts>.<host>.<pid>``.
INDEX_PREFIX = "dropping.index."

#: Write-ahead index dropping prefix: ``dropping.wal.<ts>.<host>.<pid>``.
#: Present only while a WAL-enabled writer is open (or crashed): each data
#: append persists its index record here *before* touching the data
#: dropping, so ``repro-fsck`` can rebuild a lost or torn index dropping.
#: Deleted on clean close, when the index dropping becomes authoritative.
WAL_PREFIX = "dropping.wal."

#: Number of ``hostdir.N`` buckets a container is created with.  Hosts hash
#: into a bucket, so the bucket count bounds backend-directory fan-out.
NUM_HOSTDIRS = 32

#: Version tag written into the creator file; bump on incompatible change.
FORMAT_VERSION = 1

#: Sentinel dropping id used in a read plan for a hole (unwritten region).
HOLE = -1
