"""On-disk names and magic values for the PLFS container format.

The layout follows the PLFS 2.x container structure described in the paper
(Fig. 1) and in Bent et al., SC'09: a logical file is a directory on the
backend file system holding one ``hostdir.N`` sub-directory per writing host,
each containing *data droppings* (the log) and *index droppings* (the maps
from logical file offsets to extents inside the data droppings).
"""

from __future__ import annotations

#: Marker file that makes a backend directory recognisable as a PLFS
#: container rather than a plain directory.  The numeric suffix matches the
#: magic used by the original C implementation.
ACCESS_FILE = ".plfsaccess113918400"

#: Records which host/pid created the container and when.
CREATOR_FILE = "creator"

#: Directory holding one marker file per host that currently has the
#: container open for writing (used to decide whether cached metadata in
#: ``META_DIR`` can be trusted).
OPENHOSTS_DIR = "openhosts"

#: Directory of cached-metadata droppings written at close time; each file is
#: named ``<last_offset>.<total_bytes>.<host>``.
META_DIR = "meta"

#: Prefix of the per-host data/index sub-directories: ``hostdir.0`` ...
HOSTDIR_PREFIX = "hostdir."

#: Data dropping file name prefix: ``dropping.data.<ts>.<host>.<pid>``.
DATA_PREFIX = "dropping.data."

#: Index dropping file name prefix: ``dropping.index.<ts>.<host>.<pid>``.
INDEX_PREFIX = "dropping.index."

#: Write-ahead index dropping prefix: ``dropping.wal.<ts>.<host>.<pid>``.
#: Present only while a WAL-enabled writer is open (or crashed): each data
#: append persists its index record here *before* touching the data
#: dropping, so ``repro-fsck`` can rebuild a lost or torn index dropping.
#: Deleted on clean close, when the index dropping becomes authoritative.
WAL_PREFIX = "dropping.wal."

#: Number of ``hostdir.N`` buckets a container is created with.  Hosts hash
#: into a bucket, so the bucket count bounds backend-directory fan-out.
NUM_HOSTDIRS = 32

#: Version tag written into the creator file; bump on incompatible change.
FORMAT_VERSION = 1

#: Sentinel dropping id used in a read plan for a hole (unwritten region).
HOLE = -1

#: File name of the persistent compacted global index, stored in the
#: container root (never inside a hostdir, so dropping enumeration ignores
#: it).  Written on clean close and by ``repro-plfs compact``; validated
#: against the container epoch and *never* trusted when stale — a reader
#: that finds a mismatching or unparsable file silently falls back to
#: merging the per-writer index droppings.
GLOBAL_INDEX_FILE = "global.index"

#: Magic string opening the compacted-global-index header.
GLOBAL_INDEX_MAGIC = "plfs-global-index"

#: Version of the compacted-global-index format; bump on incompatible change.
GLOBAL_INDEX_VERSION = 1

#: Default cap on a read handle's data-dropping descriptor cache.  One fd
#: per dropping with no bound exhausts ``RLIMIT_NOFILE`` on wide containers
#: (one dropping per writing rank); past the cap the least-recently-used
#: descriptor is closed and reopened on demand.
FD_CACHE_LIMIT = 64

#: Maximum physical gap (bytes, within one data dropping) across which two
#: plan slices are still serviced by a single pread — the data-sieving
#: trade described by Thakur et al.: reading and discarding a small gap is
#: cheaper than a second I/O.  Slices merge when physically adjacent or
#: separated by at most this many bytes.
READ_COALESCE_GAP = 4096

#: Number of containers the process-wide shared index cache retains.
INDEX_CACHE_CAPACITY = 64

#: File name of the per-container generation file, stored in the container
#: root.  Atomically replaced (write + rename, so it gets a fresh inode and
#: mtime) by every write-path flush/sync/close, it lets readers in *other*
#: processes detect that their cached index went stale with one ``stat``.
#: Purely advisory: a missing or unreadable generation file only disables
#: the cross-process fast check, never correctness (the container epoch
#: remains the authority).
GENERATION_FILE = "generation"
