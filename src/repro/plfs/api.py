"""The PLFS user-level API.

Mirrors the C functions quoted in the paper's Listing 1 (``plfs_open``,
``plfs_read``, ``plfs_write``) plus the rest of the surface LDPLFS needs
(`close`, `sync`, `unlink`, `access`, `getattr`, `trunc`, `create`,
`rename`, directory ops).  All functions take *backend physical paths*; the
interposition layer (``repro.core``) performs logical-path → backend
resolution through its mount table, exactly as plfsrc does for the C
library.

Differences from C forced by the language are intentional and small:
``plfs_read`` returns ``bytes`` (with a buffer-filling variant) and errors
are raised as :class:`~repro.plfs.errors.PlfsError` (an :class:`OSError`)
rather than returned as ``-errno``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from . import cache as index_cache
from . import constants
from .container import Container, is_container, readdir_logical, rmdir_logical
from .errors import BadFlagsError, ContainerNotFoundError, NotAContainerError
from .index import pack_records
from .reader import ReadFile
from .util import hostname, unique_timestamp
from .writer import WriteFile

_ACCMODE = os.O_RDONLY | os.O_WRONLY | os.O_RDWR


def _remote(fd) -> bool:
    """True when *fd* is a daemon-held handle (``repro.plfsd``'s RemoteFd).

    Dispatch is duck-typed on purpose: ``plfs`` must not import ``plfsd``
    (the daemon builds on this module), yet every ``plfs_*`` entry point
    below accepts either handle kind so the interposition layer never
    branches on where a handle lives.
    """
    return getattr(fd, "is_remote", False)


@dataclass
class OpenOptions:
    """Counterpart of ``Plfs_open_opt`` (all defaulted, as LDPLFS does)."""

    buffer_index: bool = True
    #: number of hostdir buckets for new containers
    num_hostdirs: int = constants.NUM_HOSTDIRS
    #: persist every index record to a write-ahead dropping before its data
    #: append, making a crashed writer's index rebuildable by ``repro-fsck``
    #: at the cost of one small sequential write per call
    write_ahead_index: bool = False
    #: group-commit window for the write-ahead index: records per
    #: ``write_wal`` batch.  1 (the default) is the strict per-append
    #: ordering; larger windows amortise the WAL syscall over many small
    #: writes at the cost of intra-batch crash coverage — a crash inside a
    #: batch can strand up to ``wal_batch_records - 1`` appends' bytes past
    #: the WAL coverage, which ``repro-fsck`` trims and reports.
    #: ``plfs_sync`` is always a hard barrier.
    wal_batch_records: int = 1
    #: flatten the merged global index into the persistent ``global.index``
    #: dropping when the last writer closes cleanly, so subsequent opens
    #: load one compacted file instead of re-merging every index dropping
    compact_on_close: bool = True


@dataclass
class Plfs_fd:
    """Counterpart of the C ``Plfs_fd`` handle.

    Reference counted: LDPLFS-style layers may share one handle across
    multiple application descriptors; the final ``plfs_close`` tears it
    down.
    """

    container: Container
    flags: int
    pid: int
    refs: int = 1
    writer: WriteFile | None = None
    #: write the persistent compacted global index on last clean close
    compact_on_close: bool = True
    _reader: ReadFile | None = field(default=None, repr=False)
    _dirty_since_reader_build: bool = field(default=False, repr=False)

    @property
    def path(self) -> str:
        return self.container.path

    @property
    def readable(self) -> bool:
        return (self.flags & _ACCMODE) in (os.O_RDONLY, os.O_RDWR)

    @property
    def writable(self) -> bool:
        return (self.flags & _ACCMODE) in (os.O_WRONLY, os.O_RDWR)

    def reader(self) -> ReadFile:
        if self._reader is None:
            self._reader = ReadFile(self.container, writer=self.writer)
            self._dirty_since_reader_build = False
        elif self._dirty_since_reader_build:
            self._reader.refresh()
            self._dirty_since_reader_build = False
        return self._reader

    def mark_dirty(self) -> None:
        self._dirty_since_reader_build = True

    def invalidate_reader(self) -> None:
        """Discard the cached reader entirely.  Needed when the writer
        object itself is replaced (truncate), since a cached ReadFile holds
        a reference to the writer whose unflushed records it overlays."""
        if self._reader is not None:
            self._reader.close()
            self._reader = None
        self._dirty_since_reader_build = False


# ---------------------------------------------------------------------- #
# open / close
# ---------------------------------------------------------------------- #


def plfs_open(
    path: str,
    flags: int,
    pid: int | None = None,
    mode: int = 0o644,
    open_opt: OpenOptions | None = None,
) -> Plfs_fd:
    """Open (optionally creating) the logical file backed at *path*."""
    pid = os.getpid() if pid is None else pid
    container = Container(path)
    exists = container.exists()

    if not exists:
        if os.path.isdir(path) and not container.exists():
            # Container creation is atomic, so an on-disk directory that
            # is not a container is a foreign directory (the re-check
            # closes the window where a concurrent creator renamed the
            # skeleton into place between our two looks).
            raise NotAContainerError(f"is a directory: {path}")
        if os.path.exists(path) and not os.path.isdir(path):
            raise NotAContainerError(f"exists and is not a PLFS file: {path}")
        if not flags & os.O_CREAT and not container.exists():
            raise ContainerNotFoundError(f"no such file: {path}")
        if flags & os.O_CREAT:
            container.create(mode, exclusive=bool(flags & os.O_EXCL), pid=pid)
    elif flags & os.O_CREAT and flags & os.O_EXCL:
        container.create(mode, exclusive=True, pid=pid)

    if flags & os.O_TRUNC and (flags & _ACCMODE) != os.O_RDONLY:
        container.wipe_data()

    fd = Plfs_fd(container=container, flags=flags, pid=pid)
    if open_opt is not None:
        fd.compact_on_close = open_opt.compact_on_close
    if fd.writable:
        wal = bool(open_opt and open_opt.write_ahead_index)
        wal_batch = open_opt.wal_batch_records if open_opt is not None else 1
        fd.writer = WriteFile(container, wal=wal, wal_batch=wal_batch)
        try:
            container.register_open(pid)
        except OSError:
            # Failed open must not leak the writer's droppings/descriptors
            # or leave the container looking half-open.
            fd.writer.abandon()
            fd.writer = None
            raise
    return fd


def plfs_close(fd, pid: int | None = None, flags: int | None = None) -> int:
    """Drop one reference; tear down on the last.  Returns remaining refs.

    Idempotent and exception-safe: closing an already-closed handle is a
    no-op returning 0, and a writer that raises mid-close still leaves the
    handle fully torn down (writer detached, open-marker unregistered), so
    a daemon holding thousands of slots can always reclaim one — retrying
    or double-closing after an error can never wedge a slot.
    """
    if _remote(fd):
        return fd.close()
    if fd.refs <= 0:
        return 0
    fd.refs -= 1
    if fd.refs > 0:
        return fd.refs
    if fd._reader is not None:
        fd._reader.close()
        fd._reader = None
    writer, fd.writer = fd.writer, None  # claim it: a re-raised close must not re-enter
    if writer is not None:
        last = writer.max_logical_end
        total = writer.total_written
        try:
            writer.close()
        except Exception:
            # The writer is broken but the handle must still be fully
            # reclaimed: drop the open-marker so the container does not
            # look eternally half-open, then surface the error.  (An
            # InjectedCrash is a BaseException and passes through without
            # cleanup — a crash kills the process, it doesn't tidy up.)
            fd.container.unregister_open(pid if pid is not None else fd.pid)
            raise
        fd.container.unregister_open(pid if pid is not None else fd.pid)
        if total:
            fd.container.drop_meta(last, total)
        if (
            total
            and fd.compact_on_close
            and not fd.container.open_writers()
        ):
            # Clean last close: flatten the merged index into the
            # persistent global.index so the next reader skips the merge.
            # Compaction is an accelerator — a failure to write it must
            # never fail the close (readers just take the slow path).
            try:
                index_cache.compact(fd.container)
            except OSError:
                pass
    return 0


def plfs_ref(fd):
    """Take an additional reference on an open handle."""
    fd.refs += 1
    return fd


# ---------------------------------------------------------------------- #
# data path
# ---------------------------------------------------------------------- #


def _as_buffer(buf):
    """Normalise *buf* to a zero-copy byte view where the buffer protocol
    allows it (contiguous buffers become a flat ``memoryview``; only
    non-contiguous or non-buffer inputs pay a copy)."""
    if isinstance(buf, (bytes, bytearray, memoryview)) and (
        not isinstance(buf, memoryview) or (buf.contiguous and buf.itemsize == 1)
    ):
        return buf
    try:
        view = memoryview(buf)
    except TypeError:
        return bytes(buf)
    if view.contiguous:
        return view.cast("B")
    return view.tobytes()


def plfs_write(fd, buf, count: int | None = None, offset: int = 0, pid: int | None = None) -> int:
    """Write ``buf[:count]`` at logical *offset*; returns bytes written.

    Any bytes-like object is accepted; contiguous buffers (including
    ``memoryview`` slices the shim produces for short-write resumption)
    thread through the write path without copying.
    """
    if _remote(fd):
        return fd.write(buf, count, offset)
    if fd.writer is None:
        raise BadFlagsError("handle not open for writing")
    data = _as_buffer(buf)
    if count is not None:
        data = memoryview(data)[:count]
    n = fd.writer.write(data, offset, fd.pid if pid is None else pid)
    fd.mark_dirty()
    return n


def plfs_writev(fd: Plfs_fd, buffers, offset: int = 0, pid: int | None = None) -> int:
    """Vectored write: *buffers* land contiguously from *offset* as one
    data append plus one (possibly merged) index record — the
    ``writev``/``pwritev`` fast path.  Returns total bytes written."""
    # Normalise and drop empty views *before* dispatching, so the remote
    # (plfsd) branch sees exactly what the local writer would: an all-empty
    # iovec returns 0 on both paths without a wire round trip (the raw
    # forward used to ship zero-length pieces to the daemon).
    views = [_as_buffer(b) for b in buffers]
    views = [v for v in views if len(v)]
    if _remote(fd):
        if not views:
            return 0
        return fd.writev(views, offset)
    if fd.writer is None:
        raise BadFlagsError("handle not open for writing")
    if not views:
        return 0
    n = fd.writer.append_many(views, offset, fd.pid if pid is None else pid)
    fd.mark_dirty()
    return n


def plfs_read(fd, count: int, offset: int) -> bytes:
    """Read up to *count* bytes at *offset* (returns ``b""`` at EOF)."""
    if _remote(fd):
        return fd.read(count, offset)
    if not fd.readable:
        raise BadFlagsError("handle not open for reading")
    return fd.reader().read(count, offset)


def plfs_read_into(fd, buf, offset: int) -> int:
    """C-style variant filling a caller buffer; returns bytes read."""
    if _remote(fd):
        return fd.read_into(buf, offset)
    if not fd.readable:
        raise BadFlagsError("handle not open for reading")
    return fd.reader().read_into(buf, offset)


def plfs_sync(fd, pid: int | None = None) -> None:
    """Flush buffered index records and fsync data droppings."""
    if _remote(fd):
        fd.sync()
        return
    if fd.writer is not None:
        fd.writer.sync()


# ---------------------------------------------------------------------- #
# metadata
# ---------------------------------------------------------------------- #


def plfs_getattr(fd_or_path, *, size_only: bool = False) -> os.stat_result:
    """Stat the logical file (size = logical size from index or meta)."""
    if _remote(fd_or_path):
        return fd_or_path.getattr()
    if isinstance(fd_or_path, Plfs_fd):
        container = fd_or_path.container
        if fd_or_path.writer is not None:
            # An open writer knows its own high-water mark; combine with the
            # on-disk view so handles stat correctly mid-write.  Building
            # the index is a metadata operation and is legal even on a
            # write-only handle (O_APPEND needs it to find the end).  The
            # on-disk size comes from the epoch-validated shared cache, so
            # another handle's flush is always seen (the cache rebuilds on
            # epoch change) while repeated stats of a quiet container cost
            # one cache hit instead of an index merge; this handle's own
            # unflushed records never exceed its high-water mark, which the
            # max() below folds in.
            disk = container.cached_size()
            if disk is None:
                loaded, _ = index_cache.shared_cache().get(container)
                disk = loaded.index.logical_size
            size = max(disk, fd_or_path.writer.max_logical_end)
            return container.getattr(size=size)
        return container.getattr()
    container = Container(fd_or_path)
    return container.getattr()


def plfs_access(path: str, amode: int) -> bool:
    """POSIX ``access`` on the logical file."""
    container = Container(path)
    if not container.exists():
        raise ContainerNotFoundError(f"no such file: {path}")
    # Containers are directories on the backend; delegate permission checks.
    return os.access(path, amode)


def plfs_exists(path: str) -> bool:
    return is_container(path)


def plfs_unlink(path: str) -> None:
    Container(path).unlink()
    index_cache.invalidate(path)


def plfs_create(path: str, mode: int = 0o644, pid: int | None = None) -> None:
    """``creat``-like: make an empty logical file."""
    Container(path).create(mode, pid=os.getpid() if pid is None else pid)


def plfs_trunc(fd_or_path: Plfs_fd | str, offset: int = 0) -> None:
    """Truncate the logical file to *offset* bytes.

    ``offset == 0`` wipes the droppings (the fast path used by ``O_TRUNC``).
    Shrinking rewrites the container through compaction clipped at *offset*;
    growing writes a single zero byte at ``offset - 1`` (the extended region
    reads back as zeros either way).  The C library takes the same
    fast/slow split.
    """
    if _remote(fd_or_path):
        fd_or_path.trunc(offset)
        return
    if isinstance(fd_or_path, Plfs_fd):
        fd, path = fd_or_path, fd_or_path.path
        container = fd.container
    else:
        fd, path = None, fd_or_path
        container = Container(path)
    if not container.exists():
        raise ContainerNotFoundError(f"no such file: {path}")

    if offset == 0:
        if fd is not None and fd.writer is not None:
            wal, wal_batch = fd.writer.wal, fd.writer.wal_batch
            fd.writer.close()
            container.wipe_data()
            fd.writer = WriteFile(container, wal=wal, wal_batch=wal_batch)
        else:
            container.wipe_data()
        index_cache.invalidate(container.path)
        if fd is not None:
            fd.invalidate_reader()
        return

    current = plfs_getattr(fd if fd is not None else path).st_size
    if offset == current:
        return
    if offset > current:
        if fd is not None and fd.writer is not None:
            plfs_write(fd, b"\x00", 1, offset - 1)
        else:
            tmp = plfs_open(path, os.O_WRONLY, mode=0o644)
            try:
                plfs_write(tmp, b"\x00", 1, offset - 1)
            finally:
                plfs_close(tmp)
        return

    # Shrink: compact the flattened index clipped at *offset*.  An open
    # writer must be recycled: its droppings are replaced by the compaction
    # and its high-water mark would otherwise report the pre-shrink size.
    if fd is not None and fd.writer is not None:
        wal, wal_batch = fd.writer.wal, fd.writer.wal_batch
        fd.writer.close()
        plfs_flatten_index(path, clip=offset)
        fd.writer = WriteFile(container, wal=wal, wal_batch=wal_batch)
    else:
        plfs_flatten_index(path, clip=offset)
    if fd is not None:
        fd.invalidate_reader()


def plfs_rename(path: str, new_path: str) -> None:
    Container(path).rename(new_path)
    index_cache.invalidate(path)
    index_cache.invalidate(new_path)


# ---------------------------------------------------------------------- #
# directory operations (pass-throughs with container awareness)
# ---------------------------------------------------------------------- #


def plfs_mkdir(path: str, mode: int = 0o755) -> None:
    os.mkdir(path, mode)


def plfs_rmdir(path: str) -> None:
    rmdir_logical(path)


def plfs_readdir(path: str) -> list[str]:
    return readdir_logical(path)


# ---------------------------------------------------------------------- #
# maintenance utilities
# ---------------------------------------------------------------------- #


def plfs_flatten_index(path: str, *, clip: int | None = None) -> int:
    """Compact a container into a single (data, index) dropping pair.

    Rewrites the flattened logical content sequentially, discarding
    overwritten log garbage; with *clip* the content is truncated to that
    many logical bytes first.  Returns the new physical byte count.  This is
    the ``plfs_flatten_index`` maintenance tool from the C distribution and
    the slow path for shrink-truncate.
    """
    container = Container(path)
    reader = ReadFile(container)
    try:
        segments = reader.index.segments()
        if clip is not None:
            segments = [
                (s, min(e, clip), d, p) for (s, e, d, p) in segments if s < clip
            ]
        # Read every surviving extent *before* wiping the droppings.
        chunks: list[tuple[int, bytes]] = []
        for start, end, _, _ in segments:
            chunks.append((start, reader.read(end - start, start)))
    finally:
        reader.close()

    container.wipe_data()
    writer = WriteFile(container)
    try:
        pid = os.getpid()
        for start, data in chunks:
            writer.write(data, start, pid)
        writer.sync()
        physical = writer.total_written
        last = writer.max_logical_end
    finally:
        writer.close()
    if clip is not None and clip > last:
        # Preserve a trailing hole created by a shrink inside a hole.
        tmp = plfs_open(path, os.O_WRONLY)
        try:
            plfs_write(tmp, b"\x00", 1, clip - 1)
        finally:
            plfs_close(tmp)
        last = clip
        physical += 1
    container.clear_meta()
    if physical:
        container.drop_meta(last, physical)
    index_cache.invalidate(container.path)
    try:
        index_cache.compact(container)
    except OSError:
        pass
    return physical


def plfs_map(path: str) -> list[tuple[int, int, int, int]]:
    """Return the flattened extent map of a container: a list of
    (logical_start, logical_end, dropping_id, physical_offset) tuples —
    the ``plfs_map`` inspection tool."""
    container = Container(path)
    reader = ReadFile(container)
    try:
        return reader.index.segments()
    finally:
        reader.close()


def plfs_dump_index(path: str) -> bytes:
    """Serialise the flattened index (for debugging / archival)."""
    container = Container(path)
    reader = ReadFile(container)
    try:
        import numpy as np

        from .index import INDEX_DTYPE

        segs = reader.index.segments()
        recs = np.zeros(len(segs), dtype=INDEX_DTYPE)
        for i, (start, end, dropping, phys) in enumerate(segs):
            recs[i]["logical_offset"] = start
            recs[i]["length"] = end - start
            recs[i]["dropping"] = dropping
            recs[i]["physical_offset"] = phys
            recs[i]["timestamp"] = unique_timestamp()
        return pack_records(recs)
    finally:
        reader.close()
