"""Small helpers shared across the PLFS implementation."""

from __future__ import annotations

import itertools
import os
import socket
import threading
import time

from . import constants

_seq_lock = threading.Lock()
_seq = itertools.count()


def hostname() -> str:
    """Return this host's name, sanitised for use inside dropping names."""
    return socket.gethostname().replace(".", "_") or "localhost"


def unique_timestamp() -> float:
    """A strictly increasing timestamp for dropping names and index records.

    ``time.time()`` alone can return equal values for back-to-back calls; the
    PLFS index resolves overlapping writes by recency, so ties would make
    overwrite resolution non-deterministic.  We fold in a process-wide
    monotonically increasing sequence number at nanosecond granularity, which
    keeps values unique within a process while remaining ordered against
    other processes at clock resolution (the same guarantee the C library
    relies on).
    """
    with _seq_lock:
        n = next(_seq)
    return time.time() + n * 1e-9


def hostdir_bucket(host: str, num_hostdirs: int = constants.NUM_HOSTDIRS) -> int:
    """Deterministically hash *host* into a ``hostdir.N`` bucket.

    Uses a small FNV-1a so the mapping is stable across Python processes
    (``hash()`` is salted per-process and must not be used here).
    """
    h = 0xCBF29CE484222325
    for byte in host.encode():
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h % num_hostdirs


def dropping_suffix(host: str, pid: int, ts: float) -> str:
    """The common ``<ts>.<host>.<pid>`` tail of data/index dropping names."""
    return f"{ts:.9f}.{host}.{pid}"


def data_dropping_name(host: str, pid: int, ts: float) -> str:
    return constants.DATA_PREFIX + dropping_suffix(host, pid, ts)


def index_dropping_name(host: str, pid: int, ts: float) -> str:
    return constants.INDEX_PREFIX + dropping_suffix(host, pid, ts)


def wal_dropping_name(host: str, pid: int, ts: float) -> str:
    return constants.WAL_PREFIX + dropping_suffix(host, pid, ts)


def wal_name_for_data(data_name: str) -> str:
    """Map a data dropping file name to its sibling WAL dropping name."""
    if not data_name.startswith(constants.DATA_PREFIX):
        raise ValueError(f"not a data dropping name: {data_name!r}")
    return constants.WAL_PREFIX + data_name[len(constants.DATA_PREFIX):]


def index_name_for_data(data_name: str) -> str:
    """Map a data dropping file name to its sibling index dropping name."""
    if not data_name.startswith(constants.DATA_PREFIX):
        raise ValueError(f"not a data dropping name: {data_name!r}")
    return constants.INDEX_PREFIX + data_name[len(constants.DATA_PREFIX):]


def fsync_dir(path: str) -> None:
    """fsync a directory so freshly created entries survive a crash."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
