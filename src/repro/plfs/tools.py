"""Container maintenance tools: check, recover, usage reporting.

The C distribution ships ``plfs_check_map``/``plfs_recover`` for exactly
these jobs: verifying that a container's index and data droppings agree,
and rebuilding metadata after a crash left the container without meta
droppings (or with stale openhost markers).  Run from Python or as::

    python -m repro.plfs.tools check   /backend/file
    python -m repro.plfs.tools recover /backend/file
    python -m repro.plfs.tools usage   /backend/file
    python -m repro.plfs.tools compact /backend/file
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field

from . import cache as index_cache
from . import constants, util
from .container import Container, assert_container
from .errors import CorruptIndexError
from .index import load_global_index, parse_compacted, read_index_dropping, split_torn


@dataclass
class ContainerReport:
    """Outcome of :func:`plfs_check`."""

    path: str
    ok: bool = True
    logical_size: int = 0
    physical_bytes: int = 0
    droppings: int = 0
    records: int = 0
    #: physical bytes shadowed by later writes (reclaimable by flatten)
    garbage_bytes: int = 0
    problems: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    def problem(self, message: str) -> None:
        self.ok = False
        self.problems.append(message)

    def warn(self, message: str) -> None:
        self.warnings.append(message)

    @property
    def garbage_ratio(self) -> float:
        if self.physical_bytes == 0:
            return 0.0
        return self.garbage_bytes / self.physical_bytes

    def render(self) -> str:
        lines = [
            f"container : {self.path}",
            f"status    : {'OK' if self.ok else 'BROKEN'}",
            f"logical   : {self.logical_size} bytes",
            f"physical  : {self.physical_bytes} bytes in {self.droppings} droppings",
            f"records   : {self.records}",
            f"garbage   : {self.garbage_bytes} bytes ({self.garbage_ratio:.0%})",
        ]
        for p in self.problems:
            lines.append(f"PROBLEM   : {p}")
        for w in self.warnings:
            lines.append(f"warning   : {w}")
        return "\n".join(lines)


def plfs_check(path: str) -> ContainerReport:
    """Verify a container's internal consistency.

    Checks performed:

    - every index dropping parses (record-size aligned);
    - every data dropping has its sibling index dropping and vice versa;
    - every index record's physical extent lies inside its data dropping;
    - cached metadata (``meta/``) does not contradict the index;
    - stale openhost markers are reported (crashed writers).

    Never modifies the container.
    """
    report = ContainerReport(path=os.path.abspath(path))
    assert_container(path)
    container = Container(path)

    pairs = container.droppings()
    report.droppings = len(pairs)

    live_bytes = 0
    for index_path, data_path in pairs:
        try:
            data_size = os.path.getsize(data_path)
        except FileNotFoundError:
            report.problem(f"data dropping missing: {data_path}")
            continue
        report.physical_bytes += data_size
        wal_path = os.path.join(
            os.path.dirname(data_path),
            util.wal_name_for_data(os.path.basename(data_path)),
        )
        has_wal = os.path.exists(wal_path)
        if has_wal:
            report.warn(
                f"write-ahead index present for {data_path}: writer "
                "crashed or still running (repro-fsck can rebuild)"
            )
        if not os.path.exists(index_path):
            report.problem(f"index dropping missing for {data_path}")
            continue
        with open(index_path, "rb") as fh:
            raw = fh.read()
        records, torn = split_torn(raw)
        if torn:
            report.problem(
                f"torn index dropping {index_path}: {torn} trailing bytes "
                "are not a whole record (crash mid-flush; repro-fsck can "
                "truncate to the last whole record)"
            )
            continue
        report.records += int(records.shape[0])
        indexed_end = 0
        if records.shape[0]:
            ends = records["physical_offset"] + records["length"]
            indexed_end = int(ends.max())
            overrun = indexed_end - data_size
            if overrun > 0:
                report.problem(
                    f"index promises {overrun} bytes past the end of "
                    f"{data_path}"
                )
                continue
        if data_size > indexed_end and not has_wal:
            report.warn(
                f"{data_size - indexed_end} unindexed trailing bytes in "
                f"{data_path}: a writer died between the data append and "
                "the index flush; without a write-ahead index these bytes "
                "are unrecoverable"
            )

    # Orphan index droppings (index without data).
    for entry in sorted(os.listdir(path)):
        if not entry.startswith(constants.HOSTDIR_PREFIX):
            continue
        hostdir = os.path.join(path, entry)
        if not os.path.isdir(hostdir):
            continue
        for name in sorted(os.listdir(hostdir)):
            if name.startswith(constants.INDEX_PREFIX):
                data_name = constants.DATA_PREFIX + name[len(constants.INDEX_PREFIX):]
                if not os.path.exists(os.path.join(hostdir, data_name)):
                    report.warn(f"orphan index dropping: {os.path.join(entry, name)}")

    # Compacted global index: a cache, never an authority — staleness or
    # corruption only costs the fast lane, so both are warnings.
    gpath = container.global_index_path()
    if os.path.exists(gpath):
        try:
            with open(gpath, "rb") as fh:
                _, _, file_epoch, _ = parse_compacted(fh.read(), source=gpath)
        except (OSError, CorruptIndexError) as exc:
            report.warn(
                f"compacted global index unreadable ({exc}); readers fall "
                "back to merging droppings (repro-plfs compact rebuilds it)"
            )
        else:
            if file_epoch != container.index_epoch(pairs):
                report.warn(
                    "compacted global index is stale (container changed "
                    "since it was written); readers fall back to merging "
                    "droppings (repro-plfs compact rebuilds it)"
                )

    if report.ok:
        index, _ = load_global_index(pairs)
        report.logical_size = index.logical_size
        live_bytes = sum(end - start for start, end, _, _ in index.segments())
        report.garbage_bytes = max(0, report.physical_bytes - live_bytes)

        cached = container.cached_size()
        open_writers = container.open_writers()
        if open_writers:
            report.warn(
                f"{len(open_writers)} openhost marker(s) present "
                f"({', '.join(open_writers)}): writer crashed or still running"
            )
        elif cached is not None and cached != report.logical_size:
            report.problem(
                f"cached metadata says {cached} bytes but the index says "
                f"{report.logical_size}"
            )
    return report


def plfs_recover(path: str) -> ContainerReport:
    """Repair recoverable damage: rebuild cached metadata from the index
    and clear stale openhost markers.  Returns a post-repair check."""
    assert_container(path)
    container = Container(path)

    # Stale markers: any marker whose writer cannot still exist (we treat
    # all markers as stale — recovery runs when no writers are live, as
    # the C tool requires).
    for marker in container.open_writers():
        try:
            os.unlink(os.path.join(path, constants.OPENHOSTS_DIR, marker))
        except FileNotFoundError:
            pass

    index, _ = load_global_index(container.droppings())
    container.clear_meta()
    physical = container.physical_bytes()
    if physical or index.logical_size:
        container.drop_meta(index.logical_size, physical)

    # A compacted global index that no longer matches the droppings is a
    # cache gone stale: delete it (like repro-fsck) rather than leave the
    # post-repair check warning about it.
    gpath = container.global_index_path()
    if os.path.exists(gpath):
        stale = True
        try:
            with open(gpath, "rb") as fh:
                _, _, file_epoch, _ = parse_compacted(fh.read(), source=gpath)
            stale = file_epoch != container.index_epoch()
        except (OSError, CorruptIndexError):
            pass
        if stale:
            container.drop_global_index()
    index_cache.invalidate(container.path)
    return plfs_check(path)


def plfs_compact(path: str) -> dict[str, int | str]:
    """Flatten the container's global index into the persistent
    ``global.index`` dropping, so subsequent reader opens skip the
    per-dropping merge.  Safe to run any time no writer is appending;
    a stale result is harmless (readers detect the epoch mismatch and
    fall back to merging)."""
    assert_container(path)
    container = Container(path)
    segments = index_cache.compact(container)
    index_cache.invalidate(container.path)
    return {
        "path": container.global_index_path(),
        "segments": segments,
        "bytes": os.path.getsize(container.global_index_path()),
    }


def plfs_usage(path: str) -> dict[str, int | float]:
    """Space accounting for one container (logical vs physical vs garbage)."""
    report = plfs_check(path)
    return {
        "logical_bytes": report.logical_size,
        "physical_bytes": report.physical_bytes,
        "garbage_bytes": report.garbage_bytes,
        "garbage_ratio": report.garbage_ratio,
        "droppings": report.droppings,
        "records": report.records,
    }


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2 or argv[0] not in {"check", "recover", "usage", "compact"}:
        print(__doc__, file=sys.stderr)
        return 2
    command, path = argv
    if command == "check":
        report = plfs_check(path)
        print(report.render())
        return 0 if report.ok else 1
    if command == "recover":
        report = plfs_recover(path)
        print(report.render())
        return 0 if report.ok else 1
    if command == "compact":
        info = plfs_compact(path)
        for key, value in info.items():
            print(f"{key:15s} {value}")
        return 0
    usage = plfs_usage(path)
    for key, value in usage.items():
        print(f"{key:15s} {value}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() tests
    sys.exit(main())
