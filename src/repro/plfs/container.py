"""PLFS container management.

A *container* is the backend representation of one logical PLFS file: a
directory whose presence is flagged by the access file, holding hostdir
buckets of data/index droppings plus metadata droppings (Fig. 1 of the
paper).  This module creates, identifies, enumerates and destroys
containers; the read/write data paths live in :mod:`repro.plfs.reader` and
:mod:`repro.plfs.writer`.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import stat as stat_module
from dataclasses import dataclass

from . import backing, constants, util
from .errors import (
    ContainerExistsError,
    ContainerNotFoundError,
    IsAContainerError,
    NotAContainerError,
)


@dataclass(frozen=True)
class MetaDropping:
    """Parsed ``meta/<last_offset>.<total_bytes>.<host>`` file name."""

    last_offset: int
    total_bytes: int
    host: str


def is_container(path: str) -> bool:
    """True if *path* is a PLFS container directory."""
    return os.path.isfile(os.path.join(path, constants.ACCESS_FILE))


def assert_container(path: str) -> None:
    if not os.path.exists(path):
        raise ContainerNotFoundError(f"no such container: {path}")
    if not is_container(path):
        raise NotAContainerError(f"not a PLFS container: {path}")


class Container:
    """Handle on one container directory (may not exist yet)."""

    def __init__(self, path: str):
        self.path = os.path.abspath(path)

    # ------------------------------------------------------------------ #
    # creation / identification
    # ------------------------------------------------------------------ #

    def exists(self) -> bool:
        return is_container(self.path)

    def create(self, mode: int = 0o644, *, exclusive: bool = False, pid: int = 0) -> None:
        """Create the container skeleton (idempotent unless *exclusive*).

        Layout created:  ``<path>/{access file, creator, openhosts/, meta/}``.
        ``hostdir.N`` buckets are created lazily by writers.

        Creation is *atomic*: the skeleton is built under a temporary name
        and renamed into place, so no concurrent opener ever observes a
        half-built container (the C library takes the same
        build-then-rename approach for exactly this race).  Losing the
        rename race to another creator is not an error unless
        *exclusive*.
        """
        if self.exists():
            if exclusive:
                raise ContainerExistsError(f"container exists: {self.path}")
            return
        if os.path.exists(self.path):
            raise NotAContainerError(
                f"path exists and is not a container: {self.path}"
            )
        parent = os.path.dirname(self.path) or "."
        os.makedirs(parent, exist_ok=True)
        tmp = f"{self.path}.plfs_mkdir.{util.hostname()}.{os.getpid()}"
        os.makedirs(os.path.join(tmp, constants.OPENHOSTS_DIR))
        os.makedirs(os.path.join(tmp, constants.META_DIR))
        with open(os.path.join(tmp, constants.CREATOR_FILE), "w") as fh:
            fh.write(
                f"version={constants.FORMAT_VERSION}\n"
                f"host={util.hostname()}\npid={pid}\n"
                f"ctime={util.unique_timestamp():.9f}\n"
            )
        # The access file stores the logical file's mode bits; writing it
        # last inside tmp means a renamed container is always complete.
        with open(os.path.join(tmp, constants.ACCESS_FILE), "w") as fh:
            fh.write(f"{mode:o}\n")
        try:
            os.rename(tmp, self.path)
        except OSError:
            # Lost the race: another creator renamed first (the target is
            # now a non-empty directory).  Their container serves.
            shutil.rmtree(tmp, ignore_errors=True)
            if self.exists():
                if exclusive:
                    raise ContainerExistsError(
                        f"container exists: {self.path}"
                    ) from None
                return
            raise

    def mode(self) -> int:
        """Logical file mode bits recorded at create time."""
        assert_container(self.path)
        with open(os.path.join(self.path, constants.ACCESS_FILE)) as fh:
            return int(fh.read().strip() or "644", 8)

    # ------------------------------------------------------------------ #
    # hostdirs and droppings
    # ------------------------------------------------------------------ #

    def hostdir_path(self, host: str | None = None) -> str:
        host = host or util.hostname()
        bucket = util.hostdir_bucket(host)
        return os.path.join(self.path, f"{constants.HOSTDIR_PREFIX}{bucket}")

    def ensure_hostdir(self, host: str | None = None) -> str:
        path = self.hostdir_path(host)
        os.makedirs(path, exist_ok=True)
        return path

    def droppings(self) -> list[tuple[str, str]]:
        """All (index_path, data_path) dropping pairs, deterministically
        ordered (by hostdir bucket then dropping name)."""
        assert_container(self.path)
        pairs: list[tuple[str, str]] = []
        try:
            entries = sorted(os.listdir(self.path))
        except FileNotFoundError:
            return []
        for entry in entries:
            if not entry.startswith(constants.HOSTDIR_PREFIX):
                continue
            hostdir = os.path.join(self.path, entry)
            try:
                names = sorted(os.listdir(hostdir))
            except NotADirectoryError:
                continue
            for name in names:
                if name.startswith(constants.DATA_PREFIX):
                    data_path = os.path.join(hostdir, name)
                    index_path = os.path.join(
                        hostdir, util.index_name_for_data(name)
                    )
                    pairs.append((index_path, data_path))
        return pairs

    def hostdirs(self) -> list[str]:
        """Paths of the container's existing ``hostdir.N`` buckets."""
        try:
            entries = sorted(os.listdir(self.path))
        except FileNotFoundError:
            return []
        out = []
        for entry in entries:
            if entry.startswith(constants.HOSTDIR_PREFIX):
                p = os.path.join(self.path, entry)
                if os.path.isdir(p):
                    out.append(p)
        return out

    # ------------------------------------------------------------------ #
    # container epoch and the persistent compacted global index
    # ------------------------------------------------------------------ #

    def global_index_path(self) -> str:
        """Backend path of the persistent compacted global index."""
        return os.path.join(self.path, constants.GLOBAL_INDEX_FILE)

    def index_epoch(self, droppings: list[tuple[str, str]] | None = None) -> str:
        """Fingerprint of the container's dropping state.

        The epoch folds in the dropping count plus every index/data
        dropping's name, size and mtime, so *any* state a reader's global
        index depends on — a new dropping, a data append, an index flush,
        an fsck repair — changes it.  Both the compacted global index and
        the process-wide shared index cache are validated against the
        epoch and discarded on mismatch; computing it costs two ``stat``
        calls per dropping, which is the whole point: cheap compared to
        re-reading and re-merging every index dropping.
        """
        pairs = self.droppings() if droppings is None else droppings
        h = hashlib.sha1()
        h.update(str(len(pairs)).encode())
        for index_path, data_path in pairs:
            for p in (index_path, data_path):
                try:
                    st = os.stat(p)
                    h.update(
                        f"|{os.path.basename(p)}:{st.st_size}:{st.st_mtime_ns}".encode()
                    )
                except FileNotFoundError:
                    h.update(f"|{os.path.basename(p)}:missing".encode())
        return h.hexdigest()

    # ------------------------------------------------------------------ #
    # cross-process generation protocol
    # ------------------------------------------------------------------ #

    def generation_path(self) -> str:
        """Backend path of the per-container generation file."""
        return os.path.join(self.path, constants.GENERATION_FILE)

    def bump_generation(self) -> None:
        """Signal readers in other processes that the container changed.

        Write-then-rename, so the generation file atomically gets a fresh
        inode and mtime; a reader holding a cached index compares the
        ``(inode, mtime_ns)`` token it captured at build time with one
        ``stat`` and refreshes on mismatch.  The protocol is purely
        advisory — a full backend or read-only medium just loses the fast
        cross-process staleness check, so failures are swallowed — and the
        in-process shared cache (validated by the container epoch) remains
        the correctness authority.
        """
        gen = self.generation_path()
        tmp = f"{gen}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w") as fh:
                fh.write(f"{util.unique_timestamp():.9f}\n")
            os.replace(tmp, gen)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def generation_token(self) -> tuple[int, int] | None:
        """Current ``(inode, mtime_ns)`` of the generation file, or None
        when the container has never been written through the generation
        protocol (or the file is unreadable)."""
        try:
            st = os.stat(self.generation_path())
        except OSError:
            return None
        return (st.st_ino, st.st_mtime_ns)

    def drop_global_index(self) -> bool:
        """Delete the compacted global index if present (it is a cache:
        deleting it only re-routes readers onto the slow merge path)."""
        try:
            os.unlink(self.global_index_path())
            return True
        except FileNotFoundError:
            return False

    def wal_droppings(self) -> list[str]:
        """Write-ahead index droppings left behind by crashed (or still
        running) WAL-enabled writers, deterministically ordered."""
        out: list[str] = []
        for hostdir in self.hostdirs():
            for name in sorted(os.listdir(hostdir)):
                if name.startswith(constants.WAL_PREFIX):
                    out.append(os.path.join(hostdir, name))
        return out

    def restore_skeleton(self) -> list[str]:
        """Recreate missing skeleton entries (``openhosts/``, ``meta/``).

        A backend directory losing metadata (the dropped-``hostdir.N``
        failure class) can take the bookkeeping directories with it; they
        carry no unrecoverable state, so recovery is recreation.  Returns
        the restored relative names.
        """
        assert_container(self.path)
        restored = []
        for name in (constants.OPENHOSTS_DIR, constants.META_DIR):
            p = os.path.join(self.path, name)
            if not os.path.isdir(p):
                os.makedirs(p, exist_ok=True)
                restored.append(name)
        return restored

    def physical_bytes(self) -> int:
        """Total bytes stored in data droppings (>= logical size when there
        are overwrites; the gap measures log garbage)."""
        total = 0
        for _, data_path in self.droppings():
            try:
                total += os.path.getsize(data_path)
            except FileNotFoundError:
                pass
        return total

    # ------------------------------------------------------------------ #
    # open-host bookkeeping and cached metadata
    # ------------------------------------------------------------------ #

    def _openhost_marker(self, pid: int, host: str | None = None) -> str:
        host = host or util.hostname()
        return os.path.join(
            self.path, constants.OPENHOSTS_DIR, f"{host}.{pid}"
        )

    def register_open(self, pid: int, host: str | None = None) -> None:
        os.makedirs(os.path.join(self.path, constants.OPENHOSTS_DIR), exist_ok=True)
        with open(self._openhost_marker(pid, host), "w") as fh:
            fh.write(f"{util.unique_timestamp():.9f}\n")

    def unregister_open(self, pid: int, host: str | None = None) -> None:
        try:
            os.unlink(self._openhost_marker(pid, host))
        except FileNotFoundError:
            pass

    def open_writers(self) -> list[str]:
        """Names of openhost markers currently present."""
        d = os.path.join(self.path, constants.OPENHOSTS_DIR)
        try:
            return sorted(os.listdir(d))
        except FileNotFoundError:
            return []

    def drop_meta(self, last_offset: int, total_bytes: int, host: str | None = None) -> None:
        """Record cached size metadata at close time (``meta/`` dropping)."""
        host = host or util.hostname()
        d = os.path.join(self.path, constants.META_DIR)
        os.makedirs(d, exist_ok=True)
        name = f"{last_offset}.{total_bytes}.{host}"
        backing.current().create_meta(os.path.join(d, name))

    def meta_droppings(self) -> list[MetaDropping]:
        d = os.path.join(self.path, constants.META_DIR)
        out: list[MetaDropping] = []
        try:
            names = os.listdir(d)
        except FileNotFoundError:
            return out
        for name in names:
            parts = name.split(".", 2)
            if len(parts) != 3:
                continue
            try:
                out.append(MetaDropping(int(parts[0]), int(parts[1]), parts[2]))
            except ValueError:
                continue
        return out

    def clear_meta(self) -> None:
        d = os.path.join(self.path, constants.META_DIR)
        try:
            for name in os.listdir(d):
                try:
                    os.unlink(os.path.join(d, name))
                except FileNotFoundError:
                    pass
        except FileNotFoundError:
            pass

    def cached_size(self) -> int | None:
        """Logical size from meta droppings, or None if it cannot be trusted
        (open writers present, or no meta recorded)."""
        if self.open_writers():
            return None
        metas = self.meta_droppings()
        if not metas:
            return None
        return max(m.last_offset for m in metas)

    # ------------------------------------------------------------------ #
    # attributes and whole-container operations
    # ------------------------------------------------------------------ #

    def getattr(self, *, size: int | None = None) -> os.stat_result:
        """A ``stat``-like result describing the *logical* file.

        ``size`` lets callers that already computed the logical size (via a
        :class:`~repro.plfs.index.GlobalIndex`) avoid a second index build.
        """
        assert_container(self.path)
        st = os.stat(self.path)
        if size is None:
            size = self.cached_size()
            if size is None:
                from .reader import logical_size  # local import: avoid cycle

                size = logical_size(self)
        mode = stat_module.S_IFREG | self.mode()
        return os.stat_result(
            (
                mode,
                st.st_ino,
                st.st_dev,
                1,
                st.st_uid,
                st.st_gid,
                size,
                int(st.st_atime),
                int(st.st_mtime),
                int(st.st_ctime),
            )
        )

    def unlink(self) -> None:
        """Remove the container (the logical file) entirely."""
        assert_container(self.path)
        shutil.rmtree(self.path)

    def wipe_data(self) -> None:
        """Drop all data (truncate to zero): remove droppings, meta and the
        compacted global index (which described the removed droppings)."""
        assert_container(self.path)
        for entry in os.listdir(self.path):
            if entry.startswith(constants.HOSTDIR_PREFIX):
                shutil.rmtree(os.path.join(self.path, entry), ignore_errors=True)
        self.clear_meta()
        self.drop_global_index()
        self.bump_generation()

    def rename(self, new_path: str) -> "Container":
        assert_container(self.path)
        if is_container(new_path):
            shutil.rmtree(new_path)
        os.rename(self.path, new_path)
        return Container(new_path)


def readdir_logical(path: str) -> list[str]:
    """List a logical directory: containers appear as plain file names.

    *path* is a backend directory; entries that are containers are logical
    files, other directories are logical directories, plain files pass
    through (they are legal inside a PLFS tree: apps may mix).
    """
    if is_container(path):
        raise NotAContainerError(f"is a logical file, not a directory: {path}")
    return sorted(os.listdir(path))


def rmdir_logical(path: str) -> None:
    """Remove a logical directory; refuses to remove containers."""
    if is_container(path):
        raise IsAContainerError(f"is a logical file: {path}")
    os.rmdir(path)
