"""``repro.plfs`` — a complete Parallel Log-structured File System in Python.

Implements the PLFS container format (Bent et al., SC'09; Fig. 1 of the
LDPLFS paper) on a real backend directory tree: log-structured data
droppings, index droppings, hostdir buckets, cached metadata, and the
user-level API of the paper's Listing 1.

Quick use::

    import os
    from repro import plfs

    fd = plfs.plfs_open("/tmp/backend/myfile", os.O_CREAT | os.O_WRONLY)
    plfs.plfs_write(fd, b"hello", 5, offset=0)
    plfs.plfs_close(fd)

Recovery invariant
------------------

Crash consistency rests on one ordering rule per dropping stream:

* **Without a write-ahead index** (the default), data bytes reach the
  data dropping before their index records reach the index dropping, so
  a crash can strand a *suffix* of unindexed data bytes.  Indexed
  content is never damaged — ``repro-fsck`` truncates any torn index
  tail to the last whole record and the container reads back exactly
  the prefix that was indexed; the stranded bytes are reported as
  unrecoverable (there is no record of their logical offsets).
* **With a write-ahead index** (``OpenOptions(write_ahead_index=True)``),
  every record is persisted to a sibling ``dropping.wal.*`` file
  *before* its data append, and the WAL is deleted only on clean close.
  After any single crash, ``repro-fsck`` rebuilds the index dropping
  from the WAL, clipping each record to the bytes the data dropping
  physically holds — reads then return byte-identical content to what
  the surviving data droppings actually stored.

See :mod:`repro.faults` for the fault matrix and the fsck implementation.
"""

from .api import (
    OpenOptions,
    Plfs_fd,
    plfs_access,
    plfs_close,
    plfs_create,
    plfs_dump_index,
    plfs_exists,
    plfs_flatten_index,
    plfs_getattr,
    plfs_map,
    plfs_mkdir,
    plfs_open,
    plfs_read,
    plfs_read_into,
    plfs_readdir,
    plfs_ref,
    plfs_rename,
    plfs_rmdir,
    plfs_sync,
    plfs_trunc,
    plfs_unlink,
    plfs_write,
    plfs_writev,
)
from .container import Container, is_container
from .errors import (
    BadFlagsError,
    ContainerExistsError,
    ContainerNotFoundError,
    CorruptIndexError,
    IsAContainerError,
    NotAContainerError,
    PlfsError,
)
from .index import INDEX_DTYPE, ExtentMap, GlobalIndex, ReadSlice
from .reader import ReadFile
from .tools import ContainerReport, plfs_check, plfs_recover, plfs_usage
from .writer import WriteFile

__all__ = [
    "OpenOptions",
    "Plfs_fd",
    "Container",
    "is_container",
    "WriteFile",
    "ReadFile",
    "GlobalIndex",
    "ExtentMap",
    "ReadSlice",
    "INDEX_DTYPE",
    "PlfsError",
    "NotAContainerError",
    "ContainerNotFoundError",
    "ContainerExistsError",
    "BadFlagsError",
    "CorruptIndexError",
    "IsAContainerError",
    "plfs_open",
    "plfs_close",
    "plfs_ref",
    "plfs_read",
    "plfs_read_into",
    "plfs_write",
    "plfs_writev",
    "plfs_sync",
    "plfs_getattr",
    "plfs_access",
    "plfs_exists",
    "plfs_unlink",
    "plfs_create",
    "plfs_trunc",
    "plfs_rename",
    "plfs_mkdir",
    "plfs_rmdir",
    "plfs_readdir",
    "plfs_flatten_index",
    "plfs_map",
    "plfs_dump_index",
    "plfs_check",
    "plfs_recover",
    "plfs_usage",
    "ContainerReport",
]
