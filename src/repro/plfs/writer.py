"""The PLFS write path: log-structured data droppings.

A :class:`WriteFile` owns one (data, index) dropping pair per writing pid.
Every ``write(buf, offset)`` appends the payload to the data dropping —
strictly sequentially, regardless of the logical offset, which is the
log-structuring that converts random application writes into sequential disk
writes — and buffers one index record.  Records are flushed to the index
dropping on ``sync``/``close``.
"""

from __future__ import annotations

import os

import numpy as np

from . import backing, util
from .cache import invalidate as _invalidate_index_cache
from .container import Container
from .errors import BadFlagsError
from .index import INDEX_DTYPE, make_record, pack_records

#: Flush buffered index records to disk after this many accumulate, bounding
#: memory for very write-heavy workloads.
INDEX_FLUSH_THRESHOLD = 4096


class _Dropping:
    """One open (data, index) dropping pair for a single pid.

    With *wal* enabled, every append persists its index record to a
    sibling write-ahead dropping **before** touching the data dropping, so
    a crash at any instruction leaves enough on disk for ``repro-fsck`` to
    rebuild the index (clipped to the bytes that physically arrived).  The
    WAL is deleted on clean close, when the flushed index dropping becomes
    authoritative.
    """

    __slots__ = (
        "data_path",
        "index_path",
        "wal_path",
        "data_fd",
        "wal_fd",
        "physical_offset",
        "pending",
        "records_written",
        "records_merged",
        "merge_records",
    )

    def __init__(
        self,
        hostdir: str,
        host: str,
        pid: int,
        *,
        merge_records: bool = True,
        wal: bool = False,
    ):
        ts = util.unique_timestamp()
        self.data_path = os.path.join(hostdir, util.data_dropping_name(host, pid, ts))
        self.index_path = os.path.join(hostdir, util.index_dropping_name(host, pid, ts))
        self.wal_path = (
            os.path.join(hostdir, util.wal_dropping_name(host, pid, ts)) if wal else None
        )
        self.data_fd = os.open(
            self.data_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self.wal_fd = -1
        try:
            # Touch the index dropping immediately so readers pair it with
            # the data dropping even before the first sync.
            os.close(os.open(self.index_path, os.O_WRONLY | os.O_CREAT, 0o644))
            if wal:
                self.wal_fd = os.open(
                    self.wal_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                )
        except OSError:
            # Error-path hygiene: never leave a data dropping behind with
            # no sibling index (an orphan the next reader must skip) nor a
            # leaked descriptor.
            os.close(self.data_fd)
            for p in (self.data_path, self.index_path):
                try:
                    os.unlink(p)
                except OSError:
                    pass
            raise
        self.physical_offset = 0
        self.pending: list[np.ndarray] = []
        self.records_written = 0
        self.records_merged = 0
        self.merge_records = merge_records

    def _try_merge(self, logical_offset: int, length: int, pid: int) -> bool:
        """Index compression: a write that continues the previous one both
        logically and physically extends the last pending record instead
        of adding a new one — the optimisation the C library applies to
        keep sequential workloads from growing the index per call.

        The merged record takes the *latest* timestamp.  That is only
        sound when no other stream wrote in between (otherwise the whole
        merged run would shadow an interleaved overwrite); the WriteFile
        enforces that by allowing merges only for back-to-back writes to
        the same dropping.
        """
        if not self.merge_records or not self.pending:
            return False
        last = self.pending[-1]
        rec = last[-1]
        if (
            int(rec["pid"]) == pid
            and int(rec["logical_offset"] + rec["length"]) == logical_offset
            and int(rec["physical_offset"] + rec["length"]) == self.physical_offset
        ):
            last[-1]["length"] += length
            last[-1]["timestamp"] = util.unique_timestamp()
            self.records_merged += 1
            return True
        return False

    def append(self, buf: bytes | bytearray | memoryview, logical_offset: int, pid: int) -> int:
        store = backing.current()
        if self.wal_fd >= 0:
            # The WAL record promises the full length; a torn data write
            # is reconciled at recovery time by clipping the record to the
            # bytes the data dropping actually holds.
            rec = make_record(
                logical_offset=logical_offset,
                physical_offset=self.physical_offset,
                length=len(buf),
                pid=pid,
                timestamp=util.unique_timestamp(),
            )
            store.write_wal(self.wal_fd, pack_records(rec), self.wal_path)
        written = store.write_data(self.data_fd, buf, self.data_path)
        if not self._try_merge(logical_offset, written, pid):
            self.pending.append(
                make_record(
                    logical_offset=logical_offset,
                    physical_offset=self.physical_offset,
                    length=written,
                    pid=pid,
                    timestamp=util.unique_timestamp(),
                )
            )
        self.physical_offset += written
        return written

    def pending_records(self) -> np.ndarray:
        if not self.pending:
            return np.empty(0, dtype=INDEX_DTYPE)
        return np.concatenate(self.pending)

    def flush_index(self) -> None:
        if not self.pending:
            return
        records = self.pending_records()
        backing.current().append_index(self.index_path, pack_records(records))
        self.records_written += records.shape[0]
        self.pending.clear()

    def sync(self) -> None:
        self.flush_index()
        backing.current().fsync(self.data_fd)

    def close(self) -> None:
        self.flush_index()
        os.close(self.data_fd)
        if self.wal_fd >= 0:
            # Clean close: the flushed index dropping is now authoritative;
            # the write-ahead copy of the records is redundant.
            os.close(self.wal_fd)
            self.wal_fd = -1
            try:
                os.unlink(self.wal_path)
            except OSError:
                pass

    def abandon(self) -> None:
        """Release OS resources as a crashed process would: no index
        flush, no WAL cleanup, buffered records dropped on the floor."""
        self.pending.clear()
        for fd in (self.data_fd, self.wal_fd):
            if fd >= 0:
                try:
                    os.close(fd)
                except OSError:
                    pass
        self.wal_fd = -1


class WriteFile:
    """Write handle on a container, multiplexing per-pid droppings.

    Matches PLFS semantics: each pid that writes through the handle gets its
    own dropping pair, giving every process a private file stream (the file
    partitioning that removes shared-file lock contention).
    """

    def __init__(
        self,
        container: Container,
        *,
        host: str | None = None,
        merge_records: bool = True,
        wal: bool = False,
    ):
        self.container = container
        self.host = host or util.hostname()
        self.hostdir = container.ensure_hostdir(self.host)
        self._droppings: dict[int, _Dropping] = {}
        self._max_logical_end = 0
        self._total_written = 0
        self._closed = False
        self._merge_records = merge_records
        #: write-ahead index: persist each record before its data append so
        #: a crash never strands unindexed data (see repro.faults.fsck)
        self.wal = wal
        self._last_dropping: _Dropping | None = None

    # ------------------------------------------------------------------ #

    def _dropping_for(self, pid: int) -> _Dropping:
        d = self._droppings.get(pid)
        if d is None:
            d = _Dropping(self.hostdir, self.host, pid, wal=self.wal)
            self._droppings[pid] = d
        return d

    def write(self, buf: bytes | bytearray | memoryview, offset: int, pid: int) -> int:
        """Append *buf* for logical [offset, offset+len(buf)).  Returns the
        byte count written (always the full buffer for regular files)."""
        if self._closed:
            raise BadFlagsError("write on closed WriteFile")
        if isinstance(buf, memoryview):
            buf = buf.tobytes()
        dropping = self._dropping_for(pid)
        # Record merging is only sound for back-to-back writes of the same
        # stream: an intervening write from another pid must keep its own
        # timestamp ordering against ours.
        dropping.merge_records = self._merge_records and dropping is self._last_dropping
        self._last_dropping = dropping
        written = dropping.append(buf, offset, pid)
        end = offset + written
        if end > self._max_logical_end:
            self._max_logical_end = end
        self._total_written += written
        d = self._droppings[pid]
        if len(d.pending) >= INDEX_FLUSH_THRESHOLD:
            d.flush_index()
            # Records just became visible on disk: readers holding a
            # cached index must rebuild to see them.
            _invalidate_index_cache(self.container.path)
        return written

    # ------------------------------------------------------------------ #
    # visibility for readers on the same handle / process
    # ------------------------------------------------------------------ #

    def pending_records(self) -> list[tuple[np.ndarray, str]]:
        """Unflushed index records per data dropping path, so a reader in
        the same process can see writes that have not been synced yet."""
        out: list[tuple[np.ndarray, str]] = []
        for d in self._droppings.values():
            recs = d.pending_records()
            if recs.size:
                out.append((recs, d.data_path))
        return out

    @property
    def max_logical_end(self) -> int:
        return self._max_logical_end

    @property
    def total_written(self) -> int:
        return self._total_written

    @property
    def dropping_count(self) -> int:
        return len(self._droppings)

    # ------------------------------------------------------------------ #

    def sync(self) -> None:
        for d in self._droppings.values():
            d.sync()
        _invalidate_index_cache(self.container.path)

    def flush_indexes(self) -> None:
        flushed = any(d.pending for d in self._droppings.values())
        for d in self._droppings.values():
            d.flush_index()
        if flushed:
            _invalidate_index_cache(self.container.path)

    def close(self) -> None:
        if self._closed:
            return
        for d in self._droppings.values():
            d.close()
        self._closed = True
        _invalidate_index_cache(self.container.path)

    def abandon(self) -> None:
        """Tear down as if the writing process died (SIGKILL semantics):
        descriptors are released but nothing buffered is flushed and no
        metadata is recorded.  Used by the fault-injection harness to
        model process kill between a data append and the index flush."""
        if self._closed:
            return
        for d in self._droppings.values():
            d.abandon()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed
