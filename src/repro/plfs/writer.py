"""The PLFS write path: log-structured data droppings.

A :class:`WriteFile` owns one (data, index) dropping pair per writing pid.
Every ``write(buf, offset)`` appends the payload to the data dropping —
strictly sequentially, regardless of the logical offset, which is the
log-structuring that converts random application writes into sequential disk
writes — and buffers one index record.  Records are flushed to the index
dropping on ``sync``/``close``.

The write fast lane (mirroring the read-path work in
:mod:`repro.plfs.cache`):

- **zero-copy appends** — payload buffers (including ``memoryview`` views)
  are threaded straight through :meth:`~repro.plfs.backing.BackingStore`
  without an intermediate ``bytes`` copy, and :meth:`WriteFile.append_many`
  lands a whole iovec as one vectored data append plus one (possibly
  merged) index record;
- **group-commit WAL** — with ``wal_batch > 1`` write-ahead records are
  buffered and flushed as one ``write_wal`` batch per data-append window.
  The recovery invariant weakens from *every record precedes its data* to
  *every data byte is covered by a WAL record before or within the same
  batch boundary*: a crash inside a batch window can strand up to
  ``wal_batch - 1`` appends' bytes past the WAL coverage, which
  ``repro-fsck`` trims and reports (``sync`` is a hard barrier — it flushes
  the batch).  ``wal_batch == 1`` (the default) reproduces the strict
  per-append ordering exactly;
- **adaptive index flush** — the in-memory record buffer's flush threshold
  scales with the observed record-merge rate, so BT-style sequential
  small-write streams (whose records collapse into few merged runs) flush
  less often;
- **cross-process invalidation** — every flush/sync/close bumps the
  container's generation file as well as the in-process shared index
  cache, so readers in *other* processes revalidate too.
"""

from __future__ import annotations

import os

import numpy as np

from . import backing, util
from .cache import invalidate_cross_process as _invalidate_cross_process
from .container import Container
from .errors import BadFlagsError
from .index import INDEX_DTYPE

#: Flush buffered index records to disk after this many accumulate, bounding
#: memory for very write-heavy workloads.  This is the *base* threshold; see
#: :meth:`_Dropping.effective_flush_threshold` for the adaptive scaling.
INDEX_FLUSH_THRESHOLD = 4096

#: Cap on one merged index record's ``length``.  ``INDEX_DTYPE`` stores the
#: length as an unsigned 64-bit field; an uncapped sequential run merged for
#: long enough would silently wrap it.  1 TiB per record keeps merged
#: extents far from the field width while still collapsing any realistic
#: sequential stream into a handful of records.
MERGE_LENGTH_CAP = 1 << 40

#: Appends observed before the adaptive flush threshold starts scaling
#: (below this the merge-rate estimate is noise).
ADAPTIVE_FLUSH_MIN_SAMPLE = 64

#: Maximum factor the adaptive threshold scales the base by (reached as the
#: merge rate approaches 1.0 — a perfectly sequential stream).
ADAPTIVE_FLUSH_SCALE_MAX = 4.0

# Buffered records are plain Python rows — packed into a structured array
# in bulk at flush time, so the per-append hot path allocates no NumPy
# objects.  Column order of one row:
_LOGICAL, _PHYSICAL, _LENGTH, _PID, _TS = range(5)


def _rows_to_records(rows: list[list]) -> np.ndarray:
    """Bulk-pack buffered rows into an :data:`INDEX_DTYPE` array."""
    records = np.zeros(len(rows), dtype=INDEX_DTYPE)
    if rows:
        cols = list(zip(*rows))
        records["logical_offset"] = cols[_LOGICAL]
        records["physical_offset"] = cols[_PHYSICAL]
        records["length"] = cols[_LENGTH]
        records["pid"] = cols[_PID]
        records["timestamp"] = cols[_TS]
    return records


class _Dropping:
    """One open (data, index) dropping pair for a single pid.

    With *wal* enabled, every append buffers its index record for a
    sibling write-ahead dropping; the buffer is flushed as one batch per
    *wal_batch* appends, **before** the batch-closing data append touches
    the data dropping, so a crash at any instruction leaves enough on disk
    for ``repro-fsck`` to rebuild the index clipped to the bytes that
    physically arrived — up to the batch boundary (bytes appended inside
    an unflushed batch window are trimmed and reported).  The WAL is
    deleted on clean close, when the flushed index dropping becomes
    authoritative.
    """

    __slots__ = (
        "data_path",
        "index_path",
        "wal_path",
        "data_fd",
        "wal_fd",
        "wal_batch",
        "wal_rows",
        "physical_offset",
        "pending",
        "records_appended",
        "records_flushed",
        "records_merged",
        "index_flushes",
        "wal_records_written",
        "wal_batches",
        "adaptive_threshold",
        "merge_records",
        "_closed",
    )

    def __init__(
        self,
        hostdir: str,
        host: str,
        pid: int,
        *,
        merge_records: bool = True,
        wal: bool = False,
        wal_batch: int = 1,
    ):
        ts = util.unique_timestamp()
        self.data_path = os.path.join(hostdir, util.data_dropping_name(host, pid, ts))
        self.index_path = os.path.join(hostdir, util.index_dropping_name(host, pid, ts))
        self.wal_path = (
            os.path.join(hostdir, util.wal_dropping_name(host, pid, ts)) if wal else None
        )
        self.data_fd = os.open(
            self.data_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self.wal_fd = -1
        try:
            if wal:
                self.wal_fd = os.open(
                    self.wal_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                )
            # Touch the index dropping immediately so readers pair it with
            # the data dropping even before the first sync.  Routed through
            # the backing store: creating the empty sibling is a
            # persistence boundary a full backend can fail.
            backing.current().create_meta(self.index_path)
        except OSError:
            # Error-path hygiene: never leave a data dropping behind with
            # no sibling index (an orphan the next reader must skip), a
            # stranded write-ahead dropping, nor a leaked descriptor.
            for fd in (self.data_fd, self.wal_fd):
                if fd >= 0:
                    try:
                        os.close(fd)
                    except OSError:
                        pass
            self.data_fd = self.wal_fd = -1
            for p in (self.data_path, self.index_path, self.wal_path):
                if p is None:
                    continue
                try:
                    os.unlink(p)
                except OSError:
                    pass
            raise
        self.wal_batch = max(1, int(wal_batch))
        self.wal_rows: list[list] = []
        self.physical_offset = 0
        self.pending: list[list] = []
        self.records_appended = 0
        self.records_flushed = 0
        self.records_merged = 0
        self.index_flushes = 0
        self.wal_records_written = 0
        self.wal_batches = 0
        self.adaptive_threshold = 0
        self.merge_records = merge_records
        self._closed = False

    def _try_merge(self, logical_offset: int, length: int, pid: int) -> bool:
        """Index compression: a write that continues the previous one both
        logically and physically extends the last pending record instead
        of adding a new one — the optimisation the C library applies to
        keep sequential workloads from growing the index per call.

        The merged record takes the *latest* timestamp.  That is only
        sound when no other stream wrote in between (otherwise the whole
        merged run would shadow an interleaved overwrite); the WriteFile
        enforces that by allowing merges only for back-to-back writes to
        the same dropping.  Merged lengths are capped at
        :data:`MERGE_LENGTH_CAP` so a long sequential run can never
        overflow the record's length field.
        """
        if not self.merge_records or not self.pending:
            return False
        last = self.pending[-1]
        if (
            last[_PID] == pid
            and last[_LOGICAL] + last[_LENGTH] == logical_offset
            and last[_PHYSICAL] + last[_LENGTH] == self.physical_offset
            and last[_LENGTH] + length <= MERGE_LENGTH_CAP
        ):
            last[_LENGTH] += length
            last[_TS] = util.unique_timestamp()
            self.records_merged += 1
            return True
        return False

    # ------------------------------------------------------------------ #
    # the append hot path
    # ------------------------------------------------------------------ #

    def _promise(self, logical_offset: int, length: int, pid: int) -> None:
        """Buffer one write-ahead record and flush the batch when full —
        *before* the data append, preserving the batch-boundary coverage
        invariant (at ``wal_batch == 1`` this is the strict per-append
        write-ahead ordering)."""
        self.wal_rows.append(
            [logical_offset, self.physical_offset, length, pid, util.unique_timestamp()]
        )
        if len(self.wal_rows) >= self.wal_batch:
            self.flush_wal()

    def _record(self, logical_offset: int, written: int, pid: int) -> None:
        self.records_appended += 1
        if not self._try_merge(logical_offset, written, pid):
            self.pending.append(
                [
                    logical_offset,
                    self.physical_offset,
                    written,
                    pid,
                    util.unique_timestamp(),
                ]
            )
        self.physical_offset += written

    def append(self, buf, logical_offset: int, pid: int) -> int:
        store = backing.current()
        if self.wal_fd >= 0:
            # The WAL record promises the full length; a torn or short data
            # write is reconciled at recovery time by clipping the record
            # to the bytes the data dropping actually holds.
            self._promise(logical_offset, len(buf), pid)
        written = store.write_data(self.data_fd, buf, self.data_path)
        self._record(logical_offset, written, pid)
        return written

    def append_many(self, bufs: list, logical_offset: int, pid: int) -> int:
        """Vectored append: the whole iovec lands as one data append (one
        ``writev``), one WAL promise, and one — possibly merged — index
        record covering the contiguous logical span."""
        store = backing.current()
        total = sum(len(b) for b in bufs)
        if self.wal_fd >= 0:
            self._promise(logical_offset, total, pid)
        written = store.write_datav(self.data_fd, bufs, self.data_path)
        self._record(logical_offset, written, pid)
        return written

    # ------------------------------------------------------------------ #
    # flushing
    # ------------------------------------------------------------------ #

    def flush_wal(self) -> None:
        """Persist the buffered write-ahead records as one batch.

        On failure the rows are *kept*: earlier rows in the batch may
        already cover data that physically landed, and the WAL must stay a
        superset of whatever the index dropping will claim.  A retried row
        whose data never landed is zero-clipped at recovery time.
        """
        if not self.wal_rows:
            return
        payload = _rows_to_records(self.wal_rows).tobytes()
        backing.current().write_wal(self.wal_fd, payload, self.wal_path)
        self.wal_records_written += len(self.wal_rows)
        self.wal_batches += 1
        self.wal_rows.clear()

    def effective_flush_threshold(self) -> int:
        """The adaptive in-memory flush threshold.

        Starts at :data:`INDEX_FLUSH_THRESHOLD` and scales up with the
        observed merge rate (up to :data:`ADAPTIVE_FLUSH_SCALE_MAX`×): a
        stream whose records mostly merge grows ``pending`` slowly and
        cheaply, so flushing it eagerly only fragments the on-disk index.
        Random-offset streams (merge rate ~0) keep the base bound.
        """
        base = INDEX_FLUSH_THRESHOLD
        if self.records_appended < ADAPTIVE_FLUSH_MIN_SAMPLE:
            return base
        ratio = self.records_merged / self.records_appended
        scaled = int(base * (1.0 + (ADAPTIVE_FLUSH_SCALE_MAX - 1.0) * ratio))
        self.adaptive_threshold = scaled
        return scaled

    def pending_records(self) -> np.ndarray:
        return _rows_to_records(self.pending)

    def flush_index(self) -> None:
        # The WAL must remain a superset of the flushed index (fsck
        # rebuilds the index wholly from it), so an open batch is flushed
        # first.
        if self.wal_fd >= 0 and self.wal_rows:
            self.flush_wal()
        if not self.pending:
            return
        records = self.pending_records()
        backing.current().append_index(self.index_path, records.tobytes())
        self.records_flushed += records.shape[0]
        self.index_flushes += 1
        self.pending.clear()

    def sync(self) -> None:
        self.flush_index()
        backing.current().fsync(self.data_fd)

    def close(self) -> None:
        """Flush and release.  Idempotent and exception-safe: descriptors
        are released even when the final flush fails, and the WAL is
        deleted only on a *clean* flush (a failed flush leaves it as the
        recovery source ``repro-fsck`` needs)."""
        if self._closed:
            return
        self._closed = True
        flush_exc: BaseException | None = None
        try:
            self.flush_index()
        except BaseException as exc:  # noqa: B036 - InjectedCrash must pass through
            flush_exc = exc
        close_exc: OSError | None = None
        for attr in ("data_fd", "wal_fd"):
            fd = getattr(self, attr)
            setattr(self, attr, -1)
            if fd >= 0:
                try:
                    os.close(fd)
                except OSError as exc:
                    if close_exc is None:
                        close_exc = exc
        if flush_exc is None and self.wal_path is not None:
            # Clean close: the flushed index dropping is now authoritative;
            # the write-ahead copy of the records is redundant.  This holds
            # even when a descriptor close failed above — the flush itself
            # succeeded.
            try:
                os.unlink(self.wal_path)
            except OSError:
                pass
        if flush_exc is not None:
            raise flush_exc
        if close_exc is not None:
            raise close_exc

    def abandon(self) -> None:
        """Release OS resources as a crashed process would: no index
        flush, no WAL cleanup, buffered records dropped on the floor."""
        self._closed = True
        self.pending.clear()
        self.wal_rows.clear()
        for attr in ("data_fd", "wal_fd"):
            fd = getattr(self, attr)
            setattr(self, attr, -1)
            if fd >= 0:
                try:
                    os.close(fd)
                except OSError:
                    pass


class WriteFile:
    """Write handle on a container, multiplexing per-pid droppings.

    Matches PLFS semantics: each pid that writes through the handle gets its
    own dropping pair, giving every process a private file stream (the file
    partitioning that removes shared-file lock contention).
    """

    #: plfs-san registration (see repro.sanitize).  No lock on purpose:
    #: a handle's droppings are serialized per handle (one writer, or the
    #: daemon's per-container writer lock); the detector attributes that
    #: happens-before to the plfs-handle virtual lock the api layer pushes
    _SANITIZE_SHARED = {"_droppings": None}

    def __init__(
        self,
        container: Container,
        *,
        host: str | None = None,
        merge_records: bool = True,
        wal: bool = False,
        wal_batch: int = 1,
    ):
        self.container = container
        self.host = host or util.hostname()
        self.hostdir = container.ensure_hostdir(self.host)
        self._droppings: dict[int, _Dropping] = {}
        self._max_logical_end = 0
        self._total_written = 0
        self._closed = False
        self._merge_records = merge_records
        #: write-ahead index: persist each record before its data append so
        #: a crash never strands unindexed data (see repro.faults.fsck)
        self.wal = wal
        #: group-commit window: WAL records per write_wal batch (1 = strict
        #: per-append ordering; >1 trades intra-batch crash coverage for
        #: one WAL syscall per window)
        self.wal_batch = max(1, int(wal_batch))
        self._last_dropping: _Dropping | None = None
        self._appends = 0
        self._vectored_appends = 0
        self._vectored_buffers = 0
        self._zero_copy_appends = 0
        self._threshold_flushes = 0
        self._generation_bumps = 0

    # ------------------------------------------------------------------ #

    def _dropping_for(self, pid: int) -> _Dropping:
        d = self._droppings.get(pid)
        if d is None:
            d = _Dropping(
                self.hostdir, self.host, pid, wal=self.wal, wal_batch=self.wal_batch
            )
            self._droppings[pid] = d
        return d

    def _invalidate(self) -> None:
        """Records just became visible on disk: readers holding a cached
        index — in this process or any other — must rebuild to see them."""
        self._generation_bumps += 1
        _invalidate_cross_process(self.container)

    def _prepare(self, pid: int) -> _Dropping:
        if self._closed:
            raise BadFlagsError("write on closed WriteFile")
        dropping = self._dropping_for(pid)
        # Record merging is only sound for back-to-back writes of the same
        # stream: an intervening write from another pid must keep its own
        # timestamp ordering against ours.
        dropping.merge_records = self._merge_records and dropping is self._last_dropping
        self._last_dropping = dropping
        return dropping

    def _account(self, dropping: _Dropping, offset: int, written: int) -> None:
        end = offset + written
        if end > self._max_logical_end:
            self._max_logical_end = end
        self._total_written += written
        if len(dropping.pending) >= dropping.effective_flush_threshold():
            dropping.flush_index()
            self._threshold_flushes += 1
            self._invalidate()

    def write(self, buf, offset: int, pid: int) -> int:
        """Append *buf* for logical [offset, offset+len(buf)).  Returns the
        byte count written (always the full buffer for regular files).

        *buf* may be any bytes-like object; ``memoryview`` payloads are
        threaded through to the backing store without copying.
        """
        dropping = self._prepare(pid)
        self._appends += 1
        if isinstance(buf, memoryview):
            self._zero_copy_appends += 1
        written = dropping.append(buf, offset, pid)
        self._account(dropping, offset, written)
        return written

    def append_many(self, bufs: list, offset: int, pid: int) -> int:
        """Vectored write: the buffers cover one contiguous logical span
        starting at *offset* and land as a single data append plus one
        (possibly merged) index record — the ``writev``/``pwritev`` fast
        path.  Returns total bytes written."""
        dropping = self._prepare(pid)
        total = sum(len(b) for b in bufs)
        if total == 0:
            return 0
        self._appends += 1
        self._vectored_appends += 1
        self._vectored_buffers += len(bufs)
        written = dropping.append_many(bufs, offset, pid)
        self._account(dropping, offset, written)
        return written

    # ------------------------------------------------------------------ #
    # visibility for readers on the same handle / process
    # ------------------------------------------------------------------ #

    def pending_records(self) -> list[tuple[np.ndarray, str]]:
        """Unflushed index records per data dropping path, so a reader in
        the same process can see writes that have not been synced yet."""
        out: list[tuple[np.ndarray, str]] = []
        for d in self._droppings.values():
            recs = d.pending_records()
            if recs.size:
                out.append((recs, d.data_path))
        return out

    @property
    def max_logical_end(self) -> int:
        return self._max_logical_end

    @property
    def total_written(self) -> int:
        return self._total_written

    @property
    def dropping_count(self) -> int:
        return len(self._droppings)

    @property
    def stats(self) -> dict[str, int]:
        """Write-path counters (surfaced into repro.insights profiles)."""
        out = {
            "appends": self._appends,
            "vectored_appends": self._vectored_appends,
            "vectored_buffers": self._vectored_buffers,
            "zero_copy_appends": self._zero_copy_appends,
            "bytes_appended": self._total_written,
            "threshold_flushes": self._threshold_flushes,
            "generation_bumps": self._generation_bumps,
            "records_merged": 0,
            "records_flushed": 0,
            "index_flushes": 0,
            "wal_records": 0,
            "wal_batches": 0,
            "adaptive_threshold": INDEX_FLUSH_THRESHOLD,
        }
        for d in self._droppings.values():
            out["records_merged"] += d.records_merged
            out["records_flushed"] += d.records_flushed
            out["index_flushes"] += d.index_flushes
            out["wal_records"] += d.wal_records_written
            out["wal_batches"] += d.wal_batches
            if d.adaptive_threshold > out["adaptive_threshold"]:
                out["adaptive_threshold"] = d.adaptive_threshold
        return out

    # ------------------------------------------------------------------ #

    def sync(self) -> None:
        """Flush buffered records (a hard barrier for any open WAL batch)
        and fsync the data droppings."""
        for d in self._droppings.values():
            d.sync()
        self._invalidate()

    def flush_indexes(self) -> None:
        flushed = any(d.pending for d in self._droppings.values())
        for d in self._droppings.values():
            d.flush_index()
        if flushed:
            self._invalidate()

    def close(self) -> None:
        """Flush and tear down every dropping.  Idempotent; a descriptor
        failure on one dropping never strands the others open."""
        if self._closed:
            return
        self._closed = True
        first: OSError | None = None
        droppings = list(self._droppings.values())
        for i, d in enumerate(droppings):
            try:
                d.close()
            except OSError as exc:
                if first is None:
                    first = exc
            except BaseException:
                # An injected crash mid-close: release the remaining
                # descriptors the way the kernel would on process death,
                # flushing nothing, and let the "kill" propagate.
                for rest in droppings[i + 1 :]:
                    rest.abandon()
                raise
        self._invalidate()
        if first is not None:
            raise first

    def abandon(self) -> None:
        """Tear down as if the writing process died (SIGKILL semantics):
        descriptors are released but nothing buffered is flushed and no
        metadata is recorded.  Used by the fault-injection harness to
        model process kill between a data append and the index flush."""
        if self._closed:
            return
        for d in self._droppings.values():
            d.abandon()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "WriteFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        # Last-resort fd hygiene only: an abandoned handle must not leak
        # descriptors, but GC must never flush records the caller chose
        # not to persist (close() is the explicit persistence point).
        try:
            self.abandon()
        except BaseException:
            pass
