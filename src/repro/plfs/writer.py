"""The PLFS write path: log-structured data droppings.

A :class:`WriteFile` owns one (data, index) dropping pair per writing pid.
Every ``write(buf, offset)`` appends the payload to the data dropping —
strictly sequentially, regardless of the logical offset, which is the
log-structuring that converts random application writes into sequential disk
writes — and buffers one index record.  Records are flushed to the index
dropping on ``sync``/``close``.
"""

from __future__ import annotations

import os

import numpy as np

from . import util
from .container import Container
from .errors import BadFlagsError
from .index import INDEX_DTYPE, make_record, pack_records

#: Flush buffered index records to disk after this many accumulate, bounding
#: memory for very write-heavy workloads.
INDEX_FLUSH_THRESHOLD = 4096


class _Dropping:
    """One open (data, index) dropping pair for a single pid."""

    __slots__ = (
        "data_path",
        "index_path",
        "data_fd",
        "physical_offset",
        "pending",
        "records_written",
        "records_merged",
        "merge_records",
    )

    def __init__(self, hostdir: str, host: str, pid: int, *, merge_records: bool = True):
        ts = util.unique_timestamp()
        self.data_path = os.path.join(hostdir, util.data_dropping_name(host, pid, ts))
        self.index_path = os.path.join(hostdir, util.index_dropping_name(host, pid, ts))
        self.data_fd = os.open(
            self.data_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        # Touch the index dropping immediately so readers pair it with the
        # data dropping even before the first sync.
        os.close(os.open(self.index_path, os.O_WRONLY | os.O_CREAT, 0o644))
        self.physical_offset = 0
        self.pending: list[np.ndarray] = []
        self.records_written = 0
        self.records_merged = 0
        self.merge_records = merge_records

    def _try_merge(self, logical_offset: int, length: int, pid: int) -> bool:
        """Index compression: a write that continues the previous one both
        logically and physically extends the last pending record instead
        of adding a new one — the optimisation the C library applies to
        keep sequential workloads from growing the index per call.

        The merged record takes the *latest* timestamp.  That is only
        sound when no other stream wrote in between (otherwise the whole
        merged run would shadow an interleaved overwrite); the WriteFile
        enforces that by allowing merges only for back-to-back writes to
        the same dropping.
        """
        if not self.merge_records or not self.pending:
            return False
        last = self.pending[-1]
        rec = last[-1]
        if (
            int(rec["pid"]) == pid
            and int(rec["logical_offset"] + rec["length"]) == logical_offset
            and int(rec["physical_offset"] + rec["length"]) == self.physical_offset
        ):
            last[-1]["length"] += length
            last[-1]["timestamp"] = util.unique_timestamp()
            self.records_merged += 1
            return True
        return False

    def append(self, buf: bytes | bytearray | memoryview, logical_offset: int, pid: int) -> int:
        written = os.write(self.data_fd, buf)
        if not self._try_merge(logical_offset, written, pid):
            self.pending.append(
                make_record(
                    logical_offset=logical_offset,
                    physical_offset=self.physical_offset,
                    length=written,
                    pid=pid,
                    timestamp=util.unique_timestamp(),
                )
            )
        self.physical_offset += written
        return written

    def pending_records(self) -> np.ndarray:
        if not self.pending:
            return np.empty(0, dtype=INDEX_DTYPE)
        return np.concatenate(self.pending)

    def flush_index(self) -> None:
        if not self.pending:
            return
        records = self.pending_records()
        with open(self.index_path, "ab") as fh:
            fh.write(pack_records(records))
        self.records_written += records.shape[0]
        self.pending.clear()

    def sync(self) -> None:
        self.flush_index()
        os.fsync(self.data_fd)

    def close(self) -> None:
        self.flush_index()
        os.close(self.data_fd)


class WriteFile:
    """Write handle on a container, multiplexing per-pid droppings.

    Matches PLFS semantics: each pid that writes through the handle gets its
    own dropping pair, giving every process a private file stream (the file
    partitioning that removes shared-file lock contention).
    """

    def __init__(
        self,
        container: Container,
        *,
        host: str | None = None,
        merge_records: bool = True,
    ):
        self.container = container
        self.host = host or util.hostname()
        self.hostdir = container.ensure_hostdir(self.host)
        self._droppings: dict[int, _Dropping] = {}
        self._max_logical_end = 0
        self._total_written = 0
        self._closed = False
        self._merge_records = merge_records
        self._last_dropping: _Dropping | None = None

    # ------------------------------------------------------------------ #

    def _dropping_for(self, pid: int) -> _Dropping:
        d = self._droppings.get(pid)
        if d is None:
            d = _Dropping(self.hostdir, self.host, pid)
            self._droppings[pid] = d
        return d

    def write(self, buf: bytes | bytearray | memoryview, offset: int, pid: int) -> int:
        """Append *buf* for logical [offset, offset+len(buf)).  Returns the
        byte count written (always the full buffer for regular files)."""
        if self._closed:
            raise BadFlagsError("write on closed WriteFile")
        if isinstance(buf, memoryview):
            buf = buf.tobytes()
        dropping = self._dropping_for(pid)
        # Record merging is only sound for back-to-back writes of the same
        # stream: an intervening write from another pid must keep its own
        # timestamp ordering against ours.
        dropping.merge_records = self._merge_records and dropping is self._last_dropping
        self._last_dropping = dropping
        written = dropping.append(buf, offset, pid)
        end = offset + written
        if end > self._max_logical_end:
            self._max_logical_end = end
        self._total_written += written
        d = self._droppings[pid]
        if len(d.pending) >= INDEX_FLUSH_THRESHOLD:
            d.flush_index()
        return written

    # ------------------------------------------------------------------ #
    # visibility for readers on the same handle / process
    # ------------------------------------------------------------------ #

    def pending_records(self) -> list[tuple[np.ndarray, str]]:
        """Unflushed index records per data dropping path, so a reader in
        the same process can see writes that have not been synced yet."""
        out: list[tuple[np.ndarray, str]] = []
        for d in self._droppings.values():
            recs = d.pending_records()
            if recs.size:
                out.append((recs, d.data_path))
        return out

    @property
    def max_logical_end(self) -> int:
        return self._max_logical_end

    @property
    def total_written(self) -> int:
        return self._total_written

    @property
    def dropping_count(self) -> int:
        return len(self._droppings)

    # ------------------------------------------------------------------ #

    def sync(self) -> None:
        for d in self._droppings.values():
            d.sync()

    def flush_indexes(self) -> None:
        for d in self._droppings.values():
            d.flush_index()

    def close(self) -> None:
        if self._closed:
            return
        for d in self._droppings.values():
            d.close()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed
