"""Exception hierarchy for the PLFS library.

The C library reports failures through negative errno returns; the Python
port raises :class:`OSError` subclasses carrying the equivalent ``errno`` so
that the interposition layer (``repro.core``) can surface them to
applications exactly as the corresponding POSIX call would.
"""

from __future__ import annotations

import errno


class PlfsError(OSError):
    """Base class for all PLFS failures.

    Always carries a meaningful ``errno`` so shim code can re-raise it as the
    corresponding POSIX failure.
    """

    default_errno = errno.EIO

    def __init__(self, message: str, err: int | None = None):
        super().__init__(err if err is not None else self.default_errno, message)


class NotAContainerError(PlfsError):
    """The backend path exists but is not a PLFS container."""

    default_errno = errno.EINVAL


class ContainerNotFoundError(PlfsError):
    """The backend path does not exist."""

    default_errno = errno.ENOENT


class ContainerExistsError(PlfsError):
    """O_CREAT|O_EXCL on an existing container."""

    default_errno = errno.EEXIST


class BadFlagsError(PlfsError):
    """Operation not permitted by the flags the handle was opened with."""

    default_errno = errno.EBADF


class CorruptIndexError(PlfsError):
    """An index dropping failed to parse (truncated or malformed record)."""

    default_errno = errno.EIO


class IsAContainerError(PlfsError):
    """A directory operation was attempted on a container (e.g. rmdir)."""

    default_errno = errno.EISDIR
