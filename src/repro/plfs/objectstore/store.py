"""An S3-style object store over a local content-addressed blob directory.

Objects are keyed by *container-relative dropping path* (what the
write-back tier hands us) and stored in two layers, the way real object
stores separate immutable data from the namespace:

``blobs/<sha256[:2]>/<sha256>``
    Immutable, content-addressed payload bytes.  Identical droppings
    share one blob (dedup is free); a blob is committed atomically via
    write-then-rename and never rewritten.
``keys/<key>``
    One small manifest per key — ``etag``/``size``/``parts`` — committed
    atomically via write-then-rename.  The manifest commit is the
    store's linearization point: until it lands, the object does not
    exist no matter how many blob bytes did.
``uploads/<id>/``
    Multipart staging: a ``KEY`` attribution file plus ``part.NNNNN``
    files.  A crash mid-upload leaves staging garbage and *no* committed
    key; ``repro-fsck``'s object reconcile pass sweeps it.

Every persistence operation — blob commit, part append, manifest commit,
blob read-back — routes through :mod:`repro.plfs.backing`, so the fault
injector can fire a lost PUT, a torn part, or a vanished GET at the same
seam it fires dropping faults.  GETs verify size *and* etag before
returning: a short or corrupt read surfaces as :class:`ObjectStoreError`,
never as silently wrong bytes.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import shutil
from dataclasses import dataclass

from repro.plfs import backing

BLOBS_DIR = "blobs"
KEYS_DIR = "keys"
UPLOADS_DIR = "uploads"

#: attribution file inside a multipart staging directory
UPLOAD_KEY_FILE = "KEY"
PART_PREFIX = "part."


class ObjectStoreError(Exception):
    """A detected object-store inconsistency (corrupt or short object)."""


@dataclass(frozen=True)
class ObjectInfo:
    """What ``head``/``put`` report about one committed object."""

    key: str
    size: int
    etag: str
    parts: int = 1


def _sha256(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def check_key(key: str) -> str:
    """Validate a key: relative, normalized, confined to the store."""
    if not key or key.startswith(("/", "\\")):
        raise ValueError(f"object key must be relative: {key!r}")
    parts = key.split("/")
    if any(p in ("", ".", "..") for p in parts):
        raise ValueError(f"object key must be normalized: {key!r}")
    return key


class MultipartUpload:
    """One in-flight multipart upload (the S3 create/part/complete shape).

    Parts stage under ``uploads/<id>/``; :meth:`complete` assembles them,
    commits the blob and then the key manifest, and removes the staging
    directory.  An :class:`~repro.faults.injector.InjectedCrash` anywhere
    before the manifest commit leaves staged parts and no visible object —
    the torn-multipart failure mode the fault matrix exercises.
    """

    def __init__(self, store: "ObjectStore", key: str, upload_id: str):
        self.store = store
        self.key = key
        self.dir = os.path.join(store.root, UPLOADS_DIR, upload_id)
        os.makedirs(self.dir)
        # Attribution is bookkeeping, not a crash-relevant persist: fsck
        # only needs it to scope sweeps to one container's prefix.
        with open(os.path.join(self.dir, UPLOAD_KEY_FILE), "w") as fh:
            fh.write(key + "\n")
        self.parts = 0
        self.size = 0
        self._sha = hashlib.sha256()

    def write_part(self, payload: bytes) -> int:
        """Append one part; parts are numbered in arrival order."""
        payload = bytes(payload)
        path = os.path.join(self.dir, f"{PART_PREFIX}{self.parts:05d}")
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        try:
            n = backing.current().write_part(fd, payload, path)
        finally:
            os.close(fd)
        if n != len(payload):
            raise ObjectStoreError(
                f"short part write for {self.key!r}: {n}/{len(payload)} bytes"
            )
        self.parts += 1
        self.size += n
        self._sha.update(payload)
        self.store.stats["object_parts"] += 1
        return n

    def complete(self) -> ObjectInfo:
        """Assemble the parts into one blob and commit the key."""
        chunks: list[bytes] = []
        for i in range(self.parts):
            path = os.path.join(self.dir, f"{PART_PREFIX}{i:05d}")
            with open(path, "rb") as fh:
                chunks.append(fh.read())
        payload = b"".join(chunks)
        if len(payload) != self.size or _sha256(payload) != self._sha.hexdigest():
            raise ObjectStoreError(
                f"multipart staging for {self.key!r} does not match the "
                f"uploaded parts ({len(payload)}/{self.size} bytes on disk)"
            )
        info = self.store._commit(self.key, payload, parts=max(1, self.parts))
        shutil.rmtree(self.dir, ignore_errors=True)
        return info

    def abort(self) -> None:
        """Drop the staging directory (the explicit-abort path)."""
        shutil.rmtree(self.dir, ignore_errors=True)


class ObjectStore:
    """``put``/``get``/``list``/``delete`` over a local blob directory."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        for sub in (BLOBS_DIR, KEYS_DIR, UPLOADS_DIR):
            os.makedirs(os.path.join(self.root, sub), exist_ok=True)
        self._upload_seq = itertools.count()
        self.stats: dict[str, int] = {
            "object_puts": 0,
            "object_put_bytes": 0,
            "object_multipart_uploads": 0,
            "object_parts": 0,
            "object_dedup_hits": 0,
            "object_gets": 0,
            "object_get_bytes": 0,
            "object_deletes": 0,
        }

    # ------------------------------------------------------------------ #
    # layout
    # ------------------------------------------------------------------ #

    def _blob_path(self, etag: str) -> str:
        return os.path.join(self.root, BLOBS_DIR, etag[:2], etag)

    def _key_path(self, key: str) -> str:
        return os.path.join(self.root, KEYS_DIR, check_key(key))

    # ------------------------------------------------------------------ #
    # the S3-ish surface
    # ------------------------------------------------------------------ #

    def put(self, key: str, payload: bytes, *, part_size: int | None = None) -> ObjectInfo:
        """Store *payload* under *key*; multipart when it exceeds
        *part_size* (the tier passes its flush-chunk size here, so large
        droppings upload the way CAWL's flusher drains — in chunks)."""
        payload = bytes(payload)
        check_key(key)
        if part_size and len(payload) > part_size:
            upload = self.create_multipart(key)
            try:
                for i in range(0, len(payload), part_size):
                    upload.write_part(payload[i : i + part_size])
                return upload.complete()
            except OSError:
                # A *surviving* writer cleans up after an errored upload;
                # an InjectedCrash (BaseException) gets no such chance —
                # exactly like the real SIGKILL that leaves torn staging.
                upload.abort()
                raise
        return self._commit(key, payload, parts=1)

    def create_multipart(self, key: str) -> MultipartUpload:
        check_key(key)
        self.stats["object_multipart_uploads"] += 1
        upload_id = (
            f"{hashlib.sha1(key.encode()).hexdigest()[:12]}"
            f".{os.getpid()}.{next(self._upload_seq)}"
        )
        return MultipartUpload(self, key, upload_id)

    def get(self, key: str) -> bytes:
        """Read an object back, verifying size and etag end to end."""
        info = self.head(key)
        if info is None:
            raise FileNotFoundError(f"no such object: {key!r}")
        blob = self._blob_path(info.etag)
        try:
            payload = backing.current().get_object(blob, key)
        except FileNotFoundError as exc:
            raise ObjectStoreError(
                f"object {key!r} committed but its blob {info.etag[:12]}… "
                "is missing (a lost blob PUT)"
            ) from exc
        if len(payload) != info.size or _sha256(payload) != info.etag:
            raise ObjectStoreError(
                f"object {key!r} is corrupt: {len(payload)}/{info.size} "
                "bytes or etag mismatch"
            )
        self.stats["object_gets"] += 1
        self.stats["object_get_bytes"] += len(payload)
        return payload

    def head(self, key: str) -> ObjectInfo | None:
        """Manifest lookup without reading the blob (``None`` = no object)."""
        try:
            with open(self._key_path(key), "r") as fh:
                raw = fh.read()
        except (FileNotFoundError, NotADirectoryError):
            return None
        fields = dict(
            line.split(" ", 1) for line in raw.splitlines() if " " in line
        )
        try:
            return ObjectInfo(
                key=key,
                size=int(fields["size"]),
                etag=fields["etag"].strip(),
                parts=int(fields.get("parts", "1")),
            )
        except (KeyError, ValueError) as exc:
            raise ObjectStoreError(f"unparseable manifest for {key!r}") from exc

    def list(self, prefix: str = "") -> list[str]:
        """All committed keys under *prefix*, sorted."""
        base = os.path.join(self.root, KEYS_DIR)
        out: list[str] = []
        for dirpath, _, names in os.walk(base):
            for name in names:
                key = os.path.relpath(os.path.join(dirpath, name), base)
                if not key.startswith(prefix):
                    continue
                if ".tmp." in name:
                    continue  # an in-flight manifest commit, not an object
                out.append(key)
        return sorted(out)

    def delete(self, key: str) -> bool:
        """Remove a key's manifest (blobs may be shared; they stay until
        :meth:`sweep_blobs`).  Missing keys are not an error — deletes
        must be idempotent for the tier's vanished-file sync."""
        try:
            os.unlink(self._key_path(key))
        except FileNotFoundError:
            return False
        self.stats["object_deletes"] += 1
        return True

    # ------------------------------------------------------------------ #
    # maintenance (repro-fsck's reconcile pass)
    # ------------------------------------------------------------------ #

    def pending_uploads(self) -> list[tuple[str, str | None]]:
        """In-flight (or torn) multipart staging dirs as ``(path, key)``;
        *key* is ``None`` when even the attribution file is unreadable."""
        base = os.path.join(self.root, UPLOADS_DIR)
        out: list[tuple[str, str | None]] = []
        for name in sorted(os.listdir(base)):
            d = os.path.join(base, name)
            if not os.path.isdir(d):
                continue
            key: str | None = None
            try:
                with open(os.path.join(d, UPLOAD_KEY_FILE)) as fh:
                    key = fh.read().strip() or None
            except OSError:
                pass
            out.append((d, key))
        return out

    def stray_temporaries(self) -> list[str]:
        """Leftover ``*.tmp.<pid>`` files from crashed blob/manifest
        commits (invisible to readers, but disk they hold is real)."""
        out: list[str] = []
        for sub in (BLOBS_DIR, KEYS_DIR):
            base = os.path.join(self.root, sub)
            for dirpath, _, names in os.walk(base):
                for name in names:
                    if ".tmp." in name:
                        out.append(os.path.join(dirpath, name))
        return sorted(out)

    def sweep_blobs(self) -> int:
        """Delete blobs no committed manifest references; returns count."""
        referenced = set()
        for key in self.list():
            info = self.head(key)
            if info is not None:
                referenced.add(info.etag)
        swept = 0
        base = os.path.join(self.root, BLOBS_DIR)
        for dirpath, _, names in os.walk(base):
            for name in names:
                if name not in referenced and ".tmp." not in name:
                    os.unlink(os.path.join(dirpath, name))
                    swept += 1
        return swept

    # ------------------------------------------------------------------ #

    def _commit(self, key: str, payload: bytes, *, parts: int) -> ObjectInfo:
        """Blob first, then the manifest: the commit order every failure
        mode in the matrix leans on (a lost manifest commit orphans a
        blob; it never exposes a key without bytes behind it... unless
        the blob PUT itself was lost, which GET's etag check catches)."""
        etag = _sha256(payload)
        blob = self._blob_path(etag)
        if os.path.exists(blob):
            self.stats["object_dedup_hits"] += 1
        else:
            os.makedirs(os.path.dirname(blob), exist_ok=True)
            n = backing.current().put_blob(blob, payload, key)
            if n != len(payload):
                raise ObjectStoreError(
                    f"short blob write for {key!r}: {n}/{len(payload)} bytes"
                )
        manifest = self._key_path(key)
        os.makedirs(os.path.dirname(manifest), exist_ok=True)
        body = f"etag {etag}\nsize {len(payload)}\nparts {parts}\n".encode()
        backing.current().commit_key(manifest, body, key)
        self.stats["object_puts"] += 1
        self.stats["object_put_bytes"] += len(payload)
        return ObjectInfo(key=key, size=len(payload), etag=etag, parts=parts)
