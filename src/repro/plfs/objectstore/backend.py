"""``BackingStore`` implementation backed by the object store + tier.

Install via :func:`repro.plfs.backing.install` and the whole PLFS
library — droppings, WAL, meta, compacted index — runs unmodified over
object storage, which is the paper's thesis applied one layer down: the
*library* didn't change either.

Writes are write-through to local disk (the ``inner`` store, default
direct ``os`` calls) and then noted with the write-back tier, which
uploads dirty files per the CAWL policy.  ``fsync`` maps to a full tier
drain: when PLFS asks for durability, every dirty dropping must be in
the object store, mirroring how the CAWL sim treats a sync barrier.
"""

from __future__ import annotations

import os

from repro.plfs import backing

from .store import ObjectStore
from .tier import TierConfig, WriteBackTier


class ObjectStoreBackingStore(backing.BackingStore):
    """Write-through local tier over an :class:`ObjectStore`.

    *root* is the directory whose files map to object keys (container
    parent); *inner* performs the local writes (default: the plain
    ``BackingStore``, i.e. direct ``os`` calls).  The object-layer ops
    (``put_blob``/``commit_key``/…) are inherited from the base class
    unchanged — they *are* the local blob-directory implementation — so
    a :class:`~repro.faults.injector.FaultyBackingStore` wrapped around
    this backend injects into both the dropping writes and the uploads.
    """

    def __init__(
        self,
        store: ObjectStore,
        root: str,
        config: TierConfig | None = None,
        inner: backing.BackingStore | None = None,
    ):
        self.store = store
        self.inner = inner or backing.BackingStore()
        self.tier = WriteBackTier(store, root, config)

    # ------------------------------------------------------------------ #
    # persistence surface: local write-through + tier accounting
    # ------------------------------------------------------------------ #

    def write_data(self, fd: int, buf, path: str) -> int:
        n = self.inner.write_data(fd, buf, path)
        self.tier.note_write(path, n)
        return n

    def write_datav(self, fd: int, buffers, path: str) -> int:
        n = self.inner.write_datav(fd, buffers, path)
        self.tier.note_write(path, n)
        return n

    def append_index(self, path: str, payload: bytes) -> int:
        n = self.inner.append_index(path, payload)
        self.tier.note_write(path, n)
        return n

    def write_wal(self, fd: int, payload: bytes, path: str) -> int:
        n = self.inner.write_wal(fd, payload, path)
        self.tier.note_write(path, n)
        return n

    def create_meta(self, path: str) -> None:
        self.inner.create_meta(path)
        # zero bytes, but the (empty) meta dropping itself must reach the
        # object store — its *name* is the record
        self.tier.note_write(path, 0)

    def write_global_index(self, path: str, payload: bytes) -> None:
        self.inner.write_global_index(path, payload)
        self.tier.note_write(path, len(payload))

    def fsync(self, fd: int) -> None:
        """Local durability first, then the tier's sync barrier."""
        self.inner.fsync(fd)
        self.tier.drain()

    # object-layer ops (put_blob / write_part / commit_key / get_object)
    # are inherited: this backend IS the local blob directory, and the
    # ObjectStore reaches them through backing.current(), so an installed
    # FaultyBackingStore wrapper sees every upload.

    # ------------------------------------------------------------------ #

    def counters(self) -> dict[str, int]:
        """Tier + store stats merged (bench/insights surface)."""
        out = dict(self.tier.stats)
        out.update(self.store.stats)
        out["tier_dirty_bytes"] = self.tier.dirty_bytes()
        return out


def make_backend(
    root: str,
    store_root: str | None = None,
    config: TierConfig | None = None,
) -> ObjectStoreBackingStore:
    """Convenience constructor: an object store at *store_root* (default
    ``<root>.objects``) fronting the files under *root*."""
    store = ObjectStore(store_root or os.path.abspath(root) + ".objects")
    return ObjectStoreBackingStore(store, root, config)
