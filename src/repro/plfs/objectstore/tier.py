"""Local-disk write-back tier in front of the object store.

The tier is a *cache*; the object store is the *authority* (the same
decision PR 4 made for the compacted index).  Droppings are written to
local disk first — absorbing PLFS's append-heavy pattern at local
latency — and uploaded by a dirty-byte flusher whose policy mirrors
``repro.sim.cawl`` exactly (capacity, hiwater 0.75, lowater 0.25, 64 KiB
multipart chunks) so the sim twin and the real backend stay comparable
under the bench schema.

Dirty entries flush FIFO (oldest write first, like CAWL's flusher walks
its dirty list); clean entries form an LRU that :meth:`evict` trims.
The two hygiene invariants the error-path sweep pins down:

* a **failed PUT keeps the entry dirty** — ``flush_to_lowater`` records
  the error and moves on; only a PUT that returned success moves the
  entry to the clean list (so eviction can never drop the sole copy);
* a **crash mid-flush never marks clean first** — the dirty→clean move
  happens strictly after ``store.put`` returns, and an
  :class:`~repro.faults.injector.InjectedCrash` (a ``BaseException``)
  propagates before the move.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass

from .store import ObjectStore

#: mirrors repro.sim.cawl DEFAULTS — keep the twins in lock-step
DEFAULT_CAPACITY_BYTES = 128 * 1024
DEFAULT_HIWATER = 0.75
DEFAULT_LOWATER = 0.25
DEFAULT_PART_BYTES = 64 * 1024


@dataclass(frozen=True)
class TierConfig:
    """Write-back policy knobs (defaults = the CAWL sim policy)."""

    capacity_bytes: int = DEFAULT_CAPACITY_BYTES
    hiwater: float = DEFAULT_HIWATER
    lowater: float = DEFAULT_LOWATER
    multipart_part_bytes: int = DEFAULT_PART_BYTES

    @property
    def hiwater_bytes(self) -> int:
        return int(self.capacity_bytes * self.hiwater)

    @property
    def lowater_bytes(self) -> int:
        return int(self.capacity_bytes * self.lowater)


class WriteBackTier:
    """Dirty/clean tracking over one local directory tree.

    *root* is the directory whose files are tiered (the container's
    parent in practice); keys are paths relative to it, which makes them
    exactly the container-relative object keys the store expects.
    """

    def __init__(self, store: ObjectStore, root: str, config: TierConfig | None = None):
        self.store = store
        self.root = os.path.abspath(root)
        self.config = config or TierConfig()
        # key -> pending dirty bytes, oldest-written first (flush order)
        self._dirty: OrderedDict[str, int] = OrderedDict()
        # key -> last-known size, least-recently-uploaded first (evict order)
        self._clean: OrderedDict[str, int] = OrderedDict()
        self._dirty_total = 0
        self.stats: dict[str, int] = {
            "tier_hiwater_wakeups": 0,
            "tier_writeback_puts": 0,
            "tier_writeback_bytes": 0,
            "tier_sync_drains": 0,
            "tier_absorbed_writes": 0,
            "tier_put_errors": 0,
            "tier_evictions": 0,
            "tier_evicted_bytes": 0,
            "tier_restores": 0,
            "tier_restored_bytes": 0,
            "tier_vanished": 0,
            "tier_untracked_writes": 0,
        }

    # ------------------------------------------------------------------ #
    # key mapping
    # ------------------------------------------------------------------ #

    def key_for(self, path: str) -> str | None:
        """Container-relative object key for *path*, or ``None`` if the
        path escapes the tiered root (not ours to track)."""
        rel = os.path.relpath(os.path.abspath(path), self.root)
        if rel.startswith(".."):
            return None
        return rel.replace(os.sep, "/")

    def local_path(self, key: str) -> str:
        return os.path.join(self.root, *key.split("/"))

    # ------------------------------------------------------------------ #
    # the write side
    # ------------------------------------------------------------------ #

    def note_write(self, path: str, nbytes: int) -> None:
        """Record *nbytes* landing on the local copy of *path*; may kick
        the hiwater flusher (the hot-path entry point)."""
        key = self.key_for(path)
        if key is None:
            self.stats["tier_untracked_writes"] += 1
            return
        if key in self._dirty:
            # already pending: the coming flush uploads the whole file,
            # so this write rides along — CAWL's absorbed-write case
            self.stats["tier_absorbed_writes"] += 1
            self._dirty[key] += nbytes
        else:
            self._clean.pop(key, None)
            self._dirty[key] = nbytes
        self._dirty_total += nbytes
        if self._dirty_total > self.config.hiwater_bytes:
            self.stats["tier_hiwater_wakeups"] += 1
            self.flush_to_lowater()

    def flush_to_lowater(self) -> None:
        """Background-style flush: upload oldest-dirty entries until the
        dirty total drops to lowater.  A failing PUT is recorded and the
        entry *stays dirty*; the flusher moves on (a sync barrier will
        surface the error via :meth:`drain`)."""
        for key in list(self._dirty):
            if self._dirty_total <= self.config.lowater_bytes:
                break
            try:
                self._writeback(key)
            except OSError:
                self.stats["tier_put_errors"] += 1

    def drain(self) -> None:
        """Sync barrier: upload *every* dirty entry, propagating errors
        (the fsync-mapped path — the caller asked for durability)."""
        self.stats["tier_sync_drains"] += 1
        for key in list(self._dirty):
            self._writeback(key)

    def _writeback(self, key: str) -> None:
        """Upload one dirty entry and move it to the clean LRU.

        Ordering is the satellite-2 invariant: the entry leaves the
        dirty list only *after* ``store.put`` returns.  An exception —
        OSError or an injected crash — leaves it dirty, so eviction can
        never reap the only copy of un-uploaded bytes.
        """
        path = self.local_path(key)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            # The local file vanished (quarantined/unlinked by repair or
            # the workload).  Drop the entry and delete the stale object
            # so a later restore cannot resurrect deleted bytes.
            pending = self._dirty.pop(key, None)
            if pending is not None:
                self._dirty_total -= pending
            self._clean.pop(key, None)
            self.store.delete(key)
            self.stats["tier_vanished"] += 1
            return
        self.store.put(key, data, part_size=self.config.multipart_part_bytes)
        pending = self._dirty.pop(key, 0)
        self._dirty_total -= pending
        self._clean[key] = len(data)
        self._clean.move_to_end(key)
        self.stats["tier_writeback_puts"] += 1
        self.stats["tier_writeback_bytes"] += len(data)

    # ------------------------------------------------------------------ #
    # the read-side / capacity side
    # ------------------------------------------------------------------ #

    def evict(self, prefix: str = "") -> int:
        """Unlink local copies of *clean* entries (LRU first) under
        *prefix*; returns bytes reclaimed.  Dirty entries are never
        candidates — their only copy is local."""
        reclaimed = 0
        for key in [k for k in self._clean if k.startswith(prefix)]:
            size = self._clean.pop(key)
            try:
                os.unlink(self.local_path(key))
            except FileNotFoundError:
                pass
            self.stats["tier_evictions"] += 1
            self.stats["tier_evicted_bytes"] += size
            reclaimed += size
        return reclaimed

    def restore(self, key: str) -> int:
        """Fault one object back into the local tier (GET verifies etag
        end-to-end); returns bytes restored."""
        data = self.store.get(key)
        path = self.local_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as fh:
            fh.write(data)
        self._clean[key] = len(data)
        self._clean.move_to_end(key)
        self.stats["tier_restores"] += 1
        self.stats["tier_restored_bytes"] += len(data)
        return len(data)

    def restore_missing(self, prefix: str = "") -> list[str]:
        """Restore every committed object under *prefix* whose local copy
        is missing (the post-eviction / cold-start fill); returns the
        keys restored."""
        restored = []
        for key in self.store.list(prefix):
            if key in self._dirty:
                continue  # local (newer) copy is authoritative until drained
            if not os.path.exists(self.local_path(key)):
                self.restore(key)
                restored.append(key)
        return restored

    # ------------------------------------------------------------------ #

    def dirty_bytes(self) -> int:
        return self._dirty_total

    def dirty_keys(self) -> list[str]:
        return list(self._dirty)

    def clean_keys(self) -> list[str]:
        return list(self._clean)
