"""S3-style object backend for PLFS containers, with write-back tiering.

Droppings map naturally to immutable objects (PAPERS.md, "Exploring
Scientific Application Performance Using Large Scale Object Storage"):
every dropping is written once by one writer and never rewritten.  This
package stores them content-addressed under ``blobs/`` with per-key
manifests under ``keys/``, fronts the store with a CAWL-policy local
write-back tier, and plugs the whole thing in as a
:class:`~repro.plfs.backing.BackingStore` — the PLFS library, the shim
and the applications above them are unchanged, which is the paper's
thesis applied one layer down.

The tier is a cache; the object store is the authority.
"""

from .backend import ObjectStoreBackingStore, make_backend
from .store import MultipartUpload, ObjectInfo, ObjectStore, ObjectStoreError
from .tier import TierConfig, WriteBackTier

__all__ = [
    "MultipartUpload",
    "ObjectInfo",
    "ObjectStore",
    "ObjectStoreBackingStore",
    "ObjectStoreError",
    "TierConfig",
    "WriteBackTier",
    "make_backend",
]
