"""Object-store reconciliation for ``repro-fsck``.

Two passes bracket the container repair sequence:

* :func:`reconcile_before` runs *first*: any committed object whose local
  tier copy is missing (evicted, or lost with the node) is restored, so
  the ordinary repair steps see the fullest possible container.  This is
  where "the object store is authority" pays off — an evicted-then-lost
  dropping comes back byte-identical, etag-verified.
* :func:`reconcile_after` runs after repairs, before the final verify:
  torn multipart staging and crashed commit temporaries are swept, and
  the store is resynced to the *repaired* container — repaired or
  rewritten files are re-uploaded, objects with no surviving local
  counterpart (stale WALs deleted at clean close, cleared meta, lost
  droppings fsck quarantined or trimmed) are deleted so no later restore
  can resurrect bytes repair decided against.

Both passes are prefix-scoped to the container being fscked; other
containers sharing the store are untouched.
"""

from __future__ import annotations

import hashlib
import os
import shutil

from repro.plfs import constants

from .store import ObjectStore, ObjectStoreError

#: local names never mirrored to the store: fsck quarantine and
#: in-flight atomic-commit temporaries
_SKIP_MARKERS = ("quarantine.", ".tmp.")

#: local-only files: the generation counter is a *per-tier* cache
#: invalidation signal (fsck itself bumps it on every repair run) —
#: mirroring it would make resync diverge on each pass and a restore
#: could roll invalidation backwards
_LOCAL_ONLY = (constants.GENERATION_FILE,)


def _container_prefix(container_path: str, store_root: str) -> str:
    rel = os.path.relpath(os.path.abspath(container_path), os.path.abspath(store_root))
    if rel.startswith(".."):
        raise ValueError(
            f"container {container_path!r} is outside the tiered root {store_root!r}"
        )
    return rel.replace(os.sep, "/") + "/"


def _skip(name: str) -> bool:
    return name in _LOCAL_ONLY or any(marker in name for marker in _SKIP_MARKERS)


def _local_files(container_path: str) -> list[str]:
    """Container-internal relative paths of every mirrorable file."""
    out = []
    for dirpath, _, names in os.walk(container_path):
        for name in names:
            if _skip(name):
                continue
            out.append(
                os.path.relpath(os.path.join(dirpath, name), container_path).replace(
                    os.sep, "/"
                )
            )
    return sorted(out)


def reconcile_before(
    store: ObjectStore,
    container_path: str,
    store_root: str,
    report,
    *,
    dry_run: bool = False,
) -> None:
    """Restore committed objects whose local tier copy is missing."""
    prefix = _container_prefix(container_path, store_root)
    for key in store.list(prefix):
        local = os.path.join(store_root, *key.split("/"))
        if os.path.exists(local):
            continue
        rel = key[len(prefix):]
        try:
            data = store.get(key)
        except ObjectStoreError as exc:
            # Committed but unreadable (lost blob / corrupt bytes): the
            # local copy is gone and the authority can't produce one.
            # Record it; the dropping-level repair steps issue the
            # extent-level unrecoverable verdicts.
            report.act("skip-corrupt-object", rel, str(exc))
            continue
        report.act(
            "restore-from-object",
            rel,
            f"local tier copy missing; restored {len(data)} byte(s) from the store",
        )
        if not dry_run:
            os.makedirs(os.path.dirname(local), exist_ok=True)
            with open(local, "wb") as fh:
                fh.write(data)


def reconcile_after(
    store: ObjectStore,
    container_path: str,
    store_root: str,
    report,
    *,
    dry_run: bool = False,
) -> None:
    """Sweep upload debris and resync the store to the repaired tier."""
    prefix = _container_prefix(container_path, store_root)

    # torn multipart staging: parts with no committed key are invisible
    # to readers but hold real disk — sweep anything attributable to this
    # container (or unattributable at all)
    for staging, key in store.pending_uploads():
        if key is not None and not key.startswith(prefix):
            continue
        report.act(
            "sweep-torn-upload",
            key[len(prefix):] if key else os.path.basename(staging),
            "multipart staging with no committed manifest (upload died mid-flight)",
        )
        if not dry_run:
            shutil.rmtree(staging, ignore_errors=True)

    # crashed atomic-commit temporaries in the blob/key trees
    for tmp in store.stray_temporaries():
        report.act(
            "sweep-object-tmp",
            os.path.relpath(tmp, store.root),
            "leftover temporary from a blob or manifest commit that never completed",
        )
        if not dry_run:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass

    # resync: the repaired local tier is now the truth this fsck decided
    # on; push it.  Re-upload anything missing or etag-divergent…
    for rel in _local_files(container_path):
        key = prefix + rel
        local = os.path.join(container_path, *rel.split("/"))
        try:
            with open(local, "rb") as fh:
                data = fh.read()
        except OSError:
            continue
        info = store.head(key)
        if info is not None and info.etag == hashlib.sha256(data).hexdigest():
            continue
        report.act(
            "reupload-object",
            rel,
            "object missing from the store"
            if info is None
            else "object diverges from the repaired local copy",
        )
        if not dry_run:
            store.put(key, data)

    # …and delete objects repair left without a local counterpart, so a
    # later restore cannot resurrect a stale WAL, cleared meta dropping,
    # or bytes fsck quarantined/trimmed.
    local_now = set(_local_files(container_path))
    for key in store.list(prefix):
        if key[len(prefix):] in local_now:
            continue
        report.act(
            "drop-stale-object",
            key[len(prefix):],
            "no local counterpart after repair; deleting so it cannot resurrect",
        )
        if not dry_run:
            store.delete(key)

    if not dry_run:
        swept = store.sweep_blobs()
        if swept:
            report.act(
                "sweep-orphan-blobs",
                store.root,
                f"deleted {swept} blob(s) no committed manifest references",
            )
