"""The PLFS read path: global index construction and scatter-gather reads.

Reading a PLFS file requires merging every index dropping into a global
index (overlaps resolved by recency), then servicing each read as a series
of ``pread`` calls into the data droppings named by the plan.  This is the
"reorder on read" half of the log-structured design: writes were laid down
sequentially, so reads pay the reassembly cost.

The fast lane (:mod:`repro.plfs.cache`) takes most of that cost off the
hot path: handles without a writer overlay share one epoch-validated
global index per container (loaded from the persistent compacted
``global.index`` when fresh), and read plans coalesce physically-adjacent
slices of one dropping into single preads — the noncontiguous-access
optimisation of Thakur et al. applied at the container layer.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict

from . import constants
from .cache import shared_cache
from .container import Container
from .errors import CorruptIndexError
from .index import GlobalIndex, ReadSlice, load_global_index
from .writer import WriteFile


def coalesce_plan(
    plan: list[ReadSlice], *, gap: int = constants.READ_COALESCE_GAP
) -> list[list[ReadSlice]]:
    """Group logically-consecutive plan slices serviceable by one pread.

    Two adjacent slices merge when they read the same data dropping and
    the second starts within *gap* bytes past the first's physical end —
    exact adjacency (the per-record fragmentation interleaved sequential
    writers produce) or a small gap worth reading through and discarding
    (data sieving).  Holes never merge.
    """
    groups: list[list[ReadSlice]] = []
    current: list[ReadSlice] = []
    for piece in plan:
        if current:
            prev = current[-1]
            if (
                not piece.is_hole
                and not prev.is_hole
                and piece.dropping == prev.dropping
                and 0
                <= piece.physical_offset - (prev.physical_offset + prev.length)
                <= gap
            ):
                current.append(piece)
                continue
            groups.append(current)
        current = [piece]
    if current:
        groups.append(current)
    return groups


class ReadFile:
    """Read handle on a container.

    The global index is built lazily on first read and invalidated with
    :meth:`refresh` (e.g. after a same-process writer syncs).  If *writer*
    is supplied, its unflushed in-memory records are merged in so that a
    handle opened O_RDWR sees its own writes immediately — the same
    guarantee plfs_read gives through the C API.

    Handles without a writer overlay share their index through the
    process-wide :class:`~repro.plfs.cache.IndexCache`; every handle also
    remembers the cache *generation* its index was built at, so a flush
    from any other handle in the process (which bumps the generation) is
    picked up on the next read without re-stating the container.

    Data-dropping descriptors are cached in a bounded LRU
    (*fd_cache_limit*, default :data:`constants.FD_CACHE_LIMIT`): wide
    containers hold one dropping per writing rank, and an unbounded cache
    exhausts ``RLIMIT_NOFILE``.
    """

    def __init__(
        self,
        container: Container,
        *,
        writer: WriteFile | None = None,
        fd_cache_limit: int | None = None,
        coalesce: bool = True,
        use_shared_cache: bool = True,
    ):
        self.container = container
        self._writer = writer
        self._index: GlobalIndex | None = None
        self._data_paths: list[str] = []
        self._fd_cache: OrderedDict[int, int] = OrderedDict()
        self._fd_last_use: dict[int, float] = {}
        self._fd_limit = (
            constants.FD_CACHE_LIMIT if fd_cache_limit is None else max(1, fd_cache_limit)
        )
        self._coalesce = coalesce
        self._use_shared_cache = use_shared_cache
        self._generation: int | None = None
        self._gen_token: tuple[int, int] | None = None
        self._closed = False
        #: read-path counters (surfaced into repro.insights profiles)
        self.stats = {
            "index_builds": 0,
            "preads": 0,
            "coalesced_slices": 0,
            "bytes_read": 0,
            "sieved_gap_bytes": 0,
            "cross_process_refreshes": 0,
            "fds_reaped": 0,
        }

    # ------------------------------------------------------------------ #
    # index lifecycle
    # ------------------------------------------------------------------ #

    def _build_index(self) -> None:
        self.stats["index_builds"] += 1
        self._gen_token = self.container.generation_token()
        cache = shared_cache()
        if self._writer is None and self._use_shared_cache:
            loaded, generation = cache.get(self.container)
            self._index, self._data_paths = loaded.index, loaded.data_paths
            self._generation = generation
            return
        extra: list = []
        if self._writer is not None:
            # Make sure on-disk index droppings are complete, then overlay
            # anything still buffered (nothing, after flush — but a writer
            # may be actively appending between our flush and read).
            self._writer.flush_indexes()
        droppings = self.container.droppings()
        if self._writer is not None:
            path_to_id = {data: i for i, (_, data) in enumerate(droppings)}
            for recs, data_path in self._writer.pending_records():
                gid = path_to_id.get(data_path)
                if gid is None:
                    droppings.append(("", data_path))
                    gid = len(droppings) - 1
                    path_to_id[data_path] = gid
                extra.append((recs, gid))
        self._index, self._data_paths = load_global_index(droppings, extra)
        self._generation = cache.generation(self.container.path)

    def refresh(self) -> None:
        """Invalidate the cached global index (picks up new droppings)."""
        self._index = None
        self._generation = None
        self._drop_fds()

    def _revalidate(self) -> None:
        """Rebuild the index if any handle flushed writes since ours was
        built — in this process (generation bump, one dict lookup) or in
        another one (generation-file token change, one ``stat``)."""
        if self._index is None or self._generation is None:
            return
        if shared_cache().generation(self.container.path) != self._generation:
            self.refresh()
            return
        token = self.container.generation_token()
        if token != self._gen_token:
            # A writer in another process bumped the container's
            # generation file; the in-process cache entry it cannot reach
            # must be dropped too, or _build_index would serve it back.
            self.stats["cross_process_refreshes"] += 1
            shared_cache().invalidate(self.container.path)
            self.refresh()

    @property
    def index(self) -> GlobalIndex:
        if self._index is None:
            self._build_index()
        assert self._index is not None
        return self._index

    def logical_size(self) -> int:
        self._revalidate()
        return self.index.logical_size

    # ------------------------------------------------------------------ #
    # data access
    # ------------------------------------------------------------------ #

    def _fd_for(self, dropping: int) -> int:
        cache = self._fd_cache
        fd = cache.get(dropping)
        if fd is not None:
            cache.move_to_end(dropping)
            self._fd_last_use[dropping] = time.monotonic()
            return fd
        fd = os.open(self._data_paths[dropping], os.O_RDONLY)
        cache[dropping] = fd
        self._fd_last_use[dropping] = time.monotonic()
        while len(cache) > self._fd_limit:
            key, evicted = cache.popitem(last=False)
            self._fd_last_use.pop(key, None)
            try:
                os.close(evicted)
            except OSError:  # pragma: no cover - defensive
                pass
        return fd

    def reap_idle_fds(self, idle_seconds: float, *, now: float | None = None) -> int:
        """Close cached descriptors unused for at least *idle_seconds*.

        A long-lived handle (a daemon's, or any reader a process keeps
        open across idle hours) must not pin one kernel fd per data
        dropping forever — the LRU only bounds the *count*, not the
        *lifetime*.  The handle stays fully usable: a later read
        transparently reopens what it needs.  Returns fds closed;
        ``idle_seconds=0`` empties the cache unconditionally.
        """
        if now is None:
            now = time.monotonic()
        reaped = 0
        for dropping in list(self._fd_cache):
            if now - self._fd_last_use.get(dropping, now) < idle_seconds:
                continue
            fd = self._fd_cache.pop(dropping)
            self._fd_last_use.pop(dropping, None)
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - defensive
                pass
            reaped += 1
        self.stats["fds_reaped"] += reaped
        return reaped

    def _drop_fds(self) -> None:
        """Close every cached descriptor, tolerating individual failures
        (a single bad close must not strand the rest open)."""
        while self._fd_cache:
            key, fd = self._fd_cache.popitem()
            self._fd_last_use.pop(key, None)
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - defensive
                pass

    def _short_read(self, piece: ReadSlice, got: int) -> CorruptIndexError:
        return CorruptIndexError(
            f"short read from dropping {self._data_paths[piece.dropping]}: "
            f"wanted {piece.length} at {piece.physical_offset}, got {got}"
        )

    def _read_group(self, group: list[ReadSlice], out: list[bytes]) -> None:
        """Service one coalesced group with a single pread, then carve the
        span back into the group's logical pieces."""
        first, last = group[0], group[-1]
        if first.is_hole:
            out.append(b"\x00" * first.length)
            return
        fd = self._fd_for(first.dropping)
        span_start = first.physical_offset
        span_len = last.physical_offset + last.length - span_start
        data = os.pread(fd, span_len, span_start)
        self.stats["preads"] += 1
        self.stats["coalesced_slices"] += len(group) - 1
        if len(group) == 1:
            if len(data) < first.length:
                raise self._short_read(first, len(data))
            self.stats["bytes_read"] += len(data)
            out.append(data)
            return
        view = memoryview(data)
        for piece in group:
            lo = piece.physical_offset - span_start
            hi = lo + piece.length
            if hi > len(data):
                raise self._short_read(piece, max(0, len(data) - lo))
            out.append(bytes(view[lo:hi]))
            self.stats["bytes_read"] += piece.length
        self.stats["sieved_gap_bytes"] += span_len - sum(p.length for p in group)

    def _read_slice(self, piece: ReadSlice) -> bytes:
        if piece.is_hole:
            return b"\x00" * piece.length
        fd = self._fd_for(piece.dropping)
        data = os.pread(fd, piece.length, piece.physical_offset)
        self.stats["preads"] += 1
        if len(data) < piece.length:
            # The index promised bytes the data dropping does not hold.
            raise self._short_read(piece, len(data))
        self.stats["bytes_read"] += len(data)
        return data

    def read(self, count: int, offset: int) -> bytes:
        """Read up to *count* bytes at *offset*; b"" at or past EOF."""
        if self._closed:
            raise ValueError("read on closed ReadFile")
        self._revalidate()
        plan = self.index.query(offset, count)
        if not plan:
            return b""
        if len(plan) == 1:
            return self._read_slice(plan[0])
        if not self._coalesce:
            return b"".join(self._read_slice(p) for p in plan)
        out: list[bytes] = []
        for group in coalesce_plan(plan):
            self._read_group(group, out)
        return b"".join(out)

    def read_into(self, buf, offset: int) -> int:
        """Fill *buf* (a writable buffer) from *offset*; returns bytes read."""
        view = memoryview(buf)
        data = self.read(len(view), offset)
        view[: len(data)] = data
        return len(data)

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release cached descriptors.  Idempotent and exception-safe: a
        handle abandoned after a mid-plan :class:`CorruptIndexError` (or
        closed twice) never strands descriptors open."""
        if self._closed:
            return
        self._closed = True
        self._drop_fds()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ReadFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        # Last-resort fd hygiene, mirroring the failed-open cleanup: a
        # caller that abandons the handle after an error still must not
        # leak descriptors.
        try:
            self.close()
        except Exception:
            pass


def logical_size(container: Container) -> int:
    """Compute a container's logical size through the shared index cache.

    Used by ``getattr`` when no trustworthy cached metadata exists;
    repeated ``stat`` calls against an unchanged container hit the cache
    instead of rebuilding the global index each time.
    """
    loaded, _ = shared_cache().get(container)
    return loaded.index.logical_size
