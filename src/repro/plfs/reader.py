"""The PLFS read path: global index construction and scatter-gather reads.

Reading a PLFS file requires merging every index dropping into a global
index (overlaps resolved by recency), then servicing each read as a series
of ``pread`` calls into the data droppings named by the plan.  This is the
"reorder on read" half of the log-structured design: writes were laid down
sequentially, so reads pay the reassembly cost.
"""

from __future__ import annotations

import os

from .container import Container
from .errors import CorruptIndexError
from .index import GlobalIndex, ReadSlice, load_global_index
from .writer import WriteFile


class ReadFile:
    """Read handle on a container.

    The global index is built lazily on first read and invalidated with
    :meth:`refresh` (e.g. after a same-process writer syncs).  If *writer*
    is supplied, its unflushed in-memory records are merged in so that a
    handle opened O_RDWR sees its own writes immediately — the same
    guarantee plfs_read gives through the C API.
    """

    def __init__(self, container: Container, *, writer: WriteFile | None = None):
        self.container = container
        self._writer = writer
        self._index: GlobalIndex | None = None
        self._data_paths: list[str] = []
        self._fd_cache: dict[int, int] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    # index lifecycle
    # ------------------------------------------------------------------ #

    def _build_index(self) -> None:
        droppings = self.container.droppings()
        extra: list = []
        if self._writer is not None:
            # Make sure on-disk index droppings are complete, then overlay
            # anything still buffered (nothing, after flush — but a writer
            # may be actively appending between our flush and read).
            self._writer.flush_indexes()
            path_to_id = {data: i for i, (_, data) in enumerate(droppings)}
            for recs, data_path in self._writer.pending_records():
                gid = path_to_id.get(data_path)
                if gid is None:
                    droppings.append(("", data_path))
                    gid = len(droppings) - 1
                    path_to_id[data_path] = gid
                extra.append((recs, gid))
        self._index, self._data_paths = load_global_index(droppings, extra)

    def refresh(self) -> None:
        """Invalidate the cached global index (picks up new droppings)."""
        self._index = None
        for fd in self._fd_cache.values():
            os.close(fd)
        self._fd_cache.clear()

    @property
    def index(self) -> GlobalIndex:
        if self._index is None:
            self._build_index()
        assert self._index is not None
        return self._index

    def logical_size(self) -> int:
        return self.index.logical_size

    # ------------------------------------------------------------------ #
    # data access
    # ------------------------------------------------------------------ #

    def _fd_for(self, dropping: int) -> int:
        fd = self._fd_cache.get(dropping)
        if fd is None:
            fd = os.open(self._data_paths[dropping], os.O_RDONLY)
            self._fd_cache[dropping] = fd
        return fd

    def _read_slice(self, piece: ReadSlice) -> bytes:
        if piece.is_hole:
            return b"\x00" * piece.length
        fd = self._fd_for(piece.dropping)
        data = os.pread(fd, piece.length, piece.physical_offset)
        if len(data) < piece.length:
            # The index promised bytes the data dropping does not hold.
            raise CorruptIndexError(
                f"short read from dropping {self._data_paths[piece.dropping]}: "
                f"wanted {piece.length} at {piece.physical_offset}, got {len(data)}"
            )
        return data

    def read(self, count: int, offset: int) -> bytes:
        """Read up to *count* bytes at *offset*; b"" at or past EOF."""
        if self._closed:
            raise ValueError("read on closed ReadFile")
        plan = self.index.query(offset, count)
        if not plan:
            return b""
        if len(plan) == 1:
            return self._read_slice(plan[0])
        return b"".join(self._read_slice(p) for p in plan)

    def read_into(self, buf, offset: int) -> int:
        """Fill *buf* (a writable buffer) from *offset*; returns bytes read."""
        view = memoryview(buf)
        data = self.read(len(view), offset)
        view[: len(data)] = data
        return len(data)

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        if self._closed:
            return
        for fd in self._fd_cache.values():
            os.close(fd)
        self._fd_cache.clear()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed


def logical_size(container: Container) -> int:
    """Compute a container's logical size by building its global index.

    Used by ``getattr`` when no trustworthy cached metadata exists.
    """
    index, _ = load_global_index(container.droppings())
    return index.logical_size
