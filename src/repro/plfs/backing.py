"""Backing-store indirection: the PLFS library's persistence surface.

Every byte the PLFS implementation persists — data-dropping appends,
index-dropping flushes, write-ahead index records, meta droppings — flows
through the :class:`BackingStore` installed here.  The default store calls
straight into ``os``; the fault-injection layer (:mod:`repro.faults`)
installs a wrapping store that can drop, shorten, tear or error any of
these operations deterministically, which is how the crash-consistency
suite drives every fault in the matrix without patching library internals.

The indirection is deliberately narrow: only operations whose *failure
mid-flight* leaves a container in a state ``repro-fsck`` must reason about
are routed here.  Reads, directory listings and unlinks stay direct — a
failed read corrupts nothing.
"""

from __future__ import annotations

import os
import threading


class BackingStore:
    """Default persistence operations (direct ``os`` calls).

    Subclass and :func:`install` to interpose.  Each method carries the
    *path* of the file being touched purely as context for wrappers; the
    default implementations ignore it.
    """

    def write_data(self, fd: int, buf, path: str) -> int:
        """Append *buf* to an open data dropping; returns bytes written."""
        return os.write(fd, buf)

    def write_datav(self, fd: int, buffers, path: str) -> int:
        """Vectored append to an open data dropping; returns bytes written.

        One gather write for a whole iovec (the ``writev``/``pwritev``
        fast path), falling back to sequential writes where ``os.writev``
        is unavailable.  A short write stops the sequence — callers treat
        the return exactly like a short :meth:`write_data`.
        """
        if hasattr(os, "writev"):
            return os.writev(fd, list(buffers))
        total = 0
        for buf in buffers:
            n = os.write(fd, buf)
            total += n
            if n < len(buf):
                break
        return total

    def append_index(self, path: str, payload: bytes) -> int:
        """Append packed index records to an index dropping."""
        with open(path, "ab") as fh:
            return fh.write(payload)

    def write_wal(self, fd: int, payload: bytes, path: str) -> int:
        """Append one packed record to a write-ahead index dropping."""
        return os.write(fd, payload)

    def create_meta(self, path: str) -> None:
        """Create one (empty) meta dropping."""
        with open(path, "w"):
            pass

    def write_global_index(self, path: str, payload: bytes) -> None:
        """Atomically replace the persistent compacted global index.

        Write-then-rename so no reader ever observes a half-written file;
        a crash before the rename leaves only an invisible temporary (the
        previous compacted index, if any, stays intact).  The temporary
        lives in the container root under a name neither dropping
        enumeration nor compacted-index loading picks up; ``repro-fsck``
        sweeps leftovers.
        """
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            fh.write(payload)
        os.replace(tmp, path)

    def fsync(self, fd: int) -> None:
        os.fsync(fd)

    # ------------------------------------------------------------------ #
    # object-store layer (repro.plfs.objectstore)
    # ------------------------------------------------------------------ #
    #
    # The object backend routes its blob and manifest commits through the
    # installed store so the fault injector can fail them the same way it
    # fails dropping appends: a lost PUT, a torn multipart part, a crash
    # between the blob landing and the key commit.  For the default store
    # these are plain atomic file operations; *key* rides along purely as
    # context for wrappers (the path already encodes the physical target).

    def put_blob(self, path: str, payload: bytes, key: str) -> int:
        """Atomically commit one immutable content-addressed blob.

        Write-then-rename: a crash mid-write leaves only an invisible
        temporary (swept by ``repro-fsck``'s object reconcile pass), never
        a half-written blob under its content hash.
        """
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            n = fh.write(payload)
        os.replace(tmp, path)
        return n

    def write_part(self, fd: int, payload: bytes, path: str) -> int:
        """Append one multipart-upload part to its staging file."""
        return os.write(fd, payload)

    def commit_key(self, path: str, payload: bytes, key: str) -> None:
        """Atomically commit the key manifest that makes an object visible.

        This is the object store's linearization point: until the rename,
        the object does not exist no matter how many blob bytes landed.
        """
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            fh.write(payload)
        os.replace(tmp, path)

    def get_object(self, path: str, key: str) -> bytes:
        """Read one committed blob back (the restore / fault-in path).

        Reads normally stay out of the backing surface, but a GET that
        returns wrong bytes *does* corrupt: the tier materializes its
        result as a local dropping other readers then trust.  Routing it
        here lets the injector model a corrupt or vanished object, and the
        store's etag check turn that into a detected error.
        """
        with open(path, "rb") as fh:
            return fh.read()


_lock = threading.Lock()
_current = BackingStore()


def current() -> BackingStore:
    """The installed backing store (default: direct ``os`` calls)."""
    return _current


def install(store: BackingStore) -> BackingStore:
    """Install *store*, returning the previously installed one."""
    global _current
    with _lock:
        previous = _current
        _current = store
        return previous


def reset() -> BackingStore:
    """Restore the default store (used by test teardown)."""
    return install(BackingStore())
