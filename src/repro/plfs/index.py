"""PLFS index records, droppings and the global (flattened) index.

Every write into a PLFS container appends the payload to a *data dropping*
and one fixed-size record to the sibling *index dropping*.  A record maps a
logical extent of the file onto a physical extent of one data dropping:

    [logical_offset, logical_offset + length)
        -> data dropping ``dropping`` at [physical_offset, physical_offset + length)

Reads require the *global index*: the union of all records from all index
droppings, with overlaps resolved in favour of the most recent write (by the
record's completion timestamp).  This module stores records as a NumPy
structured array, resolves overlaps with a sweep over an ordered extent map,
and answers range queries with ``np.searchsorted`` over the flattened,
non-overlapping extents — the vectorised formulation recommended by the
project's performance guides.
"""

from __future__ import annotations

import json
import os
from bisect import bisect_left, bisect_right
from dataclasses import dataclass

import numpy as np

from . import constants
from .errors import CorruptIndexError

#: On-disk/in-memory layout of one index record.  ``dropping`` is the id of
#: the data dropping *within one index dropping's scope* when on disk (always
#: 0 today: one index dropping describes exactly one data dropping, as in
#: PLFS); after loading, it is rewritten to a global dropping id.
INDEX_DTYPE = np.dtype(
    [
        ("logical_offset", "<u8"),
        ("physical_offset", "<u8"),
        ("length", "<u8"),
        ("dropping", "<i8"),
        ("pid", "<i8"),
        ("timestamp", "<f8"),
    ]
)

RECORD_SIZE = INDEX_DTYPE.itemsize


def pack_records(records: np.ndarray) -> bytes:
    """Serialise a structured record array to the on-disk byte format."""
    if records.dtype != INDEX_DTYPE:
        records = records.astype(INDEX_DTYPE)
    return records.tobytes()


def parse_records(data: bytes, *, source: str = "<memory>") -> np.ndarray:
    """Parse raw index dropping bytes into a structured record array.

    Raises :class:`CorruptIndexError` if the byte count is not a whole number
    of records.
    """
    if len(data) % RECORD_SIZE:
        raise CorruptIndexError(
            f"index dropping {source} is {len(data)} bytes, "
            f"not a multiple of the {RECORD_SIZE}-byte record size"
        )
    # Copy so the result owns its memory (the input buffer may be mmapped or
    # reused by the caller).
    return np.frombuffer(data, dtype=INDEX_DTYPE).copy()


def split_torn(data: bytes) -> tuple[np.ndarray, int]:
    """Parse as many whole records as *data* holds, tolerating a torn tail.

    A crash mid-flush (or mid-WAL-append) leaves an index dropping whose
    byte count is not a multiple of the record size; the prefix of whole
    records is still sound because records are appended atomically in
    memory and sequentially on disk.  Returns ``(records, torn_bytes)``
    where *torn_bytes* is the length of the discarded partial tail.
    """
    torn = len(data) % RECORD_SIZE
    whole = data[: len(data) - torn] if torn else data
    return np.frombuffer(whole, dtype=INDEX_DTYPE).copy(), torn


def clip_to_physical(records: np.ndarray, data_size: int) -> tuple[np.ndarray, int]:
    """Clip *records* to the bytes a data dropping actually holds.

    Recovery reconciliation: a record (from a WAL or an index dropping)
    may promise bytes past the end of its data dropping — the write was
    torn, or never happened before the crash.  Records are physically
    sequential within one dropping, so each record's true extent is
    bounded below by the next record's start and by *data_size*.  Returns
    ``(clipped_records, lost_bytes)`` where *lost_bytes* counts promised
    bytes that never reached the dropping.
    """
    if records.shape[0] == 0:
        return records, 0
    out = records.copy()
    lost = 0
    keep = np.ones(out.shape[0], dtype=bool)
    for i in range(out.shape[0]):
        start = int(out[i]["physical_offset"])
        promised = int(out[i]["length"])
        if i + 1 < out.shape[0]:
            bound = min(int(out[i + 1]["physical_offset"]), data_size)
        else:
            bound = data_size
        actual = max(0, min(promised, bound - start))
        if actual < promised:
            lost += promised - actual
        if actual == 0:
            keep[i] = False
        else:
            out[i]["length"] = actual
    return out[keep], lost


def read_index_dropping(path: str) -> np.ndarray:
    """Read and parse one index dropping file."""
    with open(path, "rb") as fh:
        return parse_records(fh.read(), source=path)


@dataclass(frozen=True)
class ReadSlice:
    """One contiguous piece of a read plan.

    ``dropping`` is a global data-dropping id, or :data:`constants.HOLE` for
    a region no write ever covered (reads back as zeros).
    """

    logical_offset: int
    length: int
    dropping: int
    physical_offset: int

    @property
    def is_hole(self) -> bool:
        return self.dropping == constants.HOLE


class ExtentMap:
    """Ordered map of non-overlapping logical extents.

    Supports "assign" semantics: inserting an extent overwrites any part of
    older extents it overlaps, splitting them as needed — exactly the
    resolution rule of the PLFS global index (later writes shadow earlier
    ones).  Backed by three parallel Python lists kept sorted by start
    offset; inserts are O(log n + k) for k displaced segments.
    """

    __slots__ = ("_starts", "_ends", "_payloads")

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []
        # payload = (dropping, physical_offset at segment start)
        self._payloads: list[tuple[int, int]] = []

    def __len__(self) -> int:
        return len(self._starts)

    def assign(self, start: int, end: int, dropping: int, physical_offset: int) -> None:
        """Map [start, end) to *dropping* at *physical_offset*, shadowing
        whatever was there before."""
        if end <= start:
            return
        starts, ends, payloads = self._starts, self._ends, self._payloads

        # Find the window of existing segments that overlap [start, end).
        # First segment whose end is > start:
        lo = bisect_right(ends, start)
        # First segment whose start is >= end:
        hi = bisect_left(starts, end, lo=lo)

        replacement_starts: list[int] = []
        replacement_ends: list[int] = []
        replacement_payloads: list[tuple[int, int]] = []

        if lo < hi:
            # Left fragment of the first overlapped segment survives.
            if starts[lo] < start:
                replacement_starts.append(starts[lo])
                replacement_ends.append(start)
                replacement_payloads.append(payloads[lo])
            # Right fragment of the last overlapped segment survives, with
            # its physical offset advanced by the clipped amount.
            last = hi - 1
            if ends[last] > end:
                drop, phys = payloads[last]
                replacement_starts.append(end)
                replacement_ends.append(ends[last])
                replacement_payloads.append((drop, phys + (end - starts[last])))

        # Insert the new segment in order.
        insert_at = len(replacement_starts) - (1 if replacement_starts and replacement_starts[-1] == end else 0)
        replacement_starts.insert(insert_at, start)
        replacement_ends.insert(insert_at, end)
        replacement_payloads.insert(insert_at, (dropping, physical_offset))

        starts[lo:hi] = replacement_starts
        ends[lo:hi] = replacement_ends
        payloads[lo:hi] = replacement_payloads

    def extent_end(self) -> int:
        """Logical size implied by the map (end of the last extent)."""
        return self._ends[-1] if self._ends else 0

    def segments(self) -> list[tuple[int, int, int, int]]:
        """All segments as (start, end, dropping, physical_offset) tuples."""
        return [
            (s, e, p[0], p[1])
            for s, e, p in zip(self._starts, self._ends, self._payloads)
        ]

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Segments as parallel NumPy arrays (starts, ends, droppings, phys)."""
        n = len(self._starts)
        starts = np.fromiter(self._starts, dtype=np.int64, count=n)
        ends = np.fromiter(self._ends, dtype=np.int64, count=n)
        drops = np.fromiter((p[0] for p in self._payloads), dtype=np.int64, count=n)
        phys = np.fromiter((p[1] for p in self._payloads), dtype=np.int64, count=n)
        return starts, ends, drops, phys


class GlobalIndex:
    """The flattened, queryable index of one logical PLFS file.

    Built from any number of record arrays (one per index dropping, plus any
    not-yet-flushed in-memory records of open writers).  Records are merged
    in timestamp order so later writes shadow earlier ones, then frozen into
    sorted NumPy arrays for O(log n) range queries.
    """

    def __init__(self, record_arrays: list[np.ndarray] | None = None):
        self._map = ExtentMap()
        self._frozen: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = None
        if record_arrays:
            self.add_records(np.concatenate(record_arrays) if len(record_arrays) > 1 else record_arrays[0])

    @classmethod
    def from_flat_segments(
        cls,
        starts: np.ndarray,
        ends: np.ndarray,
        droppings: np.ndarray,
        physical_offsets: np.ndarray,
    ) -> "GlobalIndex":
        """Build directly from already-flattened, sorted, non-overlapping
        segments (a compacted global index), skipping the merge sweep.

        The caller guarantees the invariants the sweep would otherwise
        establish; nothing here re-checks them beyond monotonicity.
        """
        idx = cls()
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        droppings = np.asarray(droppings, dtype=np.int64)
        physical_offsets = np.asarray(physical_offsets, dtype=np.int64)
        if starts.size and (
            np.any(starts[1:] < ends[:-1]) or np.any(ends <= starts)
        ):
            raise CorruptIndexError(
                "compacted segments are not sorted and non-overlapping"
            )
        m = idx._map
        m._starts = starts.tolist()
        m._ends = ends.tolist()
        m._payloads = list(zip(droppings.tolist(), physical_offsets.tolist()))
        idx._frozen = (starts, ends, droppings, physical_offsets)
        return idx

    def add_records(self, records: np.ndarray) -> None:
        """Merge *records* (with global dropping ids) into the index."""
        if records.size == 0:
            return
        self._frozen = None
        # Stable sort by completion timestamp: later records must be applied
        # last so they shadow earlier ones.  kind="stable" preserves the
        # append order of records with equal timestamps from one dropping.
        order = np.argsort(records["timestamp"], kind="stable")
        recs = records[order]
        assign = self._map.assign
        lo = recs["logical_offset"].astype(np.int64)
        ln = recs["length"].astype(np.int64)
        po = recs["physical_offset"].astype(np.int64)
        dr = recs["dropping"]
        for i in range(recs.shape[0]):
            assign(int(lo[i]), int(lo[i] + ln[i]), int(dr[i]), int(po[i]))

    def _arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        if self._frozen is None:
            self._frozen = self._map.as_arrays()
        return self._frozen

    @property
    def logical_size(self) -> int:
        """Size of the logical file: one past the last written byte."""
        return self._map.extent_end()

    def __len__(self) -> int:
        return len(self._map)

    def query(self, offset: int, length: int) -> list[ReadSlice]:
        """Plan a read of [offset, offset+length).

        Returns contiguous :class:`ReadSlice` pieces covering the requested
        range up to the logical file size; regions never written are returned
        as holes.  The plan never extends past ``logical_size`` (a read at or
        beyond EOF returns an empty plan, mirroring ``read(2)``).
        """
        if length <= 0:
            return []
        size = self.logical_size
        if offset >= size:
            return []
        end = min(offset + length, size)

        starts, ends, drops, phys = self._arrays()
        # Batched lookup: locate the whole window of overlapping segments
        # with two bisections, clip them against [offset, end) vectorised,
        # and convert to Python ints in bulk — the per-slice loop below
        # only assembles ReadSlice objects and interleaves holes.
        lo = int(np.searchsorted(ends, offset, side="right"))
        hi = int(np.searchsorted(starts, end, side="left"))
        clip_s = np.maximum(starts[lo:hi], offset).tolist()
        clip_e = np.minimum(ends[lo:hi], end).tolist()
        adj_p = (phys[lo:hi] + (np.maximum(starts[lo:hi], offset) - starts[lo:hi])).tolist()
        drop_l = drops[lo:hi].tolist()

        plan: list[ReadSlice] = []
        pos = offset
        for s, e, d, p in zip(clip_s, clip_e, drop_l, adj_p):
            if s > pos:
                plan.append(ReadSlice(pos, s - pos, constants.HOLE, 0))
            plan.append(ReadSlice(s, e - s, d, p))
            pos = e
        if pos < end:
            plan.append(ReadSlice(pos, end - pos, constants.HOLE, 0))
        return plan

    def segments(self) -> list[tuple[int, int, int, int]]:
        """Expose the flattened extents (for compaction and inspection)."""
        return self._map.segments()


def load_global_index(
    droppings: list[tuple[str, str]],
    extra_records: list[tuple[np.ndarray, int]] | None = None,
) -> tuple[GlobalIndex, list[str]]:
    """Build a :class:`GlobalIndex` from container droppings.

    ``droppings`` is a list of (index_path, data_path) pairs; ``data_path``
    receives global dropping id = its position in the returned list.
    ``extra_records`` optionally supplies in-memory record arrays (from open
    writers) already tagged with a data path index into the same list via the
    accompanying int.

    Returns (index, data_paths) where ``data_paths[i]`` is the file to pread
    for slices with ``dropping == i``.
    """
    arrays: list[np.ndarray] = []
    data_paths: list[str] = []
    for global_id, (index_path, data_path) in enumerate(droppings):
        data_paths.append(data_path)
        if not os.path.exists(index_path):
            continue
        recs = read_index_dropping(index_path)
        if recs.size:
            recs["dropping"] = global_id
            arrays.append(recs)
    if extra_records:
        for recs, global_id in extra_records:
            if recs.size:
                recs = recs.copy()
                recs["dropping"] = global_id
                arrays.append(recs)
    return GlobalIndex(arrays), data_paths


# ---------------------------------------------------------------------- #
# persistent compacted global index
# ---------------------------------------------------------------------- #

def pack_compacted(
    segments: list[tuple[int, int, int, int]],
    data_paths: list[str],
    epoch: str,
    logical_size: int,
) -> bytes:
    """Serialise a flattened global index to the ``global.index`` format.

    Layout: one JSON header line (magic, version, container epoch, record
    count, data-dropping paths relative to the container root, logical
    size), then ``records`` packed :data:`INDEX_DTYPE` entries holding the
    non-overlapping segments sorted by logical offset.  ``pid`` and
    ``timestamp`` are zeroed: a compacted index has no recency to resolve.
    """
    recs = np.zeros(len(segments), dtype=INDEX_DTYPE)
    for i, (start, end, dropping, phys) in enumerate(segments):
        recs[i]["logical_offset"] = start
        recs[i]["length"] = end - start
        recs[i]["dropping"] = dropping
        recs[i]["physical_offset"] = phys
    header = json.dumps(
        {
            "magic": constants.GLOBAL_INDEX_MAGIC,
            "version": constants.GLOBAL_INDEX_VERSION,
            "epoch": epoch,
            "records": len(segments),
            "data_paths": list(data_paths),
            "logical_size": logical_size,
        },
        sort_keys=True,
    )
    return header.encode() + b"\n" + pack_records(recs)


def parse_compacted(
    data: bytes, *, source: str = "<memory>"
) -> tuple[np.ndarray, list[str], str, int]:
    """Parse a compacted global index; the inverse of :func:`pack_compacted`.

    Returns ``(records, data_paths, epoch, logical_size)``.  Raises
    :class:`CorruptIndexError` on any malformation — callers treat that as
    "no compacted index" and fall back to merging droppings.
    """
    head, sep, body = data.partition(b"\n")
    if not sep:
        raise CorruptIndexError(f"compacted index {source}: missing header")
    try:
        header = json.loads(head.decode())
    except (UnicodeDecodeError, ValueError) as exc:
        raise CorruptIndexError(
            f"compacted index {source}: unparsable header ({exc})"
        ) from None
    if (
        not isinstance(header, dict)
        or header.get("magic") != constants.GLOBAL_INDEX_MAGIC
        or header.get("version") != constants.GLOBAL_INDEX_VERSION
    ):
        raise CorruptIndexError(
            f"compacted index {source}: bad magic or unsupported version"
        )
    count = header.get("records")
    paths = header.get("data_paths")
    epoch = header.get("epoch")
    size = header.get("logical_size", 0)
    if (
        not isinstance(count, int)
        or not isinstance(paths, list)
        or not all(isinstance(p, str) for p in paths)
        or not isinstance(epoch, str)
        or not isinstance(size, int)
    ):
        raise CorruptIndexError(f"compacted index {source}: malformed header")
    if len(body) != count * RECORD_SIZE:
        raise CorruptIndexError(
            f"compacted index {source}: body is {len(body)} bytes, "
            f"expected {count} records of {RECORD_SIZE} bytes"
        )
    records = parse_records(body, source=source)
    if records.size and int(records["dropping"].max()) >= len(paths):
        raise CorruptIndexError(
            f"compacted index {source}: record references a dropping id "
            "past the data-path table"
        )
    return records, paths, epoch, size


def index_from_compacted(records: np.ndarray) -> GlobalIndex:
    """Rehydrate a :class:`GlobalIndex` from compacted records."""
    starts = records["logical_offset"].astype(np.int64)
    ends = starts + records["length"].astype(np.int64)
    return GlobalIndex.from_flat_segments(
        starts, ends, records["dropping"].astype(np.int64),
        records["physical_offset"].astype(np.int64),
    )


def make_record(
    logical_offset: int,
    physical_offset: int,
    length: int,
    pid: int,
    timestamp: float,
    dropping: int = 0,
) -> np.ndarray:
    """Build a single-record array (convenience for writers and tests)."""
    rec = np.zeros(1, dtype=INDEX_DTYPE)
    rec["logical_offset"] = logical_offset
    rec["physical_offset"] = physical_offset
    rec["length"] = length
    rec["dropping"] = dropping
    rec["pid"] = pid
    rec["timestamp"] = timestamp
    return rec
