"""The read-path fast lane: compacted-index loading and the process-wide
shared index cache.

Opening a PLFS file for reading requires the *global index* — the merge of
every per-writer index dropping.  Paying that merge on every open is the
worst-case log-structured tax the paper's benchmarks (unixtools, BT read
phases) hit hardest, because those workloads re-open and re-stat the same
container over and over.  This module removes the tax twice over:

1. **Persistent compacted global index** — on clean close (and via
   ``repro-plfs compact``) the merged index is flattened into a single
   ``global.index`` file in the container root.  :func:`load_index` loads
   it back with one read + one NumPy parse instead of re-merging N
   droppings.  The file carries the *container epoch* it was built at
   (:meth:`~repro.plfs.container.Container.index_epoch`); a mismatch —
   any dropping added, appended or repaired since — silently re-routes to
   the slow merge path.  The compacted index is a cache, never an
   authority: ``repro-fsck`` deletes it rather than trusting it.

2. **Shared index cache** — a process-wide, capacity-bounded LRU keyed by
   container path, revalidated by epoch on every hit, so repeated opens
   and ``stat`` calls against an unchanged container reuse one
   :class:`~repro.plfs.index.GlobalIndex` instead of rebuilding identical
   ones.  The write path invalidates explicitly (cheap generation bump)
   whenever it flushes records to disk, which lets same-process read
   handles notice cross-handle flushes without any syscalls.

Thread-safety: all cache state is guarded by one lock; index construction
runs outside it (two racing builders do redundant work, never corrupt).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

from . import backing, constants
from .container import Container
from .errors import CorruptIndexError
from .index import (
    GlobalIndex,
    index_from_compacted,
    load_global_index,
    pack_compacted,
    parse_compacted,
)


@dataclass
class LoadedIndex:
    """One global index plus the context it was built in."""

    index: GlobalIndex
    #: ``data_paths[i]`` is the file to pread for slices with dropping == i
    data_paths: list[str]
    #: container epoch the index reflects
    epoch: str
    #: "compacted" (loaded from ``global.index``) or "merged" (slow path)
    source: str


def load_index(container: Container, *, epoch: str | None = None) -> LoadedIndex:
    """Build the container's global index, preferring the compacted file.

    The compacted ``global.index`` is used only when it parses *and* its
    recorded epoch matches the container's current one; any staleness or
    corruption falls back to merging the per-writer index droppings — the
    compacted file is an accelerator, never a source of truth.
    """
    droppings = container.droppings()
    if epoch is None:
        epoch = container.index_epoch(droppings)
    gpath = container.global_index_path()
    try:
        with open(gpath, "rb") as fh:
            raw = fh.read()
    except OSError:
        raw = None
    if raw is not None:
        try:
            records, rel_paths, file_epoch, _size = parse_compacted(
                raw, source=gpath
            )
        except CorruptIndexError:
            pass
        else:
            if file_epoch == epoch:
                index = index_from_compacted(records)
                data_paths = [
                    os.path.join(container.path, rel) for rel in rel_paths
                ]
                return LoadedIndex(index, data_paths, epoch, "compacted")
    index, data_paths = load_global_index(droppings)
    return LoadedIndex(index, data_paths, epoch, "merged")


def compact(container: Container) -> int:
    """Flatten the container's global index into ``global.index``.

    Returns the number of flattened segments persisted.  The write flows
    through the backing store (it is a persistence boundary the fault
    injector can tear) and replaces atomically, so a crash mid-compaction
    never leaves a reader-visible half-written file.
    """
    loaded = load_index(container)
    rel = [os.path.relpath(p, container.path) for p in loaded.data_paths]
    segments = loaded.index.segments()
    payload = pack_compacted(
        segments, rel, loaded.epoch, loaded.index.logical_size
    )
    backing.current().write_global_index(container.global_index_path(), payload)
    return len(segments)


# ---------------------------------------------------------------------- #
# the process-wide shared cache
# ---------------------------------------------------------------------- #


@dataclass
class _Entry:
    loaded: LoadedIndex
    generation: int


class IndexCache:
    """Epoch-validated LRU of global indexes, shared process-wide.

    ``get`` revalidates the cached epoch against the container on every
    call (two stats per dropping), so cross-process changes are always
    seen.  Same-process writers additionally bump a per-path *generation*
    counter via :meth:`invalidate` whenever they flush records; read
    handles remember the generation their index was built at and compare
    it (one dict lookup, no syscalls) before trusting a cached plan.
    """

    #: plfs-san registration (see repro.sanitize): field -> guarding lock
    _SANITIZE_SHARED = {"_entries": "_lock", "_generations": "_lock"}

    def __init__(self, capacity: int = constants.INDEX_CACHE_CAPACITY):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._generations: dict[str, int] = {}
        self.stats = {
            "hits": 0,
            "misses": 0,
            "stale_epoch_evictions": 0,
            "invalidations": 0,
            "compacted_loads": 0,
            "merged_builds": 0,
        }

    # -------------------------------------------------------------- #

    def generation(self, path: str) -> int:
        """Current invalidation generation for *path* (0 if never bumped)."""
        with self._lock:
            return self._generations.get(path, 0)

    def invalidate(self, path: str) -> None:
        """Explicit write-path invalidation: drop the entry and bump the
        generation so read handles holding the old index rebuild."""
        path = os.path.abspath(path)
        with self._lock:
            self._entries.pop(path, None)
            self._generations[path] = self._generations.get(path, 0) + 1
            self.stats["invalidations"] += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._generations.clear()

    def reset_stats(self) -> None:
        for key in self.stats:
            self.stats[key] = 0

    # -------------------------------------------------------------- #

    def get(
        self, container: Container, *, refresh: bool = False
    ) -> tuple[LoadedIndex, int]:
        """The container's global index plus the generation it is valid at.

        Serves from cache when the stored epoch still matches the
        container's current state; otherwise (or with *refresh*) rebuilds
        via :func:`load_index` and caches the result.
        """
        path = container.path
        epoch = container.index_epoch()
        with self._lock:
            entry = self._entries.get(path)
            if entry is not None and not refresh:
                if entry.loaded.epoch == epoch:
                    self._entries.move_to_end(path)
                    self.stats["hits"] += 1
                    return entry.loaded, entry.generation
                self._entries.pop(path, None)
                self.stats["stale_epoch_evictions"] += 1
            elif entry is not None:
                self._entries.pop(path, None)
        loaded = load_index(container, epoch=epoch)
        with self._lock:
            self.stats["misses"] += 1
            self.stats[
                "compacted_loads" if loaded.source == "compacted" else "merged_builds"
            ] += 1
            generation = self._generations.get(path, 0)
            self._entries[path] = _Entry(loaded, generation)
            self._entries.move_to_end(path)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return loaded, generation


_shared = IndexCache()


def shared_cache() -> IndexCache:
    """The process-wide cache instance."""
    return _shared


def invalidate(path: str) -> None:
    """Convenience: invalidate *path* in the shared cache."""
    _shared.invalidate(path)


def invalidate_cross_process(container: Container) -> None:
    """Write-path invalidation visible to *every* process.

    The in-process generation bump covers read handles sharing this
    cache; the container's generation file covers readers in other
    processes, which detect the fresh ``(inode, mtime_ns)`` token with a
    single ``stat`` in their revalidation path.
    """
    _shared.invalidate(container.path)
    container.bump_generation()
