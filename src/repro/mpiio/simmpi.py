"""Minimal MPI abstractions for the simulator: ranks and communicators.

Only what the I/O benchmarks need — rank→(node, proc) placement, barrier
cost, and the collective-buffering aggregator set (one aggregator per
compute node, the ROMIO default the paper's footnote 3 describes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class RankInfo:
    rank: int
    node: int
    proc: int  # process slot on the node


#: per-hop latency used for barrier/bcast cost estimates, seconds
HOP_LATENCY = 5e-6


class Communicator:
    """A set of MPI ranks placed block-wise onto nodes."""

    def __init__(self, nodes: int, ppn: int):
        if nodes < 1 or ppn < 1:
            raise ValueError("nodes and ppn must be >= 1")
        self.nodes = nodes
        self.ppn = ppn
        self.ranks = [
            RankInfo(rank=n * ppn + p, node=n, proc=p)
            for n in range(nodes)
            for p in range(ppn)
        ]

    @property
    def size(self) -> int:
        return len(self.ranks)

    def aggregators(self) -> list[RankInfo]:
        """One collective-buffering aggregator per node (proc 0)."""
        return [r for r in self.ranks if r.proc == 0]

    def ranks_on_node(self, node: int) -> list[RankInfo]:
        return [r for r in self.ranks if r.node == node]

    def barrier_cost(self) -> float:
        """Latency of a tree barrier across the communicator."""
        return HOP_LATENCY * max(1.0, math.log2(self.size)) if self.size > 1 else 0.0

    def bcast_cost(self, nbytes: float, bandwidth: float) -> float:
        """Latency of a tree broadcast of *nbytes*."""
        hops = max(1.0, math.log2(self.size))
        return hops * (HOP_LATENCY + nbytes / bandwidth)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Communicator(nodes={self.nodes}, ppn={self.ppn})"
