"""MPI-IO hints (the ROMIO knobs the paper's §II discusses).

The paper benchmarks with collective buffering "in its default
configuration" (one aggregator per node, footnote 3) and credits ROMIO's
collective buffering and data sieving as the key MPI-IO optimisations
LDPLFS can exploit that the raw PLFS API cannot.  This module models the
standard ROMIO hint set so those claims can be studied:

- ``cb_nodes`` — number of collective-buffering aggregators (ROMIO
  default: one per compute node);
- ``cb_buffer_size`` — each aggregator writes its collected data in
  chunks of this size (ROMIO default 16 MB);
- ``romio_cb_write`` / ``romio_cb_read`` — enable/disable two-phase
  collective buffering per direction (disabled = every rank moves its
  own piece independently);
- ``romio_ds_write`` / ``romio_ds_read`` — data sieving for
  non-contiguous independent access (read the covering extent, modify,
  write back one block / read one covering extent and scatter).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.stats import MB


@dataclass(frozen=True)
class MPIHints:
    """One MPI_Info's worth of I/O hints."""

    #: aggregator count; None = ROMIO default (one per node)
    cb_nodes: int | None = None
    #: aggregator write granularity, bytes
    cb_buffer_size: float = 16 * MB
    #: two-phase collective buffering on collective writes
    romio_cb_write: bool = True
    #: data sieving on strided independent writes
    romio_ds_write: bool = False
    #: two-phase collective buffering on collective reads
    romio_cb_read: bool = True
    #: data sieving on strided independent reads
    romio_ds_read: bool = False

    def __post_init__(self):
        if self.cb_nodes is not None and self.cb_nodes < 1:
            raise ValueError("cb_nodes must be >= 1")
        if self.cb_buffer_size <= 0:
            raise ValueError("cb_buffer_size must be positive")

    def aggregator_count(self, nodes: int) -> int:
        """Resolved aggregator count for a communicator on *nodes*."""
        if self.cb_nodes is None:
            return nodes
        return min(self.cb_nodes, nodes)


DEFAULT_HINTS = MPIHints()


def suggest_collective_hints(nodes: int, per_node_bytes: float) -> MPIHints:
    """A collective-buffering hint set for an uncollective strided writer.

    Used by the insights advisor (``repro.insights.rules``) when it spots
    independent strided writes: one aggregator per node (the ROMIO
    default the paper benchmarks with, footnote 3) and a buffer large
    enough to take a node's share of each round in one backend write,
    capped at 4x the ROMIO default so the hint stays realistic.
    """
    buffer_size = min(max(per_node_bytes, 16 * MB), 64 * MB)
    return MPIHints(cb_nodes=max(1, nodes), cb_buffer_size=buffer_size)
