"""``repro.mpiio`` — simulated MPI-IO stack.

Communicators, the four access methods the paper compares (plain MPI-IO,
PLFS-through-FUSE, PLFS-through-ROMIO, LDPLFS), and the MPI-IO file object
with ROMIO-style two-phase collective buffering.
"""

from .file import MPIIOSimFile
from .hints import DEFAULT_HINTS, MPIHints
from .methods import ALL_METHODS, BY_NAME, FUSE, LDPLFS, MPIIO, PLFS_METHODS, ROMIO, AccessMethod
from .simmpi import Communicator, RankInfo

__all__ = [
    "AccessMethod",
    "MPIIO",
    "FUSE",
    "ROMIO",
    "LDPLFS",
    "ALL_METHODS",
    "PLFS_METHODS",
    "BY_NAME",
    "Communicator",
    "RankInfo",
    "MPIIOSimFile",
    "MPIHints",
    "DEFAULT_HINTS",
]
