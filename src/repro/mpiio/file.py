"""The simulated MPI-IO file: collective and independent data paths.

Implements ROMIO-style two-phase collective buffering (gather each node's
data to its aggregator, aggregator issues one large backend write — the
configuration the paper benchmarks with) and the independent per-rank path
(what FLASH-IO's HDF5 writes do), over either a shared file (plain MPI-IO)
or a PLFS container (ROMIO driver / LDPLFS / FUSE), with the access
method's software costs applied.
"""

from __future__ import annotations

from typing import Generator

from repro.cluster.platform import Platform
from repro.fs.parallel import PosixClient, SharedFile
from repro.fs.plfssim import PlfsContainerSim
from repro.sim.engine import Environment

from .hints import DEFAULT_HINTS, MPIHints
from .methods import AccessMethod
from .simmpi import Communicator, RankInfo


class MPIIOSimFile:
    """One MPI file handle shared by a communicator."""

    def __init__(
        self,
        platform: Platform,
        method: AccessMethod,
        comm: Communicator,
        name: str = "output",
        *,
        hints: MPIHints = DEFAULT_HINTS,
        log_structured: bool = True,
        shared_sequential: bool = False,
    ):
        self.platform = platform
        self.env: Environment = platform.env
        self.method = method
        self.comm = comm
        self.name = name
        self.hints = hints
        self.perf = platform.perf
        #: ablation hook: pretend the shared file is written log-style
        self.shared_sequential = shared_sequential
        self._clients = {
            r.rank: PosixClient(platform, r.node, r.proc) for r in comm.ranks
        }
        if method.uses_plfs:
            self.container: PlfsContainerSim | None = PlfsContainerSim(
                platform, name, log_structured=log_structured
            )
            self.shared: SharedFile | None = None
        else:
            self.container = None
            self.shared = SharedFile(platform, name)
        self._write_offset = 0.0

    def client(self, rank: RankInfo) -> PosixClient:
        return self._clients[rank.rank]

    # ------------------------------------------------------------------ #
    # open / close (collective)
    # ------------------------------------------------------------------ #

    def open_all(self, *, for_read: bool = False) -> Generator:
        """Process: MPI_File_open across the communicator."""
        yield self.env.timeout(self.comm.barrier_cost())
        if self.container is not None:
            procs = []
            for rank in self.comm.ranks:
                op = (
                    self.container.open_read(self.client(rank))
                    if for_read
                    else self.container.register_open(self.client(rank))
                )
                procs.append(self.env.process(op))
            yield self.env.all_of(procs)
        else:
            # One metadata op for the shared file (rank 0 creates/stats).
            yield from self.platform.mds.op("shared_open", hash(self.name))
        yield self.env.timeout(self.comm.barrier_cost())

    def close_all(self) -> Generator:
        """Process: MPI_File_close (no data flush: caches stay dirty, as
        on the real machines — the paper's Fig. 4 depends on this)."""
        yield self.env.timeout(self.comm.barrier_cost())
        if self.container is not None:
            procs = [
                self.env.process(self.container.close_write(self.client(rank)))
                for rank in self.comm.ranks
            ]
            yield self.env.all_of(procs)
        else:
            self.shared.close()
        yield self.env.timeout(self.comm.barrier_cost())

    # ------------------------------------------------------------------ #
    # method-cost helpers
    # ------------------------------------------------------------------ #

    def _backend_write(
        self,
        client: PosixClient,
        offset: float,
        nbytes: float,
        *,
        cache_gate: float | None = None,
    ) -> Generator:
        """One application write call routed through the access method.

        *cache_gate* is the per-rank application write size (differs from
        *nbytes* for collectively buffered aggregator writes); it decides
        client-cache eligibility.  FUSE requests are synchronous round
        trips through the daemon (no writeback caching in 2012 kernels),
        so the FUSE route forces the gate above the threshold.
        """
        method = self.method
        if method.per_call_overhead:
            yield self.env.timeout(method.per_call_overhead)
        chunk_overhead = method.chunk_overhead(self.perf)
        if method.fuse_transport:
            cache_gate = float("inf")
        pos = offset
        for chunk in method.chunks(nbytes, self.perf):
            if chunk_overhead:
                yield self.env.timeout(chunk_overhead)
            if self.container is not None:
                yield from self.container.write(client, chunk, cache_gate=cache_gate)
            else:
                yield from client.write_shared(
                    self.shared, pos, chunk, sequential=self.shared_sequential
                )
            pos += chunk

    def _backend_read(self, client: PosixClient, offset: float, nbytes: float) -> Generator:
        method = self.method
        if method.per_call_overhead:
            yield self.env.timeout(method.per_call_overhead)
        chunk_overhead = method.chunk_overhead(self.perf)
        pos = offset
        for chunk in method.chunks(nbytes, self.perf):
            if chunk_overhead:
                yield self.env.timeout(chunk_overhead)
            if self.container is not None:
                yield from self.container.read_own(client, chunk)
            else:
                yield from client.read_shared(self.shared, pos, chunk)
            pos += chunk

    # ------------------------------------------------------------------ #
    # collective data path (two-phase collective buffering)
    # ------------------------------------------------------------------ #

    def _cb_aggregators(self) -> list[tuple[RankInfo, int]]:
        """(aggregator, nodes_covered) pairs per the cb_nodes hint.

        With the default (one aggregator per node) each covers its own
        node; with fewer aggregators each covers a contiguous node group
        and remote nodes' data crosses the network in phase 1.
        """
        per_node = self.comm.aggregators()
        count = self.hints.aggregator_count(self.comm.nodes)
        if count >= len(per_node):
            return [(agg, 1) for agg in per_node]
        stride = self.comm.nodes / count
        chosen: list[tuple[RankInfo, int]] = []
        boundaries = [round(i * stride) for i in range(count)] + [self.comm.nodes]
        for i in range(count):
            agg = per_node[boundaries[i]]
            chosen.append((agg, boundaries[i + 1] - boundaries[i]))
        return chosen

    def _aggregator_write(
        self,
        agg: RankInfo,
        node_bytes: float,
        offset: float,
        per_rank: float,
        nodes_covered: int = 1,
    ) -> Generator:
        perf = self.perf
        # Phase 1: gather the covered ranks' data to the aggregator:
        # shared-memory copies on its own node (plus the per-process
        # synchronisation the paper notes grows with ppn), NIC transfers
        # for data arriving from other nodes (cb_nodes < nodes).
        local_bytes = node_bytes / nodes_covered
        remote_bytes = node_bytes - local_bytes
        gather = (self.comm.ppn - 1) * perf.ppn_sync_overhead
        gather += local_bytes / perf.memcpy_bandwidth
        yield self.env.timeout(gather)
        if remote_bytes > 0:
            yield from self.platform.nic(agg.node).transfer(remote_bytes)
        # Phase 2: backend writes in cb_buffer_size chunks.  Cache
        # behaviour follows the application write size, not the buffer.
        pos = offset
        remaining = node_bytes
        while remaining > 0:
            chunk = min(self.hints.cb_buffer_size, remaining)
            yield from self._backend_write(
                self.client(agg), pos, chunk, cache_gate=per_rank
            )
            pos += chunk
            remaining -= chunk

    def write_at_all(self, bytes_per_rank: float) -> Generator:
        """Process: one collective write step (every rank contributes
        *bytes_per_rank*).  With collective buffering on (the default),
        aggregators write node-group-contiguous blocks; with it disabled
        every rank writes its own strided piece independently."""
        yield self.env.timeout(self.comm.barrier_cost() + self.perf.mpi_call_overhead)
        procs = []
        offset = self._write_offset
        if not self.hints.romio_cb_write:
            for rank in self.comm.ranks:
                procs.append(
                    self.env.process(
                        self._backend_write(
                            self.client(rank),
                            offset + rank.rank * bytes_per_rank,
                            bytes_per_rank,
                            cache_gate=bytes_per_rank,
                        )
                    )
                )
            self._write_offset = offset + bytes_per_rank * self.comm.size
        else:
            per_node_bytes = bytes_per_rank * self.comm.ppn
            for agg, covered in self._cb_aggregators():
                group_bytes = per_node_bytes * covered
                procs.append(
                    self.env.process(
                        self._aggregator_write(
                            agg, group_bytes, offset, bytes_per_rank, covered
                        )
                    )
                )
                offset += group_bytes
            self._write_offset = offset
        yield self.env.all_of(procs)
        yield self.env.timeout(self.comm.barrier_cost())

    def _aggregator_read(self, agg: RankInfo, node_bytes: float, offset: float) -> Generator:
        perf = self.perf
        yield from self._backend_read(self.client(agg), offset, node_bytes)
        # Scatter back to the node's processes.
        scatter = (self.comm.ppn - 1) * perf.ppn_sync_overhead
        scatter += node_bytes / perf.memcpy_bandwidth
        yield self.env.timeout(scatter)

    def read_at_all(self, bytes_per_rank: float, *, offset: float = 0.0) -> Generator:
        """Process: one collective read step.  Honors the same hints as
        :meth:`write_at_all`: with ``romio_cb_read`` off every rank reads
        its own piece independently; otherwise the ``cb_nodes`` aggregator
        set reads node-group-contiguous blocks and scatters."""
        yield self.env.timeout(self.comm.barrier_cost() + self.perf.mpi_call_overhead)
        procs = []
        pos = offset
        if not self.hints.romio_cb_read:
            for rank in self.comm.ranks:
                procs.append(
                    self.env.process(
                        self._backend_read(
                            self.client(rank),
                            offset + rank.rank * bytes_per_rank,
                            bytes_per_rank,
                        )
                    )
                )
        else:
            per_node_bytes = bytes_per_rank * self.comm.ppn
            for agg, covered in self._cb_aggregators():
                group_bytes = per_node_bytes * covered
                procs.append(
                    self.env.process(self._aggregator_read(agg, group_bytes, pos))
                )
                pos += group_bytes
        yield self.env.all_of(procs)
        yield self.env.timeout(self.comm.barrier_cost())

    # ------------------------------------------------------------------ #
    # independent data path (per rank, no aggregation)
    # ------------------------------------------------------------------ #

    def write_independent(self, rank: RankInfo, offset: float, nbytes: float) -> Generator:
        """Process: MPI_File_write (independent) from one rank."""
        yield from self._backend_write(self.client(rank), offset, nbytes)

    def write_strided_independent(
        self,
        rank: RankInfo,
        base_offset: float,
        record_size: float,
        stride: float,
        count: int,
    ) -> Generator:
        """Process: one rank updates *count* records of *record_size*
        bytes placed *stride* apart (an interleaved file view, the
        pattern of the paper's §II data-sieving discussion).

        With ``romio_ds_write`` enabled on a shared file, ROMIO sieves:
        read the covering extent, modify in memory, write it back as one
        block — two large operations instead of *count* small strided
        ones, "at the expense of locking a larger portion of the file".
        PLFS containers never sieve (appends are cheap regardless of the
        logical stride).
        """
        client = self.client(rank)
        if (
            self.hints.romio_ds_write
            and self.shared is not None
            and count > 1
            and record_size < stride
        ):
            extent = stride * (count - 1) + record_size
            yield from client.read_shared(self.shared, base_offset, extent)
            yield from client.write_shared(self.shared, base_offset, extent)
            return
        for i in range(count):
            yield from self._backend_write(
                client,
                base_offset + i * stride,
                record_size,
                cache_gate=record_size,
            )

    def read_independent(self, rank: RankInfo, offset: float, nbytes: float) -> Generator:
        yield from self._backend_read(self.client(rank), offset, nbytes)
