"""The four PLFS access routes the paper compares (§II, §III).

Each :class:`AccessMethod` captures the *software* cost of reaching the
file system, independent of the hardware model:

- ``MPIIO`` — plain MPI-IO onto a shared file; no extra layer.
- ``ROMIO`` — the PLFS ROMIO driver compiled into MPI: PLFS semantics plus
  a small per-call driver cost.
- ``LDPLFS`` — the paper's contribution: the same PLFS semantics through
  symbol interposition.  Its per-call cost (an fd-table lookup plus the
  lseek bookkeeping of §III.A) is *lower* than the ROMIO driver's — this
  is why the paper observes LDPLFS occasionally beating ROMIO.
- ``FUSE`` — PLFS through the FUSE kernel module: every request crosses
  user/kernel twice and, crucially, the kernel splits I/O into
  ``max_write``-sized chunks (128 KB), multiplying the per-request costs —
  the mechanism behind FUSE's poor showing in Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.machine import PerfParams


@dataclass(frozen=True)
class AccessMethod:
    """Cost model for one access route."""

    name: str
    uses_plfs: bool
    #: client CPU cost per application I/O call, seconds
    per_call_overhead: float
    #: True: requests are split into perf.fuse_max_write chunks, each
    #: paying perf.fuse_request_overhead (FUSE kernel crossings)
    fuse_transport: bool = False

    def chunks(self, nbytes: float, perf: PerfParams) -> list[float]:
        """Sizes of the backend requests one call of *nbytes* becomes."""
        if not self.fuse_transport or nbytes <= perf.fuse_max_write:
            return [nbytes]
        out: list[float] = []
        remaining = nbytes
        while remaining > 0:
            take = min(perf.fuse_max_write, remaining)
            out.append(take)
            remaining -= take
        return out

    def chunk_overhead(self, perf: PerfParams) -> float:
        """Client CPU cost per backend request (kernel crossings)."""
        return perf.fuse_request_overhead if self.fuse_transport else 0.0


#: Plain MPI-IO without PLFS (the baseline of every figure).
MPIIO = AccessMethod(name="MPI-IO", uses_plfs=False, per_call_overhead=0.0)

#: PLFS through a modified OpenMPI/ROMIO build.
ROMIO = AccessMethod(name="ROMIO", uses_plfs=True, per_call_overhead=60e-6)

#: PLFS through the LDPLFS interposition shim.
LDPLFS = AccessMethod(name="LDPLFS", uses_plfs=True, per_call_overhead=30e-6)

#: PLFS through the FUSE mount.
FUSE = AccessMethod(
    name="FUSE",
    uses_plfs=True,
    per_call_overhead=60e-6,
    fuse_transport=True,
)

ALL_METHODS = [MPIIO, FUSE, ROMIO, LDPLFS]
PLFS_METHODS = [FUSE, ROMIO, LDPLFS]
BY_NAME = {m.name: m for m in ALL_METHODS}
