"""Deterministic rendering of lint results (text and canonical JSON).

Same contract as :mod:`repro.insights.reporter`: the text report is for
consoles, the JSON report goes through
:func:`repro.analysis.export.canonical_json` so identical inputs produce
byte-identical bytes — the property the golden-file tests assert.
:func:`as_static_evidence` is the bridge into the runtime side: lint
findings slot into an insights report (and the autotuner's explanation)
as ``static`` evidence alongside the observed-run detectors.
"""

from __future__ import annotations

from repro.analysis.export import canonical_json

from .analyzer import SelfAudit
from .findings import LintFinding, Severity, sort_findings


def _severity_summary(findings: list[LintFinding]) -> str:
    counts = {s: 0 for s in Severity}
    for f in findings:
        counts[f.severity] += 1
    return ", ".join(
        f"{counts[s]} {s.name}"
        for s in sorted(Severity, reverse=True)
        if counts[s]
    )


def render_findings(findings: list[LintFinding], target: str = "") -> str:
    header = f"repro-lint — {target}" if target else "repro-lint"
    if not findings:
        return f"{header}\nno issues found — static analysis is clean"
    blocks = [
        header,
        f"{len(findings)} finding(s): {_severity_summary(findings)}",
        "",
    ]
    blocks.extend(f.render() for f in findings)
    return "\n".join(blocks)


def findings_to_dict(
    findings: list[LintFinding], target: str = ""
) -> dict:
    counts = {s.name: 0 for s in Severity}
    for f in findings:
        counts[f.severity.name] += 1
    return {
        "target": target,
        "finding_count": len(findings),
        "severity_counts": {k: v for k, v in counts.items() if v},
        "findings": [f.as_dict() for f in sort_findings(findings)],
    }


def findings_to_json(findings: list[LintFinding], target: str = "") -> str:
    """Canonical JSON (byte-identical for identical findings)."""
    return canonical_json(findings_to_dict(findings, target))


def render_self_audit(audit: SelfAudit) -> str:
    cov = audit.coverage
    lines = [
        "repro-lint self-audit — interposition coverage + shim concurrency",
        (
            f"  os surface: {len(cov.patched)} patched, "
            f"{len(cov.acknowledged)} acknowledged passthrough, "
            f"{len(cov.uncovered)} uncovered"
        ),
        (
            f"  builtin surfaces: "
            f"{', '.join(cov.builtin_covered) or '(none)'} rebound"
        ),
    ]
    if cov.stale:
        lines.append(f"  stale patches: {', '.join(cov.stale)}")
    static = audit.static
    if static is not None:
        lines.append(
            f"  lock analysis: {len(static.modules)} modules, "
            f"{static.functions} functions, {static.call_edges} resolved "
            f"call edges, {len(static.lock_edges)} lock-order edges"
        )
    lines.append("-" * 72)
    if audit.passed:
        lines.append(
            "PASS — every file-touching symbol is interposed or "
            "acknowledged; all guarded-field contracts hold"
        )
    else:
        lines.append(render_findings(audit.findings, target="self-audit"))
        lines.append("FAIL")
    return "\n".join(lines)


def self_audit_to_dict(audit: SelfAudit) -> dict:
    data = findings_to_dict(audit.findings, target="self-audit")
    data["coverage"] = audit.coverage.as_dict()
    data["passed"] = audit.passed
    if audit.static is not None:
        data["static"] = {
            "modules": list(audit.static.modules),
            "summary": audit.static.summary(),
            "lock_order_edges": [
                list(edge) for edge in audit.static.lock_edges
            ],
        }
    return data


def self_audit_to_json(audit: SelfAudit) -> str:
    return canonical_json(self_audit_to_dict(audit))


def as_static_evidence(findings: list[LintFinding]) -> list[dict]:
    """Lint findings shaped for the ``static`` section of an insights
    report (see :func:`repro.insights.reporter.report_to_dict`)."""
    return [f.as_dict() for f in sort_findings(findings)]
