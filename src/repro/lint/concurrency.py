"""Static concurrency checker for the interposition core.

The shim's correctness under threads hangs on two shared structures: the
fd lookup table (``FdTable._entries``, guarded by ``self._lock``), the
mount list (``MountTable._mounts``, same pattern), and the module-global
``interpose._installed`` (guarded by ``_install_lock``).  A mutation that
slips outside its lock is invisible to tests until a rare interleaving
loses a descriptor — so this checker proves the guard discipline
*statically*: every write to a guarded field must sit lexically inside a
``with <its lock>:`` block.

The analysis is deliberately lexical (no aliasing, no inter-procedural
flow): the core's locking style is ``with self._lock:`` around the whole
mutation, and anything cleverer than that should fail the audit and be
rewritten, not accommodated.  A lock-order pass also records every nested
acquisition pair of known guards and reports inversions.
"""

from __future__ import annotations

import ast
import importlib.util
from dataclasses import dataclass

from .findings import LintFinding, RULES, sort_findings

_MUTATING_METHODS = frozenset(
    {
        "pop", "popitem", "clear", "update", "setdefault",
        "append", "extend", "insert", "remove", "sort",
        "add", "discard",
    }
)


@dataclass(frozen=True)
class GuardSpec:
    """One guarded-field contract: *field* of *owner* is written only
    under *guard* (``owner=""`` means a module-level global)."""

    module: str  # import path, for default source loading
    owner: str  # class name, or "" for module level
    field: str
    guard: str  # lock expression as written, e.g. "self._lock"

    def describe(self) -> str:
        scope = f"{self.owner}." if self.owner else ""
        return f"{self.module}:{scope}{self.field} under {self.guard}"


#: the contracts the self-audit enforces over our own core
DEFAULT_GUARDS: list[GuardSpec] = [
    GuardSpec("repro.core.fdtable", "FdTable", "_entries", "self._lock"),
    GuardSpec("repro.core.mounts", "MountTable", "_mounts", "self._lock"),
    GuardSpec("repro.core.interpose", "", "_installed", "_install_lock"),
]

#: constructors touch state no other thread can see yet
_EXEMPT_METHODS = frozenset({"__init__", "__new__"})


def _module_source(module: str) -> tuple[str, str]:
    spec = importlib.util.find_spec(module)
    if spec is None or spec.origin is None:
        raise ImportError(f"cannot locate source for {module!r}")
    with open(spec.origin, "r", encoding="utf-8") as fh:
        return fh.read(), spec.origin


def _is_field_ref(node: ast.AST, guard: GuardSpec) -> bool:
    """Does *node* denote the guarded field (``self.field`` or global)?"""
    if guard.owner:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == guard.field
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )
    return isinstance(node, ast.Name) and node.id == guard.field


def _mutation_targets(node: ast.AST, guard: GuardSpec):
    """Yield the mutated-field references found directly at *node*."""
    if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if _is_field_ref(target, guard):
                yield target
            elif isinstance(target, ast.Subscript) and _is_field_ref(
                target.value, guard
            ):
                yield target
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Subscript) and _is_field_ref(
                target.value, guard
            ):
                yield target
    elif isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and _is_field_ref(func.value, guard)
        ):
            yield node


class _GuardWalker(ast.NodeVisitor):
    """Walks one function body tracking how deep inside the guard we are."""

    def __init__(self, guard: GuardSpec, filename: str, func_name: str):
        self.guard = guard
        self.filename = filename
        self.func_name = func_name
        self.depth = 0
        self.violations: list[ast.AST] = []

    def _acquires_guard(self, node) -> bool:
        return any(
            ast.unparse(item.context_expr) == self.guard.guard
            for item in node.items
        )

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node) -> None:
        held = self._acquires_guard(node)
        self.depth += held
        try:
            self.generic_visit(node)
        finally:
            self.depth -= held

    def generic_visit(self, node: ast.AST) -> None:
        for target in _mutation_targets(node, self.guard):
            if self.depth == 0:
                self.violations.append(target)
        super().generic_visit(node)


def _functions_to_check(tree: ast.AST, guard: GuardSpec):
    """(qualname, function node) pairs the contract applies to."""
    if guard.owner:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == guard.owner:
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and item.name not in _EXEMPT_METHODS:
                        yield f"{guard.owner}.{item.name}", item
    else:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                declares_global = any(
                    isinstance(stmt, ast.Global) and guard.field in stmt.names
                    for stmt in ast.walk(node)
                )
                if declares_global:
                    yield node.name, node


def check_source(
    source: str, filename: str, guards: list[GuardSpec]
) -> list[LintFinding]:
    """Run the guarded-field analysis over one module's source."""
    tree = ast.parse(source, filename=filename)
    spec = RULES["LDP003"]
    findings: list[LintFinding] = []
    for guard in guards:
        for qualname, func in _functions_to_check(tree, guard):
            walker = _GuardWalker(guard, filename, qualname)
            walker.visit(func)
            for node in walker.violations:
                findings.append(
                    LintFinding(
                        rule=spec.rule_id,
                        name=spec.name,
                        severity=spec.severity,
                        file=filename,
                        line=getattr(node, "lineno", 0),
                        col=getattr(node, "col_offset", 0),
                        detail=(
                            f"{qualname} mutates "
                            f"{guard.owner + '.' if guard.owner else ''}"
                            f"{guard.field} outside 'with {guard.guard}:'; "
                            "a concurrent open/close can interleave and "
                            "lose or double-free a descriptor entry"
                        ),
                        recommendation=spec.recommendation,
                        evidence={
                            "field": guard.field,
                            "function": qualname,
                            "guard": guard.guard,
                        },
                    )
                )
    findings.extend(_check_lock_order(tree, filename, guards))
    return sort_findings(findings)


def _check_lock_order(
    tree: ast.AST, filename: str, guards: list[GuardSpec]
) -> list[LintFinding]:
    """Report guard locks acquired in inconsistent nesting orders."""
    lock_names = sorted({g.guard for g in guards})
    pairs: dict[tuple[str, str], ast.AST] = {}

    def walk(node: ast.AST, held: list[str]) -> None:
        acquired: list[str] = []
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = ast.unparse(item.context_expr)
                if expr in lock_names:
                    acquired.append(expr)
                    for outer in held:
                        if outer != expr:
                            pairs.setdefault((outer, expr), node)
        for child in ast.iter_child_nodes(node):
            walk(child, held + acquired)

    walk(tree, [])
    spec = RULES["LDP004"]
    findings = []
    for (outer, inner), node in sorted(pairs.items()):
        if (inner, outer) in pairs:
            findings.append(
                LintFinding(
                    rule=spec.rule_id,
                    name=spec.name,
                    severity=spec.severity,
                    file=filename,
                    line=getattr(node, "lineno", 0),
                    col=getattr(node, "col_offset", 0),
                    detail=(
                        f"{outer} is acquired while holding {inner} here, "
                        f"but the opposite order also exists in this "
                        "module — two threads taking the two paths "
                        "deadlock"
                    ),
                    recommendation=spec.recommendation,
                    evidence={"inner": inner, "outer": outer},
                )
            )
    return findings


def check_module(module: str, guards: list[GuardSpec]) -> list[LintFinding]:
    source, origin = _module_source(module)
    return check_source(source, module, guards)


def self_audit_concurrency(
    guards: list[GuardSpec] | None = None,
) -> list[LintFinding]:
    """Run every guard contract against its own module (the CI gate)."""
    guards = DEFAULT_GUARDS if guards is None else guards
    findings: list[LintFinding] = []
    by_module: dict[str, list[GuardSpec]] = {}
    for guard in guards:
        by_module.setdefault(guard.module, []).append(guard)
    for module in sorted(by_module):
        findings.extend(check_module(module, by_module[module]))
    return sort_findings(findings)
